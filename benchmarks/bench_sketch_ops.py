"""Micro-benchmarks: sketch and hashing kernel throughput.

These are the inner loops that determine whether the trillion-scale
streams of Table 2 are feasible: batched signed scatter-adds (insert),
gather-plus-median (query) and the hash families themselves.
"""

import numpy as np
import pytest

from repro.hashing.families import make_family
from repro.sketch.count_sketch import CountSketch

BATCH = 100_000


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10**12, size=BATCH)
    values = rng.standard_normal(BATCH)
    return keys, values


@pytest.mark.parametrize("family", ["multiply-shift", "polynomial", "tabulation"])
def bench_hash_family(benchmark, family, batch):
    keys, _ = batch
    h = make_family(family, 1 << 20, seed=1)
    benchmark(h, keys)


def bench_count_sketch_insert(benchmark, batch):
    keys, values = batch
    sketch = CountSketch(5, 1 << 17, seed=1)
    benchmark(sketch.insert, keys, values)


def bench_count_sketch_insert_small_batch(benchmark, batch):
    keys, values = batch
    sketch = CountSketch(5, 1 << 17, seed=1)
    benchmark(sketch.insert, keys[:256], values[:256])


def bench_count_sketch_query(benchmark, batch):
    keys, values = batch
    sketch = CountSketch(5, 1 << 17, seed=1)
    sketch.insert(keys, values)
    benchmark(sketch.query, keys)


def bench_pair_index_round_trip(benchmark):
    from repro.hashing.pairs import index_to_pair, num_pairs, pair_to_index

    d = 17_000_000  # the paper's DNA dimensionality
    rng = np.random.default_rng(2)
    idx = rng.integers(0, num_pairs(d), size=BATCH)

    def round_trip():
        i, j = index_to_pair(idx, d)
        return pair_to_index(i, j, d)

    out = benchmark(round_trip)
    assert (out == idx).all()


def bench_dense_batch_products(benchmark):
    from repro.covariance.updates import dense_batch_products

    rng = np.random.default_rng(3)
    data = rng.standard_normal((64, 500))
    benchmark(dense_batch_products, data)


def bench_sparse_pair_expansion(benchmark):
    from repro.covariance.updates import sparse_sample_pairs

    rng = np.random.default_rng(4)
    indices = np.sort(rng.choice(10**7, size=120, replace=False))
    values = rng.standard_normal(120)
    benchmark(sparse_sample_pairs, indices, values, 10**7)
