"""Ablation: the i.i.d. assumption and the shuffle buffer (section 3).

"Note that we assume that the observed samples are i.i.d distributed over
time.  This assumption is critical to the success of our algorithm.  In
real-world applications, we can induce randomness by buffering the
incoming data and shuffling it."

The adversarial order here sends every group-bearing (signal) sample at the
END of the stream: ASCS then spends its exploration period on pure
background noise, sets its threshold ramp against nothing, and filters the
signals when they finally arrive.  A modest shuffle buffer restores the
paper's behaviour — exactly the claim being validated.
"""


from conftest import run_once, show

from repro.covariance.ground_truth import pair_correlations
from repro.data.streams import ShuffleBuffer
from repro.data.url_like import URLLikeStream
from repro.evaluation.harness import run_sparse_method
from repro.experiments.base import TableResult
from repro.hashing.pairs import index_to_pair


def _adversarial_order(stream):
    """All background-only samples first, group-bearing samples last."""
    samples = list(iter(stream))
    planted_cutoff = stream.num_groups * stream.group_size
    background = [s for s in samples if s.indices.min() >= planted_cutoff]
    signal = [s for s in samples if s.indices.min() < planted_cutoff]
    return background + signal


def _run_sweep() -> TableResult:
    # Regime where the threshold genuinely gates on accumulated estimates:
    # low bucket noise (R >> events) and frequent group co-occurrence, so a
    # signal pair that misses the exploration window can never catch up with
    # the ramp once it finally appears.
    stream = URLLikeStream(
        dim=2000, num_samples=4000, num_groups=25, group_size=5,
        group_prob=0.8, member_prob=0.95, background_nnz=15, seed=37,
    )
    stored = stream.materialize()
    ordered = _adversarial_order(stream)

    from repro.evaluation.harness import sparse_pilot

    # One sigma for all variants (from the i.i.d. order) so the comparison
    # isolates the stream ordering, not the pilot.
    sigma = sparse_pilot(iter(stream), stream.dim, num_pilot=300)

    variants = {
        "iid (generator order)": lambda: iter(stream),
        "adversarial order": lambda: iter(ordered),
        "adversarial + shuffle buffer": lambda: ShuffleBuffer(
            ordered, buffer_size=2500, seed=1
        ),
    }

    table = TableResult(
        title="Ablation - stream order and the section-3 shuffle buffer (ASCS)",
        columns=("stream order", "top-200 mean corr", "acceptance"),
    )
    for label, factory in variants.items():
        keys, _, run = run_sparse_method(
            factory, stream.dim, stream.num_samples, "ascs", 100_000,
            alpha=1e-5, u=0.5, sigma=sigma, top_k=200, track_top=2000, seed=2,
        )
        i, j = index_to_pair(keys, stream.dim)
        corr = pair_correlations(stored, i, j)
        table.add_row(label, float(corr.mean()), run.acceptance_rate)
    return table


def bench_ablation_shuffle(benchmark):
    table = run_once(benchmark, _run_sweep)
    show(table)
    scores = dict(zip(table.column("stream order"), table.column("top-200 mean corr")))
    # The i.i.d. assumption is load-bearing...
    assert scores["adversarial order"] < scores["iid (generator order)"]
    # ...and the paper's buffered-shuffle remedy recovers most of the loss.
    assert scores["adversarial + shuffle buffer"] > scores["adversarial order"]
