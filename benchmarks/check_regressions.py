"""Benchmark regression gate for CI.

Two layers of protection, both driven by the registry's per-suite checks
(``BenchSuite.check``) so the acceptance logic lives next to the numbers
it judges:

1. **Committed reports validate.**  Every registered suite must have a
   committed ``BENCH_<suite>.json`` at the repo root; each is parsed and
   run through its suite's check.  Checks gate their throughput floors on
   the report's own ``meta.cpu_count`` — the machine that *measured* the
   numbers — so a 1-CPU CI container can still validate a report recorded
   on a many-core box, and vice versa.
2. **Fresh smoke runs pass.**  Each suite is re-run in smoke mode (to a
   scratch path: the committed full-workload records are never clobbered)
   and the fresh report must pass the same check.  On a 1-CPU container
   the hardware-gated floors disarm via the fresh report's own
   ``meta.cpu_count``; deterministic accuracy checks (bit-identity gates,
   the streaming drift-F1 margin) always apply.

When CI has already produced smoke reports (the test job uploads its
``BENCH_<suite>.smoke.json`` files as workflow artifacts), the gate job
can consume them directly instead of re-measuring::

    PYTHONPATH=src python benchmarks/check_regressions.py --smoke-dir artifacts/

``--smoke-dir`` replaces the fresh re-run layer: each suite's
``BENCH_<suite>.smoke.json`` is loaded from the directory and run
through the same suite check.  A missing or unparseable artifact is a
failure — the gate never silently skips a suite.

Usage::

    PYTHONPATH=src python benchmarks/check_regressions.py
    PYTHONPATH=src python benchmarks/check_regressions.py --suite streaming
    PYTHONPATH=src python benchmarks/check_regressions.py --skip-fresh
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(Path(__file__).resolve().parent))

# Importing run_bench registers every suite module as a side effect, so
# REGISTRY is fully populated once both imports complete.
import run_bench  # noqa: E402, F401
from registry import REGISTRY  # noqa: E402


def check_committed(suite) -> list[str]:
    """Validate the committed ``BENCH_<suite>.json`` via the suite's check."""
    path = REPO_ROOT / f"BENCH_{suite.name}.json"
    if not path.exists():
        return [f"missing committed report {path.name}"]
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"unparseable committed report {path.name}: {exc}"]
    meta = report.get("meta")
    if not isinstance(meta, dict) or "cpu_count" not in meta:
        return [f"{path.name} lacks meta.cpu_count (cannot gate its checks)"]
    return [f"committed {path.name}: {problem}" for problem in suite.check(report)]


def check_fresh_smoke(suite, scratch: Path) -> list[str]:
    """Re-run the suite in smoke mode and apply its check to the result."""
    out = scratch / f"BENCH_{suite.name}.smoke.json"
    report = suite.run(smoke=True, out=out)
    return [f"fresh smoke {suite.name}: {problem}" for problem in suite.check(report)]


def check_smoke_artifact(suite, smoke_dir: Path) -> list[str]:
    """Apply the suite's check to a precomputed smoke report artifact."""
    path = smoke_dir / f"BENCH_{suite.name}.smoke.json"
    if not path.exists():
        return [f"missing smoke artifact {path.name} in {smoke_dir}"]
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"unparseable smoke artifact {path.name}: {exc}"]
    meta = report.get("meta")
    if not isinstance(meta, dict) or "cpu_count" not in meta:
        return [f"{path.name} lacks meta.cpu_count (cannot gate its checks)"]
    return [f"smoke artifact {suite.name}: {problem}" for problem in suite.check(report)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=tuple(REGISTRY),
        default=None,
        help="check a single suite (default: all registered suites)",
    )
    parser.add_argument(
        "--skip-fresh",
        action="store_true",
        help="only validate the committed reports, skip the smoke re-runs",
    )
    parser.add_argument(
        "--smoke-dir",
        type=Path,
        default=None,
        help=(
            "directory of precomputed BENCH_<suite>.smoke.json artifacts to "
            "check instead of re-running the smoke workloads"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke_dir is not None and args.skip_fresh:
        parser.error("--smoke-dir and --skip-fresh are mutually exclusive")

    suites = [
        suite for suite in REGISTRY.values() if args.suite in (None, suite.name)
    ]
    failures: list[str] = []
    for suite in suites:
        failures.extend(check_committed(suite))
    if args.smoke_dir is not None:
        for suite in suites:
            failures.extend(check_smoke_artifact(suite, args.smoke_dir))
    elif not args.skip_fresh:
        with tempfile.TemporaryDirectory(prefix="bench-smoke-") as scratch:
            for suite in suites:
                failures.extend(check_fresh_smoke(suite, Path(scratch)))

    for failure in failures:
        print(f"REGRESSION: {failure}")
    if not failures:
        if args.skip_fresh:
            smoke_note = ""
        elif args.smoke_dir is not None:
            smoke_note = ", smoke artifacts pass"
        else:
            smoke_note = ", fresh smoke runs pass"
        print(f"ok: {len(suites)} suite(s) — committed reports valid{smoke_note}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
