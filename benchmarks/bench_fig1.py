"""Regenerate Figure 1 (correlation CDFs) and time the run."""

from conftest import run_once, show

from repro.experiments import fig1_correlation_cdf as experiment


def bench_fig1_correlation_cdf(benchmark):
    config = experiment.Config(dim=300, samples=2000)
    table = run_once(benchmark, experiment.run, config)
    show(table)
    # Shape check: every dataset's CDF reaches 1 and is monotone.
    for name in config.datasets:
        col = table.column(name)
        assert col[-1] == 1.0
        assert all(a <= b + 1e-12 for a, b in zip(col, col[1:]))
