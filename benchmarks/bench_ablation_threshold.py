"""Ablation: the threshold-slope trade-off of section 6.5.

* ``theta`` too small — noise keeps flowing into the sketch (low SNR gain);
* ``theta`` too large — the ramp outruns the signals and filters them.

Sweeping ``theta`` as a fraction of the signal strength ``u`` should show
recovery degrading at the aggressive end while acceptance (noise inflow)
grows at the timid end — the two-sided pressure Algorithm 3 balances.
"""

import numpy as np

from conftest import run_once, show

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.schedule import ThresholdSchedule
from repro.covariance.ground_truth import flat_true_correlations
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.synthetic import BlockCorrelationModel
from repro.evaluation.harness import rank_all_pairs
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult
from repro.sketch.count_sketch import CountSketch

THETA_FRACTIONS = (0.05, 0.3, 0.6, 1.2, 2.0)  # x the signal strength u


def _run_sweep() -> TableResult:
    model = BlockCorrelationModel.from_alpha(
        200, alpha=0.005, rho_range=(0.6, 0.95), seed=19
    )
    n = 3000
    u = model.signal_strength
    data = model.sample(n)
    truth = flat_true_correlations(data)
    num_buckets = truth.size // 25

    table = TableResult(
        title="Ablation - threshold slope theta (T0 fixed at 5%)",
        columns=("theta/u", "top-50 mean corr", "acceptance"),
    )
    for frac in THETA_FRACTIONS:
        schedule = ThresholdSchedule(
            exploration_length=int(0.05 * n), tau0=1e-4, theta=frac * u,
            total_samples=n,
        )
        est = ActiveSamplingCountSketch(
            CountSketch(5, num_buckets, seed=7), n, schedule
        )
        sketcher = CovarianceSketcher(200, est, mode="correlation", batch_size=50)
        sketcher.fit_dense(data)
        ranked, _ = rank_all_pairs(sketcher)
        table.add_row(
            frac,
            mean_top_true_value(ranked, truth, 50),
            est.acceptance_rate,
        )
    return table


def bench_ablation_threshold_slope(benchmark):
    table = run_once(benchmark, _run_sweep)
    show(table)
    scores = np.array(table.column("top-50 mean corr"))
    acceptance = np.array(table.column("acceptance"))
    # Acceptance decreases monotonically with the slope.
    assert (np.diff(acceptance) <= 0.02).all()
    # theta < u keeps the signals: the theory's admissible range wins or
    # ties against the over-aggressive 2u slope.
    assert scores[:3].max() >= scores[-1] - 0.02
