"""Regenerate Figure 2 (|mean/std| CDFs) and time the run."""

from conftest import run_once, show

from repro.experiments import fig2_mean_std_cdf as experiment


def bench_fig2_mean_std_cdf(benchmark):
    config = experiment.Config(dim=300, samples=2000)
    table = run_once(benchmark, experiment.run, config)
    show(table)
    # The dense (zero-mean) datasets must have nearly all features below 0.1,
    # supporting the section-5 uncentered fast path.
    x = table.column("x")
    idx = x.index(0.1)
    for name in ("gisette", "epsilon", "cifar10"):
        assert table.column(name)[idx] > 0.9
