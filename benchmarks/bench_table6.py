"""Regenerate Table 6 (sketching wall time, CS vs ASCS).

The paper's claim is that ASCS adds only a sampling query to CS's insert
loop, so the two stream at comparable speed.  On CPU/numpy the query adds
roughly one gather+median per insert — and with the dense-path hash cache
CS's insert becomes nearly free while ASCS still pays the query — so the
honest analogue of "similar execution speed" here is a small constant
factor, typically 2-5x (the paper's GPU hides the query cost entirely,
giving ~1x).  The assertion bounds the ratio at one order of magnitude.
"""

from conftest import run_once, show

from repro.experiments import table6_timing as experiment


def bench_table6_timing(benchmark):
    config = experiment.Config(dim=300, samples=2000)
    table = run_once(benchmark, experiment.run, config)
    show(table)
    for row in table.rows:
        dataset, cs_time, ascs_time, ratio = row
        assert cs_time > 0 and ascs_time > 0
        assert ratio < 10.0, f"{dataset}: ASCS/CS ratio {ratio} out of range"
