"""Regenerate Table 2 (trillion-scale streams: URL-like and DNA k-mers).

This is the paper's headline table.  The shape being reproduced:

* at the smallest sketch both methods are degraded (paper's DNA R=1e7 row);
* at the middle sketch ASCS clearly beats CS (the 10x-memory headline);
* at the largest sketch CS catches up (paper's R=1e7/1e9 rows).
"""

from conftest import run_once, show

from repro.experiments import table2_large_scale as experiment


def bench_table2_large_scale(benchmark):
    config = experiment.Config(
        url_samples=8_000,
        url_buckets=(20_000, 100_000, 400_000),
        dna_genome=20_000,
        dna_coverage=8.0,
        dna_buckets=(8_000, 40_000, 160_000),
    )
    table = run_once(benchmark, experiment.run, config)
    show(table)

    for dataset in ("url", "dna"):
        rows = [r for r in table.rows if r[0] == dataset]
        cs = [r[5] for r in rows]
        ascs = [r[6] for r in rows]
        # Middle row: ASCS ahead of CS (the headline win).
        assert ascs[1] >= cs[1]
        # Largest sketch: CS recovers to within a small gap of ASCS.
        assert cs[2] >= ascs[2] - 0.15
        # More memory never hurts CS.
        assert cs[2] >= cs[0] - 0.05
