"""Related-work comparison: Pagh's compressed product vs direct CS vs ASCS.

Pagh (2013) sketches each sample's outer product via FFT in
``O(nnz + b log b)`` — sub-quadratic in the pair count — but cannot filter
noise, so its accuracy is vanilla count-sketch accuracy at the same bucket
budget.  This benchmark measures both sides of the trade on a planted
dense dataset: wall time per sample and top-pair recovery.
"""

import time

import numpy as np

from conftest import run_once, show

from repro.covariance.ground_truth import flat_true_correlations
from repro.data.synthetic import BlockCorrelationModel
from repro.evaluation.harness import run_method
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult
from repro.related.pagh import CompressedCovarianceSketch


def _run_comparison() -> TableResult:
    model = BlockCorrelationModel.from_alpha(
        200, alpha=0.005, rho_range=(0.6, 0.95), seed=47
    )
    n = 2000
    data = model.sample(n)
    # standardize so covariance units = correlation units
    data = data / data.std(axis=0)
    truth = flat_true_correlations(data)
    p = truth.size
    num_buckets = p // 25
    memory = 5 * num_buckets

    table = TableResult(
        title="Related work - Pagh compressed product vs CS vs ASCS",
        columns=("method", "top-50 mean corr", "seconds"),
    )

    # Pagh: whole-sample FFT sketching at the same bucket budget (K=5, b=R).
    pagh = CompressedCovarianceSketch(200, 5, num_buckets, seed=3)
    start = time.perf_counter()
    for row in data:
        pagh.insert_sample(row)
    pagh_seconds = time.perf_counter() - start
    estimates = pagh.query_mean_keys(np.arange(p))
    ranked = np.argsort(-estimates)
    table.add_row("Pagh (FFT)", mean_top_true_value(ranked, truth, 50), pagh_seconds)

    for method in ("cs", "ascs"):
        run = run_method(
            data, method, memory, alpha=model.alpha, seed=3, batch_size=50,
            mode="covariance",
        )
        table.add_row(
            method.upper(),
            mean_top_true_value(run.ranked_keys, truth, 50),
            run.fit_seconds,
        )
    return table


def bench_related_pagh(benchmark):
    table = run_once(benchmark, _run_comparison)
    show(table)
    scores = dict(zip(table.column("method"), table.column("top-50 mean corr")))
    # Pagh's accuracy tracks vanilla CS (same estimator, different encoding)...
    assert abs(scores["Pagh (FFT)"] - scores["CS"]) < 0.25
    # ...and ASCS's filtering beats or ties both at the same budget.
    assert scores["ASCS"] >= max(scores["Pagh (FFT)"], scores["CS"]) - 0.05
