"""Ablation: hash-family strength vs recovery quality.

The theory assumes pairwise-independent hashing (the Mersenne polynomial
family); the default is the faster multiply-shift.  This ablation checks
that the weaker-but-faster family gives up nothing measurable on the
recovery metric — the justification for the library default.
"""

import numpy as np

from conftest import run_once, show

from repro.core.estimator import SketchEstimator
from repro.covariance.ground_truth import flat_true_correlations
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.synthetic import BlockCorrelationModel
from repro.evaluation.harness import rank_all_pairs
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult
from repro.hashing.families import FAMILY_NAMES
from repro.sketch.count_sketch import CountSketch


def _run_sweep() -> TableResult:
    model = BlockCorrelationModel.from_alpha(
        200, alpha=0.005, rho_range=(0.6, 0.95), seed=29
    )
    n = 2500
    data = model.sample(n)
    truth = flat_true_correlations(data)
    num_buckets = truth.size // 25

    table = TableResult(
        title="Ablation - hash family (vanilla CS recovery)",
        columns=("family", "top-50 mean corr"),
    )
    for family in FAMILY_NAMES:
        est = SketchEstimator(
            CountSketch(5, num_buckets, seed=11, family=family), n
        )
        sketcher = CovarianceSketcher(200, est, mode="correlation", batch_size=50)
        sketcher.fit_dense(data)
        ranked, _ = rank_all_pairs(sketcher)
        table.add_row(family, mean_top_true_value(ranked, truth, 50))
    return table


def bench_ablation_hash_family(benchmark):
    table = run_once(benchmark, _run_sweep)
    show(table)
    scores = np.array(table.column("top-50 mean corr"))
    # All three families recover comparably: the speed/strength trade is free
    # at this workload.
    assert scores.max() - scores.min() < 0.15
