"""Ablation: the exploration-length trade-off of section 6.4.

The paper argues T0 must balance two failure modes:

* too small — signals are filtered before their estimates stabilise;
* too large — not enough sampling period is left to starve the noise.

This ablation fixes everything except ``T0`` (as a fraction of the stream)
and measures top-pair recovery, expecting an interior maximum — the reason
Algorithm 3 exists at all.
"""

import numpy as np

from conftest import run_once, show

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.schedule import ThresholdSchedule
from repro.covariance.ground_truth import flat_true_correlations
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.synthetic import BlockCorrelationModel
from repro.evaluation.harness import rank_all_pairs
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult
from repro.sketch.count_sketch import CountSketch

T0_FRACTIONS = (0.01, 0.05, 0.15, 0.4, 0.8)


def _run_sweep() -> TableResult:
    model = BlockCorrelationModel.from_alpha(
        200, alpha=0.005, rho_range=(0.6, 0.95), seed=13
    )
    n = 3000
    data = model.sample(n)
    truth = flat_true_correlations(data)
    p = truth.size
    num_buckets = p // 25

    table = TableResult(
        title="Ablation - exploration length T0 (theta fixed)",
        columns=("T0/T", "top-50 mean corr", "acceptance"),
    )
    for frac in T0_FRACTIONS:
        schedule = ThresholdSchedule(
            exploration_length=int(frac * n), tau0=1e-4, theta=0.3,
            total_samples=n,
        )
        est = ActiveSamplingCountSketch(
            CountSketch(5, num_buckets, seed=3), n, schedule
        )
        sketcher = CovarianceSketcher(200, est, mode="correlation", batch_size=50)
        sketcher.fit_dense(data)
        ranked, _ = rank_all_pairs(sketcher)
        table.add_row(
            frac,
            mean_top_true_value(ranked, truth, 50),
            est.acceptance_rate,
        )
    return table


def bench_ablation_exploration_length(benchmark):
    table = run_once(benchmark, _run_sweep)
    show(table)
    scores = np.array(table.column("top-50 mean corr"))
    # An interior T0 beats running exploration for 80% of the stream
    # (T0 too large leaves no sampling period to pay for).
    assert scores[1:4].max() >= scores[-1] - 0.02
    # Acceptance falls as T0 shrinks (longer sampling period filters more).
    acc = table.column("acceptance")
    assert acc[0] < acc[-1]
