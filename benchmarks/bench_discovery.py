"""Open-world discovery benchmark suite.

Measures what the hierarchical sketch index buys over the flat snapshot
index and what it costs, writing ``BENCH_discovery.json``
(``BENCH_discovery.smoke.json`` in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_discovery.py       # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke     # CI smoke

* **planted recall/precision** — the ISSUE 7 acceptance scenario: a
  seeded block-correlation model, a snapshot with **no materialized pair
  index** (``top_index=0``), and ``pairs_above`` answering by hierarchical
  descent alone.  Seeded and deterministic: the CI check enforces the
  recall and precision floors unconditionally.
* **descent vs exhaustive scan** — ``find_heavy`` against querying every
  one of ``num_pairs(1024)`` keys (~524k) and filtering, same sketch,
  same planted truth.  The descent prunes by dyadic interval so it must
  not pay for the key space it rules out.
* **memory overhead** — hierarchy bytes vs a flat ``CountSketch`` at the
  same leaf ``(K, R)``; the ratio is the level count by construction and
  the planner's depth-for-width trade is recorded alongside.

Timing floors are gated on ``meta.cpu_count`` like every other suite;
the recall/precision floors are deterministic and always enforced.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.synthetic import BlockCorrelationModel
from repro.hashing.pairs import num_pairs, pair_to_index
from repro.serving import QueryEngine, SketchSnapshot
from repro.sketch import CountSketch, HierarchicalCountSketch, plan

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_TABLES = 5
NUM_BUCKETS = 4096
BRANCHING = 16
SEED = 7

#: CI gates (see _check): descent on the indexless snapshot must keep
#: recall/precision at least this high on the seeded planted scenario.
RECALL_FLOOR = 0.95
PRECISION_FLOOR = 0.5


def _bench_open_world(smoke: bool) -> tuple[list[dict], dict]:
    """Acceptance scenario: planted block model, snapshot with no index."""
    dim = 64
    n = 4096
    threshold = 0.35
    model = BlockCorrelationModel.from_alpha(dim, 0.05, seed=42)
    samples = model.sample(n)
    truth = set(model.signal_pairs().tolist())

    sketch = HierarchicalCountSketch(
        NUM_TABLES, NUM_BUCKETS, key_space=num_pairs(dim),
        branching=BRANCHING, seed=SEED,
    )
    estimator = SketchEstimator(sketch, n, name="HCS", two_sided=True, track_top=0)
    sketcher = CovarianceSketcher(
        dim, estimator, mode="correlation", centering="none", batch_size=64
    )
    t0 = time.perf_counter()
    sketcher.fit_dense(samples)
    fit_seconds = time.perf_counter() - t0

    snapshot = SketchSnapshot.from_sketcher(sketcher, top_index=0)
    engine = QueryEngine(snapshot)
    trials = 3 if smoke else 7
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        i, j, estimates = engine.pairs_above(threshold)
        best = min(best, time.perf_counter() - t0)
    found = set(pair_to_index(i, j, dim).tolist())
    recall = len(found & truth) / len(truth)
    precision = len(found & truth) / max(1, len(found))

    records = [
        {
            "op": "open_world_pairs_above",
            "dim": dim,
            "samples": n,
            "threshold": threshold,
            "index_size": int(snapshot.index_size),
            "planted_pairs": len(truth),
            "returned_pairs": int(i.size),
            "recall": recall,
            "precision": precision,
            "fit_seconds": fit_seconds,
            "query_ms": best * 1e3,
        }
    ]
    headline = {
        "open_world_recall": recall,
        "open_world_precision": precision,
        "open_world_index_size": int(snapshot.index_size),
        "open_world_query_ms": best * 1e3,
    }
    return records, headline


def _bench_descent_vs_scan(smoke: bool, rng) -> tuple[list[dict], dict]:
    """find_heavy vs querying the entire key space, pair-domain keys."""
    dim = 512 if smoke else 1024
    key_space = num_pairs(dim)
    threshold = 0.5
    num_heavy = 40
    sketch = HierarchicalCountSketch(
        NUM_TABLES, NUM_BUCKETS, key_space=key_space,
        branching=BRANCHING, seed=SEED,
    )
    noise_keys = rng.integers(0, key_space, size=20_000 if smoke else 100_000)
    sketch.insert(noise_keys, rng.normal(0.0, 0.005, size=noise_keys.size))
    planted = rng.choice(key_space, size=num_heavy, replace=False).astype(np.int64)
    sketch.insert(planted, rng.choice([-1.0, 1.0], size=num_heavy))
    sketch.freeze()
    sketch.find_heavy(threshold)  # warm the frozen noise-floor cache

    trials = 3 if smoke else 7
    descent = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        keys, _ = sketch.find_heavy(threshold)
        descent = min(descent, time.perf_counter() - t0)

    all_keys = np.arange(key_space, dtype=np.int64)
    scan = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        estimates = sketch.query(all_keys)
        hits = all_keys[np.abs(estimates) >= threshold]
        scan = min(scan, time.perf_counter() - t0)

    descent_recall = len(set(keys.tolist()) & set(planted.tolist())) / num_heavy
    agreement = set(keys.tolist()) == set(hits.tolist())
    records = [
        {
            "op": "descent_vs_scan",
            "key_space": key_space,
            "levels": sketch.levels,
            "planted_keys": num_heavy,
            "descent_ms": descent * 1e3,
            "scan_ms": scan * 1e3,
            "speedup": scan / descent,
            "descent_recall": descent_recall,
            "matches_exhaustive_scan": agreement,
        }
    ]
    headline = {
        "descent_ms": descent * 1e3,
        "scan_ms": scan * 1e3,
        "descent_speedup": scan / descent,
        "descent_matches_scan": agreement,
    }
    return records, headline


def _bench_memory_overhead() -> tuple[list[dict], dict]:
    """Hierarchy residency vs a flat sketch at the same leaf (K, R)."""
    dim = 512
    hierarchy = HierarchicalCountSketch(
        NUM_TABLES, NUM_BUCKETS, key_space=num_pairs(dim),
        branching=BRANCHING, seed=SEED,
    )
    flat = CountSketch(NUM_TABLES, NUM_BUCKETS, seed=SEED)
    ratio = hierarchy.memory_bytes / flat.memory_bytes
    deep_plan = plan(dim, flat.memory_bytes / (1 << 20), levels=hierarchy.levels)
    records = [
        {
            "op": "memory_overhead",
            "levels": hierarchy.levels,
            "hierarchy_bytes": int(hierarchy.memory_bytes),
            "flat_bytes": int(flat.memory_bytes),
            "overhead_ratio": ratio,
            "planner_matched_budget": deep_plan.to_dict(),
        }
    ]
    headline = {
        "memory_overhead_ratio": ratio,
        "hierarchy_levels": hierarchy.levels,
        "planner_buckets_at_matched_budget": deep_plan.num_buckets,
    }
    return records, headline


def run_benchmarks(smoke: bool = False) -> dict:
    rng = np.random.default_rng(0)
    open_records, open_headline = _bench_open_world(smoke)
    scan_records, scan_headline = _bench_descent_vs_scan(smoke, rng)
    mem_records, mem_headline = _bench_memory_overhead()
    cpu_count = os.cpu_count() or 1
    return {
        "meta": {
            "benchmark": "bench_discovery",
            "smoke": smoke,
            "num_tables": NUM_TABLES,
            "num_buckets": NUM_BUCKETS,
            "branching": BRANCHING,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "recall/precision floors are deterministic and always "
                "enforced; the descent-beats-scan latency floor applies "
                "only when meta.cpu_count >= 2"
            ),
        },
        "headline": {
            **open_headline,
            **scan_headline,
            **mem_headline,
            "cpu_count": cpu_count,
        },
        "results": open_records + scan_records + mem_records,
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    for rec in report["results"]:
        detail = {k: v for k, v in rec.items() if k != "op"}
        print(f"{rec['op']:<24}{json.dumps(detail)}")
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_discovery.json")
    return report


def _check(report: dict) -> list:
    """CI gate for the discovery suite.

    Deterministic gates (always enforced): on the seeded acceptance
    scenario the indexless snapshot must recover >= 95% of the planted
    pairs with precision >= 0.5, and the descent must return the same key
    set as the exhaustive scan of its own sketch.  The descent-beats-scan
    latency floor is a timing measurement, so like every other suite's
    floors it applies only when the measuring machine had >= 2 cores
    (``meta.cpu_count``).
    """
    failures = []
    headline = report["headline"]
    if headline["open_world_recall"] < RECALL_FLOOR:
        failures.append(
            f"open-world recall {headline['open_world_recall']:.3f} fell "
            f"below the {RECALL_FLOOR} floor on the seeded planted scenario"
        )
    if headline["open_world_precision"] < PRECISION_FLOOR:
        failures.append(
            f"open-world precision {headline['open_world_precision']:.3f} "
            f"fell below the {PRECISION_FLOOR} floor — the noise-floor "
            "calibration is admitting junk intervals"
        )
    if not headline["descent_matches_scan"]:
        failures.append(
            "find_heavy disagrees with the exhaustive scan of its own "
            "sketch — the descent pruned a qualifying interval"
        )
    cpu_count = int(report["meta"].get("cpu_count") or 1)
    if cpu_count >= 2 and headline["descent_speedup"] < 1.0:
        failures.append(
            f"hierarchical descent ({headline['descent_ms']:.2f}ms) is "
            f"slower than exhaustively scanning all keys "
            f"({headline['scan_ms']:.2f}ms) — the pruning buys nothing"
        )
    return failures


SUITE = register(BenchSuite(name="discovery", run=main, check=_check))


if __name__ == "__main__":
    main()
