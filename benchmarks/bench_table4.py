"""Regenerate Table 4 (mean correlation of top fractions, 3 methods)."""

import numpy as np

from conftest import run_once, show

from repro.experiments import table4_top_fraction as experiment


def bench_table4_top_fraction(benchmark):
    config = experiment.Config(dim=300, samples=3000)
    table = run_once(benchmark, experiment.run, config)
    show(table)

    # Headline row (fraction = 0.01 alpha p): ASCS at least competitive with
    # CS on average across datasets.
    head = [r for r in table.rows if r[0] == 0.01]
    by_method = {r[1]: np.array(r[2:], dtype=float) for r in head}
    assert by_method["ASCS"].mean() >= by_method["CS"].mean() - 0.02

    # Mean correlation decays as the fraction grows (harder, deeper sets).
    for method in ("CS", "ASCS"):
        series = [
            np.nanmean(np.array(r[2:], dtype=float))
            for r in table.rows
            if r[1] == method
        ]
        assert series[0] >= series[-1]
