"""Durability-tier benchmark suite: what does crash safety cost, and how
fast is coming back?

Writes ``BENCH_faults.json`` (``BENCH_faults.smoke.json`` in smoke
mode)::

    PYTHONPATH=src python benchmarks/bench_faults.py          # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke     # CI smoke

* **ingest overhead** — the same deterministic stream through a bare
  sketcher vs a :class:`~repro.durability.DurableSketcher` (WAL append +
  periodic checkpoints), so the write-ahead tax is a number, not a vibe.
* **recovery time** — kill ingestion mid-record at a seeded byte budget
  (:class:`~repro.durability.faults.FaultyFS`), then time the full
  reopen: checkpoint walk-back + load + WAL replay.  Reported alongside
  the replay debt (records past the checkpoint) it had to pay.
* **replay throughput** — recovery from a checkpoint-free journal, i.e.
  pure WAL replay, in records/s and samples/s.
* **checkpoint latency** — one full checkpoint write (state extraction +
  checksummed atomic ``.npz``), the pause a cadence tick inserts.

A deterministic gate always applies: the recovered estimator's table must
be bit-identical to the uninterrupted reference run (the crash-recovery
contract, re-proven on the benchmark workload).  Timing floors — recovery
wall-clock, replay throughput — are hardware-dependent and, like every
other suite, only enforced when the recording machine had
``meta.cpu_count >= 2``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from registry import BenchSuite, register
from repro.distributed import ShardSpec
from repro.durability import DurableSketcher
from repro.durability.faults import FaultyFS, SimulatedCrash

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 29
DIM = 256

#: CI floors (see _check), enforced only when meta.cpu_count >= 2.
RECOVERY_SECONDS_CEILING = 10.0
REPLAY_RECORDS_PER_S_FLOOR = 50.0
INGEST_OVERHEAD_CEILING = 5.0


def _spec(total_samples: int) -> ShardSpec:
    return ShardSpec(
        dim=DIM,
        total_samples=total_samples,
        num_tables=3,
        num_buckets=1024,
        seed=SEED,
    )


def _batches(num_batches: int, batch_samples: int):
    rng = np.random.default_rng(SEED)
    batches = []
    for _ in range(num_batches):
        batch = []
        for _ in range(batch_samples):
            k = int(rng.integers(3, 9))
            idx = rng.choice(DIM, size=k, replace=False).astype(np.int64)
            val = rng.standard_normal(k)
            batch.append((idx, val))
        batches.append(batch)
    return batches


def _bench_ingest_overhead(spec, batches) -> tuple[list[dict], dict]:
    """Bare sketcher vs durable wrapper over the identical stream."""
    bare = spec.build_sketcher()
    t0 = time.perf_counter()
    for batch in batches:
        bare.fit_sparse(iter(batch))
    bare_seconds = time.perf_counter() - t0

    with TemporaryDirectory(prefix="bench-faults-") as scratch:
        durable = DurableSketcher(
            Path(scratch) / "wal", spec, checkpoint_every=len(batches) // 4
        )
        t0 = time.perf_counter()
        for batch in batches:
            durable.fit_sparse(batch)
        durable_seconds = time.perf_counter() - t0
        journal_bytes = durable.journal.bytes_written
        durable.close()

    overhead = durable_seconds / bare_seconds if bare_seconds > 0 else 1.0
    records = [
        {
            "op": "ingest_bare",
            "batches": len(batches),
            "seconds": bare_seconds,
        },
        {
            "op": "ingest_durable",
            "batches": len(batches),
            "seconds": durable_seconds,
            "journal_bytes": journal_bytes,
            "checkpoints": 4,
        },
    ]
    headline = {
        "ingest_overhead": overhead,
        "journal_bytes_per_batch": journal_bytes / len(batches),
    }
    return records, headline


def _bench_recovery(spec, batches, *, checkpoint_every: int):
    """Crash at a seeded byte budget, then time the recovery reopen."""
    reference = spec.build_sketcher()
    for batch in batches:
        reference.fit_sparse(iter(batch))

    with TemporaryDirectory(prefix="bench-faults-") as scratch:
        directory = Path(scratch) / "wal"
        # Kill ~85% of the way through the journal: recovery pays a
        # checkpoint load plus a realistic replay debt.
        probe = DurableSketcher(
            Path(scratch) / "probe", spec, checkpoint_every=0
        )
        for batch in batches:
            probe.fit_sparse(batch)
        kill_at = int(probe.journal.bytes_written * 0.85)
        probe.close()

        fs = FaultyFS(kill_at_bytes=kill_at)
        durable = DurableSketcher(
            directory, spec, checkpoint_every=checkpoint_every, open_fn=fs
        )
        crashed_at = None
        for index, batch in enumerate(batches):
            try:
                durable.fit_sparse(batch)
            except SimulatedCrash:
                crashed_at = index
                break
        assert crashed_at is not None, "kill budget never fired"

        t0 = time.perf_counter()
        recovered = DurableSketcher(directory, checkpoint_every=checkpoint_every)
        recovery_seconds = time.perf_counter() - t0
        replayed = recovered.replayed_records

        for batch in batches[crashed_at:]:
            recovered.fit_sparse(batch)
        table_identical = bool(
            np.array_equal(
                recovered.estimator.sketch.table,
                reference.estimator.sketch.table,
            )
            and recovered.samples_seen == reference.samples_seen
        )
        recovered.close()

    record = {
        "op": f"recovery_ckpt{checkpoint_every}",
        "kill_at_bytes": kill_at,
        "crashed_at_batch": crashed_at,
        "checkpoint_every": checkpoint_every,
        "recovery_seconds": recovery_seconds,
        "replayed_records": replayed,
        "bit_identical": table_identical,
    }
    return record, recovery_seconds, replayed, table_identical


def _bench_replay_throughput(spec, batches):
    """Checkpoint-free journal: recovery time == pure WAL replay."""
    samples_per_batch = len(batches[0])
    with TemporaryDirectory(prefix="bench-faults-") as scratch:
        directory = Path(scratch) / "wal"
        durable = DurableSketcher(directory, spec, checkpoint_every=0)
        for batch in batches:
            durable.fit_sparse(batch)
        durable.close()

        t0 = time.perf_counter()
        recovered = DurableSketcher(directory, checkpoint_every=0)
        seconds = time.perf_counter() - t0
        replayed = recovered.replayed_records
        recovered.close()

    records_per_s = replayed / seconds if seconds > 0 else float("inf")
    record = {
        "op": "replay_throughput",
        "replayed_records": replayed,
        "seconds": seconds,
        "records_per_s": records_per_s,
        "samples_per_s": records_per_s * samples_per_batch,
    }
    return record, records_per_s


def _bench_checkpoint_latency(spec, batches):
    with TemporaryDirectory(prefix="bench-faults-") as scratch:
        durable = DurableSketcher(
            Path(scratch) / "wal", spec, checkpoint_every=0
        )
        for batch in batches:
            durable.fit_sparse(batch)
        t0 = time.perf_counter()
        path = durable.checkpoint()
        seconds = time.perf_counter() - t0
        size = path.stat().st_size
        durable.close()
    return {
        "op": "checkpoint_write",
        "seconds": seconds,
        "checkpoint_bytes": size,
    }


def run_benchmarks(smoke: bool = False) -> dict:
    num_batches = 64 if smoke else 512
    batch_samples = 8 if smoke else 16
    spec = _spec(total_samples=num_batches * batch_samples)
    batches = _batches(num_batches, batch_samples)

    overhead_records, overhead_headline = _bench_ingest_overhead(spec, batches)
    recovery_record, recovery_seconds, replay_debt, identical = _bench_recovery(
        spec, batches, checkpoint_every=max(1, num_batches // 8)
    )
    replay_record, records_per_s = _bench_replay_throughput(spec, batches)
    checkpoint_record = _bench_checkpoint_latency(spec, batches)

    cpu_count = os.cpu_count() or 1
    return {
        "meta": {
            "benchmark": "bench_faults",
            "smoke": smoke,
            "dim": DIM,
            "num_batches": num_batches,
            "batch_samples": batch_samples,
            "seed": SEED,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "bit-identity of the recovered state is deterministic and "
                "always enforced; recovery-time and replay-throughput "
                "floors apply only when meta.cpu_count >= 2"
            ),
        },
        "headline": {
            **overhead_headline,
            "recovery_seconds": recovery_seconds,
            "recovery_replay_debt": replay_debt,
            "recovered_bit_identical": identical,
            "replay_records_per_s": records_per_s,
            "checkpoint_seconds": checkpoint_record["seconds"],
            "cpu_count": cpu_count,
        },
        "results": (
            overhead_records
            + [recovery_record, replay_record, checkpoint_record]
        ),
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    for rec in report["results"]:
        detail = {k: v for k, v in rec.items() if k != "op"}
        print(f"{rec['op']:<22}{json.dumps(detail)}")
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_faults.json")
    return report


def _check(report: dict) -> list:
    """CI gate for the durability suite.

    The bit-identity of crash recovery is deterministic and always
    enforced — a report whose recovered state diverged is a correctness
    regression no hardware excuse covers.  The wall-clock floors
    (recovery time, replay throughput, WAL ingest overhead) gate on the
    recording machine's ``meta.cpu_count`` like every other suite.
    """
    failures = []
    headline = report["headline"]
    if not headline.get("recovered_bit_identical"):
        failures.append(
            "crash recovery diverged from the uninterrupted run — the "
            "checkpoint+replay contract is broken"
        )
    cpu_count = int(report["meta"].get("cpu_count") or 1)
    if cpu_count >= 2:
        if headline["recovery_seconds"] > RECOVERY_SECONDS_CEILING:
            failures.append(
                f"recovery took {headline['recovery_seconds']:.2f}s "
                f"(ceiling {RECOVERY_SECONDS_CEILING}s) for "
                f"{headline['recovery_replay_debt']} replayed record(s)"
            )
        if headline["replay_records_per_s"] < REPLAY_RECORDS_PER_S_FLOOR:
            failures.append(
                f"WAL replay throughput {headline['replay_records_per_s']:.0f} "
                f"records/s fell below the {REPLAY_RECORDS_PER_S_FLOOR:.0f} floor"
            )
        if headline["ingest_overhead"] > INGEST_OVERHEAD_CEILING:
            failures.append(
                f"durable ingest costs {headline['ingest_overhead']:.2f}x "
                f"bare ingest (ceiling {INGEST_OVERHEAD_CEILING}x) — the WAL "
                "append path regressed"
            )
    return failures


SUITE = register(BenchSuite(name="faults", run=main, check=_check))


if __name__ == "__main__":
    main()
