"""Regenerate Table 5 (sensitivity to the number of hash tables K)."""

import numpy as np

from conftest import run_once, show

from repro.experiments import table5_k_sensitivity as experiment


def bench_table5_k_sensitivity(benchmark):
    config = experiment.Config(
        dim=300,
        samples=3000,
        budget_fractions=(0.04, 0.2, 1.0),
        num_tables_sweep=(2, 4, 8),
    )
    table = run_once(benchmark, experiment.run, config)
    show(table)

    rows = [np.array(r[1:], dtype=float) for r in table.rows]
    # More budget helps at every K.
    assert (rows[-1] >= rows[0] - 0.05).all()
    # K in 4-10 is flat-ish: the paper's robustness claim.  At the largest
    # budget the K=4 and K=8 cells should be close.
    assert abs(rows[-1][1] - rows[-1][2]) < 0.1
