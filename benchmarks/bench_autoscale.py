"""Adaptive re-sketching benchmark suite.

Measures what closing the planner loop online actually buys, writing
``BENCH_autoscale.json`` (``BENCH_autoscale.smoke.json`` in smoke
mode)::

    PYTHONPATH=src python benchmarks/bench_autoscale.py       # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke     # CI smoke

The workload is the canonical mid-stream regime change
(:class:`AbruptShiftStream`, shift at 75% of the stream) scored against
the *end-of-stream* truth — the deployment question is "what is
correlated now", not "what was ever correlated".

* **adaptive** — a :meth:`ServingEstimator.autoscaled` stack that starts
  deliberately under-provisioned, grows ``R`` through history-preserving
  migrations while the probe's collision energy stays above its ceiling,
  and shrinks its pane window when post-shift top-K churn fires.  Peak
  memory is charged honestly: every migration holds the old *and* new
  ring simultaneously, and that double-buffer transient is the peak.
* **static family** — fixed non-windowed configurations fit over the
  whole stream, including one given the adaptive run's *entire peak*
  budget as a single sketch.  They blend pre- and post-shift mass, so
  the dead regime's 3x head start buries the live pairs regardless of
  resolution.

The CI check enforces the headline claim deterministically and
unconditionally: adaptive must strictly beat **every** static config at
equal (or larger-for-the-static) peak memory.  Migration latency
ceilings are timing measurements and, like every other suite's floors,
apply only when ``meta.cpu_count >= 2``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.core.api import build_estimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.drift import AbruptShiftStream
from repro.distributed.shard import ShardSpec
from repro.evaluation.metrics import max_f1_score
from repro.hashing.pairs import pair_to_index
from repro.serving import ServingEstimator

REPO_ROOT = Path(__file__).resolve().parent.parent

DIM = 120
NUM_TABLES = 3
START_BUCKETS = 256
NUM_PANES = 5
CHUNK = 64
SEED = 3
ITEMSIZE = 8  # float64 counters throughout — quantization is bench_memory's story

#: CI gates (see _check): adaptive must beat every static strictly, and a
#: single history-preserving migration must stay under this many seconds
#: on the full workload (timing-gated).
MIGRATION_SECONDS_CEILING = 2.0


def _ring_bytes(num_panes: int, num_buckets: int) -> int:
    """Steady-state counter bytes of a ring: one table set per pane."""
    return num_panes * NUM_TABLES * num_buckets * ITEMSIZE


def _sparse_rows(data: np.ndarray):
    idx = np.arange(data.shape[1], dtype=np.int64)
    return [(idx, data[t]) for t in range(data.shape[0])]


def _bench_adaptive(data, truth, n, *, pane_samples, check_every, max_buckets):
    est = ServingEstimator.autoscaled(
        ShardSpec(
            dim=DIM,
            total_samples=n,
            batch_size=32,
            num_tables=NUM_TABLES,
            num_buckets=START_BUCKETS,
            seed=SEED,
            mode="correlation",
            track_top=256,
        ),
        num_panes=NUM_PANES,
        pane_samples=pane_samples,
        refresh_every=check_every,
        autoscale_options=dict(
            check_every=check_every,
            cooldown=1,
            collision_ceiling=1e-3,
            churn_ceiling=0.35,
            max_budget_bytes=NUM_TABLES * max_buckets * ITEMSIZE,
            topk=truth.size,
        ),
    )
    rows = _sparse_rows(data)
    config = (NUM_PANES, START_BUCKETS)
    peak_bytes = _ring_bytes(*config)
    transitions = []
    max_migration_seconds = 0.0
    version = est.config_version
    t0 = time.perf_counter()
    for s in range(0, n, CHUNK):
        est.ingest_sparse(rows[s : s + CHUNK])
        if est.config_version != version:
            version = est.config_version
            new = (est.sketcher.num_panes, est.sketcher.spec.num_buckets)
            # The double-buffered swap held both rings at once.
            transient = _ring_bytes(*config) + _ring_bytes(*new)
            peak_bytes = max(peak_bytes, transient)
            transitions.append(
                {
                    "at_samples": s + CHUNK,
                    "from": config,
                    "to": new,
                    "transient_bytes": transient,
                    "seconds": est.last_migration_seconds,
                    "trigger": est.last_migration_trigger,
                }
            )
            max_migration_seconds = max(
                max_migration_seconds, est.last_migration_seconds
            )
            config = new
    ingest_seconds = time.perf_counter() - t0
    est.refresh()
    i, j, _ = est.top_pairs(truth.size)
    keys = pair_to_index(np.asarray(i), np.asarray(j), DIM)
    return {
        "op": "adaptive",
        "f1": float(max_f1_score(keys, truth)),
        "peak_bytes": int(peak_bytes),
        "final_num_buckets": int(est.sketcher.spec.num_buckets),
        "final_num_panes": int(est.sketcher.num_panes),
        "migrations": int(est.migration_count),
        "max_migration_seconds": max_migration_seconds,
        "ingest_seconds": ingest_seconds,
        "transitions": transitions,
    }


def _bench_static(data, truth, n, num_buckets: int) -> dict:
    est = build_estimator(
        "cs", n, NUM_TABLES, num_buckets, seed=SEED, track_top=256
    )
    sketcher = CovarianceSketcher(
        DIM, est, mode="correlation", centering="none", batch_size=32
    )
    t0 = time.perf_counter()
    sketcher.fit_dense(data)
    seconds = time.perf_counter() - t0
    i, j, _ = sketcher.top_pairs(truth.size)
    keys = pair_to_index(np.asarray(i), np.asarray(j), DIM)
    return {
        "op": f"static_r{num_buckets}",
        "num_buckets": int(num_buckets),
        "peak_bytes": int(NUM_TABLES * num_buckets * ITEMSIZE),
        "f1": float(max_f1_score(keys, truth)),
        "fit_seconds": seconds,
    }


def run_benchmarks(smoke: bool = False) -> dict:
    n = 2048 if smoke else 4096
    pane_samples = 128 if smoke else 256
    check_every = 128 if smoke else 256
    max_buckets = 1024 if smoke else 2048
    stream = AbruptShiftStream(
        DIM, n, switch_at=(3 * n) // 4, alpha=0.02, seed=11
    )
    data = stream.generate()
    truth = stream.signal_pairs_at(n - 1)

    adaptive = _bench_adaptive(
        data,
        truth,
        n,
        pane_samples=pane_samples,
        check_every=check_every,
        max_buckets=max_buckets,
    )
    # The static family: the starting shape, the adaptive final shape, and
    # one config handed the adaptive run's whole peak budget outright.
    equal_peak_buckets = adaptive["peak_bytes"] // (NUM_TABLES * ITEMSIZE)
    statics = [
        _bench_static(data, truth, n, r)
        for r in sorted(
            {
                START_BUCKETS,
                adaptive["final_num_buckets"],
                equal_peak_buckets,
            }
        )
    ]

    cpu_count = os.cpu_count() or 1
    best_static = max(s["f1"] for s in statics)
    return {
        "meta": {
            "benchmark": "bench_autoscale",
            "smoke": smoke,
            "dim": DIM,
            "samples": n,
            "num_tables": NUM_TABLES,
            "switch_at": (3 * n) // 4,
            "truth_pairs": int(truth.size),
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "adaptive-beats-static F1 is deterministic and always "
                "enforced; migration latency ceilings apply only when "
                "meta.cpu_count >= 2"
            ),
        },
        "headline": {
            "f1_adaptive": adaptive["f1"],
            "f1_best_static": best_static,
            "f1_margin": adaptive["f1"] - best_static,
            "adaptive_peak_bytes": adaptive["peak_bytes"],
            "largest_static_bytes": max(s["peak_bytes"] for s in statics),
            "migrations": adaptive["migrations"],
            "max_migration_seconds": adaptive["max_migration_seconds"],
            "cpu_count": cpu_count,
        },
        "results": [adaptive, *statics],
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    for rec in report["results"]:
        detail = {k: v for k, v in rec.items() if k not in ("op", "transitions")}
        print(f"{rec['op']:<22}{json.dumps(detail)}")
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_autoscale.json")
    return report


def _check(report: dict) -> list:
    """CI gate for the adaptive re-sketching suite.

    Deterministic gates (always enforced): the adaptive run must migrate
    at least once, its charged peak must cover the largest static's
    budget (otherwise the comparison is rigged), and its end-of-stream F1
    must strictly beat **every** static configuration.  The migration
    latency ceiling is a timing measurement, so it applies only when the
    measuring machine had >= 2 cores (``meta.cpu_count``).
    """
    failures = []
    results = {rec["op"]: rec for rec in report["results"]}
    adaptive = results["adaptive"]
    statics = [rec for op, rec in results.items() if op.startswith("static_")]
    if adaptive["migrations"] < 1:
        failures.append(
            "the adaptive run never migrated — no trigger fired, so the "
            "suite measured a static config twice"
        )
    for rec in statics:
        if rec["peak_bytes"] > adaptive["peak_bytes"]:
            failures.append(
                f"{rec['op']} was given {rec['peak_bytes']} bytes, more "
                f"than the adaptive peak {adaptive['peak_bytes']} — the "
                "equal-memory comparison is broken"
            )
        if adaptive["f1"] <= rec["f1"]:
            failures.append(
                f"adaptive F1 {adaptive['f1']:.3f} does not beat "
                f"{rec['op']} ({rec['f1']:.3f}) at equal peak memory — "
                "re-sketching stopped paying for itself"
            )
    cpu_count = int(report["meta"].get("cpu_count") or 1)
    if cpu_count >= 2:
        worst = adaptive["max_migration_seconds"]
        if worst > MIGRATION_SECONDS_CEILING:
            failures.append(
                f"slowest migration took {worst:.2f}s "
                f"(ceiling {MIGRATION_SECONDS_CEILING}s) — the window "
                "replay is no longer a sub-second pause"
            )
    return failures


SUITE = register(BenchSuite(name="autoscale", run=main, check=_check))


if __name__ == "__main__":
    main()
