"""Regenerate Figure 5 (ROSNR: theory vs measured) and time it."""

import numpy as np

from conftest import run_once, show

from repro.experiments import fig5_rosnr as experiment


def bench_fig5_rosnr(benchmark):
    config = experiment.Config(dim=120, samples=3000, window=200)
    table = run_once(benchmark, experiment.run, config)
    show(table)

    for source in ("simulation", "gisette"):
        rows = [r for r in table.rows if r[0] == source]
        theory = np.array([r[2] for r in rows])
        measured = np.array([r[3] for r in rows])
        # Theory ramps to a plateau...
        assert all(a <= b + 1e-9 for a, b in zip(theory, theory[1:]))
        # ...and by the late stream the measured ROSNR exceeds the bound
        # (the paper's figure: realised curve above the theoretical one).
        late = slice(len(rows) // 2, None)
        assert (measured[late] >= theory[late] * 0.9).all()
