"""Regenerate Figure 4 (normality of covariance entries) and time it."""

from conftest import run_once, show

from repro.experiments import fig4_normality as experiment


def bench_fig4_normality(benchmark):
    config = experiment.Config(dim=60, num_replicates=600, t=150)
    table = run_once(benchmark, experiment.run, config)
    show(table)
    # Every inspected entry's QQ plot must hug the diagonal.
    for qq in table.column("qq_corr"):
        assert qq > 0.98
