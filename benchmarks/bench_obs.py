"""Observability-tier benchmark suite: what does telemetry cost?

Writes ``BENCH_obs.json`` (``BENCH_obs.smoke.json`` in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_obs.py             # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke     # CI smoke

The tier's design rule is that hot paths only ever touch pre-created
instruments (a locked integer add, a bisect into fixed buckets) and that
every derived value is computed at scrape time.  This suite prices that
rule through **identical code paths** — the same
:class:`~repro.serving.ServingEstimator` ingest loop and the same
:class:`~repro.serving.QueryEngine` batched reads, run once against a
live :class:`~repro.obs.MetricsRegistry` and once against the no-op
:class:`~repro.obs.NullRegistry` — so the reported ratio is the cost of
the instruments alone, not of a different implementation:

* **ingest overhead** — fused-kernel sparse ingest through the serving
  write path, instrumented vs bare (arms interleaved per repetition and
  min-of-reps on each, so scheduler drift cancels instead of reading as
  overhead);
* **query overhead** — batched ``query_keys`` through the engine's
  cache/gather planner, instrumented vs bare;
* **instrument micro-costs** — ns per ``Counter.inc`` and per
  ``Histogram.observe``, the primitives every layer leans on;
* **exposition latency** — rendering the populated stack's Prometheus
  text (what one ``GET /metrics`` scrape pays, network aside).

The <3% overhead ceilings are the PR's acceptance gate; like every other
suite the wall-clock checks only apply when the recording machine had
``meta.cpu_count >= 2``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.distributed import ShardSpec
from repro.obs.metrics import MetricsRegistry, NullRegistry, render_exposition
from repro.serving import QueryEngine, ServingEstimator

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 31
DIM = 256

#: CI ceilings (see _check), enforced only when meta.cpu_count >= 2.
#: Smoke runs use the looser ceiling: 3 reps over a 64-batch stream is a
#: sanity probe, and holding it to the same 3% bar as the committed
#: 8-rep full-workload report would flake on scheduler noise alone.
INGEST_OVERHEAD_CEILING = 1.03
QUERY_OVERHEAD_CEILING = 1.03
SMOKE_OVERHEAD_CEILING = 1.25
EXPOSITION_SECONDS_CEILING = 0.050


def _spec(total_samples: int) -> ShardSpec:
    return ShardSpec(
        dim=DIM,
        total_samples=total_samples,
        num_tables=3,
        num_buckets=1024,
        seed=SEED,
        track_top=64,
    )


def _batches(num_batches: int, batch_samples: int):
    rng = np.random.default_rng(SEED)
    batches = []
    for _ in range(num_batches):
        batch = []
        for _ in range(batch_samples):
            k = int(rng.integers(3, 9))
            idx = rng.choice(DIM, size=k, replace=False).astype(np.int64)
            val = rng.standard_normal(k)
            batch.append((idx, val))
        batches.append(batch)
    return batches


def _one_ingest_run(spec, batches, registry) -> float:
    """Wall time for the full stream through a fresh serving estimator
    bound to ``registry`` (fresh state per run, same stream)."""
    serving = ServingEstimator.from_spec(
        spec, top_index=64, cache_size=1024, registry=registry
    )
    t0 = time.perf_counter()
    for batch in batches:
        serving.ingest_sparse(batch)
    return time.perf_counter() - t0


def _bench_ingest(spec, batches, reps: int) -> tuple[list[dict], float]:
    # One discarded warmup plus bare/instrumented runs *interleaved* per
    # rep, min-of-reps on each arm: back-to-back block timing reads
    # scheduler drift as overhead and swamps the sub-1% instrument cost.
    _one_ingest_run(spec, batches, NullRegistry())
    bare_runs, inst_runs = [], []
    for _ in range(reps):
        bare_runs.append(_one_ingest_run(spec, batches, NullRegistry()))
        inst_runs.append(_one_ingest_run(spec, batches, MetricsRegistry()))
    bare = min(bare_runs)
    instrumented = min(inst_runs)
    overhead = instrumented / bare if bare > 0 else 1.0
    samples = sum(len(batch) for batch in batches)
    records = [
        {
            "op": "ingest_bare",
            "samples": samples,
            "seconds": bare,
            "samples_per_s": samples / bare if bare > 0 else float("inf"),
        },
        {
            "op": "ingest_instrumented",
            "samples": samples,
            "seconds": instrumented,
            "samples_per_s": (
                samples / instrumented if instrumented > 0 else float("inf")
            ),
        },
    ]
    return records, overhead


def _one_query_run(engine, keys, calls: int) -> float:
    t0 = time.perf_counter()
    for _ in range(calls):
        engine.query_keys(keys)
    return time.perf_counter() - t0


def _bench_query(spec, batches, calls: int, reps: int) -> tuple[list[dict], float]:
    serving = ServingEstimator.from_spec(spec, top_index=64, cache_size=0)
    for batch in batches:
        serving.ingest_sparse(batch)
    serving.refresh()
    snapshot = serving.snapshot
    keys = np.arange(512, dtype=np.int64)
    # cache_size=0 keeps both arms on the gather path every call (a warm
    # cache would collapse the work and flatter the instrumented arm).
    bare_engine = QueryEngine(snapshot, cache_size=0, registry=NullRegistry())
    inst_engine = QueryEngine(snapshot, cache_size=0, registry=MetricsRegistry())
    _one_query_run(bare_engine, keys, calls)  # warmup
    bare_runs, inst_runs = [], []
    for _ in range(reps):
        bare_runs.append(_one_query_run(bare_engine, keys, calls))
        inst_runs.append(_one_query_run(inst_engine, keys, calls))
    bare = min(bare_runs)
    instrumented = min(inst_runs)
    overhead = instrumented / bare if bare > 0 else 1.0
    records = [
        {
            "op": "query_bare",
            "calls": calls,
            "keys_per_call": int(keys.size),
            "seconds": bare,
            "us_per_call": bare / calls * 1e6,
        },
        {
            "op": "query_instrumented",
            "calls": calls,
            "keys_per_call": int(keys.size),
            "seconds": instrumented,
            "us_per_call": instrumented / calls * 1e6,
        },
    ]
    return records, overhead


def _bench_primitives(iters: int) -> list[dict]:
    reg = MetricsRegistry()
    counter = reg.counter("bench_total")
    hist = reg.histogram("bench_seconds")
    t0 = time.perf_counter()
    for _ in range(iters):
        counter.inc()
    inc_ns = (time.perf_counter() - t0) / iters * 1e9
    t0 = time.perf_counter()
    for _ in range(iters):
        hist.observe(0.001)
    observe_ns = (time.perf_counter() - t0) / iters * 1e9
    return [
        {"op": "counter_inc", "iters": iters, "ns_per_op": inc_ns},
        {"op": "histogram_observe", "iters": iters, "ns_per_op": observe_ns},
    ]


def _bench_exposition(spec, batches, reps: int) -> tuple[dict, float, int]:
    """Scrape cost of a realistically populated serving-stack registry."""
    serving = ServingEstimator.from_spec(spec, top_index=64, cache_size=1024)
    for batch in batches:
        serving.ingest_sparse(batch)
    serving.refresh()
    serving.query_keys(np.arange(256, dtype=np.int64))
    http_registry = MetricsRegistry()
    http_registry.counter(
        "repro_http_requests_total",
        "requests answered by route and status code",
        labels={"route": "GET /pair", "code": "200"},
    ).inc(100)
    registries = [http_registry, serving.registry]
    text = render_exposition(registries)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        render_exposition(registries)
        best = min(best, time.perf_counter() - t0)
    lines = text.count("\n")
    record = {
        "op": "exposition_render",
        "seconds": best,
        "lines": lines,
        "instruments": sum(len(r.instruments()) for r in registries),
    }
    return record, best, lines


def run_benchmarks(smoke: bool = False) -> dict:
    num_batches = 64 if smoke else 512
    batch_samples = 8 if smoke else 16
    reps = 3 if smoke else 8
    query_calls = 50 if smoke else 400
    prim_iters = 20_000 if smoke else 200_000
    spec = _spec(total_samples=num_batches * batch_samples)
    batches = _batches(num_batches, batch_samples)

    ingest_records, ingest_overhead = _bench_ingest(spec, batches, reps)
    query_records, query_overhead = _bench_query(
        spec, batches, query_calls, reps
    )
    primitive_records = _bench_primitives(prim_iters)
    exposition_record, exposition_seconds, lines = _bench_exposition(
        spec, batches, reps
    )

    cpu_count = os.cpu_count() or 1
    return {
        "meta": {
            "benchmark": "bench_obs",
            "smoke": smoke,
            "dim": DIM,
            "num_batches": num_batches,
            "batch_samples": batch_samples,
            "seed": SEED,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "both arms of every overhead ratio run the identical code "
                "path (registry swapped for NullRegistry); the <3% ceilings "
                "apply only when meta.cpu_count >= 2"
            ),
        },
        "headline": {
            "ingest_overhead": ingest_overhead,
            "query_overhead": query_overhead,
            "exposition_seconds": exposition_seconds,
            "exposition_lines": lines,
            "counter_inc_ns": primitive_records[0]["ns_per_op"],
            "histogram_observe_ns": primitive_records[1]["ns_per_op"],
            "cpu_count": cpu_count,
        },
        "results": (
            ingest_records
            + query_records
            + primitive_records
            + [exposition_record]
        ),
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    for rec in report["results"]:
        detail = {k: v for k, v in rec.items() if k != "op"}
        print(f"{rec['op']:<22}{json.dumps(detail)}")
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_obs.json")
    return report


def _check(report: dict) -> list:
    """CI gate: telemetry must stay within the 3% overhead budget.

    The ingest/query overhead ratios compare identical code paths, so a
    breach means an instrument got onto a hot path (or grew a lock) — a
    design-rule regression, not a hardware artifact.  Still, sub-3%
    ratios are noise on starved single-core runners, so the gate keeps
    the suite-wide ``meta.cpu_count >= 2`` discipline.
    """
    failures = []
    headline = report["headline"]
    meta = report["meta"]
    cpu_count = int(meta.get("cpu_count") or 1)
    smoke = bool(meta.get("smoke"))
    ingest_ceiling = SMOKE_OVERHEAD_CEILING if smoke else INGEST_OVERHEAD_CEILING
    query_ceiling = SMOKE_OVERHEAD_CEILING if smoke else QUERY_OVERHEAD_CEILING
    if cpu_count >= 2:
        if headline["ingest_overhead"] > ingest_ceiling:
            failures.append(
                f"instrumented ingest costs {headline['ingest_overhead']:.3f}x "
                f"bare ingest (ceiling {ingest_ceiling}x) — an "
                "instrument crept onto the write hot path"
            )
        if headline["query_overhead"] > query_ceiling:
            failures.append(
                f"instrumented query costs {headline['query_overhead']:.3f}x "
                f"bare query (ceiling {query_ceiling}x) — an "
                "instrument crept onto the read hot path"
            )
        if headline["exposition_seconds"] > EXPOSITION_SECONDS_CEILING:
            failures.append(
                f"/metrics render took {headline['exposition_seconds'] * 1e3:.1f}ms "
                f"(ceiling {EXPOSITION_SECONDS_CEILING * 1e3:.0f}ms) for "
                f"{headline['exposition_lines']} lines"
            )
    return failures


SUITE = register(BenchSuite(name="obs", run=main, check=_check))


if __name__ == "__main__":
    main()
