"""Regenerate Table 1 (theorem validation) at the full default scale."""

from conftest import run_once, show

from repro.experiments import table1_theorem_validation as experiment


def bench_table1_theorem_validation(benchmark):
    config = experiment.Config(num_replicates=8)
    table = run_once(benchmark, experiment.run, config)
    show(table)
    # The paper's claim: realised probabilities stay below their targets.
    rows = [r for r in table.rows if r[3] == r[3]]  # drop nan rows
    bounded = [r[4] for r in rows]
    assert bounded and sum(bounded) >= 0.9 * len(bounded)
