"""Streaming (decay + sliding-window) benchmark suite.

Measures the three costs the ``repro.streaming`` subsystem introduces and
the accuracy win it buys, writing ``BENCH_streaming.json``
(``BENCH_streaming.smoke.json`` in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_streaming.py           # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke         # CI smoke

* **pane rotation** — closing the open pane into an immutable
  :class:`ShardResult` (a counter copy + tracker snapshot).  This is the
  only extra write-side cost of windowing; ingestion itself runs the
  ordinary fused hot path.
* **window materialisation + windowed queries** — one merge pass over the
  retained panes (the PR-2 merge laws), then batched query throughput
  against the materialised window estimator (keys/s).
* **decayed F1 under drift** — top-pair F1 against the *current* signal
  set after an abrupt drift, decayed estimator vs the no-decay baseline at
  the same memory budget.  Seeded and deterministic, so the CI check can
  require the decayed win unconditionally — it is an accuracy property,
  not a throughput number.

Throughput floors are gated on ``meta.cpu_count`` (see
``check_regressions.py``): a 1-CPU container records its numbers but is
never failed on them.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.core.api import build_estimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.drift import AbruptShiftStream
from repro.distributed.shard import ShardSpec
from repro.evaluation.metrics import max_f1_score
from repro.hashing.pairs import pair_to_index
from repro.streaming import PaneRing, decay_from_half_life, make_decaying_sketcher

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The paper's table shape (Table 2 regime), shrunk in smoke mode.
NUM_TABLES = 5
DIM = 10**6
NNZ = 64
BATCH_SIZE = 32
SEED = 17

#: Windowed-query floor (keys/s), enforced only on >= 4 core machines.
WINDOW_QPS_FLOOR = 100_000


def _sparse_stream(rng, n):
    return [
        (
            np.sort(rng.choice(DIM, size=NNZ, replace=False)).astype(np.int64),
            rng.standard_normal(NNZ),
        )
        for _ in range(n)
    ]


def _bench_panes(smoke: bool, rng) -> tuple[list[dict], dict]:
    num_buckets = 1 << (14 if smoke else 17)
    pane_samples = 4 * BATCH_SIZE
    num_panes = 4
    spec = ShardSpec(
        dim=DIM,
        total_samples=num_panes * pane_samples,
        num_tables=NUM_TABLES,
        num_buckets=num_buckets,
        seed=SEED,
        batch_size=BATCH_SIZE,
        track_top=1024,
        mode="covariance",
    )
    ring = PaneRing(spec, num_panes=num_panes, pane_samples=pane_samples)

    # Fill pane by pane, timing each explicit rotation; extra panes
    # exercise eviction.  The last pane stays open (full, unrotated) so
    # the materialisation below merges a true num_panes-pane window.
    rotate_seconds = []
    for _ in range(num_panes + 2):
        ring.ingest(_sparse_stream(rng, pane_samples))
        t0 = time.perf_counter()
        ring.rotate()
        rotate_seconds.append(time.perf_counter() - t0)
    ring.ingest(_sparse_stream(rng, pane_samples))
    assert ring.window_span == num_panes * pane_samples

    t0 = time.perf_counter()
    window = ring.window()
    window_build_s = time.perf_counter() - t0

    # Batched windowed-query throughput on the materialised estimator.
    keys = rng.integers(0, window.num_pairs, size=10_000).astype(np.int64)
    trials = 3 if smoke else 10
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        window.estimate_keys(keys)
        best = min(best, time.perf_counter() - t0)
    qps = keys.size / best

    records = [
        {
            "op": "pane_rotate",
            "num_buckets": num_buckets,
            "pane_samples": pane_samples,
            "seconds_mean": float(np.mean(rotate_seconds)),
            "seconds_best": float(np.min(rotate_seconds)),
        },
        {
            "op": "window_materialize",
            "num_panes": num_panes,
            "window_span": int(ring.window_span),
            "seconds": window_build_s,
        },
        {
            "op": "windowed_query",
            "batch_keys": int(keys.size),
            "seconds_best": best,
            "keys_per_sec": qps,
        },
    ]
    headline = {
        "pane_rotate_ms": float(np.mean(rotate_seconds)) * 1e3,
        "window_build_ms": window_build_s * 1e3,
        "windowed_query_keys_per_sec": qps,
    }
    return records, headline


def _bench_drift_f1(smoke: bool) -> tuple[list[dict], dict]:
    dim = 120
    n = 2048 if smoke else 8192
    memory = NUM_TABLES * 2048
    stream = AbruptShiftStream(dim, n, alpha=0.02, seed=11)
    data = stream.generate()
    truth_now = stream.signal_pairs_at(n - 1)
    half_life = n / 16

    def top_f1(sketcher, seconds):
        i, j, _ = sketcher.top_pairs(truth_now.size)
        keys = pair_to_index(i, j, dim)
        return {
            "f1": float(max_f1_score(keys, truth_now)),
            "fit_seconds": seconds,
        }

    baseline = CovarianceSketcher(
        dim,
        build_estimator("cs", n, NUM_TABLES, memory // NUM_TABLES, seed=3, track_top=256),
        mode="correlation",
        centering="none",
        batch_size=BATCH_SIZE,
    )
    t0 = time.perf_counter()
    baseline.fit_dense(data)
    base = top_f1(baseline, time.perf_counter() - t0)

    decayed = make_decaying_sketcher(
        dim,
        n,
        gamma=decay_from_half_life(half_life),
        num_tables=NUM_TABLES,
        num_buckets=memory // NUM_TABLES,
        seed=3,
        mode="correlation",
        batch_size=BATCH_SIZE,
        track_top=256,
    )
    t0 = time.perf_counter()
    decayed.fit_dense(data)
    dec = top_f1(decayed, time.perf_counter() - t0)

    records = [
        {"op": "drift_f1_baseline", "dim": dim, "samples": n, **base},
        {
            "op": "drift_f1_decayed",
            "dim": dim,
            "samples": n,
            "half_life": half_life,
            **dec,
        },
    ]
    headline = {
        "drift_f1_baseline": base["f1"],
        "drift_f1_decayed": dec["f1"],
        "decay_fit_overhead": dec["fit_seconds"] / base["fit_seconds"],
    }
    return records, headline


def run_benchmarks(smoke: bool = False) -> dict:
    rng = np.random.default_rng(0)
    pane_records, pane_headline = _bench_panes(smoke, rng)
    drift_records, drift_headline = _bench_drift_f1(smoke)
    cpu_count = os.cpu_count() or 1
    return {
        "meta": {
            "benchmark": "bench_streaming",
            "smoke": smoke,
            "num_tables": NUM_TABLES,
            "dim": DIM,
            "nnz": NNZ,
            "batch_size": BATCH_SIZE,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "drift F1 numbers are seeded and deterministic; throughput "
                "floors apply only when meta.cpu_count >= 4"
            ),
        },
        "headline": {**pane_headline, **drift_headline, "cpu_count": cpu_count},
        "results": pane_records + drift_records,
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    for rec in report["results"]:
        detail = {k: v for k, v in rec.items() if k != "op"}
        print(f"{rec['op']:<22}{json.dumps(detail)}")
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_streaming.json")
    return report


def _check(report: dict) -> list:
    """CI gate for the streaming suite.

    The decayed-beats-baseline F1 margin is deterministic (seeded stream,
    seeded hashes) and is enforced on every machine.  The windowed-query
    floor is enforced only when the *measuring* machine had >= 4 cores
    (``meta.cpu_count``), so 1-CPU containers record numbers without
    failing throughput floors.
    """
    failures = []
    headline = report["headline"]
    if headline["drift_f1_decayed"] < headline["drift_f1_baseline"] + 0.1:
        failures.append(
            "decay stopped beating the no-decay baseline after drift: "
            f"decayed F1 {headline['drift_f1_decayed']:.3f} vs baseline "
            f"{headline['drift_f1_baseline']:.3f}"
        )
    cpu_count = int(report["meta"].get("cpu_count") or 1)
    if (
        cpu_count >= 4
        and headline["windowed_query_keys_per_sec"] < WINDOW_QPS_FLOOR
    ):
        failures.append(
            f"windowed query throughput "
            f"{headline['windowed_query_keys_per_sec']:,.0f} keys/s below "
            f"the {WINDOW_QPS_FLOOR:,} floor"
        )
    return failures


SUITE = register(BenchSuite(name="streaming", run=main, check=_check))


if __name__ == "__main__":
    main()
