"""Fused-kernel microbenchmarks: fused vs. legacy (pre-fusion) hot paths.

Measures the kernels that PR 1 fused — multi-table hashing, count-sketch
insert/query, top-k tracking, and sparse pair expansion — against the
per-table / per-sample reference implementations preserved in
:mod:`repro.reference`, plus the end-to-end sparse covariance pipeline.

Run directly (full workloads, writes ``BENCH_kernels.json`` at the repo
root)::

    PYTHONPATH=src python benchmarks/bench_kernels.py

or through the smoke-mode entry point used by CI::

    PYTHONPATH=src python benchmarks/run_bench.py --smoke

Every record in the JSON carries ``op``, ``batch``, per-implementation
seconds, ``speedup`` (legacy/fused) and fused ``updates_per_sec`` so future
PRs can diff the perf trajectory machine-readably.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.covariance.updates import sparse_batch_pairs
from repro.hashing.families import MultiTableHasher, make_family
from repro.reference import (
    LegacyCountMinSketch,
    LegacyCountSketch,
    LegacySparseMoments,
    LegacyTopKTracker,
    legacy_aggregate_sparse_batch,
    legacy_sparse_batch_pairs,
)
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.kernels import available_backends, numba_version
from repro.sketch.topk import TopKTracker

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The paper's table shape: K=5 tables, R=2^17 buckets (Table 2 regime).
NUM_TABLES = 5
NUM_BUCKETS = 1 << 17


def _best_seconds(make_state, op, *, trials: int, inner: int) -> float:
    """Best-of-``trials`` mean seconds per ``op`` call.

    ``make_state`` builds fresh state per trial so stateful ops (inserts,
    tracker offers) do not drift across repetitions; ``inner`` amortises
    the clock resolution for microsecond-scale ops.
    """
    # Auto-calibrate the inner loop so each timed window spans >= ~2 ms —
    # microsecond-scale kernels are otherwise dominated by timer jitter.
    probe_state = make_state()
    op(probe_state)
    t0 = time.perf_counter()
    op(probe_state)
    probe = time.perf_counter() - t0
    inner = max(inner, min(400, int(0.002 / max(probe, 1e-9)) + 1))

    best = float("inf")
    for _ in range(trials):
        state = make_state()
        op(state)  # warm the caches / lazy allocations
        t0 = time.perf_counter()
        for _ in range(inner):
            op(state)
        elapsed = (time.perf_counter() - t0) / inner
        best = min(best, elapsed)
    return best


def _record(op, batch, legacy_s, fused_s, updates, **extra):
    rec = {
        "op": op,
        "batch": int(batch),
        "legacy_seconds": legacy_s,
        "fused_seconds": fused_s,
        "speedup": legacy_s / fused_s,
        "updates_per_sec": updates / fused_s,
        "legacy_updates_per_sec": updates / legacy_s,
    }
    rec.update(extra)
    return rec


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def bench_count_sketch(results, *, batches, trials, inner, rng):
    for n in batches:
        keys = rng.integers(0, 10**12, size=n).astype(np.int64)
        values = rng.standard_normal(n)

        legacy_s = _best_seconds(
            lambda: LegacyCountSketch(NUM_TABLES, NUM_BUCKETS, seed=1),
            lambda sk: sk.insert(keys, values),
            trials=trials,
            inner=inner,
        )
        fused_s = _best_seconds(
            lambda: CountSketch(NUM_TABLES, NUM_BUCKETS, seed=1),
            lambda sk: sk.insert(keys, values),
            trials=trials,
            inner=inner,
        )
        results.append(_record("countsketch_insert", n, legacy_s, fused_s, n))

        legacy = LegacyCountSketch(NUM_TABLES, NUM_BUCKETS, seed=1)
        fused = CountSketch(NUM_TABLES, NUM_BUCKETS, seed=1)
        legacy.insert(keys, values)
        fused.insert(keys, values)
        legacy_s = _best_seconds(
            lambda: legacy, lambda sk: sk.query(keys), trials=trials, inner=inner
        )
        fused_s = _best_seconds(
            lambda: fused, lambda sk: sk.query(keys), trials=trials, inner=inner
        )
        results.append(_record("countsketch_query", n, legacy_s, fused_s, n))


def bench_count_min(results, *, trials, inner, rng):
    n = 16384
    keys = rng.integers(0, 10**12, size=n).astype(np.int64)
    values = np.abs(rng.standard_normal(n))
    for conservative in (False, True):
        legacy_s = _best_seconds(
            lambda: LegacyCountMinSketch(
                3, NUM_BUCKETS, seed=1, conservative=conservative
            ),
            lambda sk: sk.insert(keys, values),
            trials=trials,
            inner=inner,
        )
        fused_s = _best_seconds(
            lambda: CountMinSketch(3, NUM_BUCKETS, seed=1, conservative=conservative),
            lambda sk: sk.insert(keys, values),
            trials=trials,
            inner=inner,
        )
        results.append(
            _record(
                "countmin_insert_conservative"
                if conservative
                else "countmin_insert",
                n,
                legacy_s,
                fused_s,
                n,
            )
        )


def bench_hash_families(results, *, trials, inner, rng):
    n = 65536
    keys = rng.integers(0, 10**12, size=n).astype(np.int64)
    seeds = list(range(NUM_TABLES))
    for family in ("multiply-shift", "polynomial", "tabulation"):
        per_table = [make_family(family, NUM_BUCKETS, s) for s in seeds]
        hasher = MultiTableHasher(family, NUM_BUCKETS, seeds)

        def legacy_hash(_):
            for h in per_table:
                h(keys)

        legacy_s = _best_seconds(
            lambda: None, legacy_hash, trials=trials, inner=inner
        )
        fused_s = _best_seconds(
            lambda: None, lambda _: hasher.buckets(keys), trials=trials, inner=inner
        )
        results.append(
            _record(
                f"hash_{family}", n, legacy_s, fused_s, n * NUM_TABLES
            )
        )


def bench_tracker(results, *, trials, inner, rng):
    # Trillion-scale streaming: mostly-fresh keys per batch, capacity far
    # above the batch size — the regime table2-style retrieval runs in.
    n = 8192
    num_batches = 16
    stream = [
        (
            rng.integers(0, 10**12, size=n).astype(np.int64),
            rng.standard_normal(n),
        )
        for _ in range(num_batches)
    ]

    def offer_stream(make_tracker):
        tr = make_tracker()
        for keys, ests in stream:
            tr.offer(keys, ests)

    legacy_s = _best_seconds(
        lambda: None,
        lambda _: offer_stream(lambda: LegacyTopKTracker(50_000)),
        trials=trials,
        inner=1,
    )
    fused_s = _best_seconds(
        lambda: None,
        lambda _: offer_stream(lambda: TopKTracker(50_000)),
        trials=trials,
        inner=1,
    )
    results.append(
        _record("topk_offer_stream", n * num_batches, legacy_s, fused_s, n * num_batches)
    )

    # Refresh-heavy: repeated offers of overlapping keys into a small pool,
    # forcing a dedup/prune on nearly every call (worst case for the
    # array-backed pool, best case for the dict).
    keys = rng.integers(0, 10**4, size=n).astype(np.int64)
    ests = rng.standard_normal(n)
    legacy_s = _best_seconds(
        lambda: LegacyTopKTracker(2048),
        lambda tr: tr.offer(keys, ests),
        trials=trials,
        inner=inner,
    )
    fused_s = _best_seconds(
        lambda: TopKTracker(2048),
        lambda tr: tr.offer(keys, ests),
        trials=trials,
        inner=inner,
    )
    results.append(_record("topk_offer_hot", n, legacy_s, fused_s, n))


def bench_sparse_expansion(results, *, trials, inner, rng, num_samples):
    dim = 10**7
    # Real URL/DNA streams have per-sample nnz variation, which also defeats
    # the per-m lru cache inside the legacy per-sample triu expansion.
    lengths = rng.integers(32, 97, size=num_samples).astype(np.int64)
    idx = np.concatenate(
        [np.sort(rng.choice(dim, size=int(m), replace=False)) for m in lengths]
    ).astype(np.int64)
    val = rng.standard_normal(idx.size)
    pairs = int((lengths * (lengths - 1) // 2).sum())

    legacy_s = _best_seconds(
        lambda: None,
        lambda _: legacy_sparse_batch_pairs(idx, val, lengths, dim),
        trials=trials,
        inner=inner,
    )
    fused_s = _best_seconds(
        lambda: None,
        lambda _: sparse_batch_pairs(idx, val, lengths, dim),
        trials=trials,
        inner=inner,
    )
    results.append(
        _record("sparse_pair_expansion", num_samples, legacy_s, fused_s, pairs)
    )


def bench_sparse_pipeline(results, *, trials, rng, num_samples):
    """End-to-end ``fit_sparse``: expansion + aggregation + sketch ingest +
    candidate tracking, fused stack vs. the full legacy stack."""
    dim = 10**6
    nnz = 64
    batch_size = 32
    samples = [
        (
            np.sort(rng.choice(dim, size=nnz, replace=False)).astype(np.int64),
            rng.standard_normal(nnz),
        )
        for _ in range(num_samples)
    ]
    pairs = num_samples * (nnz * (nnz - 1) // 2)

    def run_fused():
        est = SketchEstimator(
            CountSketch(NUM_TABLES, NUM_BUCKETS, seed=3),
            num_samples,
            track_top=1024,
        )
        pipe = CovarianceSketcher(
            dim, est, mode="covariance", batch_size=batch_size
        )
        pipe.fit_sparse(iter(samples))
        return est

    def run_legacy():
        est = SketchEstimator(
            LegacyCountSketch(NUM_TABLES, NUM_BUCKETS, seed=3),
            num_samples,
            track_top=1024,
        )
        est.tracker = LegacyTopKTracker(1024)
        moments = LegacySparseMoments(dim)
        for start in range(0, num_samples, batch_size):
            chunk = samples[start : start + batch_size]
            lengths = np.asarray([s[0].size for s in chunk], dtype=np.int64)
            idx = np.concatenate([s[0] for s in chunk])
            val = np.concatenate([s[1] for s in chunk])
            moments.update_batch(idx, val, num_samples=len(chunk))
            keys, sums = legacy_aggregate_sparse_batch(idx, val, lengths, dim)
            est.ingest(keys, sums, num_samples=len(chunk))
        return est

    # Sanity: both stacks must leave the same counters behind.
    np.testing.assert_array_equal(run_fused().sketch.table, run_legacy().sketch.table)

    legacy_s = _best_seconds(
        lambda: None, lambda _: run_legacy(), trials=trials, inner=1
    )
    fused_s = _best_seconds(lambda: None, lambda _: run_fused(), trials=trials, inner=1)
    results.append(
        _record(
            "sparse_pipeline_fit",
            num_samples,
            legacy_s,
            fused_s,
            pairs,
            pairs_per_sample=nnz * (nnz - 1) // 2,
            batch_size=batch_size,
        )
    )


def bench_backends(results, *, batches, trials, inner, rng):
    """Kernel-backend axis: numpy vs numba on the same sketch hot paths.

    Sketches are constructed with an *explicit* ``backend=`` (explicit
    beats the env override), so a CI run forced onto one backend through
    ``REPRO_KERNEL_BACKEND`` still measures both sides of the axis.
    Records carry ``backend`` + absolute ``seconds``/``updates_per_sec``;
    ``check_regressions`` derives the numba-vs-numpy speedup from pairs of
    records and requires >= 5x on insert when numba is importable.
    """
    for n in batches:
        keys = rng.integers(0, 10**12, size=n).astype(np.int64)
        values = rng.standard_normal(n)
        for backend in available_backends():

            def make():
                return CountSketch(
                    NUM_TABLES, NUM_BUCKETS, seed=1, backend=backend
                )

            seconds = _best_seconds(
                make, lambda sk: sk.insert(keys, values), trials=trials, inner=inner
            )
            results.append(
                {
                    "op": "backend_insert",
                    "backend": backend,
                    "batch": int(n),
                    "seconds": seconds,
                    "updates_per_sec": n / seconds,
                }
            )

            warm = make()
            warm.insert(keys, values)
            seconds = _best_seconds(
                lambda: warm, lambda sk: sk.query(keys), trials=trials, inner=inner
            )
            results.append(
                {
                    "op": "backend_query",
                    "backend": backend,
                    "batch": int(n),
                    "seconds": seconds,
                    "updates_per_sec": n / seconds,
                }
            )

            seconds = _best_seconds(
                make,
                lambda sk: sk.insert_and_query(keys, values),
                trials=trials,
                inner=inner,
            )
            results.append(
                {
                    "op": "backend_insert_and_query",
                    "backend": backend,
                    "batch": int(n),
                    "seconds": seconds,
                    "updates_per_sec": n / seconds,
                }
            )


def backend_speedup(report: dict, op: str = "backend_insert") -> float | None:
    """Best numba-over-numpy throughput ratio for ``op`` across batches.

    ``None`` when the report has no numba leg (numba not importable where
    it ran) — callers skip their threshold checks in that case.
    """
    by_batch: dict[int, dict[str, float]] = {}
    for rec in report.get("results", []):
        if rec.get("op") == op and "backend" in rec:
            by_batch.setdefault(rec["batch"], {})[rec["backend"]] = rec[
                "updates_per_sec"
            ]
    ratios = [
        rates["numba"] / rates["numpy"]
        for rates in by_batch.values()
        if "numba" in rates and "numpy" in rates
    ]
    return max(ratios) if ratios else None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_benchmarks(smoke: bool = False) -> dict:
    rng = np.random.default_rng(0)
    results: list[dict] = []
    if smoke:
        trials, inner = 3, 2
        batches = (256, 4096)
        expansion_samples = 8
        pipeline_samples = 64
    else:
        trials, inner = 7, 5
        batches = (256, 1024, 4096, 16384, 100_000)
        expansion_samples = 32
        pipeline_samples = 512

    bench_count_sketch(results, batches=batches, trials=trials, inner=inner, rng=rng)
    bench_count_min(results, trials=trials, inner=inner, rng=rng)
    bench_hash_families(results, trials=trials, inner=inner, rng=rng)
    bench_tracker(results, trials=trials, inner=inner, rng=rng)
    bench_sparse_expansion(
        results, trials=trials, inner=inner, rng=rng, num_samples=expansion_samples
    )
    bench_sparse_pipeline(
        results, trials=max(2, trials // 2), rng=rng, num_samples=pipeline_samples
    )
    bench_backends(results, batches=batches, trials=trials, inner=inner, rng=rng)

    def _speedup(op, batch=None):
        for rec in results:
            if rec["op"] == op and (batch is None or rec["batch"] == batch):
                return rec["speedup"]
        return None

    headline = {
        # The bench_sketch_ops.py small-batch insert workload (batch=256):
        # the regime the ASCS sampling gate produces once filtering is on.
        "countsketch_insert_speedup": _speedup("countsketch_insert", batches[0]),
        "countsketch_query_speedup": _speedup("countsketch_query", batches[-1]),
        "sparse_pipeline_speedup": _speedup("sparse_pipeline_fit"),
        "topk_offer_speedup": _speedup("topk_offer_stream"),
    }
    report = {
        "meta": {
            "benchmark": "bench_kernels",
            "smoke": smoke,
            "num_tables": NUM_TABLES,
            "num_buckets": NUM_BUCKETS,
            "cpu_count": os.cpu_count() or 1,
            "numpy": np.__version__,
            "numba": numba_version(),
            "kernel_backends": list(available_backends()),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "headline": headline,
        "results": results,
    }
    headline["numba_insert_speedup"] = backend_speedup(report)
    return report


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    print(f"{'op':<32}{'batch':>8}{'legacy':>12}{'fused':>12}{'speedup':>9}")
    for rec in report["results"]:
        if "speedup" in rec:
            print(
                f"{rec['op']:<32}{rec['batch']:>8}"
                f"{rec['legacy_seconds'] * 1e6:>10.1f}us"
                f"{rec['fused_seconds'] * 1e6:>10.1f}us"
                f"{rec['speedup']:>8.2f}x"
            )
        else:
            label = f"{rec['op']}[{rec['backend']}]"
            print(
                f"{label:<32}{rec['batch']:>8}"
                f"{'':>12}"
                f"{rec['seconds'] * 1e6:>10.1f}us"
                f"{rec['updates_per_sec'] / 1e6:>7.1f}M/s"
            )
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_kernels.json")
    return report


#: Minimum numba-over-numpy insert throughput ratio the gate demands.  The
#: compiled scatter loop removes the (K+1)-pass numpy overhead entirely, so
#: anything below this means the JIT path silently degraded.
NUMBA_MIN_INSERT_SPEEDUP = 5.0


def _check(report: dict) -> list:
    """CI gate: no fused kernel may regress below parity with the
    reference, and — when the report carries a numba leg — the compiled
    insert path must actually pay for itself."""
    problems = []
    regressions = [
        rec["op"]
        for rec in report["results"]
        if "speedup" in rec and rec["speedup"] < 0.5
    ]
    if regressions:
        problems.append("severe regressions: " + ", ".join(regressions))
    meta = report.get("meta", {})
    # Gate on the recorded host shape: the threshold is calibrated for a
    # real runner, not a starved single-vCPU container.
    if meta.get("numba") is not None and int(meta.get("cpu_count", 1)) >= 2:
        ratio = backend_speedup(report)
        if ratio is not None and ratio < NUMBA_MIN_INSERT_SPEEDUP:
            problems.append(
                f"numba insert speedup {ratio:.1f}x is below the "
                f"{NUMBA_MIN_INSERT_SPEEDUP:.0f}x floor over numpy"
            )
    return problems


SUITE = register(BenchSuite(name="kernels", run=main, check=_check))


if __name__ == "__main__":
    main()
