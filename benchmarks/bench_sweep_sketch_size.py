"""Regenerate the section-8.3 sketch-size sweep (the paper's cut figure)."""

from conftest import run_once, show

from repro.experiments import sweep_sketch_size as experiment


def bench_sweep_sketch_size(benchmark):
    config = experiment.Config(dim=300, samples=3000)
    table = run_once(benchmark, experiment.run, config)
    show(table)

    gains = table.column("ASCS-CS")
    cs = table.column("CS")
    # Paper's three claims: ASCS never clearly worse; both weak at the
    # smallest R; the gap closes at the largest R relative to mid sizes.
    assert all(g >= -0.05 for g in gains)
    assert cs[0] < cs[-1]
    assert gains[-1] <= max(gains) + 1e-9
