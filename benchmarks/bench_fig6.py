"""Regenerate Figure 6 (max-F1 curves, robustness to u and alpha)."""

import numpy as np

from conftest import run_once, show

from repro.experiments import fig6_f1_curves as experiment


def bench_fig6_f1_curves(benchmark):
    config = experiment.Config(
        datasets=("gisette", "epsilon", "cifar10"),
        dim=200,
        samples=2000,
        u_percentiles=(0.90, 0.99),
        top_sizes=(30, 100, 300),
    )
    main, panel_f = run_once(benchmark, experiment.run, config)
    show([main, panel_f])

    # The paper's claim: averaged over the curve, ASCS's F1 is at least
    # competitive with CS for every u choice (and typically better).
    for name in config.datasets:
        cs = np.mean(
            [r[4] for r in main.rows if r[0] == name and r[1] == "CS"]
        )
        for q in config.u_percentiles:
            label = f"ASCS u@{int(q * 100)}%"
            ascs = np.mean(
                [r[4] for r in main.rows if r[0] == name and r[1] == label]
            )
            assert ascs >= cs - 0.05, (name, label, ascs, cs)

    # Panel f: alpha robustness — the spread across alphas stays small.
    by_alpha = {}
    for row in panel_f.rows:
        by_alpha.setdefault(row[2], []).append(row[4])
    for s, f1s in by_alpha.items():
        assert max(f1s) - min(f1s) < 0.2
