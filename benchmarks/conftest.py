"""Shared helpers for the benchmark suite.

Every paper table/figure has a ``bench_*`` module here that (a) regenerates
the artifact at a scaled-down config and prints it, and (b) reports the
wall time through pytest-benchmark.  Experiment benchmarks run exactly once
(``pedantic(rounds=1)``): they are end-to-end reproductions, not micro
kernels — timing variance across repeats is irrelevant next to the cost.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated tables inline.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(results) -> None:
    """Print one or several TableResults (visible with ``pytest -s``)."""
    from repro.experiments.base import render_results

    print()
    print(render_results(results))
