"""Sharded-ingestion scaling benchmark: serial vs multiprocess backends.

Measures end-to-end ``fit_sparse_sharded`` wall time on the paper's table
shape (K=5, R=2^17) against the single-shard ``fit_sparse`` baseline, for
the serial backend (overhead check — also asserts bit-identity) and the
process backend at 1, 2 and 4 workers.  Results land in
``BENCH_sharded.json`` (``BENCH_sharded.smoke.json`` in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_sharded.py            # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke        # CI smoke

Every record carries the workload, backend, worker count, best-of-trials
seconds, pair-updates/sec and the speedup versus the single-shard
baseline.  ``meta.cpu_count`` records how many cores the measuring machine
actually had: process-backend speedup is bounded above by that number, so
a 1-core container measures ~1x regardless of how well the sharding
scales (the merge laws are exercised either way).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.distributed import fit_sparse_sharded
from repro.distributed.shard import ShardSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The paper's table shape: K=5 tables, R=2^17 buckets (Table 2 regime).
NUM_TABLES = 5
NUM_BUCKETS = 1 << 17

DIM = 10**6
NNZ = 64
BATCH_SIZE = 32
TRACK_TOP = 1024
SEED = 3

#: Worker counts for the process-backend scaling curve.
WORKER_COUNTS = (1, 2, 4)


def _make_stream(num_samples: int, rng) -> list:
    return [
        (
            np.sort(rng.choice(DIM, size=NNZ, replace=False)).astype(np.int64),
            rng.standard_normal(NNZ),
        )
        for _ in range(num_samples)
    ]


def _best_seconds(fn, *, trials: int) -> float:
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workload_records(
    workload: str, num_samples: int, *, trials: int, rng
) -> list[dict]:
    samples = _make_stream(num_samples, rng)
    pairs = num_samples * (NNZ * (NNZ - 1) // 2)
    common = dict(
        num_tables=NUM_TABLES,
        num_buckets=NUM_BUCKETS,
        seed=SEED,
        batch_size=BATCH_SIZE,
        track_top=TRACK_TOP,
        mode="covariance",
    )
    spec = ShardSpec(dim=DIM, total_samples=num_samples, **common)

    def fit_single():
        sketcher = spec.build_sketcher()
        sketcher.fit_sparse(iter(samples))
        return sketcher

    def fit_sharded(backend, workers):
        return fit_sparse_sharded(
            samples, DIM, backend=backend, n_workers=workers, **common
        )

    # Correctness gate before timing: serial sharding must be bit-identical
    # to the single-shard path on this exact workload.
    reference = fit_single()
    serial = fit_sharded("serial", 4)
    np.testing.assert_array_equal(
        serial.estimator.sketch.table, reference.estimator.sketch.table
    )

    records = []
    single_s = _best_seconds(fit_single, trials=trials)

    def record(label, backend, workers, seconds):
        records.append(
            {
                "op": label,
                "workload": workload,
                "num_samples": num_samples,
                "pair_updates": pairs,
                "backend": backend,
                "n_workers": workers,
                "seconds": seconds,
                "single_shard_seconds": single_s,
                "speedup_vs_single": single_s / seconds,
                "pairs_per_sec": pairs / seconds,
            }
        )

    record("fit_sparse_single", "none", 1, single_s)
    record(
        "fit_sharded_serial",
        "serial",
        4,
        _best_seconds(lambda: fit_sharded("serial", 4), trials=trials),
    )
    for workers in WORKER_COUNTS:
        record(
            f"fit_sharded_process_w{workers}",
            "process",
            workers,
            _best_seconds(lambda: fit_sharded("process", workers), trials=trials),
        )
    return records


def run_benchmarks(smoke: bool = False) -> dict:
    rng = np.random.default_rng(0)
    trials = 2 if smoke else 3
    # The smoke workload always runs (it is the acceptance workload); full
    # mode adds a larger stream for a less startup-dominated curve.
    results = _workload_records("smoke", 1536, trials=trials, rng=rng)
    if not smoke:
        results += _workload_records("full", 4096, trials=trials, rng=rng)

    def _speedup(workload, op):
        for rec in results:
            if rec["workload"] == workload and rec["op"] == op:
                return rec["speedup_vs_single"]
        return None

    cpu_count = os.cpu_count() or 1
    headline = {
        "smoke_process_speedup_w4": _speedup("smoke", "fit_sharded_process_w4"),
        "smoke_process_speedup_w2": _speedup("smoke", "fit_sharded_process_w2"),
        "smoke_serial_overhead": _speedup("smoke", "fit_sharded_serial"),
        "cpu_count": cpu_count,
    }
    return {
        "meta": {
            "benchmark": "bench_sharded",
            "smoke": smoke,
            "num_tables": NUM_TABLES,
            "num_buckets": NUM_BUCKETS,
            "dim": DIM,
            "nnz": NNZ,
            "batch_size": BATCH_SIZE,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "process-backend speedup is bounded by cpu_count; on a "
                "1-core machine expect ~1x regardless of sharding quality"
            ),
        },
        "headline": headline,
        "results": results,
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    print(f"{'op':<28}{'workload':>9}{'workers':>8}{'seconds':>10}{'speedup':>9}")
    for rec in report["results"]:
        print(
            f"{rec['op']:<28}{rec['workload']:>9}{rec['n_workers']:>8}"
            f"{rec['seconds']:>10.3f}{rec['speedup_vs_single']:>8.2f}x"
        )
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_sharded.json")
    return report


def _check(report: dict) -> list:
    """CI gate: only flag when the *measuring* machine had the cores to
    scale and the process backend still failed to.

    Gating on ``meta.cpu_count`` (not the checking machine's ``os.cpu_count``)
    keeps the check meaningful for committed reports measured elsewhere: a
    1-CPU container can re-validate a report recorded on a big box, and its
    own fresh 1-CPU numbers are never failed on scaling floors.
    """
    speedup = report["headline"]["smoke_process_speedup_w4"]
    cpu_count = int(report["meta"].get("cpu_count") or 1)
    if cpu_count >= 4 and speedup is not None and speedup < 1.5:
        return [f"sharded scaling regression: {speedup:.2f}x at 4 workers"]
    return []


SUITE = register(BenchSuite(name="sharded", run=main, check=_check))


if __name__ == "__main__":
    main()
