"""Serving-layer load generator: query throughput, cache, swap latency.

Fits a sparse stream at the paper's table shape, freezes a
:class:`repro.serving.SketchSnapshot`, and drives the
:class:`repro.serving.QueryEngine` through the workloads a read-heavy
deployment sees::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/run_bench.py --bench serving --smoke

Measured (all recorded in ``BENCH_serving.json``):

* **single-pair cold** — distinct pairs through the scalar fast path with
  an empty cache (every query is one fused gather); the acceptance floor
  is 10k queries/sec on a 1-CPU container;
* **single-pair hot** — the same pairs again (pure LRU hits);
* **zipf mixed** — a skewed workload over a larger key universe, reporting
  throughput *and* the measured cache hit rate;
* **batched** — vectorized ``query_keys`` in 1024-key batches (keys/sec);
* **index-backed** — ``top_neighbors`` calls (pure binary-search reads);
* **snapshot swap** — ``ServingEstimator.refresh`` end-to-end latency
  (clone + index build + atomic swap).

``meta.cpu_count`` is recorded.  The cold-query floor is CI-enforced on
any machine (the loop is single-threaded, so core count does not excuse
it); relative cold-vs-hot comparisons are only enforced when the machine
has >= 4 cores (this container has 1, where time-slicing noise can invert
them).  Correctness is asserted by the test suite regardless.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from registry import BenchSuite, register
from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.hashing.pairs import index_to_pair, num_pairs
from repro.serving import QueryEngine, ServingEstimator, SketchSnapshot
from repro.sketch.count_sketch import CountSketch

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The paper's table shape (Table 2 regime).
NUM_TABLES = 5
NUM_BUCKETS = 1 << 17

DIM = 10**6
NNZ = 32
BATCH_SIZE = 32
TRACK_TOP = 4096
TOP_INDEX = 2048
CACHE_SIZE = 1 << 16
SEED = 11

#: Throughput floor for cache-cold single-pair queries (acceptance bar).
COLD_QPS_FLOOR = 10_000


def _make_stream(num_samples: int, rng) -> list:
    return [
        (
            np.sort(rng.choice(DIM, size=NNZ, replace=False)).astype(np.int64),
            rng.standard_normal(NNZ),
        )
        for _ in range(num_samples)
    ]


def _fit_sketcher(num_samples: int, rng) -> CovarianceSketcher:
    estimator = SketchEstimator(
        CountSketch(NUM_TABLES, NUM_BUCKETS, seed=SEED),
        total_samples=num_samples,
        track_top=TRACK_TOP,
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=BATCH_SIZE
    )
    sketcher.fit_sparse(iter(_make_stream(num_samples, rng)))
    return sketcher


def _probe_pairs(snapshot: SketchSnapshot, count: int, rng) -> tuple:
    """``count`` distinct probe pairs: indexed pairs first, then random."""
    i = snapshot.index_i.tolist()
    j = snapshot.index_j.tolist()
    need = count - len(i)
    if need > 0:
        keys = np.unique(rng.integers(0, num_pairs(DIM), size=2 * need))[:need]
        ri, rj = index_to_pair(keys, DIM)
        i += ri.tolist()
        j += rj.tolist()
    return i[:count], j[:count]


def run_benchmarks(smoke: bool = False) -> dict:
    rng = np.random.default_rng(SEED)
    num_samples = 256 if smoke else 1024
    num_queries = 5_000 if smoke else 20_000
    num_batches = 20 if smoke else 100
    swap_trials = 2 if smoke else 5

    t0 = time.perf_counter()
    sketcher = _fit_sketcher(num_samples, rng)
    fit_seconds = time.perf_counter() - t0

    snapshot = SketchSnapshot.from_sketcher(
        sketcher, top_index=TOP_INDEX, scan=False
    )
    probe_i, probe_j = _probe_pairs(snapshot, num_queries, rng)
    results = []

    # -- single-pair, cache cold: every query misses and gathers once.
    engine = QueryEngine(snapshot, cache_size=CACHE_SIZE)
    start = time.perf_counter()
    for i, j in zip(probe_i, probe_j):
        engine.query_pair(i, j)
    cold_seconds = time.perf_counter() - start
    cold_qps = num_queries / cold_seconds
    results.append(
        {
            "op": "single_pair_cold",
            "queries": num_queries,
            "seconds": cold_seconds,
            "queries_per_sec": cold_qps,
            "cache_hit_rate": engine.cache.stats().hit_rate,
        }
    )

    # -- single-pair, cache hot: identical queries, all LRU hits.
    start = time.perf_counter()
    for i, j in zip(probe_i, probe_j):
        engine.query_pair(i, j)
    hot_seconds = time.perf_counter() - start
    hot_qps = num_queries / hot_seconds
    results.append(
        {
            "op": "single_pair_hot",
            "queries": num_queries,
            "seconds": hot_seconds,
            "queries_per_sec": hot_qps,
            "cache_hit_rate": engine.cache.stats().hit_rate,
        }
    )

    # -- zipf-skewed mixed workload over 4x the cache capacity.
    universe = min(4 * CACHE_SIZE, num_pairs(DIM))
    zipf_keys = np.unique(rng.integers(0, num_pairs(DIM), size=2 * universe))
    draws = rng.zipf(1.2, size=num_queries)
    zipf_stream = zipf_keys[np.minimum(draws - 1, zipf_keys.size - 1)]
    zi, zj = index_to_pair(zipf_stream, DIM)
    zi, zj = zi.tolist(), zj.tolist()
    engine_zipf = QueryEngine(snapshot, cache_size=CACHE_SIZE)
    start = time.perf_counter()
    for i, j in zip(zi, zj):
        engine_zipf.query_pair(i, j)
    zipf_seconds = time.perf_counter() - start
    zipf_stats = engine_zipf.cache.stats()
    results.append(
        {
            "op": "single_pair_zipf",
            "queries": num_queries,
            "seconds": zipf_seconds,
            "queries_per_sec": num_queries / zipf_seconds,
            "cache_hit_rate": zipf_stats.hit_rate,
        }
    )

    # -- batched vectorized path (cache off: pure fused-gather throughput).
    engine_batch = QueryEngine(snapshot, cache_size=0)
    batch_keys = rng.integers(0, num_pairs(DIM), size=(num_batches, 1024))
    start = time.perf_counter()
    for row in batch_keys:
        engine_batch.query_keys(row)
    batch_seconds = time.perf_counter() - start
    results.append(
        {
            "op": "batched_keys",
            "queries": num_batches,
            "keys": int(num_batches * 1024),
            "seconds": batch_seconds,
            "keys_per_sec": num_batches * 1024 / batch_seconds,
        }
    )

    # -- index-backed reads (no sketch gather at all).
    features = np.unique(snapshot.nbr_feature)
    reads = min(num_queries, 10_000)
    pick = features[rng.integers(0, features.size, size=reads)].tolist()
    start = time.perf_counter()
    for f in pick:
        engine.top_neighbors(f, 10)
    nbr_seconds = time.perf_counter() - start
    results.append(
        {
            "op": "top_neighbors",
            "queries": reads,
            "seconds": nbr_seconds,
            "queries_per_sec": reads / nbr_seconds,
        }
    )

    # -- snapshot swap latency through the double-buffered estimator.
    serving = ServingEstimator(
        sketcher, top_index=TOP_INDEX, scan=False, cache_size=CACHE_SIZE
    )
    swap_seconds = []
    extra = _make_stream(BATCH_SIZE, rng)
    for _ in range(swap_trials):
        serving.ingest_sparse(extra)
        serving.refresh()
        swap_seconds.append(serving.last_swap_seconds)
    results.append(
        {
            "op": "snapshot_swap",
            "trials": swap_trials,
            "seconds_best": min(swap_seconds),
            "seconds_mean": float(np.mean(swap_seconds)),
        }
    )

    cpu_count = os.cpu_count() or 1
    headline = {
        "cold_pair_qps": cold_qps,
        "hot_pair_qps": hot_qps,
        "zipf_cache_hit_rate": zipf_stats.hit_rate,
        "batched_keys_per_sec": num_batches * 1024 / batch_seconds,
        "swap_latency_seconds": min(swap_seconds),
        "cpu_count": cpu_count,
    }
    return {
        "meta": {
            "benchmark": "bench_serving",
            "smoke": smoke,
            "num_tables": NUM_TABLES,
            "num_buckets": NUM_BUCKETS,
            "dim": DIM,
            "nnz": NNZ,
            "num_samples": num_samples,
            "top_index": TOP_INDEX,
            "cache_size": CACHE_SIZE,
            "fit_seconds": fit_seconds,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "single-threaded query loop; the cold-qps floor is "
                "CI-enforced on any core count, relative cold-vs-hot "
                "comparisons only on machines with >= 4 cores"
            ),
        },
        "headline": headline,
        "results": results,
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    print(f"{'op':<20}{'queries':>9}{'seconds':>10}{'rate':>16}")
    for rec in report["results"]:
        rate = rec.get("queries_per_sec") or rec.get("keys_per_sec")
        rate_s = f"{rate:,.0f}/s" if rate else "-"
        seconds = rec.get("seconds", rec.get("seconds_best"))
        print(
            f"{rec['op']:<20}{rec.get('queries', rec.get('trials', 0)):>9}"
            f"{seconds:>10.3f}{rate_s:>16}"
        )
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_serving.json")
    return report


def _check(report: dict) -> list:
    """CI gate for the serving suite.

    The cold-query floor is enforced unconditionally: the query loop is
    single-threaded, so unlike the sharded scaling check it does not
    depend on core count — the acceptance bar is 10k q/s *on the 1-CPU
    container* (measured ~5x above it).  Only the relative cold-vs-hot
    comparison stays hardware-gated (on ``meta.cpu_count``, the machine
    that *measured* the report), since contention noise on a time-sliced
    single core can invert it spuriously.
    """
    failures = []
    headline = report["headline"]
    if headline["cold_pair_qps"] < COLD_QPS_FLOOR:
        failures.append(
            f"cold single-pair qps {headline['cold_pair_qps']:,.0f} "
            f"below the {COLD_QPS_FLOOR:,} floor"
        )
    if (
        int(report["meta"].get("cpu_count") or 1) >= 4
        and headline["hot_pair_qps"] < headline["cold_pair_qps"]
    ):
        failures.append("cache-hot qps slower than cache-cold qps")
    return failures


SUITE = register(BenchSuite(name="serving", run=main, check=_check))


if __name__ == "__main__":
    main()
