"""Benchmark suite registry.

Every benchmark module that wants to be runnable through
``benchmarks/run_bench.py`` registers itself here at import time::

    from registry import BenchSuite, register

    def _check(report: dict) -> list[str]:
        ...  # return regression descriptions (empty = pass)

    SUITE = register(BenchSuite(name="kernels", run=main, check=_check))

``run_bench`` builds its ``--bench`` choice set from :data:`REGISTRY`
instead of hand-enumerated branches, so adding a suite is: write the bench
module, register it, add its module name to ``run_bench._SUITE_MODULES``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = ["BenchSuite", "REGISTRY", "register"]


@dataclass(frozen=True)
class BenchSuite:
    """One registrable benchmark suite.

    Attributes
    ----------
    name:
        The ``--bench`` choice and the ``BENCH_<name>.json`` stem.
    run:
        ``run(smoke: bool, out: Path) -> dict`` — execute and write the
        JSON report, returning it.
    check:
        ``check(report) -> list[str]`` — regression descriptions for CI
        (empty list = pass).  Hardware-gated checks (e.g. scaling needs
        >= 4 cores) belong here, next to the numbers they judge.
    """

    name: str
    run: Callable[..., dict]
    check: Callable[[dict], list]

    def default_out(self, repo_root: Path, *, smoke: bool) -> Path:
        suffix = ".smoke.json" if smoke else ".json"
        return repo_root / f"BENCH_{self.name}{suffix}"


#: name -> suite, in registration order (run_bench executes in this order).
REGISTRY: dict[str, BenchSuite] = {}


def register(suite: BenchSuite) -> BenchSuite:
    """Add a suite to :data:`REGISTRY` (idempotent on re-import)."""
    REGISTRY[suite.name] = suite
    return suite
