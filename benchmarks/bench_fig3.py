"""Regenerate Figure 3 (independence of covariance entries) and time it."""

from conftest import run_once, show

from repro.experiments import fig3_independence as experiment


def bench_fig3_independence(benchmark):
    config = experiment.Config(dim=60, num_replicates=2000, t=150)
    table = run_once(benchmark, experiment.run, config)
    show(table)
    # The paper's claim: the overwhelming majority of entry pairs are
    # essentially uncorrelated (here: below 0.05 given the noise floor).
    for row in table.rows:
        fraction_below_005 = row[2]
        assert fraction_below_005 > 0.8
