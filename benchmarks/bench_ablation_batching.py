"""Ablation: sampling-decision granularity (the DESIGN.md batching claim).

The pipeline makes ASCS's accept/filter decision once per batch instead of
once per sample (pure-Python per-sample querying would be ~100x slower).
DESIGN.md argues this is faithful because the threshold moves by only
``theta * B / T`` across a batch.  This ablation verifies the claim: recovery
quality must be flat across two orders of magnitude of batch size.
"""

import numpy as np

from conftest import run_once, show

from repro.covariance.ground_truth import flat_true_correlations
from repro.data.synthetic import BlockCorrelationModel
from repro.evaluation.harness import run_method
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult

BATCH_SIZES = (8, 32, 128, 512)


def _run_sweep() -> TableResult:
    model = BlockCorrelationModel.from_alpha(
        200, alpha=0.005, rho_range=(0.6, 0.95), seed=23
    )
    data = model.sample(3000)
    truth = flat_true_correlations(data)
    memory = truth.size // 5

    table = TableResult(
        title="Ablation - ASCS sampling-decision granularity (batch size)",
        columns=("batch", "top-50 mean corr", "acceptance", "seconds"),
    )
    for batch in BATCH_SIZES:
        run = run_method(
            data, "ascs", memory, alpha=0.005, batch_size=batch, seed=3,
            u=model.signal_strength, sigma=1.0,
        )
        table.add_row(
            batch,
            mean_top_true_value(run.ranked_keys, truth, 50),
            run.acceptance_rate,
            run.fit_seconds,
        )
    return table


def bench_ablation_batching(benchmark):
    table = run_once(benchmark, _run_sweep)
    show(table)
    scores = np.array(table.column("top-50 mean corr"))
    # The faithfulness claim: quality is flat in the batch size.
    assert scores.max() - scores.min() < 0.1
