"""Memory-tier benchmark suite.

Measures what the compact storage tier actually buys and what it costs,
writing ``BENCH_memory.json`` (``BENCH_memory.smoke.json`` in smoke
mode)::

    PYTHONPATH=src python benchmarks/bench_memory.py          # full
    PYTHONPATH=src python benchmarks/run_bench.py --smoke     # CI smoke

* **bytes per counter** — measured residency of int16 fixed-point vs
  float64 tables at matched ``(K, R)`` after a real drift workload, plus
  the capacity planner's predicted figure so prediction drift is caught.
* **accuracy at matched shape** — top-pair F1 on the drift benchmark
  (the PR-4 stream), float64 vs int16 at the same ``(K, R)``.  Seeded and
  deterministic: the CI check enforces the <= 0.02 F1 delta
  unconditionally — quantization must stay invisible at retrieval level.
* **snapshot open latency** — eager ``SketchSnapshot.load`` vs zero-copy
  ``load(mmap=True)`` at two snapshot sizes >= 8x apart.  Mapping parses
  two headers regardless of size, so its latency must not scale with the
  snapshot; the eager load must (it reads every byte).

Timing floors are gated on ``meta.cpu_count`` like every other suite;
the bytes/counter ceiling and the F1-delta floor are deterministic and
always enforced.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from registry import BenchSuite, register
from repro.core.api import build_estimator
from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.drift import AbruptShiftStream
from repro.evaluation.metrics import max_f1_score
from repro.hashing.pairs import num_pairs, pair_to_index
from repro.serving.snapshot import SketchSnapshot
from repro.sketch.count_sketch import CountSketch
from repro.sketch.planner import plan

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_TABLES = 5
BATCH_SIZE = 32
SEED = 23

#: int16 fixed-point step for correlation-mode estimates (|value| <= 1
#: with 25% headroom) — what the planner recommends for value_range=1.
QUANTUM = 1.25 / np.iinfo(np.int16).max

#: CI gates (see _check): int16 must keep >= this residency advantage and
#: stay within this drift-F1 delta of float64 at matched (K, R).
BYTES_RATIO_FLOOR = 3.0
F1_DELTA_CEILING = 0.02


def _bench_quantized_f1(smoke: bool) -> tuple[list[dict], dict]:
    """Drift-benchmark F1 + measured bytes/counter, float64 vs int16."""
    dim = 120
    n = 2048 if smoke else 8192
    num_buckets = 2048
    stream = AbruptShiftStream(dim, n, alpha=0.02, seed=11)
    data = stream.generate()
    truth_now = stream.signal_pairs_at(n - 1)

    def fit(storage, quantum):
        est = build_estimator(
            "cs",
            n,
            NUM_TABLES,
            num_buckets,
            seed=3,
            track_top=256,
            storage=storage,
            quantum=quantum,
        )
        sketcher = CovarianceSketcher(
            dim, est, mode="correlation", centering="none", batch_size=BATCH_SIZE
        )
        t0 = time.perf_counter()
        sketcher.fit_dense(data)
        seconds = time.perf_counter() - t0
        i, j, _ = sketcher.top_pairs(truth_now.size)
        keys = pair_to_index(i, j, dim)
        return {
            "storage": storage,
            "f1": float(max_f1_score(keys, truth_now)),
            "fit_seconds": seconds,
            "bytes_per_counter": est.sketch.memory_bytes / est.sketch.memory_floats,
            "memory_bytes": int(est.sketch.memory_bytes),
            "final_dtype": str(est.sketch.storage_dtype),
        }

    wide = fit("float64", None)
    narrow = fit("int16", QUANTUM)
    capacity = plan(dim, narrow["memory_bytes"] / (1 << 20), num_tables=NUM_TABLES)

    records = [
        {"op": "drift_f1_float64", "dim": dim, "samples": n, **wide},
        {"op": "drift_f1_int16", "dim": dim, "samples": n, "quantum": QUANTUM, **narrow},
        {"op": "capacity_plan", **capacity.to_dict()},
    ]
    headline = {
        "f1_float64": wide["f1"],
        "f1_int16": narrow["f1"],
        "f1_delta": wide["f1"] - narrow["f1"],
        "bytes_per_counter_float64": wide["bytes_per_counter"],
        "bytes_per_counter_int16": narrow["bytes_per_counter"],
        "bytes_ratio": wide["bytes_per_counter"] / narrow["bytes_per_counter"],
        "planner_predicted_bytes_per_counter": capacity.predicted_bytes_per_counter,
        "quantized_fit_overhead": narrow["fit_seconds"] / wide["fit_seconds"],
    }
    return records, headline


def _snapshot_at(num_buckets: int, path: Path, rng) -> SketchSnapshot:
    """A tracker-indexed snapshot whose size is dominated by K*R counters."""
    dim = 2000
    sketch = CountSketch(NUM_TABLES, num_buckets, seed=SEED)
    est = SketchEstimator(sketch, 1024, track_top=256)
    p = num_pairs(dim)
    for _ in range(16):
        keys = rng.integers(0, p, size=4096)
        est.ingest(keys, rng.standard_normal(4096), num_samples=64)
    snapshot = SketchSnapshot.from_estimator(
        est, dim, top_index=256, scan=False
    )
    snapshot.save(path)
    return snapshot


def _bench_snapshot_mmap(smoke: bool, rng) -> tuple[list[dict], dict]:
    small_r = 1 << (11 if smoke else 14)
    # 16x the buckets => >= 8x the snapshot *bytes* even after the fixed
    # metadata overhead — the size spread the latency-independence claim
    # is verified across.
    large_r = small_r * 16
    trials = 5
    records = []
    latencies = {}
    with TemporaryDirectory(prefix="bench-memory-") as scratch:
        for label, num_buckets in (("small", small_r), ("large", large_r)):
            path = Path(scratch) / f"snap-{label}.npz"
            _snapshot_at(num_buckets, path, rng)
            size = path.stat().st_size

            def best_of(loader):
                best = float("inf")
                for _ in range(trials):
                    t0 = time.perf_counter()
                    snap = loader()
                    best = min(best, time.perf_counter() - t0)
                    del snap
                return best

            eager = best_of(lambda: SketchSnapshot.load(path))
            mapped = best_of(lambda: SketchSnapshot.load(path, mmap=True))
            latencies[label] = {"eager": eager, "mmap": mapped, "bytes": size}
            records.append(
                {
                    "op": f"snapshot_open_{label}",
                    "num_buckets": num_buckets,
                    "snapshot_bytes": size,
                    "eager_load_ms": eager * 1e3,
                    "mmap_open_ms": mapped * 1e3,
                }
            )
    headline = {
        "snapshot_bytes_small": latencies["small"]["bytes"],
        "snapshot_bytes_large": latencies["large"]["bytes"],
        "mmap_open_small_ms": latencies["small"]["mmap"] * 1e3,
        "mmap_open_large_ms": latencies["large"]["mmap"] * 1e3,
        "eager_load_large_ms": latencies["large"]["eager"] * 1e3,
        "mmap_open_size_ratio": (
            latencies["large"]["mmap"] / latencies["small"]["mmap"]
        ),
        "eager_load_size_ratio": (
            latencies["large"]["eager"] / latencies["small"]["eager"]
        ),
    }
    return records, headline


def run_benchmarks(smoke: bool = False) -> dict:
    rng = np.random.default_rng(0)
    f1_records, f1_headline = _bench_quantized_f1(smoke)
    mmap_records, mmap_headline = _bench_snapshot_mmap(smoke, rng)
    cpu_count = os.cpu_count() or 1
    return {
        "meta": {
            "benchmark": "bench_memory",
            "smoke": smoke,
            "num_tables": NUM_TABLES,
            "quantum": QUANTUM,
            "batch_size": BATCH_SIZE,
            "cpu_count": cpu_count,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "note": (
                "bytes/counter and drift-F1 checks are deterministic and "
                "always enforced; mmap latency floors apply only when "
                "meta.cpu_count >= 2"
            ),
        },
        "headline": {**f1_headline, **mmap_headline, "cpu_count": cpu_count},
        "results": f1_records + mmap_records,
    }


def write_report(report: dict, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")


def print_report(report: dict) -> None:
    for rec in report["results"]:
        detail = {k: v for k, v in rec.items() if k != "op"}
        print(f"{rec['op']:<22}{json.dumps(detail)}")
    print("headline:", json.dumps(report["headline"], indent=2))


def main(smoke: bool = False, out: Path | None = None) -> dict:
    report = run_benchmarks(smoke=smoke)
    print_report(report)
    write_report(report, out or REPO_ROOT / "BENCH_memory.json")
    return report


def _check(report: dict) -> list:
    """CI gate for the memory-tier suite.

    Deterministic gates (always enforced): int16 residency must stay
    >= 3x below float64 — i.e. the table finished un-promoted — and its
    drift F1 must sit within 0.02 of float64 at matched (K, R).  The
    mmap latency gates (open latency independent of snapshot size, and
    mapping beating the eager load on the large snapshot) are timing
    measurements, so like every other suite's floors they apply only when
    the measuring machine had >= 2 cores (``meta.cpu_count``).
    """
    failures = []
    headline = report["headline"]
    if headline["bytes_ratio"] < BYTES_RATIO_FLOOR:
        failures.append(
            f"int16 bytes/counter advantage {headline['bytes_ratio']:.2f}x "
            f"fell below the {BYTES_RATIO_FLOOR}x floor (did the drift "
            "workload saturate int16 and promote?)"
        )
    if headline["f1_delta"] > F1_DELTA_CEILING:
        failures.append(
            f"quantized drift F1 lost {headline['f1_delta']:.3f} vs float64 "
            f"(ceiling {F1_DELTA_CEILING}): int16 "
            f"{headline['f1_int16']:.3f} vs float64 {headline['f1_float64']:.3f}"
        )
    cpu_count = int(report["meta"].get("cpu_count") or 1)
    if cpu_count >= 2:
        ratio = headline["mmap_open_size_ratio"]
        if headline["mmap_open_large_ms"] > max(
            4.0 * headline["mmap_open_small_ms"], 50.0
        ):
            failures.append(
                "mmap snapshot open latency scales with snapshot size "
                f"({ratio:.1f}x across an 8x size spread) — zero-copy "
                "mapping regressed to an eager read"
            )
        if headline["mmap_open_large_ms"] >= headline["eager_load_large_ms"]:
            failures.append(
                "mapping the large snapshot is no faster than eagerly "
                f"loading it ({headline['mmap_open_large_ms']:.2f}ms vs "
                f"{headline['eager_load_large_ms']:.2f}ms)"
            )
    return failures


SUITE = register(BenchSuite(name="memory", run=main, check=_check))


if __name__ == "__main__":
    main()
