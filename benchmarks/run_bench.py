"""CI entry point for the kernel and sharded-ingestion benchmarks.

Runs :mod:`benchmarks.bench_kernels` and :mod:`benchmarks.bench_sharded`
and writes the machine-readable ``BENCH_kernels.json`` (op, batch size,
seconds, updates/sec, speedup) and ``BENCH_sharded.json`` (backend, worker
count, scaling curve) so future PRs can diff perf trajectories.  Smoke
mode shrinks workloads and repetitions to keep CI wall-clock small::

    PYTHONPATH=src python benchmarks/run_bench.py --smoke
    PYTHONPATH=src python benchmarks/run_bench.py                 # full
    PYTHONPATH=src python benchmarks/run_bench.py --bench sharded --smoke
    PYTHONPATH=src python benchmarks/run_bench.py --bench kernels --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_kernels import REPO_ROOT, main as run_kernels  # noqa: E402
from bench_sharded import main as run_sharded  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads / few repetitions (CI-friendly)",
    )
    parser.add_argument(
        "--bench",
        choices=("all", "kernels", "sharded"),
        default="all",
        help="which benchmark suite(s) to run",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "output JSON path (only valid with a single --bench suite; "
            "default: repo-root BENCH_<suite>.json, or "
            "BENCH_<suite>.smoke.json in smoke mode so quick runs never "
            "clobber the committed full-workload records)"
        ),
    )
    args = parser.parse_args(argv)
    if args.out is not None and args.bench == "all":
        parser.error("--out requires --bench kernels or --bench sharded")

    suffix = ".smoke.json" if args.smoke else ".json"
    failures = 0

    if args.bench in ("all", "kernels"):
        out = args.out or REPO_ROOT / f"BENCH_kernels{suffix}"
        report = run_kernels(smoke=args.smoke, out=out)
        print(f"wrote {out}")
        # Non-zero exit if any fused kernel regressed below parity, so CI
        # can flag perf regressions without parsing the JSON.
        regressions = [
            rec["op"] for rec in report["results"] if rec["speedup"] < 0.5
        ]
        if regressions:
            print("severe regressions:", ", ".join(regressions))
            failures += 1

    if args.bench in ("all", "sharded"):
        out = args.out or REPO_ROOT / f"BENCH_sharded{suffix}"
        report = run_sharded(smoke=args.smoke, out=out)
        print(f"wrote {out}")
        # Scaling is hardware-bounded: only flag when the machine has the
        # cores to scale and the process backend still fails to.
        speedup = report["headline"]["smoke_process_speedup_w4"]
        if (os.cpu_count() or 1) >= 4 and speedup is not None and speedup < 1.5:
            print(f"sharded scaling regression: {speedup:.2f}x at 4 workers")
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
