"""CI entry point for the kernel microbenchmarks.

Runs :mod:`benchmarks.bench_kernels` and writes the machine-readable
``BENCH_kernels.json`` (op, batch size, seconds, updates/sec, speedup) so
future PRs can diff perf trajectories.  Smoke mode shrinks workloads and
repetitions to keep CI wall-clock small::

    PYTHONPATH=src python benchmarks/run_bench.py --smoke
    PYTHONPATH=src python benchmarks/run_bench.py            # full workloads
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_kernels import REPO_ROOT, main as run_kernels  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads / few repetitions (CI-friendly)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "output JSON path (default: repo-root BENCH_kernels.json, or "
            "BENCH_kernels.smoke.json in smoke mode so quick runs never "
            "clobber the committed full-workload record)"
        ),
    )
    args = parser.parse_args(argv)
    out = args.out or REPO_ROOT / (
        "BENCH_kernels.smoke.json" if args.smoke else "BENCH_kernels.json"
    )
    report = run_kernels(smoke=args.smoke, out=out)
    print(f"wrote {out}")
    # Non-zero exit if any fused kernel regressed below parity, so CI can
    # flag perf regressions without parsing the JSON.
    regressions = [
        rec["op"]
        for rec in report["results"]
        if rec["speedup"] < 0.5
    ]
    if regressions:
        print("severe regressions:", ", ".join(regressions))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
