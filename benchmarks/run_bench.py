"""CI entry point for the benchmark suites.

Runs every registered suite (kernels, sharded, serving, ...) and writes
the machine-readable ``BENCH_<suite>.json`` files so future PRs can diff
perf trajectories.  Suites self-register via :mod:`registry`; the
``--bench`` choice set is derived from the registry, not hand-enumerated,
so adding a suite is just writing the module and listing it in
``_SUITE_MODULES``.  Smoke mode shrinks workloads and repetitions to keep
CI wall-clock small::

    PYTHONPATH=src python benchmarks/run_bench.py --smoke
    PYTHONPATH=src python benchmarks/run_bench.py                 # full
    PYTHONPATH=src python benchmarks/run_bench.py --bench serving --smoke
    PYTHONPATH=src python benchmarks/run_bench.py --bench kernels --out /tmp/b.json

Each suite ships its own CI regression check (``BenchSuite.check``) next
to the numbers it judges — hardware-gated where scaling is bounded by
``os.cpu_count()`` — and a failing check makes this entry point exit
non-zero without anyone parsing the JSON.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(Path(__file__).resolve().parent))

from registry import REGISTRY  # noqa: E402

#: Suite modules imported for their registration side effect, in run order.
_SUITE_MODULES = (
    "bench_kernels",
    "bench_sharded",
    "bench_serving",
    "bench_streaming",
    "bench_memory",
    "bench_faults",
    "bench_discovery",
    "bench_obs",
    "bench_autoscale",
)

for _module in _SUITE_MODULES:
    importlib.import_module(_module)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads / few repetitions (CI-friendly)",
    )
    parser.add_argument(
        "--bench",
        choices=("all", *REGISTRY),
        default="all",
        help="which benchmark suite(s) to run",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "output JSON path (only valid with a single --bench suite; "
            "default: repo-root BENCH_<suite>.json, or "
            "BENCH_<suite>.smoke.json in smoke mode so quick runs never "
            "clobber the committed full-workload records)"
        ),
    )
    args = parser.parse_args(argv)
    if args.out is not None and args.bench == "all":
        parser.error(
            "--out requires a single --bench suite: "
            + ", ".join(REGISTRY)
        )

    failures = 0
    for suite in REGISTRY.values():
        if args.bench not in ("all", suite.name):
            continue
        out = args.out or suite.default_out(REPO_ROOT, smoke=args.smoke)
        report = suite.run(smoke=args.smoke, out=out)
        print(f"wrote {out}")
        for problem in suite.check(report):
            print(f"[{suite.name}] {problem}")
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
