"""Tests for the replicate machinery (repro.experiments.replicates)."""

import numpy as np
import pytest

from repro.data.synthetic import BlockCorrelationModel
from repro.experiments.replicates import replicate_covariances, simulation_model


class TestSimulationModel:
    def test_matches_paper_recipe(self):
        model = simulation_model(dim=60, alpha=0.005, seed=0)
        assert isinstance(model, BlockCorrelationModel)
        # Strengths uniform in (0.5, 1) per section 6.2.
        assert (model.rhos >= 0.5).all() and (model.rhos < 1.0).all()
        assert model.alpha == pytest.approx(0.005, rel=1.0)


class TestReplicateCovariances:
    def test_shape_model_source(self):
        model = simulation_model(dim=20, seed=1)
        out = replicate_covariances(model, num_replicates=10, t=50, seed=2)
        assert out.shape == (10, 190)

    def test_shape_with_pair_keys(self):
        model = simulation_model(dim=20, seed=1)
        keys = np.array([0, 5, 100])
        out = replicate_covariances(model, 8, 50, seed=2, pair_keys=keys)
        assert out.shape == (8, 3)

    def test_bootstrap_source(self, rng):
        data = rng.standard_normal((200, 15))
        out = replicate_covariances(data, num_replicates=12, t=40, seed=3)
        assert out.shape == (12, 105)
        assert np.isfinite(out).all()

    def test_standardized_entries_bounded(self):
        model = simulation_model(dim=16, seed=4)
        out = replicate_covariances(model, 20, 100, seed=5, standardize=True)
        # correlation-scale entries live in [-1, 1]
        assert np.abs(out).max() <= 1.0 + 1e-9

    def test_unstandardized_differs(self):
        model = simulation_model(dim=16, seed=4)
        a = replicate_covariances(model, 5, 60, seed=6, standardize=True)
        b = replicate_covariances(model, 5, 60, seed=6, standardize=False)
        assert not np.allclose(a, b)

    def test_signal_entries_concentrate_near_rho(self):
        model = BlockCorrelationModel(20, 4, 1, np.array([0.8]), seed=7)
        keys = model.signal_pairs()
        out = replicate_covariances(model, 60, 200, seed=8, pair_keys=keys)
        assert out.mean() == pytest.approx(0.8, abs=0.08)

    def test_noise_entries_centered_at_zero(self):
        model = BlockCorrelationModel(20, 4, 1, np.array([0.8]), seed=9)
        noise_keys = np.array([150, 170, 188])  # outside the single block
        out = replicate_covariances(model, 80, 200, seed=10, pair_keys=noise_keys)
        assert abs(out.mean()) < 0.05

    def test_deterministic_given_seed(self):
        model = simulation_model(dim=12, seed=11)
        a = replicate_covariances(model, 4, 30, seed=12)
        b = replicate_covariances(model, 4, 30, seed=12)
        np.testing.assert_array_equal(a, b)
