"""PaneRing: rotation, retention, window merge law, persistence.

The central law — a window materialised from panes is **bit-identical** to
a one-shot ``fit_sparse`` over the same window's batches — is tested with
integer-valued streams and a power-of-two ``total_samples`` so every
counter and moment sum is exactly representable (the PR-2 technique that
turns "equal up to float regrouping" into exact equality).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import ThresholdSchedule
from repro.distributed.shard import ShardSpec
from repro.streaming import PaneRing

DIM = 2000
BATCH = 8


def _spec(**overrides):
    kwargs = dict(
        dim=DIM,
        total_samples=1024,
        batch_size=BATCH,
        num_tables=3,
        num_buckets=512,
        seed=13,
        mode="covariance",
        track_top=64,
    )
    kwargs.update(overrides)
    return ShardSpec(**kwargs)


def _integer_stream(rng, n, nnz=6):
    """Sparse samples with integer values — exact partial sums."""
    return [
        (
            np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64),
            rng.integers(-8, 9, size=nnz).astype(np.float64),
        )
        for _ in range(n)
    ]


class TestRotation:
    def test_pane_geometry_validation(self):
        spec = _spec()
        with pytest.raises(ValueError, match="num_panes"):
            PaneRing(spec, num_panes=0, pane_samples=BATCH)
        with pytest.raises(ValueError, match="multiple"):
            PaneRing(spec, num_panes=2, pane_samples=BATCH + 1)

    def test_lazy_rotation_and_retention(self, rng):
        ring = PaneRing(_spec(), num_panes=3, pane_samples=4 * BATCH)
        samples = _integer_stream(rng, 7 * 4 * BATCH)
        ring.ingest(samples)
        # 7 panes of data: the 7th is the (full) open pane — lazy rotation
        # closes a pane only when the next sample arrives.
        assert ring.rotations == 6
        assert ring.samples_seen == 7 * 4 * BATCH
        # Retention: open pane + num_panes-1 closed = 3 panes in the window.
        assert ring.window_span == 3 * 4 * BATCH
        assert ring.window_start == 4 * 4 * BATCH
        panes = ring.panes()
        assert [p.start for p in panes] == [128, 160, 192]
        assert all(p.num_samples == 4 * BATCH for p in panes)

    def test_empty_rotate_is_noop(self, rng):
        ring = PaneRing(_spec(), num_panes=2, pane_samples=BATCH)
        assert ring.rotate() is None
        ring.ingest(_integer_stream(rng, BATCH))
        assert ring.rotate() is not None
        assert ring.rotate() is None  # fresh open pane is empty again

    def test_incremental_ingest_equals_bulk(self, rng):
        """Feeding batch-aligned chunks across calls matches one big call."""
        samples = _integer_stream(rng, 12 * BATCH)
        bulk = PaneRing(_spec(), num_panes=4, pane_samples=2 * BATCH)
        bulk.ingest(samples)
        chunked = PaneRing(_spec(), num_panes=4, pane_samples=2 * BATCH)
        for start in range(0, len(samples), BATCH):
            chunked.ingest(samples[start : start + BATCH])
        np.testing.assert_array_equal(
            bulk.window().estimator.sketch.table,
            chunked.window().estimator.sketch.table,
        )


class TestWindowMergeLaw:
    @pytest.mark.parametrize("num_panes", [1, 2, 4])
    def test_window_bit_identical_to_one_shot_fit(self, num_panes, rng):
        """Acceptance: window == one-shot fit_sparse over the same batches."""
        spec = _spec()
        pane_samples = 4 * BATCH
        total = num_panes * pane_samples
        samples = _integer_stream(rng, total)

        ring = PaneRing(spec, num_panes=num_panes, pane_samples=pane_samples)
        ring.ingest(samples)
        assert ring.window_span == total  # nothing has aged out yet
        window = ring.window()

        reference = spec.build_sketcher()
        reference.fit_sparse(iter(samples))

        np.testing.assert_array_equal(
            window.estimator.sketch.table, reference.estimator.sketch.table
        )
        probe = rng.integers(0, window.num_pairs, size=2000).astype(np.int64)
        np.testing.assert_array_equal(
            window.estimate_keys(probe), reference.estimate_keys(probe)
        )
        # Moments merge exactly too (plain accumulator sums).
        np.testing.assert_array_equal(
            window.sparse_moments._sum, reference.sparse_moments._sum
        )
        assert window.sparse_moments.count == reference.sparse_moments.count

    def test_window_after_aging_out_matches_recent_fit(self, rng):
        """Old panes leave the window: only the retained suffix is fitted."""
        spec = _spec()
        pane_samples = 2 * BATCH
        num_panes = 3
        samples = _integer_stream(rng, 8 * pane_samples)
        ring = PaneRing(spec, num_panes=num_panes, pane_samples=pane_samples)
        ring.ingest(samples)

        retained = samples[-num_panes * pane_samples :]
        reference = spec.build_sketcher()
        reference.fit_sparse(iter(retained))
        window = ring.window()
        np.testing.assert_array_equal(
            window.estimator.sketch.table, reference.estimator.sketch.table
        )
        probe = rng.integers(0, window.num_pairs, size=1000).astype(np.int64)
        np.testing.assert_array_equal(
            window.estimate_keys(probe), reference.estimate_keys(probe)
        )

    def test_ascs_panes_merge(self, rng):
        """ASCS panes carry sampler state through the window merge."""
        schedule = (64, 1e-4, 0.5, 1024)
        spec = _spec(method="ascs", schedule=schedule)
        ring = PaneRing(spec, num_panes=2, pane_samples=8 * BATCH)
        ring.ingest(_integer_stream(rng, 16 * BATCH))
        window = ring.window()
        est = window.estimator
        assert est.samples_seen == 16 * BATCH
        assert est.updates_examined > 0
        assert isinstance(est.schedule, ThresholdSchedule)

    def test_mid_pane_window_includes_open_pane(self, rng):
        spec = _spec()
        ring = PaneRing(spec, num_panes=2, pane_samples=4 * BATCH)
        samples = _integer_stream(rng, 5 * BATCH)  # 1 full pane + 1 batch
        ring.ingest(samples)
        assert ring.window_span == 5 * BATCH
        reference = spec.build_sketcher()
        reference.fit_sparse(iter(samples))
        np.testing.assert_array_equal(
            ring.window().estimator.sketch.table,
            reference.estimator.sketch.table,
        )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, rng):
        ring = PaneRing(_spec(), num_panes=3, pane_samples=2 * BATCH)
        samples = _integer_stream(rng, 5 * BATCH)
        ring.ingest(samples)
        paths = ring.save(tmp_path)
        assert all(path.exists() for path in paths)

        loaded = PaneRing.load(tmp_path)
        assert loaded.samples_seen == ring.samples_seen
        assert loaded.rotations == ring.rotations
        assert loaded.window_span == ring.window_span
        np.testing.assert_array_equal(
            loaded.window().estimator.sketch.table,
            ring.window().estimator.sketch.table,
        )

    def test_load_then_continue_matches_uninterrupted(self, tmp_path, rng):
        """Checkpoint/resume at a batch boundary is invisible to the window."""
        samples = _integer_stream(rng, 8 * BATCH)
        cut = 4 * BATCH  # batch- and pane-aligned
        straight = PaneRing(_spec(), num_panes=4, pane_samples=2 * BATCH)
        straight.ingest(samples)

        first = PaneRing(_spec(), num_panes=4, pane_samples=2 * BATCH)
        first.ingest(samples[:cut])
        first.save(tmp_path)
        resumed = PaneRing.load(tmp_path)
        resumed.ingest(samples[cut:])

        assert resumed.samples_seen == straight.samples_seen
        np.testing.assert_array_equal(
            resumed.window().estimator.sketch.table,
            straight.window().estimator.sketch.table,
        )

    def test_save_prunes_stale_panes(self, tmp_path, rng):
        ring = PaneRing(_spec(), num_panes=2, pane_samples=BATCH)
        ring.ingest(_integer_stream(rng, 2 * BATCH))
        ring.save(tmp_path)
        ring.ingest(_integer_stream(rng, 4 * BATCH))
        ring.save(tmp_path)
        on_disk = sorted(p.name for p in tmp_path.glob("pane-*.npz"))
        expected = sorted(
            f"pane-{p.shard_index:08d}.npz" for p in ring.panes()
        )
        assert on_disk == expected
