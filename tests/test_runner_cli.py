"""Tests for the experiments CLI (repro.experiments.runner)."""


from repro.experiments import sweep_sketch_size
from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_name_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_named_experiment(self, capsys, monkeypatch):
        # Patch in a tiny config so the CLI test stays fast.
        import dataclasses

        import repro.experiments.fig2_mean_std_cdf as fig2

        tiny = dataclasses.replace(fig2.Config(), dim=40, samples=150)
        monkeypatch.setattr(fig2, "Config", lambda: tiny)
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "paper reference" in out
        assert "completed in" in out


class TestSweepExperiment:
    def test_small_sweep_runs(self):
        config = sweep_sketch_size.Config(
            dim=80, samples=800, bucket_fractions=(0.01, 0.2),
            signal_set_size=40,
        )
        table = run_experiment("sweep", config)
        assert len(table.rows) == 2
        for row in table.rows:
            cs, ascs = row[2], row[3]
            assert 0.0 <= cs <= 1.0
            assert 0.0 <= ascs <= 1.0

    def test_more_memory_helps_cs(self):
        config = sweep_sketch_size.Config(
            dim=80, samples=1000, bucket_fractions=(0.005, 0.3),
            signal_set_size=40,
        )
        table = run_experiment("sweep", config)
        assert table.rows[1][2] >= table.rows[0][2] - 0.05
