"""Tests for the experiments CLI (repro.experiments.runner)."""

import json

from repro.experiments import sweep_sketch_size
from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_name_fails(self, capsys):
        # Diagnostics are structured log events on stderr, not prints.
        assert main(["fig99"]) == 2
        record = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert record["event"] == "experiment.unknown"
        assert record["name"] == "fig99"
        assert "fig1" in record["available"]

    def test_runs_named_experiment(self, capsys, monkeypatch):
        # Patch in a tiny config so the CLI test stays fast.
        import dataclasses

        import repro.experiments.fig2_mean_std_cdf as fig2

        tiny = dataclasses.replace(fig2.Config(), dim=40, samples=150)
        monkeypatch.setattr(fig2, "Config", lambda: tiny)
        assert main(["fig2"]) == 0
        captured = capsys.readouterr()
        # Tables and the paper reference are the stdout deliverable...
        assert "Figure 2" in captured.out
        assert "paper reference" in captured.out
        # ...while timing is an info-level log event, silent by default.
        assert "completed" not in captured.out
        assert "experiment.completed" not in captured.err

    def test_verbose_emits_timing_event(self, capsys, monkeypatch):
        import dataclasses

        import repro.experiments.fig2_mean_std_cdf as fig2

        tiny = dataclasses.replace(fig2.Config(), dim=40, samples=150)
        monkeypatch.setattr(fig2, "Config", lambda: tiny)
        assert main(["--verbose", "fig2"]) == 0
        err = capsys.readouterr().err
        events = [json.loads(line) for line in err.strip().splitlines()]
        completed = [e for e in events if e["event"] == "experiment.completed"]
        assert len(completed) == 1
        assert completed[0]["name"] == "fig2"
        assert completed[0]["seconds"] >= 0


class TestSweepExperiment:
    def test_small_sweep_runs(self):
        config = sweep_sketch_size.Config(
            dim=80, samples=800, bucket_fractions=(0.01, 0.2),
            signal_set_size=40,
        )
        table = run_experiment("sweep", config)
        assert len(table.rows) == 2
        for row in table.rows:
            cs, ascs = row[2], row[3]
            assert 0.0 <= cs <= 1.0
            assert 0.0 <= ascs <= 1.0

    def test_more_memory_helps_cs(self):
        config = sweep_sketch_size.Config(
            dim=80, samples=1000, bucket_fractions=(0.005, 0.3),
            signal_set_size=40,
        )
        table = run_experiment("sweep", config)
        assert table.rows[1][2] >= table.rows[0][2] - 0.05
