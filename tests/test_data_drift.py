"""Drift stream generators: determinism, timetables, ground-truth mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.drift import (
    AbruptShiftStream,
    GradualRotationStream,
    PeriodicChurnStream,
)
from repro.hashing.pairs import index_to_pair, num_pairs


DIM, N = 60, 512


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: AbruptShiftStream(DIM, N, alpha=0.02, seed=21),
            lambda: GradualRotationStream(DIM, N, alpha=0.02, seed=21),
            lambda: PeriodicChurnStream(
                DIM, N, period=64, num_phases=3, alpha=0.02, seed=21
            ),
        ],
        ids=["abrupt", "gradual", "periodic"],
    )
    def test_same_seed_same_stream(self, factory):
        a, b = factory(), factory()
        np.testing.assert_array_equal(a.generate(), b.generate())
        np.testing.assert_array_equal(a.phases(), b.phases())
        for phase in range(a.num_phases):
            np.testing.assert_array_equal(
                a.signal_pairs(phase), b.signal_pairs(phase)
            )

    def test_different_seed_different_stream(self):
        a = AbruptShiftStream(DIM, N, seed=1)
        b = AbruptShiftStream(DIM, N, seed=2)
        assert not np.array_equal(a.generate(), b.generate())


class TestTimetables:
    def test_abrupt_switch(self):
        stream = AbruptShiftStream(DIM, N, switch_at=100, seed=0)
        phases = stream.phases()
        assert (phases[:100] == 0).all()
        assert (phases[100:] == 1).all()
        assert stream.phase_of(99) == 0 and stream.phase_of(100) == 1
        with pytest.raises(ValueError, match="switch_at"):
            AbruptShiftStream(DIM, N, switch_at=N + 1)

    def test_gradual_ramp_is_monotone_in_aggregate(self):
        stream = GradualRotationStream(
            DIM, 4000, start=1000, stop=3000, seed=3
        )
        phases = stream.phases()
        assert (phases[:1000] == 0).all()
        assert (phases[3000:] == 1).all()
        transition = phases[1000:3000]
        # The linear ramp must show up in aggregate: each third of the
        # transition contains more phase-1 samples than the previous.
        thirds = [transition[i * 666 : (i + 1) * 666].mean() for i in range(3)]
        assert thirds[0] < thirds[1] < thirds[2]

    def test_periodic_cycle(self):
        stream = PeriodicChurnStream(
            DIM, N, period=32, num_phases=4, seed=0
        )
        phases = stream.phases()
        assert (phases[:32] == 0).all()
        assert (phases[32:64] == 1).all()
        assert (phases[128:160] == 0).all()  # wrapped around
        with pytest.raises(ValueError, match="period"):
            PeriodicChurnStream(DIM, N, period=0)


class TestGroundTruth:
    def test_phases_relocate_but_preserve_signal_count(self):
        stream = AbruptShiftStream(DIM, N, alpha=0.02, seed=7)
        before = stream.signal_pairs(0)
        after = stream.signal_pairs(1)
        assert before.size == after.size == stream.num_signal_pairs
        assert not np.array_equal(before, after)
        # Valid flat keys with i < j after the permutation.
        for keys in (before, after):
            assert keys.min() >= 0 and keys.max() < num_pairs(DIM)
            i, j = index_to_pair(keys, DIM)
            assert (i < j).all()
        assert stream.signal_pairs(0).size == np.unique(before).size

    def test_signal_pairs_at_follows_the_timetable(self):
        stream = AbruptShiftStream(DIM, N, switch_at=N // 2, seed=7)
        np.testing.assert_array_equal(
            stream.signal_pairs_at(0), stream.signal_pairs(0)
        )
        np.testing.assert_array_equal(
            stream.signal_pairs_at(N - 1), stream.signal_pairs(1)
        )
        with pytest.raises(ValueError, match="phase"):
            stream.signal_pairs(2)

    def test_phase_zero_matches_base_model_empirically(self):
        """Phase-0 samples must realise the base model's correlations."""
        stream = AbruptShiftStream(DIM, 4000, switch_at=4000, seed=9)
        data = stream.generate()
        corr = np.corrcoef(data, rowvar=False)
        truth = stream.model.true_correlation()
        strong = truth > 0.4
        np.fill_diagonal(strong, False)
        # Signal cells correlate strongly, noise cells do not.
        assert corr[strong].mean() > 0.3
        noise = ~strong
        np.fill_diagonal(noise, False)
        assert abs(corr[noise].mean()) < 0.05

    def test_post_shift_samples_realise_permuted_signals(self):
        stream = AbruptShiftStream(DIM, 4000, switch_at=0, seed=9)
        data = stream.generate()  # entirely phase 1
        corr = np.corrcoef(data, rowvar=False)
        i, j = index_to_pair(stream.signal_pairs(1), DIM)
        assert corr[i, j].mean() > 0.3
