"""Tests for the Table-1 instrumentation (SignalMissTracker)."""

import numpy as np
import pytest

from repro.experiments.table1_theorem_validation import SignalMissTracker


def make_tracker(signals=(2, 5), t0=10):
    return SignalMissTracker(np.asarray(signals), t0)


class TestPhases:
    def test_exploration_batches_ignored(self):
        tracker = make_tracker()
        keys = np.arange(8)
        tracker(5, keys, np.ones(8), np.ones(8, dtype=bool))
        assert tracker.first_decision_pass is None
        assert np.isnan(tracker.miss_at_t0_rate)

    def test_first_sampling_decision_recorded(self):
        tracker = make_tracker(signals=(2, 5), t0=10)
        keys = np.arange(8)
        tracker(10, keys, np.ones(8), np.ones(8, dtype=bool))  # explore up to 10
        mask = np.ones(8, dtype=bool)
        mask[5] = False  # signal 5 filtered at the first decision
        tracker(11, keys, np.ones(8), mask)
        assert tracker.first_decision_pass.tolist() == [True, False]
        assert tracker.miss_at_t0_rate == pytest.approx(0.5)

    def test_later_filtering_tracked(self):
        tracker = make_tracker(signals=(2, 5), t0=10)
        keys = np.arange(8)
        tracker(10, keys, np.ones(8), np.ones(8, dtype=bool))
        tracker(11, keys, np.ones(8), np.ones(8, dtype=bool))  # both pass
        mask = np.ones(8, dtype=bool)
        mask[2] = False  # signal 2 filtered later
        tracker(12, keys, np.ones(8), mask)
        assert tracker.miss_during_sampling_rate == pytest.approx(0.5)

    def test_miss_at_t0_not_double_counted_later(self):
        tracker = make_tracker(signals=(2,), t0=10)
        keys = np.arange(8)
        tracker(10, keys, np.ones(8), np.ones(8, dtype=bool))
        mask = np.ones(8, dtype=bool)
        mask[2] = False
        tracker(11, keys, np.ones(8), mask)  # missed at T0
        tracker(12, keys, np.ones(8), mask)  # still below: not an "escape"
        assert tracker.miss_at_t0_rate == 1.0
        assert tracker.miss_during_sampling_rate == 0.0

    def test_signals_absent_from_batch_count_as_filtered(self):
        # Sparse batches may not carry every signal key; absent means the
        # update was not inserted, which for the bound's purposes is a pass
        # on a zero update — tracked as not-passing only if masked out.
        tracker = make_tracker(signals=(2, 100), t0=10)
        keys = np.arange(8)  # key 100 absent
        tracker(10, keys, np.ones(8), np.ones(8, dtype=bool))
        tracker(11, keys, np.ones(8), np.ones(8, dtype=bool))
        assert tracker.first_decision_pass.tolist() == [True, False]

    def test_no_sampling_batches_all_nan(self):
        tracker = make_tracker()
        assert np.isnan(tracker.miss_at_t0_rate)
        assert np.isnan(tracker.miss_during_sampling_rate)
