"""Tests for Active Sampling Count Sketch (repro.core.ascs)."""

import numpy as np
import pytest

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.schedule import ThresholdSchedule
from repro.sketch.count_sketch import CountSketch
from repro.theory.bounds import ProblemModel


def make_ascs(
    total=100, t0=20, tau0=1e-4, theta=0.3, *, two_sided=False, seed=0,
    buckets=2048, observer=None, track=0,
):
    schedule = ThresholdSchedule(
        exploration_length=t0, tau0=tau0, theta=theta, total_samples=total
    )
    sketch = CountSketch(5, buckets, seed=seed)
    return ActiveSamplingCountSketch(
        sketch, total, schedule, two_sided=two_sided, observer=observer,
        track_top=track,
    )


class TestExplorationPhase:
    def test_everything_accepted_during_exploration(self):
        est = make_ascs(total=100, t0=50)
        est.ingest(np.arange(10), np.full(10, -99.0), num_samples=10)
        assert est.acceptance_rate == 1.0
        assert est.in_exploration

    def test_exploration_boundary(self):
        est = make_ascs(total=100, t0=10)
        est.ingest(np.array([1]), np.array([1.0]), num_samples=10)
        assert not est.in_exploration


class TestSamplingPhase:
    def test_below_threshold_filtered(self):
        est = make_ascs(total=100, t0=10, tau0=0.5, theta=0.0)
        # exploration: build positive estimate for key 0 only
        est.ingest(np.array([0]), np.array([100.0]), num_samples=10)
        # sampling: key 0's estimate (1.0) clears tau=0.5; key 1's (0) does not
        est.ingest(np.array([0, 1]), np.array([1.0, 1.0]), num_samples=1)
        assert est.updates_accepted == 2  # 1 exploration + key 0
        assert est.estimate(np.array([1]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_negative_estimates_filtered_one_sided(self):
        est = make_ascs(total=100, t0=10, tau0=0.0, theta=0.0)
        est.ingest(np.array([0]), np.array([-100.0]), num_samples=10)
        before = est.updates_accepted
        est.ingest(np.array([0]), np.array([-1.0]), num_samples=1)
        assert est.updates_accepted == before  # estimate < 0 < tau: filtered

    def test_negative_estimates_kept_two_sided(self):
        est = make_ascs(total=100, t0=10, tau0=0.5, theta=0.0, two_sided=True)
        est.ingest(np.array([0]), np.array([-100.0]), num_samples=10)
        before = est.updates_accepted
        est.ingest(np.array([0]), np.array([-1.0]), num_samples=1)
        assert est.updates_accepted == before + 1  # |estimate| >= tau

    def test_threshold_ramps(self):
        est = make_ascs(total=100, t0=10, tau0=0.0, theta=1.0)
        est.ingest(np.array([0]), np.array([10.0]), num_samples=10)
        tau_start = est.current_threshold
        est.ingest(np.array([0]), np.array([1.0]), num_samples=50)
        assert est.current_threshold > tau_start

    def test_acceptance_rate_drops_after_exploration(self, rng):
        est = make_ascs(total=200, t0=20, tau0=0.05, theta=0.1, buckets=1 << 14)
        signal = np.array([0])
        noise = np.arange(1, 400)
        for t in range(200):
            keys = np.concatenate([signal, noise])
            vals = np.concatenate([[1.0], rng.standard_normal(399) * 0.1])
            est.ingest(keys, vals, num_samples=1)
        # Most noise filtered during sampling; overall acceptance well below 1.
        assert est.acceptance_rate < 0.7
        # Signal keeps accumulating: final estimate near its mean.
        assert est.estimate(signal)[0] == pytest.approx(1.0, abs=0.3)


class TestConstruction:
    def test_schedule_total_must_match(self):
        schedule = ThresholdSchedule(10, 1e-4, 0.1, total_samples=50)
        with pytest.raises(ValueError, match="total_samples"):
            ActiveSamplingCountSketch(CountSketch(2, 64), 100, schedule)

    def test_from_plan(self):
        from repro.theory.planner import ASCSPlan

        plan = ASCSPlan(
            exploration_length=30, tau0=1e-4, theta=0.2, delta=0.05,
            delta_star=0.2, saturation=0.01, used_fallback=False,
        )
        est = ActiveSamplingCountSketch.from_plan(plan, 500, 5, 1024, seed=3)
        assert est.schedule.exploration_length == 30
        assert est.total_samples == 500
        assert est.sketch.num_buckets == 1024

    def test_plan_and_build(self):
        model = ProblemModel(
            p=20_000, alpha=0.002, u=0.8, sigma=1.0, T=5000, num_tables=5,
            num_buckets=8000,
        )
        est, plan = ActiveSamplingCountSketch.plan_and_build(model, seed=1)
        assert est.schedule.exploration_length == plan.exploration_length
        assert est.schedule.theta == plan.theta


class TestObserverIntegration:
    def test_observer_sees_masks(self):
        masks = []
        est = make_ascs(
            total=100, t0=10, tau0=10.0, theta=0.0,
            observer=lambda t, k, v, m: masks.append(m.copy()),
        )
        est.ingest(np.array([0]), np.array([1.0]), num_samples=10)  # explore
        est.ingest(np.array([0]), np.array([1.0]), num_samples=1)  # filtered
        assert masks[0].all()  # exploration batch: all accepted
        assert not masks[1].any()  # sampling batch: below huge tau


class TestSNRImprovement:
    def test_ascs_noise_mass_lower_than_cs(self, rng):
        """The mechanism of Theorem 3: after sampling starts, ASCS inserts
        far less noise energy than CS while keeping the signals."""
        from repro.core.estimator import SketchEstimator

        total, t0 = 300, 30
        signal_keys = np.arange(5)
        noise_keys = np.arange(5, 1000)

        ascs = make_ascs(
            total=total, t0=t0, tau0=0.05, theta=0.2, buckets=1 << 14, seed=2
        )
        cs = SketchEstimator(CountSketch(5, 1 << 14, seed=2), total)
        for _ in range(total):
            keys = np.concatenate([signal_keys, noise_keys])
            vals = np.concatenate(
                [np.full(5, 0.8), rng.standard_normal(995) * 0.3]
            )
            ascs.ingest(keys, vals, num_samples=1)
            cs.ingest(keys, vals, num_samples=1)

        assert ascs.updates_accepted < 0.5 * cs.updates_accepted
        sig_ascs = ascs.estimate(signal_keys)
        assert (sig_ascs > 0.4).all()  # signals retained
