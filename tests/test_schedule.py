"""Tests for the threshold schedule (repro.core.schedule)."""

import numpy as np
import pytest

from repro.core.schedule import ThresholdSchedule
from repro.theory.planner import ASCSPlan


def make_schedule(**overrides):
    base = dict(exploration_length=100, tau0=1e-4, theta=0.3, total_samples=1000)
    base.update(overrides)
    return ThresholdSchedule(**base)


class TestValidation:
    def test_negative_exploration(self):
        with pytest.raises(ValueError):
            make_schedule(exploration_length=-1)

    def test_zero_total(self):
        with pytest.raises(ValueError):
            make_schedule(total_samples=0)

    def test_negative_theta(self):
        with pytest.raises(ValueError):
            make_schedule(theta=-0.1)


class TestRamp:
    def test_linear_values(self):
        sched = make_schedule()
        assert sched.threshold(100) == pytest.approx(1e-4)
        assert sched.threshold(550) == pytest.approx(1e-4 + 0.3 * 450 / 1000)
        assert sched.threshold(1000) == pytest.approx(1e-4 + 0.3 * 900 / 1000)

    def test_clamps_before_t0(self):
        sched = make_schedule()
        assert sched.threshold(0) == pytest.approx(sched.tau0)

    def test_in_exploration(self):
        sched = make_schedule()
        assert sched.in_exploration(0)
        assert sched.in_exploration(99)
        assert not sched.in_exploration(100)

    def test_vectorised_matches_scalar(self):
        sched = make_schedule()
        t = np.array([0, 50, 100, 400, 1000])
        vec = sched.thresholds(t)
        for n, tv in enumerate(t):
            assert vec[n] == pytest.approx(sched.threshold(int(tv)))

    def test_final_threshold(self):
        sched = make_schedule()
        assert sched.final_threshold == pytest.approx(sched.threshold(1000))

    def test_zero_theta_is_flat(self):
        sched = make_schedule(theta=0.0)
        assert sched.threshold(999) == pytest.approx(sched.tau0)


class TestFromPlan:
    def test_carries_plan_values(self):
        plan = ASCSPlan(
            exploration_length=77,
            tau0=2e-4,
            theta=0.11,
            delta=0.05,
            delta_star=0.2,
            saturation=0.01,
            used_fallback=False,
        )
        sched = ThresholdSchedule.from_plan(plan, 5000)
        assert sched.exploration_length == 77
        assert sched.tau0 == 2e-4
        assert sched.theta == 0.11
        assert sched.total_samples == 5000
