"""Tests for repro.serving.snapshot: frozen views, indexes, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.distributed import sketch_shard
from repro.distributed.shard import ShardSpec
from repro.hashing.pairs import pair_to_index
from repro.serving import CheckpointManager, SketchSnapshot
from repro.sketch.count_sketch import CountSketch

DIM = 60


def _make_samples(n, rng, dim=DIM, nnz=6):
    return [
        (
            np.sort(rng.choice(dim, size=nnz, replace=False)).astype(np.int64),
            rng.standard_normal(nnz),
        )
        for _ in range(n)
    ]


@pytest.fixture
def fitted_sketcher(rng):
    estimator = SketchEstimator(
        CountSketch(3, 2048, seed=9), total_samples=200, track_top=256
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=16
    )
    sketcher.fit_sparse(iter(_make_samples(200, rng)))
    return sketcher


@pytest.fixture
def snapshot(fitted_sketcher):
    return SketchSnapshot.from_sketcher(fitted_sketcher, top_index=100)


class TestBitIdentity:
    """The acceptance bar: snapshot answers == estimator.estimate, exactly."""

    def test_query_pairs_matches_estimator(self, snapshot, fitted_sketcher, rng):
        i = rng.integers(0, DIM - 1, size=200)
        j = rng.integers(i + 1, DIM, size=200)
        keys = pair_to_index(i, j, DIM)
        direct = fitted_sketcher.estimator.estimate(keys)
        np.testing.assert_array_equal(snapshot.query_pairs(i, j), direct)
        np.testing.assert_array_equal(snapshot.query_keys(keys), direct)

    def test_top_neighbors_matches_estimator(self, snapshot, fitted_sketcher):
        for feature in np.unique(snapshot.index_i)[:10].tolist():
            partners, estimates = snapshot.top_neighbors(feature, 5)
            assert partners.size > 0
            lo = np.minimum(feature, partners)
            hi = np.maximum(feature, partners)
            direct = fitted_sketcher.estimator.estimate(
                pair_to_index(lo, hi, DIM)
            )
            np.testing.assert_array_equal(estimates, direct)

    def test_top_pairs_matches_estimator(self, snapshot, fitted_sketcher):
        i, j, estimates = snapshot.top_pairs(20)
        direct = fitted_sketcher.estimator.estimate(pair_to_index(i, j, DIM))
        np.testing.assert_array_equal(estimates, direct)
        # rank-desc order
        assert np.all(np.diff(estimates) <= 0)


class TestImmutability:
    def test_live_mutation_never_changes_snapshot(self, fitted_sketcher, rng):
        snapshot = SketchSnapshot.from_sketcher(fitted_sketcher, top_index=50)
        probe = np.arange(100, dtype=np.int64)
        before = snapshot.query_keys(probe).copy()
        index_before = snapshot.index_estimates.copy()
        # Keep mutating the live estimator across several batches.
        fitted_sketcher.fit_sparse(iter(_make_samples(64, rng)))
        fitted_sketcher.estimator.ingest(probe, np.full(100, 17.0))
        np.testing.assert_array_equal(snapshot.query_keys(probe), before)
        np.testing.assert_array_equal(snapshot.index_estimates, index_before)

    def test_snapshot_sketch_rejects_writes(self, snapshot):
        with pytest.raises((ValueError, RuntimeError)):
            snapshot.sketch.insert(np.array([1]), np.array([1.0]))

    def test_index_arrays_read_only(self, snapshot):
        for array in (
            snapshot.index_keys,
            snapshot.index_estimates,
            snapshot.nbr_feature,
            snapshot.nbr_partner,
        ):
            assert not array.flags.writeable


class TestConstructors:
    def test_from_result(self):
        from repro import sketch_correlations
        from repro.data import BlockCorrelationModel

        model = BlockCorrelationModel.from_alpha(40, alpha=0.05, seed=2)
        result = sketch_correlations(
            model.sample(400), memory_floats=4000, method="cs", top_k=10
        )
        snap = result.snapshot(top_index=64)
        keys = snap.index_keys
        np.testing.assert_array_equal(
            snap.query_keys(keys), result.estimator.estimate(keys)
        )
        assert snap.mode == "correlation"

    def test_from_shard_results(self, rng):
        spec = ShardSpec(
            dim=DIM,
            total_samples=128,
            method="cs",
            num_tables=3,
            num_buckets=512,
            seed=4,
            track_top=128,
            batch_size=16,
        )
        samples = _make_samples(128, rng)
        shards = [
            sketch_shard(
                spec, samples[:64], shard_index=0, num_shards=2, start=0
            ),
            sketch_shard(
                spec, samples[64:], shard_index=1, num_shards=2, start=64
            ),
        ]
        snap = SketchSnapshot.from_shard_results(shards, top_index=32)
        # Equivalent to snapshotting the explicitly merged sketcher.
        from repro.distributed import merge_shard_results

        merged = merge_shard_results(shards)
        probe = np.arange(200, dtype=np.int64)
        np.testing.assert_array_equal(
            snap.query_keys(probe), merged.estimator.estimate(probe)
        )
        assert snap.samples_seen == 128

    def test_from_sharded_fit(self, rng):
        from repro.distributed import fit_sparse_sharded

        fit = fit_sparse_sharded(
            _make_samples(96, rng),
            DIM,
            num_tables=3,
            num_buckets=512,
            seed=8,
            track_top=64,
            batch_size=16,
            n_workers=2,
            backend="serial",
        )
        snap = fit.snapshot(top_index=32)
        probe = np.arange(150, dtype=np.int64)
        np.testing.assert_array_equal(
            snap.query_keys(probe), fit.estimator.estimate(probe)
        )

    def test_tracker_path_without_scan(self, fitted_sketcher):
        snap = SketchSnapshot.from_sketcher(
            fitted_sketcher, top_index=50, scan=False
        )
        assert not snap.index_exact
        assert snap.index_size > 0
        # Tracker candidates re-queried against the frozen sketch.
        np.testing.assert_array_equal(
            snap.index_estimates, snap.query_keys(snap.index_keys)
        )


class TestRangeQueries:
    def test_pairs_above_matches_mask(self, snapshot):
        threshold = float(np.median(snapshot.index_rank))
        i, j, est = snapshot.pairs_above(threshold)
        expected = int(np.count_nonzero(snapshot.index_rank >= threshold))
        assert i.size == expected
        assert np.all(est[np.argsort(-est, kind="stable")] == est)

    def test_pairs_above_limit(self, snapshot):
        i, j, est = snapshot.pairs_above(-np.inf, limit=7)
        assert i.size == 7

    def test_pairs_in_range(self, snapshot):
        rank = snapshot.index_rank
        lo, hi = float(np.quantile(rank, 0.25)), float(np.quantile(rank, 0.75))
        i, j, est = snapshot.pairs_in_range(lo, hi)
        mask = (rank >= lo) & (rank < hi)
        assert i.size == int(np.count_nonzero(mask))
        with pytest.raises(ValueError):
            snapshot.pairs_in_range(hi, lo)

    def test_pairs_in_range_half_open_at_boundaries(self, snapshot):
        # Exact rank values as bounds: hi is exclusive, lo inclusive, so
        # paging [a,b), [b,c) never double-counts a boundary pair.
        rank = snapshot.index_rank
        lo, hi = float(rank[10]), float(rank[3])
        i, j, est = snapshot.pairs_in_range(lo, hi)
        mask = (rank >= lo) & (rank < hi)
        assert i.size == int(np.count_nonzero(mask))
        cut = float(rank[5])
        low_page = snapshot.pairs_in_range(lo, cut)[0].size
        high_page = snapshot.pairs_in_range(cut, hi)[0].size
        assert low_page + high_page == i.size

    def test_query_keys_rejects_out_of_range(self, snapshot):
        with pytest.raises(ValueError, match="pair keys"):
            snapshot.query_keys(np.asarray([-1], dtype=np.int64))
        with pytest.raises(ValueError, match="pair keys"):
            snapshot.query_keys(
                np.asarray([snapshot.num_pairs], dtype=np.int64)
            )


class TestPersistence:
    def test_round_trip_exact(self, snapshot, tmp_path):
        path = tmp_path / "snap.npz"
        snapshot.save(path)
        loaded = SketchSnapshot.load(path)
        probe = np.arange(300, dtype=np.int64)
        np.testing.assert_array_equal(
            loaded.query_keys(probe), snapshot.query_keys(probe)
        )
        np.testing.assert_array_equal(loaded.index_keys, snapshot.index_keys)
        np.testing.assert_array_equal(
            loaded.nbr_partner, snapshot.nbr_partner
        )
        assert loaded.meta()["dim"] == snapshot.meta()["dim"]
        assert loaded.snapshot_id != snapshot.snapshot_id  # fresh identity

    def test_save_leaves_no_temp_files(self, snapshot, tmp_path):
        snapshot.save(tmp_path / "snap.npz")
        snapshot.save(tmp_path / "snap.npz")  # overwrite is atomic too
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["snap.npz"]

    def test_loaded_snapshot_is_frozen(self, snapshot, tmp_path):
        path = tmp_path / "snap.npz"
        snapshot.save(path)
        loaded = SketchSnapshot.load(path)
        with pytest.raises((ValueError, RuntimeError)):
            loaded.sketch.insert(np.array([1]), np.array([1.0]))


class TestCheckpointManager:
    def test_retention(self, snapshot, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpts", retain=2)
        paths = [manager.save(snapshot) for _ in range(5)]
        kept = manager.checkpoints()
        assert kept == paths[-2:]
        assert manager.latest() == paths[-1]

    def test_sequence_resumes_from_disk(self, snapshot, tmp_path):
        directory = tmp_path / "ckpts"
        first = CheckpointManager(directory, retain=3)
        first.save(snapshot)
        first.save(snapshot)
        second = CheckpointManager(directory, retain=3)
        path = second.save(snapshot)
        assert path.name == "snapshot-00000003.npz"

    def test_load_latest(self, snapshot, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpts", retain=2)
        assert manager.load_latest() is None
        manager.save(snapshot)
        loaded = manager.load_latest()
        probe = np.arange(50, dtype=np.int64)
        np.testing.assert_array_equal(
            loaded.query_keys(probe), snapshot.query_keys(probe)
        )

    def test_separate_prefixes_coexist(self, snapshot, tmp_path):
        a = CheckpointManager(tmp_path / "ckpts", retain=1, prefix="a")
        b = CheckpointManager(tmp_path / "ckpts", retain=1, prefix="b")
        a.save(snapshot)
        b.save(snapshot)
        assert len(a.checkpoints()) == 1
        assert len(b.checkpoints()) == 1

    def test_bad_args(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, retain=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, prefix="has-dash")
