"""Tests for the Pagh compressed-product baseline (repro.related.pagh)."""

import numpy as np
import pytest

from repro.hashing.pairs import pair_to_index
from repro.related.pagh import CompressedCovarianceSketch


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompressedCovarianceSketch(1, 3, 64)
        with pytest.raises(ValueError):
            CompressedCovarianceSketch(10, 0, 64)
        with pytest.raises(ValueError):
            CompressedCovarianceSketch(10, 3, 1)

    def test_memory_accounting(self):
        sk = CompressedCovarianceSketch(10, 4, 256)
        assert sk.memory_floats == 4 * 258


class TestConvolutionIdentity:
    """The FFT path must equal the direct pair count sketch it encodes."""

    def test_single_sample_exact_reconstruction(self, rng):
        d, b = 12, 4096  # b >> d^2: collisions essentially impossible
        sk = CompressedCovarianceSketch(d, 5, b, seed=3)
        y = rng.standard_normal(d)
        sk.insert_sample(y)
        i, j = np.triu_indices(d, k=1)
        est = sk.query_pairs(i, j)
        np.testing.assert_allclose(est, y[i] * y[j], atol=1e-8)

    def test_accumulation_over_samples(self, rng):
        d, b = 10, 4096
        sk = CompressedCovarianceSketch(d, 5, b, seed=4)
        data = rng.standard_normal((30, d))
        for row in data:
            sk.insert_sample(row)
        i, j = np.triu_indices(d, k=1)
        truth = np.einsum("ti,tj->ij", data, data)[i, j]
        np.testing.assert_allclose(sk.query_pairs(i, j), truth, atol=1e-7)

    def test_sparse_insert_matches_dense(self, rng):
        d, b = 20, 2048
        a = CompressedCovarianceSketch(d, 3, b, seed=5)
        c = CompressedCovarianceSketch(d, 3, b, seed=5)
        y = np.zeros(d)
        idx = np.array([2, 7, 13])
        y[idx] = [1.0, -2.0, 0.5]
        a.insert_sample(y)
        c.insert_sparse(idx, y[idx])
        i, j = np.triu_indices(d, k=1)
        np.testing.assert_allclose(a.query_pairs(i, j), c.query_pairs(i, j), atol=1e-10)

    def test_query_keys_matches_query_pairs(self, rng):
        d, b = 15, 1024
        sk = CompressedCovarianceSketch(d, 3, b, seed=6)
        sk.insert_sample(rng.standard_normal(d))
        i = np.array([0, 3, 7])
        j = np.array([5, 9, 14])
        keys = pair_to_index(i, j, d)
        np.testing.assert_allclose(sk.query_keys(keys), sk.query_pairs(i, j))


class TestStatisticalBehaviour:
    def test_recovers_planted_covariance_under_compression(self, rng):
        # b << p: real compression; the planted heavy pair must still
        # dominate the noise.
        d, n, b = 60, 2000, 1024  # p = 1770 pairs -> ~1.7 pairs/bucket
        data = rng.standard_normal((n, d))
        data[:, 7] = 0.9 * data[:, 3] + np.sqrt(1 - 0.81) * data[:, 7]
        sk = CompressedCovarianceSketch(d, 5, b, seed=7)
        for row in data:
            sk.insert_sample(row)
        i, j = np.triu_indices(d, k=1)
        est = sk.query_pairs(i, j) / n
        top = np.argmax(est)
        assert (i[top], j[top]) == (3, 7)
        assert est[top] == pytest.approx(0.9, abs=0.15)

    def test_mean_scaling(self, rng):
        d = 10
        sk = CompressedCovarianceSketch(d, 3, 512, seed=8)
        y = np.ones(d)
        for _ in range(50):
            sk.insert_sample(y)
        keys = np.array([0])
        assert sk.query_mean_keys(keys)[0] == pytest.approx(1.0, abs=1e-6)

    def test_empty_sketch_queries_zero(self):
        sk = CompressedCovarianceSketch(10, 3, 128, seed=9)
        assert sk.query_mean_keys(np.array([0, 1]))[0] == 0.0

    def test_misaligned_pairs_rejected(self):
        sk = CompressedCovarianceSketch(10, 3, 128)
        with pytest.raises(ValueError, match="align"):
            sk.query_pairs(np.array([1]), np.array([2, 3]))

    def test_wrong_sample_shape_rejected(self):
        sk = CompressedCovarianceSketch(10, 3, 128)
        with pytest.raises(ValueError, match="expected shape"):
            sk.insert_sample(np.ones(11))
