"""Tests for repro.serving.engine and the LRU result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.hashing.pairs import pair_to_index
from repro.serving import LRUCache, QueryEngine, SketchSnapshot
from repro.sketch.count_sketch import CountSketch

DIM = 50


@pytest.fixture
def snapshot(rng):
    estimator = SketchEstimator(
        CountSketch(3, 1024, seed=21), total_samples=150, track_top=128
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=16
    )
    samples = [
        (
            np.sort(rng.choice(DIM, size=5, replace=False)).astype(np.int64),
            rng.standard_normal(5),
        )
        for _ in range(150)
    ]
    sketcher.fit_sparse(iter(samples))
    return SketchSnapshot.from_sketcher(sketcher, top_index=64)


class TestLRUCache:
    def test_eviction_at_capacity(self):
        cache = LRUCache(3)
        for key in (1, 2, 3):
            cache.put(key, float(key))
        cache.get(1)  # 1 becomes most-recent; 2 is now LRU
        cache.put(4, 4.0)  # evicts 2
        assert 2 not in cache
        assert all(k in cache for k in (1, 3, 4))
        assert len(cache) == 3
        assert cache.evictions == 1

    def test_put_refresh_does_not_evict(self):
        cache = LRUCache(2)
        cache.put(1, 1.0)
        cache.put(2, 2.0)
        cache.put(1, 1.5)  # refresh, not insert
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get(1) == 1.5

    def test_stats_counters(self):
        cache = LRUCache(2)
        assert cache.get(9) is None
        cache.put(9, 0.25)
        assert cache.get(9) == 0.25
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        assert stats.as_dict()["capacity"] == 2

    def test_get_many_put_many_match_singles(self):
        batched, singles = LRUCache(4), LRUCache(4)
        items = [(1, 1.0), (2, 2.0), (3, 3.0)]
        batched.put_many(items)
        for key, value in items:
            singles.put(key, value)
        probe = [1, 9, 3]
        assert batched.get_many(probe) == [singles.get(k) for k in probe]
        assert batched.stats() == singles.stats()
        # Eviction parity at capacity through the batched path.
        batched.put_many([(4, 4.0), (5, 5.0)])
        for key, value in [(4, 4.0), (5, 5.0)]:
            singles.put(key, value)
        assert batched.stats().evictions == singles.stats().evictions
        assert len(batched) == len(singles) == 4

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put(1, 1.0)
        assert cache.get(1) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestCacheCorrectness:
    """Cached and uncached answers must be bit-identical."""

    def test_cached_vs_uncached_bit_identity(self, snapshot, rng):
        cached = QueryEngine(snapshot, cache_size=4096, cache_batch_limit=None)
        uncached = QueryEngine(snapshot, cache_size=0)
        keys = rng.integers(0, snapshot.num_pairs, size=500)
        first = cached.query_keys(keys)
        second = cached.query_keys(keys)  # all hits
        raw = uncached.query_keys(keys)
        np.testing.assert_array_equal(first, raw)
        np.testing.assert_array_equal(second, raw)
        assert cached.cache.stats().hits >= keys.size

    def test_identity_across_eviction_churn(self, snapshot, rng):
        # Tiny cache + unlimited batch caching: constant eviction churn.
        engine = QueryEngine(snapshot, cache_size=32, cache_batch_limit=None)
        reference = QueryEngine(snapshot, cache_size=0)
        for _ in range(10):
            keys = rng.integers(0, snapshot.num_pairs, size=100)
            np.testing.assert_array_equal(
                engine.query_keys(keys), reference.query_keys(keys)
            )
        assert engine.cache.stats().evictions > 0
        assert len(engine.cache) <= 32

    def test_scalar_matches_vector_path(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=64)
        i, j = 3, 17
        scalar = engine.query_pair(i, j)
        vector = engine.query_pairs(np.asarray([i]), np.asarray([j]))[0]
        direct = snapshot.query_keys(
            pair_to_index(np.asarray([i]), np.asarray([j]), DIM)
        )[0]
        assert scalar == vector == direct

    def test_scalar_validates_pair(self, snapshot):
        engine = QueryEngine(snapshot)
        with pytest.raises(ValueError):
            engine.query_pair(5, 5)
        with pytest.raises(ValueError):
            engine.query_pair(3, DIM)


class TestSingleGatherPlanner:
    def test_duplicate_keys_one_gather(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=1024)
        keys = np.asarray([7, 7, 9, 7, 9, 11], dtype=np.int64)
        values = engine.query_keys(keys)
        assert engine.gathers == 1
        assert engine.gathered_keys == 3  # deduplicated misses
        assert values[0] == values[1] == values[3]
        np.testing.assert_array_equal(
            values, QueryEngine(snapshot, cache_size=0).query_keys(keys)
        )

    def test_warm_batch_issues_no_gather(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=1024)
        keys = np.arange(50, dtype=np.int64)
        engine.query_keys(keys)
        gathers_before = engine.gathers
        engine.query_keys(keys)
        assert engine.gathers == gathers_before

    def test_query_batches_single_gather(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=1024)
        batches = [
            np.arange(0, 20, dtype=np.int64),
            np.arange(10, 40, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        ]
        answers = engine.query_batches(batches)
        assert engine.gathers == 1
        assert [a.size for a in answers] == [20, 30, 0]
        reference = QueryEngine(snapshot, cache_size=0)
        for batch, answer in zip(batches, answers):
            np.testing.assert_array_equal(answer, reference.query_keys(batch))

    def test_empty_inputs(self, snapshot):
        engine = QueryEngine(snapshot)
        assert engine.query_keys(np.empty(0, dtype=np.int64)).size == 0
        assert engine.query_batches([]) == []

    def test_large_batches_bypass_cache(self, snapshot, rng):
        engine = QueryEngine(snapshot, cache_size=4096, cache_batch_limit=64)
        keys = rng.integers(0, snapshot.num_pairs, size=500)
        values = engine.query_keys(keys)  # over the limit: straight gather
        assert len(engine.cache) == 0
        assert engine.cache.stats().misses == 0
        np.testing.assert_array_equal(
            values, QueryEngine(snapshot, cache_size=0).query_keys(keys)
        )
        engine.query_keys(keys[:10])  # under the limit: cached as usual
        assert len(engine.cache) > 0


class TestIndexBackedQueries:
    def test_top_pairs_and_neighbors_delegate(self, snapshot):
        engine = QueryEngine(snapshot)
        i, j, est = engine.top_pairs(5)
        np.testing.assert_array_equal(est, snapshot.top_pairs(5)[2])
        feature = int(snapshot.index_i[0])
        partners, nbr_est = engine.top_neighbors(feature, 3)
        np.testing.assert_array_equal(
            nbr_est, snapshot.top_neighbors(feature, 3)[1]
        )

    def test_stats_shape(self, snapshot):
        engine = QueryEngine(snapshot, cache_size=16)
        engine.query_keys(np.arange(4, dtype=np.int64))
        engine.top_pairs(3)
        stats = engine.stats()
        assert stats["queries"] == 2
        assert stats["cache"]["capacity"] == 16
        assert stats["snapshot"]["snapshot_id"] == snapshot.snapshot_id
