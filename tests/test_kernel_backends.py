"""The kernel-backend knob: resolution precedence, fallback, integration.

The compiled (numba) backend is optional: these tests exercise the knob's
*selection contract* deterministically by monkeypatching the package's
one-shot import state, so they pass identically whether or not numba is
installed.  Bit-identity of the compiled kernels themselves is enforced by
``tests/test_fused_kernels.py`` and the conformance suite, which
parametrize over the backends actually importable in the running process.
"""

import io
import json
import logging
import pickle
import types
from dataclasses import replace

import numpy as np
import pytest

import repro.sketch.kernels as kernels
from repro.core.api import build_estimator
from repro.distributed import (
    ShardSpec,
    merge_shard_results,
    sketch_shard,
)
from repro.distributed.shard import spec_from_arrays, spec_to_arrays
from repro.obs.log import configure
from repro.sketch import (
    AugmentedSketch,
    ColdFilterSketch,
    CountMinSketch,
    CountSketch,
    HierarchicalCountSketch,
    available_backends,
    plan,
    resolve_backend,
    save_sketch,
)
from repro.sketch.planner import CapacityPlan
from repro.sketch.serialization import sketch_to_arrays

#: Stand-in for the compiled module: enough surface for selection logic
#: (never called — eligibility tests stop before any kernel runs).
_FAKE_JIT = types.SimpleNamespace(NUMBA_VERSION="0.0-fake")


@pytest.fixture(autouse=True)
def clean_backend_env(monkeypatch):
    """Neutral selection state: no env override, fallback warning armed."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels.reset_fallback_warning()
    yield
    kernels.reset_fallback_warning()


@pytest.fixture
def capture_log():
    stream = io.StringIO()
    handler = configure(
        level="info", stream=stream, logger_name="repro.sketch.kernels"
    )
    yield stream
    logging.getLogger("repro.sketch.kernels").removeHandler(handler)


def _force_numba(monkeypatch, module):
    """Pin the one-shot import state: ``module`` (or None for absent)."""
    monkeypatch.setattr(kernels, "_jit_checked", True)
    monkeypatch.setattr(kernels, "_jit_module", module)


class TestResolveBackend:
    def test_default_is_auto(self, monkeypatch):
        _force_numba(monkeypatch, None)
        assert resolve_backend() == "numpy"
        _force_numba(monkeypatch, _FAKE_JIT)
        assert resolve_backend() == "numba"

    def test_explicit_values(self, monkeypatch):
        _force_numba(monkeypatch, _FAKE_JIT)
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("numba") == "numba"
        assert resolve_backend("auto") == "numba"

    def test_normalisation(self, monkeypatch):
        _force_numba(monkeypatch, None)
        assert resolve_backend("  NumPy ") == "numpy"

    def test_invalid_argument_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_env_overrides_default(self, monkeypatch):
        _force_numba(monkeypatch, _FAKE_JIT)
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert resolve_backend() == "numpy"
        assert resolve_backend(None) == "numpy"

    def test_invalid_env_raises_with_source(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "gpu")
        with pytest.raises(ValueError, match=kernels.ENV_VAR):
            resolve_backend()

    def test_explicit_argument_beats_env(self, monkeypatch):
        # The bench and the cross-backend tests rely on this: under a
        # CI-forced env they can still construct both backends explicitly.
        _force_numba(monkeypatch, _FAKE_JIT)
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert resolve_backend("numba") == "numba"
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        assert resolve_backend("numpy") == "numpy"

    def test_numba_request_without_numba_falls_back(self, monkeypatch):
        _force_numba(monkeypatch, None)
        assert resolve_backend("numba") == "numpy"

    def test_availability_introspection(self, monkeypatch):
        _force_numba(monkeypatch, None)
        assert not kernels.numba_available()
        assert kernels.numba_version() is None
        assert available_backends() == ("numpy",)
        _force_numba(monkeypatch, _FAKE_JIT)
        assert kernels.numba_available()
        assert kernels.numba_version() == "0.0-fake"
        assert available_backends() == ("numpy", "numba")


class TestFallbackWarning:
    def test_fires_exactly_once(self, monkeypatch, capture_log):
        _force_numba(monkeypatch, None)
        assert resolve_backend("numba") == "numpy"
        assert resolve_backend("numba") == "numpy"
        lines = capture_log.getvalue().strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["event"] == "kernels.fallback"
        assert payload["level"] == "warning"
        assert payload["requested"] == "numba"
        assert payload["using"] == "numpy"
        assert payload["via"] == "backend argument"

    def test_env_fallback_names_the_variable(self, monkeypatch, capture_log):
        _force_numba(monkeypatch, None)
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        assert resolve_backend() == "numpy"
        payload = json.loads(capture_log.getvalue().strip())
        assert payload["via"] == f"${kernels.ENV_VAR}"

    def test_auto_fallback_is_silent(self, monkeypatch, capture_log):
        _force_numba(monkeypatch, None)
        assert resolve_backend("auto") == "numpy"
        assert resolve_backend() == "numpy"
        assert capture_log.getvalue() == ""

    def test_rearms_after_reset(self, monkeypatch, capture_log):
        _force_numba(monkeypatch, None)
        resolve_backend("numba")
        kernels.reset_fallback_warning()
        resolve_backend("numba")
        assert len(capture_log.getvalue().strip().splitlines()) == 2


class TestSketchKnob:
    def test_sketches_expose_resolved_backend(self):
        for cls in (CountSketch, CountMinSketch):
            assert cls(3, 64, seed=1).backend in ("numpy", "numba")
            assert cls(3, 64, seed=1, backend="numpy").backend == "numpy"

    def test_numpy_backend_never_arms_jit(self):
        assert CountSketch(3, 64, backend="numpy")._jit_args is None
        assert CountMinSketch(3, 64, backend="numpy")._jit_args is None

    def test_numba_backend_arms_jit_for_eligible_config(self, monkeypatch):
        _force_numba(monkeypatch, _FAKE_JIT)
        sk = CountSketch(3, 64, backend="numba")
        assert sk.backend == "numba" and sk._jit_args is not None
        cm = CountMinSketch(3, 64, backend="numba")
        assert cm.backend == "numba" and cm._jit_args is not None

    def test_ineligible_configs_stay_on_numpy_path(self, monkeypatch):
        _force_numba(monkeypatch, _FAKE_JIT)
        # Non-fused hash family: no combined multiply-shift tables.
        assert CountSketch(3, 64, family="polynomial", backend="numba")._jit_args is None
        # Quantized storage: compiled kernels require float64 counters.
        assert CountSketch(3, 64, dtype="int16", backend="numba")._jit_args is None
        # Conservative count-min: the clamp is inherently a numpy pass.
        cm = CountMinSketch(3, 64, conservative=True, backend="numba")
        assert cm._jit_args is None

    def test_explicit_numba_without_numba_falls_back(self, monkeypatch):
        _force_numba(monkeypatch, None)
        sk = CountSketch(3, 64, backend="numba")
        assert sk.backend == "numpy" and sk._jit_args is None

    def test_env_reaches_default_construction(self, monkeypatch):
        _force_numba(monkeypatch, _FAKE_JIT)
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert CountSketch(3, 64).backend == "numpy"
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        assert CountSketch(3, 64).backend == "numba"

    def test_wrappers_thread_backend(self):
        asketch = AugmentedSketch(3, 64, backend="numpy")
        assert asketch.sketch.backend == "numpy"
        cold = ColdFilterSketch(3, 64, backend="numpy")
        assert cold.sketch.backend == "numpy"
        hcs = HierarchicalCountSketch(3, 64, key_space=1 << 16, backend="numpy")
        assert all(level.backend == "numpy" for level in hcs._levels)

    def test_copy_preserves_backend(self):
        sk = CountSketch(3, 64, backend="numpy")
        assert sk.copy().backend == "numpy"
        cm = CountMinSketch(3, 64, backend="numpy")
        assert cm.copy().backend == "numpy"

    def test_pickle_drops_no_state_and_survives_numba_loss(self, monkeypatch):
        # The sketch must never hold the (unpicklable) compiled module —
        # only the argument tuple.  A sketch pickled on a numba host must
        # unpickle and keep working on a numpy-only host.
        _force_numba(monkeypatch, _FAKE_JIT)
        sk = CountSketch(3, 64, seed=5, backend="numba")
        clone = pickle.loads(pickle.dumps(sk))
        assert clone.backend == "numba" and clone._jit_args is not None
        _force_numba(monkeypatch, None)  # "numpy-only host"
        keys = np.arange(50, dtype=np.int64)
        vals = np.linspace(-1, 1, 50)
        clone.insert(keys, vals)
        ref = CountSketch(3, 64, seed=5, backend="numpy")
        ref.insert(keys, vals)
        np.testing.assert_array_equal(clone.table, ref.table)

    def test_build_estimator_threads_backend(self):
        est = build_estimator("cs", 100, 3, 64, backend="numpy")
        assert est.sketch.backend == "numpy"
        est = build_estimator("asketch", 100, 3, 64, backend="numpy")
        assert est.sketch.sketch.backend == "numpy"
        est = build_estimator("coldfilter", 100, 3, 64, backend="numpy")
        assert est.sketch.sketch.backend == "numpy"


class TestBitIdentityAcrossBackends:
    """Same stream, every importable backend, byte-for-byte equal state.

    Locally this may collapse to numpy-only; in the CI numba leg it is the
    real cross-backend check (the conformance suite extends it to every
    registered sketch kind).
    """

    def test_count_sketch_state_and_queries(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 10**12, size=4000)
        vals = rng.standard_normal(4000)
        probe = rng.integers(0, 10**12, size=512)
        reference = None
        for backend in available_backends():
            sk = CountSketch(5, 1024, seed=3, backend=backend)
            sk.insert(keys, vals)
            sk.insert(keys[:7], vals[:7])  # small batch: the add.at strategy
            est = sk.query(probe)
            live = sk.insert_and_query(keys[:257], vals[:257])
            if reference is None:
                reference = (sk.table.copy(), est, live)
            else:
                np.testing.assert_array_equal(sk.table, reference[0])
                np.testing.assert_array_equal(est, reference[1])
                np.testing.assert_array_equal(live, reference[2])

    def test_count_min_state_and_queries(self):
        rng = np.random.default_rng(12)
        keys = rng.integers(0, 10**12, size=3000)
        vals = np.abs(rng.standard_normal(3000))
        probe = rng.integers(0, 10**12, size=512)
        reference = None
        for backend in available_backends():
            cm = CountMinSketch(3, 1024, seed=3, backend=backend)
            cm.insert(keys, vals)
            est = cm.query(probe)
            if reference is None:
                reference = (cm.table.copy(), est)
            else:
                np.testing.assert_array_equal(cm.table, reference[0])
                np.testing.assert_array_equal(est, reference[1])


class TestSnapshotsAreBackendFree:
    def test_backend_not_serialized(self):
        arrays = sketch_to_arrays(CountSketch(3, 64, backend="numpy"))
        assert not any("backend" in name for name in arrays)

    def test_snapshot_files_byte_identical(self, tmp_path):
        rng = np.random.default_rng(13)
        keys = rng.integers(0, 10**9, size=2000)
        vals = rng.standard_normal(2000)
        blobs = []
        for backend in available_backends():
            sk = CountSketch(3, 256, seed=9, backend=backend)
            sk.insert(keys, vals)
            path = tmp_path / f"{backend}.npz"
            save_sketch(sk, path)
            blobs.append(path.read_bytes())
        assert all(blob == blobs[0] for blob in blobs)


class TestShardSpecBackend:
    def _spec(self, **kwargs):
        kwargs.setdefault("dim", 16)
        kwargs.setdefault("total_samples", 64)
        kwargs.setdefault("num_tables", 3)
        kwargs.setdefault("num_buckets", 64)
        return ShardSpec(**kwargs)

    def test_default_and_validation(self):
        assert self._spec().backend == "auto"
        with pytest.raises(ValueError, match="backend"):
            self._spec(backend="fortran")

    def test_codec_round_trip(self):
        spec = self._spec(backend="numpy")
        assert spec_from_arrays(spec_to_arrays(spec)) == spec

    def test_old_files_pin_numpy(self):
        # Files written before the backend field existed ran the numpy
        # path; restoring them must not silently switch to auto/numba.
        arrays = spec_to_arrays(self._spec())
        del arrays["spec_backend"]
        assert spec_from_arrays(arrays).backend == "numpy"

    def test_build_estimator_uses_spec_backend(self):
        est = self._spec(backend="numpy").build_estimator()
        assert est.sketch.backend == "numpy"

    def test_merge_accepts_backend_mismatch(self):
        # Backends are bit-identical, so shards from hosts with different
        # kernels (or restored legacy "numpy" shards) must merge exactly.
        rng = np.random.default_rng(21)
        samples = [
            (
                np.sort(rng.choice(16, size=4, replace=False)).astype(np.int64),
                rng.standard_normal(4),
            )
            for _ in range(32)
        ]
        spec_a = self._spec(backend="auto")
        spec_b = replace(spec_a, backend="numpy")
        shard_a = sketch_shard(spec_a, samples[:16], shard_index=0, num_shards=2)
        shard_b = sketch_shard(
            spec_b, samples[16:], shard_index=1, num_shards=2, start=16
        )
        mixed = merge_shard_results([shard_a, shard_b])
        uniform = merge_shard_results(
            [
                shard_a,
                sketch_shard(
                    spec_a, samples[16:], shard_index=1, num_shards=2, start=16
                ),
            ]
        )
        np.testing.assert_array_equal(
            mixed.estimator.sketch.table, uniform.estimator.sketch.table
        )

    def test_merge_still_rejects_real_mismatches(self):
        rng = np.random.default_rng(22)
        samples = [
            (np.asarray([0, 1], dtype=np.int64), rng.standard_normal(2))
            for _ in range(8)
        ]
        shard_a = sketch_shard(self._spec(seed=1), samples, num_shards=2)
        shard_b = sketch_shard(
            self._spec(seed=2), samples, shard_index=1, num_shards=2, start=8
        )
        with pytest.raises(ValueError, match="seed"):
            merge_shard_results([shard_a, shard_b])


class TestMemoryBytesReporting:
    def test_tracks_counter_itemsize(self):
        # Regression: memory_bytes used to hardcode 8 bytes/counter, so
        # int16/int32 tiers over-reported their footprint 4x/2x.
        for storage, itemsize in (("int16", 2), ("int32", 4), ("float64", 8)):
            sk = CountSketch(3, 128, dtype=storage, quantum=1e-3)
            assert sk.memory_bytes == 3 * 128 * itemsize
            cm_kwargs = {} if storage == "float64" else {"quantum": 1e-3}
            cm = CountMinSketch(3, 128, dtype=storage, **cm_kwargs)
            assert cm.memory_bytes == 3 * 128 * itemsize

    def test_matches_plan_prediction(self):
        p = plan(n_features=1000, budget_mb=0.25)
        assert p.storage == "int16"
        sketch = p.build_sketch(seed=1)
        assert p.measured_bytes_per_counter(sketch) == p.predicted_bytes_per_counter
        assert sketch.memory_bytes == p.predicted_total_bytes


class TestPlanBackend:
    def test_plan_resolves_backend(self):
        p = plan(n_features=1000, budget_mb=0.25)
        assert p.kernel_backend == resolve_backend(None)
        report = p.to_dict()
        assert report["kernel_backend"] == p.kernel_backend
        assert "kernels" in report["throughput_note"]

    def test_throughput_note_flags_quantized_plans(self):
        base = plan(n_features=1000, budget_mb=0.25)
        numba_int16 = replace(base, kernel_backend="numba")
        assert "numpy path" in numba_int16.throughput_note
        numba_f64 = replace(
            base, kernel_backend="numba", storage="float64", quantum=None
        )
        assert "compiled" in numba_f64.throughput_note

    def test_build_sketch_override(self):
        p = plan(n_features=1000, budget_mb=0.25)
        assert p.build_sketch(seed=1, backend="numpy").backend == "numpy"
