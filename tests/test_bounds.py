"""Tests for the theory bounds (repro.theory.bounds)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.bounds import (
    ProblemModel,
    collision_free_probability,
    collision_inflation,
    omega_squared,
    saturation_probability,
    snr_count_sketch,
    theorem1_miss_probability,
    theorem2_escape_probability,
    theorem3_snr_lower_bound,
    theorem3_snr_ratio,
)


def model(**overrides) -> ProblemModel:
    base = dict(
        p=499_500,
        alpha=0.005,
        u=0.5,
        sigma=1.0,
        T=6000,
        num_tables=5,
        num_buckets=24_975,
    )
    base.update(overrides)
    return ProblemModel(**base)


class TestProblemModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            model(alpha=0.0)
        with pytest.raises(ValueError):
            model(alpha=1.0)
        with pytest.raises(ValueError):
            model(u=0.0)
        with pytest.raises(ValueError):
            model(sigma=-1.0)
        with pytest.raises(ValueError):
            model(T=0)
        with pytest.raises(ValueError):
            model(num_tables=0)
        with pytest.raises(ValueError):
            model(p=0)

    def test_with_(self):
        m = model().with_(u=0.9)
        assert m.u == 0.9 and m.p == 499_500


class TestCollisionTerms:
    def test_p0_formula(self):
        m = model()
        expected = math.exp((m.p - 1) * math.log1p(-m.alpha / m.num_buckets))
        assert collision_free_probability(m) == pytest.approx(expected)

    def test_p0_no_underflow_at_trillion_scale(self):
        m = model(p=10**14, num_buckets=10**8, alpha=1e-7)
        p0 = collision_free_probability(m)
        assert 0.0 <= p0 <= 1.0

    def test_saturation_between_0_and_1(self):
        assert 0.0 < saturation_probability(model()) < 1.0

    def test_saturation_grows_with_tables(self):
        assert saturation_probability(model(num_tables=10)) > saturation_probability(
            model(num_tables=1)
        )

    def test_kappa_single_table_exact_form(self):
        m = model(num_tables=1)
        expected = math.sqrt(
            1.0 + (m.p - 1) * (1 - m.alpha) / (m.num_buckets - m.alpha)
        )
        assert collision_inflation(m) == pytest.approx(expected)

    def test_kappa_multi_table_smaller(self):
        # More tables -> median shrinks the collision noise.
        assert collision_inflation(model(num_tables=5)) < collision_inflation(
            model(num_tables=1)
        )

    def test_kappa_decreases_with_buckets(self):
        assert collision_inflation(model(num_buckets=10**6)) < collision_inflation(
            model(num_buckets=10**4)
        )


class TestTheorem1:
    def test_in_unit_interval(self):
        for t0 in (10, 100, 1000, 6000):
            v = theorem1_miss_probability(model(), t0, 1e-4)
            assert 0.0 <= v <= 1.0

    def test_decreasing_in_t0(self):
        m = model()
        values = [
            theorem1_miss_probability(m, t0, 1e-4) for t0 in (50, 200, 1000, 5000)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_decreasing_in_u(self):
        assert theorem1_miss_probability(
            model(u=1.0), 500, 1e-4
        ) <= theorem1_miss_probability(model(u=0.2), 500, 1e-4)

    def test_floor_is_saturation(self):
        m = model()
        floor = saturation_probability(m) - 1e-12
        assert theorem1_miss_probability(m, m.T, 0.0) >= floor

    def test_zero_t0_is_certain_miss(self):
        assert theorem1_miss_probability(model(), 0, 1e-4) == 1.0

    def test_increasing_in_tau0(self):
        m = model()
        assert theorem1_miss_probability(m, 500, 1e-2) >= theorem1_miss_probability(
            m, 500, 1e-5
        )


class TestTheorem2:
    def test_in_unit_interval(self):
        m = model()
        for theta in (0.01, 0.1, 0.3, 0.49):
            v = theorem2_escape_probability(m, 600, 1e-4, theta)
            assert 0.0 <= v <= 1.0

    def test_rejects_theta_out_of_range(self):
        with pytest.raises(ValueError):
            theorem2_escape_probability(model(), 600, 1e-4, 0.6)
        with pytest.raises(ValueError):
            theorem2_escape_probability(model(), 600, 1e-4, -0.1)

    def test_small_theta_low_risk(self):
        # A barely-rising threshold rarely filters a signal.
        v = theorem2_escape_probability(model(), 600, 0.0, 1e-6)
        assert v < 0.05

    def test_aggressive_theta_higher_risk(self):
        m = model()
        gentle = theorem2_escape_probability(m, 600, 0.0, 0.05)
        aggressive = theorem2_escape_probability(m, 600, 0.0, 0.49)
        assert aggressive >= gentle

    def test_omega_k1_vs_k5(self):
        assert omega_squared(model(num_tables=5)) <= omega_squared(model(num_tables=1))


class TestTheorem3:
    def test_snr_cs_formula(self):
        m = model()
        expected = m.alpha * (m.u**2 + m.sigma**2) / ((1 - m.alpha) * m.sigma**2)
        assert snr_count_sketch(m) == pytest.approx(expected)

    def test_ratio_grows_with_t(self):
        m = model()
        r1 = theorem3_snr_ratio(m, 1000, 600, 0.2, 0.2)
        r2 = theorem3_snr_ratio(m, 5000, 600, 0.2, 0.2)
        assert r2 >= r1

    def test_ratio_at_t0(self):
        # At t = T0 the Phi term is Phi(0) = 1/2, so the denominator is
        # 0.5 p0^K + (1 - p0^K).
        m = model()
        p0k = collision_free_probability(m) ** m.num_tables
        expected = (1 - 0.2) / (0.5 * p0k + (1 - p0k))
        r = theorem3_snr_ratio(m, 600, 600, 0.2, 0.2)
        assert r == pytest.approx(expected, rel=1e-6)

    def test_plateau_value(self):
        # As t -> inf the ratio approaches (1-delta*)/(1-p0^K).
        m = model()
        p0k = collision_free_probability(m) ** m.num_tables
        limit = (1 - 0.2) / (1 - p0k)
        r = theorem3_snr_ratio(m, 10**9, 600, 0.2, 0.2)
        assert r == pytest.approx(limit, rel=1e-3)

    def test_lower_bound_is_ratio_times_cs(self):
        m = model()
        assert theorem3_snr_lower_bound(m, 2000, 600, 0.2, 0.2) == pytest.approx(
            theorem3_snr_ratio(m, 2000, 600, 0.2, 0.2) * snr_count_sketch(m)
        )

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            theorem3_snr_ratio(model(), 100, 600, 0.2, 0.2)  # t < t0
        with pytest.raises(ValueError):
            theorem3_snr_ratio(model(), 1000, 600, 0.2, 1.5)


class TestBoundProperties:
    @given(
        st.integers(min_value=100, max_value=10**7),
        st.floats(min_value=1e-4, max_value=0.2),
        st.floats(min_value=0.05, max_value=2.0),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_probabilities_valid(self, p, alpha, u, k):
        m = ProblemModel(
            p=p, alpha=alpha, u=u, sigma=1.0, T=2000, num_tables=k,
            num_buckets=max(2, p // 20),
        )
        assert 0.0 <= theorem1_miss_probability(m, 200, 1e-4) <= 1.0
        assert 0.0 <= theorem2_escape_probability(m, 200, 1e-4, u * 0.5) <= 1.0
        assert 0.0 <= saturation_probability(m) <= 1.0
        assert theorem3_snr_ratio(m, 500, 200, u * 0.5, 0.5) > 0.0
