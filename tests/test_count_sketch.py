"""Tests for CountSketch (repro.sketch.count_sketch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.count_sketch import CountSketch


class TestConstruction:
    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            CountSketch(0, 10)
        with pytest.raises(ValueError):
            CountSketch(3, 0)

    def test_memory_accounting(self):
        cs = CountSketch(5, 1000)
        assert cs.memory_floats == 5000
        assert cs.memory_bytes == 40_000


class TestExactRecovery:
    def test_few_keys_wide_table(self, small_sketch):
        # With R=4096 and 20 keys, collisions are essentially impossible in
        # the median of 5 tables.
        keys = np.arange(20)
        values = np.linspace(-5, 5, 20)
        small_sketch.insert(keys, values)
        est = small_sketch.query(keys)
        np.testing.assert_allclose(est, values, atol=1e-12)

    def test_accumulation(self, small_sketch):
        keys = np.arange(10)
        values = np.ones(10)
        for _ in range(7):
            small_sketch.insert(keys, values)
        np.testing.assert_allclose(small_sketch.query(keys), 7.0, atol=1e-12)

    def test_duplicate_keys_in_batch_sum(self, small_sketch):
        keys = np.array([3, 3, 3, 8])
        values = np.array([1.0, 2.0, 4.0, 9.0])
        small_sketch.insert(keys, values)
        assert small_sketch.query_single(3) == pytest.approx(7.0)
        assert small_sketch.query_single(8) == pytest.approx(9.0)

    def test_negative_values(self, small_sketch):
        small_sketch.insert(np.array([5]), np.array([-3.25]))
        assert small_sketch.query_single(5) == pytest.approx(-3.25)


class TestScatterPaths:
    def test_small_and_large_batches_agree(self):
        # The add.at path (tiny batch) and the bincount path (large batch)
        # must produce identical tables.
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 10**9, size=3000)
        values = rng.standard_normal(3000)

        a = CountSketch(3, 512, seed=1)
        a.insert(keys, values)  # large batch -> bincount

        b = CountSketch(3, 512, seed=1)
        for n in range(0, 3000, 5):
            b.insert(keys[n : n + 5], values[n : n + 5])  # tiny -> add.at
        np.testing.assert_allclose(a.table, b.table, atol=1e-9)

    def test_empty_insert_is_noop(self, small_sketch):
        before = small_sketch.table.copy()
        small_sketch.insert(np.empty(0, dtype=np.int64), np.empty(0))
        np.testing.assert_array_equal(small_sketch.table, before)

    def test_empty_query(self, small_sketch):
        assert small_sketch.query(np.empty(0, dtype=np.int64)).size == 0


class TestValidation:
    def test_mismatched_lengths(self, small_sketch):
        with pytest.raises(ValueError, match="align"):
            small_sketch.insert(np.array([1, 2]), np.array([1.0]))

    def test_negative_keys(self, small_sketch):
        with pytest.raises(ValueError, match="non-negative"):
            small_sketch.insert(np.array([-1]), np.array([1.0]))

    def test_2d_rejected(self, small_sketch):
        with pytest.raises(ValueError, match="1-D"):
            small_sketch.insert(np.ones((2, 2), dtype=np.int64), np.ones((2, 2)))


class TestLinearity:
    @given(
        st.integers(min_value=0, max_value=2**40),
        st.floats(-100, 100),
        st.floats(-100, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_insert_additivity(self, key, v1, v2):
        cs = CountSketch(3, 256, seed=2)
        cs.insert(np.array([key]), np.array([v1]))
        cs.insert(np.array([key]), np.array([v2]))
        single = CountSketch(3, 256, seed=2)
        single.insert(np.array([key]), np.array([v1 + v2]))
        np.testing.assert_allclose(cs.table, single.table, atol=1e-9)

    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 10**6, size=2000)
        values = rng.standard_normal(2000)

        full = CountSketch(4, 300, seed=3)
        full.insert(keys, values)

        part1 = CountSketch(4, 300, seed=3)
        part2 = CountSketch(4, 300, seed=3)
        part1.insert(keys[:1000], values[:1000])
        part2.insert(keys[1000:], values[1000:])
        part1.merge(part2)
        np.testing.assert_allclose(part1.table, full.table, atol=1e-9)

    def test_merge_incompatible(self):
        a = CountSketch(4, 300, seed=3)
        with pytest.raises(ValueError, match="mergeable"):
            a.merge(CountSketch(4, 300, seed=4))
        with pytest.raises(ValueError, match="mergeable"):
            a.merge(CountSketch(4, 301, seed=3))
        with pytest.raises(ValueError, match="mergeable"):
            a.merge(CountSketch(5, 300, seed=3))

    def test_scale(self, small_sketch):
        small_sketch.insert(np.array([1]), np.array([4.0]))
        small_sketch.scale(0.25)
        assert small_sketch.query_single(1) == pytest.approx(1.0)

    def test_reset(self, small_sketch):
        small_sketch.insert(np.array([1]), np.array([4.0]))
        small_sketch.reset()
        assert small_sketch.l2_norm() == 0.0

    def test_copy_is_independent(self, small_sketch):
        small_sketch.insert(np.array([1]), np.array([4.0]))
        clone = small_sketch.copy()
        clone.insert(np.array([1]), np.array([1.0]))
        assert small_sketch.query_single(1) == pytest.approx(4.0)
        assert clone.query_single(1) == pytest.approx(5.0)


class TestMedianEstimate:
    def test_median_robust_to_one_bad_table(self):
        # Corrupt one table manually; the median over K=5 must not move.
        cs = CountSketch(5, 1024, seed=9)
        cs.insert(np.arange(10), np.full(10, 2.0))
        cs.table[0] += 100.0
        est = cs.query(np.arange(10))
        np.testing.assert_allclose(est, 2.0, atol=1e-12)

    def test_query_per_table_shape(self):
        cs = CountSketch(4, 64, seed=1)
        cs.insert(np.arange(5), np.ones(5))
        per = cs.query_per_table(np.arange(5))
        assert per.shape == (4, 5)
        np.testing.assert_allclose(np.median(per, axis=0), cs.query(np.arange(5)))


class TestStatisticalAccuracy:
    def test_heavy_hitter_recovery_under_noise(self):
        # One strong key among many weak ones: the estimate error should be
        # much smaller than the heavy value.
        rng = np.random.default_rng(11)
        cs = CountSketch(5, 2000, seed=13)
        noise_keys = rng.integers(10, 10**8, size=50_000)
        noise_vals = rng.standard_normal(50_000) * 0.1
        cs.insert(noise_keys, noise_vals)
        cs.insert(np.array([3]), np.array([50.0]))
        est = cs.query_single(3)
        assert abs(est - 50.0) < 5.0

    def test_unseen_keys_near_zero(self):
        rng = np.random.default_rng(17)
        cs = CountSketch(5, 4096, seed=19)
        cs.insert(rng.integers(0, 10**6, size=1000), rng.standard_normal(1000))
        unseen = cs.query(np.arange(10**7, 10**7 + 200))
        assert np.median(np.abs(unseen)) < 0.5
