"""DecayedSketch: lazy-scale decay semantics, flush invariance, merge laws.

The exactness tests use ``gamma = 0.5`` and integer-valued updates: every
scale product, flush and counter sum is then an exact float operation, so
"equal up to decay algebra" sharpens to bit-for-bit equality — the same
technique the PR-2 merge-law tests use for counter summation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import (
    AugmentedSketch,
    CountMinSketch,
    CountSketch,
    DecayedSketch,
    decay_from_half_life,
    load_sketch,
    save_sketch,
)


def _integer_updates(rng, n, key_space=10**6, lo=-9, hi=9):
    keys = rng.integers(0, key_space, size=n).astype(np.int64)
    values = rng.integers(lo, hi, size=n).astype(np.float64)
    return keys, values


def _fresh(seed=5):
    return DecayedSketch(CountSketch(5, 2048, seed=seed), 0.5)


class TestDecaySemantics:
    def test_single_key_halves_per_tick(self):
        sketch = _fresh()
        sketch.insert(np.asarray([42]), np.asarray([8.0]))
        assert sketch.query_single(42) == 8.0
        sketch.tick()
        assert sketch.query_single(42) == 4.0
        sketch.tick(2)
        assert sketch.query_single(42) == 1.0

    def test_mixed_ages_weight_correctly(self):
        sketch = _fresh()
        sketch.insert(np.asarray([7]), np.asarray([8.0]))
        sketch.tick(2)  # 8 -> 2
        sketch.insert(np.asarray([7]), np.asarray([1.0]))
        assert sketch.query_single(7) == 3.0
        sketch.tick()  # 3 -> 1.5
        assert sketch.query_single(7) == 1.5

    def test_gamma_one_is_transparent(self, rng):
        keys, values = _integer_updates(rng, 500)
        plain = CountSketch(5, 2048, seed=5)
        wrapped = DecayedSketch(CountSketch(5, 2048, seed=5), 1.0)
        plain.insert(keys, values)
        wrapped.insert(keys, values)
        wrapped.tick(100)
        np.testing.assert_array_equal(
            wrapped.query(keys), plain.query(keys)
        )

    def test_matches_manually_predecayed_inserts(self, rng):
        """Decayed content == inserting each batch pre-scaled by its age."""
        batches = [_integer_updates(rng, 200) for _ in range(6)]
        decayed = _fresh()
        for keys, values in batches:
            decayed.insert(keys, values)
            decayed.tick()
        # Reference: batch b (0-based) has age (len - 1 - b) at the end...
        # plus the final tick ages everything once more, so age = len - b.
        reference = CountSketch(5, 2048, seed=5)
        for age_exp, (keys, values) in zip(
            range(len(batches), 0, -1), batches
        ):
            reference.insert(keys, values * 0.5**age_exp)
        probe = np.unique(np.concatenate([k for k, _ in batches]))
        np.testing.assert_array_equal(
            decayed.query(probe), reference.query(probe)
        )

    def test_tick_is_lazy(self):
        sketch = _fresh()
        sketch.insert(np.asarray([1]), np.asarray([4.0]))
        table_before = sketch.sketch.table.copy()
        sketch.tick(3)
        np.testing.assert_array_equal(sketch.sketch.table, table_before)
        assert sketch.pending_scale == 0.5**3

    def test_flush_changes_nothing_observable(self, rng):
        keys, values = _integer_updates(rng, 300)
        lazy = _fresh()
        eager = _fresh()
        for step in range(5):
            lazy.insert(keys, values)
            eager.insert(keys, values)
            lazy.tick(3)
            eager.tick(3)
            eager.flush()
        np.testing.assert_array_equal(lazy.query(keys), eager.query(keys))

    def test_automatic_flush_below_threshold(self):
        sketch = DecayedSketch(
            CountSketch(3, 256, seed=1), 0.5, flush_below=2.0**-8
        )
        sketch.insert(np.asarray([3]), np.asarray([256.0]))
        sketch.tick(10)  # crosses the flush bound on the way down
        assert sketch.pending_scale >= 2.0**-8
        assert sketch.query_single(3) == 256.0 * 0.5**10

    def test_insert_and_query_matches_separate_calls(self, rng):
        keys, values = _integer_updates(rng, 400)
        fused = _fresh()
        split = _fresh()
        fused.tick(4)
        split.tick(4)
        out = fused.insert_and_query(keys, values)
        split.insert(keys, values)
        np.testing.assert_array_equal(out, split.query(keys))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="gamma"):
            DecayedSketch(CountSketch(3, 64), 0.0)
        with pytest.raises(ValueError, match="gamma"):
            DecayedSketch(CountSketch(3, 64), 1.5)
        with pytest.raises(ValueError, match="num_ticks"):
            _fresh().tick(-1)
        with pytest.raises(ValueError, match="cap"):
            DecayedSketch(CountMinSketch(3, 64, cap=10.0), 0.5)
        assert decay_from_half_life(1.0) == 0.5
        with pytest.raises(ValueError, match="half_life"):
            decay_from_half_life(0.0)


class TestBackingKinds:
    def test_count_min_backing(self, rng):
        keys = rng.integers(0, 10**6, size=300).astype(np.int64)
        values = rng.integers(0, 9, size=300).astype(np.float64)
        decayed = DecayedSketch(CountMinSketch(4, 1024, seed=2), 0.5)
        plain = CountMinSketch(4, 1024, seed=2)
        decayed.insert(keys, values)
        plain.insert(keys, values)
        decayed.tick(2)
        np.testing.assert_array_equal(
            decayed.query(keys), plain.query(keys) * 0.25
        )

    def test_augmented_backing_filter_decays_too(self):
        inner = AugmentedSketch(3, 512, filter_capacity=4, seed=3)
        decayed = DecayedSketch(inner, 0.5)
        # Drive one key hot enough to be promoted into the exact filter.
        for _ in range(5):
            decayed.insert(np.asarray([11]), np.asarray([16.0]))
        assert 11 in inner._filter
        before = decayed.query_single(11)
        decayed.tick(2)
        assert decayed.query_single(11) == before * 0.25
        # A flush must fold the scale into the filter values as well.
        decayed.flush()
        assert decayed.query_single(11) == before * 0.25


class TestMergeLaw:
    def _filled(self, rng, ticks):
        sketch = _fresh()
        for _ in range(3):
            keys, values = _integer_updates(rng, 200)
            sketch.insert(keys, values)
            sketch.tick(ticks)
        return sketch

    def test_merge_is_associative_bit_for_bit(self):
        rng = np.random.default_rng(99)
        probe = rng.integers(0, 10**6, size=500).astype(np.int64)
        # (a + b) + c
        rng = np.random.default_rng(99)
        a, b, c = (self._filled(rng, 2) for _ in range(3))
        left = a.merge(b).merge(c)
        # a + (b + c), rebuilt from the same stream
        rng = np.random.default_rng(99)
        a2, b2, c2 = (self._filled(rng, 2) for _ in range(3))
        right = a2.merge(b2.merge(c2))
        np.testing.assert_array_equal(
            left.sketch.table, right.sketch.table
        )
        np.testing.assert_array_equal(left.query(probe), right.query(probe))

    def test_merge_matches_single_stream(self):
        """Merging clock-aligned halves == one sketch fed both halves."""
        rng = np.random.default_rng(7)
        ka, va = _integer_updates(rng, 400)
        kb, vb = _integer_updates(rng, 400)
        a = _fresh()
        b = _fresh()
        both = _fresh()
        a.insert(ka, va)
        b.insert(kb, vb)
        both.insert(ka, va)
        both.insert(kb, vb)
        for sketch in (a, b, both):
            sketch.tick(3)
        merged = a.merge(b)
        probe = np.concatenate([ka, kb])
        np.testing.assert_array_equal(merged.query(probe), both.query(probe))

    def test_merge_requires_same_gamma_and_clock(self):
        a = _fresh()
        b = DecayedSketch(CountSketch(5, 2048, seed=5), 0.25)
        with pytest.raises(ValueError, match="gamma"):
            a.merge(b)
        c = _fresh()
        c.tick(3)
        with pytest.raises(ValueError, match="clock-aligned"):
            a.merge(c)
        with pytest.raises(ValueError, match="DecayedSketch"):
            a.merge(CountSketch(5, 2048, seed=5))


class TestLifecycle:
    def test_copy_is_independent(self):
        sketch = _fresh()
        sketch.insert(np.asarray([5]), np.asarray([4.0]))
        sketch.tick()
        clone = sketch.copy()
        assert clone.query_single(5) == sketch.query_single(5)
        sketch.insert(np.asarray([5]), np.asarray([1.0]))
        assert clone.query_single(5) == 2.0
        assert sketch.query_single(5) == 3.0

    def test_freeze_blocks_writes_allows_reads(self):
        sketch = _fresh()
        sketch.insert(np.asarray([5]), np.asarray([4.0]))
        sketch.tick()
        frozen = sketch.copy().freeze()
        assert frozen.query_single(5) == 2.0
        with pytest.raises(ValueError):
            frozen.insert(np.asarray([5]), np.asarray([1.0]))

    def test_reset_clears_clock_and_scale(self):
        sketch = _fresh()
        sketch.insert(np.asarray([5]), np.asarray([4.0]))
        sketch.tick(4)
        sketch.reset()
        assert sketch.ticks == 0
        assert sketch.pending_scale == 1.0
        assert sketch.query_single(5) == 0.0

    def test_serialization_round_trip(self, tmp_path, rng):
        keys, values = _integer_updates(rng, 500)
        sketch = _fresh()
        sketch.insert(keys, values)
        sketch.tick(3)
        path = tmp_path / "decayed.npz"
        save_sketch(sketch, path)
        loaded = load_sketch(path)
        assert isinstance(loaded, DecayedSketch)
        assert loaded.gamma == sketch.gamma
        assert loaded.ticks == sketch.ticks
        np.testing.assert_array_equal(loaded.query(keys), sketch.query(keys))
        # Further use behaves identically: tick + insert + merge-compatible.
        loaded.tick()
        sketch.tick()
        loaded.insert(keys, values)
        sketch.insert(keys, values)
        np.testing.assert_array_equal(loaded.query(keys), sketch.query(keys))
