"""Tests for the evaluation harness (repro.evaluation.harness)."""

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.synthetic import BlockCorrelationModel
from repro.data.url_like import URLLikeStream
from repro.evaluation.harness import (
    rank_all_pairs,
    run_method,
    run_sparse_method,
    sparse_pilot,
)
from repro.sketch.count_sketch import CountSketch


@pytest.fixture(scope="module")
def small_dense():
    model = BlockCorrelationModel.from_alpha(60, alpha=0.02, seed=21)
    return model, model.sample(800)


class TestRankAllPairs:
    def test_sorted_and_complete(self, small_dense):
        _, data = small_dense
        n, d = data.shape
        est = SketchEstimator(CountSketch(5, 4096, seed=1), n)
        sk = CovarianceSketcher(d, est, batch_size=100)
        sk.fit_dense(data)
        keys, vals = rank_all_pairs(sk)
        p = d * (d - 1) // 2
        assert keys.size == p
        assert sorted(keys.tolist()) == list(range(p))
        assert (np.diff(vals) <= 1e-12).all()


class TestRunMethod:
    @pytest.mark.parametrize("method", ["cs", "ascs", "asketch", "coldfilter"])
    def test_all_methods_run(self, small_dense, method):
        _, data = small_dense
        run = run_method(data, method, 3000, alpha=0.02, seed=1, batch_size=100)
        assert run.method == method
        assert run.ranked_keys.size == 60 * 59 // 2
        assert run.fit_seconds > 0
        assert 0 < run.acceptance_rate <= 1.0

    def test_ascs_attaches_plan(self, small_dense):
        _, data = small_dense
        run = run_method(data, "ascs", 3000, alpha=0.02, seed=1, batch_size=100)
        assert run.plan is not None

    def test_explicit_u_sigma(self, small_dense):
        _, data = small_dense
        run = run_method(
            data, "ascs", 3000, alpha=0.02, u=0.6, sigma=1.0, seed=1, batch_size=100
        )
        assert run.plan is not None

    def test_ascs_filters(self, small_dense):
        _, data = small_dense
        run = run_method(data, "ascs", 3000, alpha=0.02, seed=1, batch_size=50)
        assert run.acceptance_rate < 1.0

    def test_recovers_planted_signals(self, small_dense):
        model, data = small_dense
        run = run_method(data, "ascs", 6000, alpha=model.alpha, seed=2, batch_size=50)
        top = set(run.ranked_keys[:10].tolist())
        planted = set(model.signal_pairs().tolist())
        assert len(top & planted) >= 7


class TestSparsePilot:
    def test_positive_sigma(self):
        stream = URLLikeStream(dim=500, num_samples=300, num_groups=5,
                               group_size=4, background_nnz=10, seed=3)
        sigma = sparse_pilot(iter(stream), 500, num_pilot=100)
        assert sigma > 0

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            sparse_pilot(iter([]), 100)


class TestRunSparseMethod:
    @pytest.mark.parametrize("method", ["cs", "ascs"])
    def test_runs_and_returns_topk(self, method):
        stream = URLLikeStream(dim=800, num_samples=600, num_groups=8,
                               group_size=4, group_prob=0.5, member_prob=0.95,
                               background_nnz=12, seed=5)
        keys, ests, run = run_sparse_method(
            lambda: iter(stream), 800, 600, method, 2000,
            alpha=1e-4, u=0.5, top_k=20, track_top=200, seed=1,
        )
        assert keys.size <= 20
        assert run.fit_seconds > 0
        if method == "ascs":
            assert run.plan is not None

    def test_finds_planted_pairs(self):
        stream = URLLikeStream(dim=800, num_samples=1500, num_groups=8,
                               group_size=4, group_prob=0.6, member_prob=0.95,
                               background_nnz=12, seed=6)
        keys, _, _ = run_sparse_method(
            lambda: iter(stream), 800, 1500, "cs", 20_000,
            alpha=1e-4, u=0.5, top_k=30, track_top=500, seed=2,
        )
        planted = set(stream.planted_pair_keys().tolist())
        overlap = len(set(keys.tolist()) & planted)
        assert overlap >= 15
