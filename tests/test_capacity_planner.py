"""Tests for the capacity planner (repro.sketch.planner)."""

import numpy as np
import pytest

from repro.core.api import sketch_correlations
from repro.data.synthetic import BlockCorrelationModel
from repro.sketch.planner import plan


class TestPlanShape:
    def test_default_recommends_int16(self):
        p = plan(10**6, 64)
        assert p.storage == "int16"
        assert p.predicted_bytes_per_counter == 2.0
        assert p.quantum is not None and p.quantum > 0
        # int16 buys ~4x the buckets of float64 at the same budget.
        assert p.counters_vs_float64 == pytest.approx(4.0, rel=0.01)
        assert p.predicted_snr_gain_db == pytest.approx(6.02, abs=0.1)

    def test_budget_is_respected(self):
        p = plan(1000, 8)
        assert p.predicted_total_bytes <= 8 * (1 << 20)
        # and not grossly under-used either
        assert p.predicted_total_bytes >= 0.99 * 8 * (1 << 20)

    def test_bigger_budget_more_buckets(self):
        assert plan(1000, 64).num_buckets > plan(1000, 8).num_buckets

    def test_pinned_storage_wins(self):
        p = plan(1000, 8, storage="float64")
        assert p.storage == "float64"
        assert p.quantum is None
        assert p.counters_vs_float64 == pytest.approx(1.0)

    def test_tight_tolerance_forces_wider_storage(self):
        # int16's relative step is ~3.8e-5 at headroom 1.25; demanding
        # finer than that must push the pick off the narrowest rung.
        p = plan(1000, 8, quantization_tolerance=1e-6)
        assert p.storage != "int16"

    def test_target_f1_maps_to_tolerance(self):
        assert plan(1000, 8, target_f1=0.9).storage == "int16"

    def test_value_range_sets_quantum(self):
        narrow = plan(1000, 8, value_range=1.0)
        wide = plan(1000, 8, value_range=100.0)
        assert wide.quantum == pytest.approx(100.0 * narrow.quantum)

    def test_pow2_buckets(self):
        p = plan(1000, 8, pow2_buckets=True)
        assert p.num_buckets & (p.num_buckets - 1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan(1, 8)
        with pytest.raises(ValueError):
            plan(1000, 0)
        with pytest.raises(ValueError):
            plan(1000, 8, target_f1=1.5)
        with pytest.raises(ValueError):
            plan(1000, 8, storage="int8")


class TestPlanToSketch:
    def test_build_sketch_matches_prediction(self):
        p = plan(10_000, 2)
        sketch = p.build_sketch(seed=5)
        assert sketch.num_buckets == p.num_buckets
        assert sketch.storage_dtype == np.dtype(p.storage)
        assert sketch.quantum == p.quantum
        assert p.measured_bytes_per_counter(sketch) == p.predicted_bytes_per_counter
        assert sketch.memory_bytes == p.predicted_total_bytes

    def test_measured_tracks_promotion(self):
        p = plan(100, 0.001, value_range=1.0)  # tiny table, int16
        sketch = p.build_sketch()
        # Saturate it: measured bytes/counter must report the widened cost.
        sketch.insert(np.array([1]), np.array([p.quantum * (2**16)]))
        assert p.measured_bytes_per_counter(sketch) > p.predicted_bytes_per_counter

    def test_quantum_leaves_headroom(self):
        p = plan(1000, 8, value_range=1.0)
        sketch = p.build_sketch()
        # A counter at the declared value range must not promote.
        sketch.insert(np.array([7]), np.array([1.0]))
        assert sketch.storage_dtype == np.int16


class TestPlannerQuickstartFlow:
    """The README flow: plan -> fit -> query, on a planned storage tier."""

    def test_plan_fit_retrieve(self):
        from repro.hashing.pairs import pair_to_index

        model = BlockCorrelationModel.from_alpha(60, alpha=0.05, seed=3)
        data = model.sample(800, rng=np.random.default_rng(4))
        p = plan(60, 0.05, num_tables=5)
        assert p.storage == "int16"
        result = sketch_correlations(
            data,
            p.total_counters,
            method="cs",
            num_tables=p.num_tables,
            storage=p.storage,
            quantum=p.quantum,
            top_k=20,
            seed=9,
        )
        # The planned (quantized) run retrieves real signal pairs.
        truth = set(model.signal_pairs().tolist())
        got = set(
            pair_to_index(result.pairs_i, result.pairs_j, 60).tolist()
        )
        assert len(truth & got) >= 10
        assert result.sketcher.estimator.sketch.memory_bytes <= 0.05 * (1 << 20) * 1.01
