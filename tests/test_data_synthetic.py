"""Tests for the simulation data model (repro.data.synthetic)."""

import numpy as np
import pytest

from repro.data.synthetic import BlockCorrelationModel, plan_group_layout
from repro.hashing.pairs import index_to_pair, num_pairs


class TestPlanGroupLayout:
    def test_hits_target_roughly(self):
        d, alpha = 500, 0.005
        g, m = plan_group_layout(d, alpha)
        achieved = m * g * (g - 1) / 2 / num_pairs(d)
        assert achieved == pytest.approx(alpha, rel=0.5)

    def test_respects_feature_budget(self):
        for alpha in (0.001, 0.01, 0.05, 0.1):
            g, m = plan_group_layout(400, alpha)
            assert m * g <= 0.85 * 400

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            plan_group_layout(100, 0.0)
        with pytest.raises(ValueError):
            plan_group_layout(100, 1.0)


class TestModelConstruction:
    def test_from_alpha(self):
        model = BlockCorrelationModel.from_alpha(200, alpha=0.01, seed=0)
        assert model.alpha == pytest.approx(0.01, rel=0.5)
        assert (model.rhos >= 0.5).all() and (model.rhos < 1.0).all()

    def test_rho_range_respected(self):
        model = BlockCorrelationModel.from_alpha(
            200, alpha=0.01, rho_range=(0.2, 0.4), seed=0
        )
        assert (model.rhos >= 0.2).all() and (model.rhos <= 0.4).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            BlockCorrelationModel(10, 5, 3, np.full(3, 0.5))
        with pytest.raises(ValueError, match="rhos"):
            BlockCorrelationModel(100, 5, 3, np.full(2, 0.5))
        with pytest.raises(ValueError, match="inside"):
            BlockCorrelationModel(100, 5, 3, np.array([0.5, 1.0, 0.5]))


class TestTrueCorrelation:
    def test_structure(self):
        model = BlockCorrelationModel(20, 4, 2, np.array([0.7, 0.9]), seed=1)
        corr = model.true_correlation()
        np.testing.assert_allclose(np.diag(corr), 1.0)
        assert corr[0, 1] == 0.7
        assert corr[4, 7] == 0.9
        assert corr[0, 4] == 0.0  # across blocks
        assert corr[10, 11] == 0.0  # noise features

    def test_signal_pairs_match_matrix(self):
        model = BlockCorrelationModel(30, 3, 3, np.array([0.6, 0.7, 0.8]), seed=1)
        corr = model.true_correlation()
        keys = model.signal_pairs()
        assert keys.size == model.num_signal_pairs == 9
        i, j = index_to_pair(keys, 30)
        assert (corr[i, j] >= 0.6).all()

    def test_signal_strength_is_min_rho(self):
        model = BlockCorrelationModel(30, 3, 2, np.array([0.62, 0.81]), seed=1)
        assert model.signal_strength == pytest.approx(0.62)


class TestSampling:
    def test_shape_and_standardisation(self):
        model = BlockCorrelationModel.from_alpha(100, alpha=0.01, seed=2)
        data = model.sample(4000)
        assert data.shape == (4000, 100)
        np.testing.assert_allclose(data.mean(axis=0), 0.0, atol=0.1)
        np.testing.assert_allclose(data.std(axis=0), 1.0, atol=0.1)

    def test_empirical_matches_population_correlation(self):
        model = BlockCorrelationModel(40, 4, 3, np.array([0.5, 0.7, 0.9]), seed=3)
        data = model.sample(20_000)
        emp = np.corrcoef(data.T)
        truth = model.true_correlation()
        # Planted blocks within sampling error
        np.testing.assert_allclose(emp[0, 1], truth[0, 1], atol=0.05)
        np.testing.assert_allclose(emp[4, 6], truth[4, 6], atol=0.05)
        np.testing.assert_allclose(emp[8, 11], truth[8, 11], atol=0.05)
        # Off-block near zero
        assert abs(emp[0, 20]) < 0.05

    def test_reproducible_with_seed(self):
        a = BlockCorrelationModel.from_alpha(50, alpha=0.02, seed=9).sample(10)
        b = BlockCorrelationModel.from_alpha(50, alpha=0.02, seed=9).sample(10)
        np.testing.assert_array_equal(a, b)

    def test_external_rng(self):
        model = BlockCorrelationModel.from_alpha(50, alpha=0.02, seed=9)
        rng = np.random.default_rng(4)
        data = model.sample(10, rng)
        assert data.shape == (10, 50)
