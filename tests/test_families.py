"""Tests for the universal hash families (repro.hashing.families)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.families import (
    FAMILY_NAMES,
    MERSENNE_PRIME_61,
    MultiplyShiftHash,
    PolynomialHash,
    SignHash,
    TabulationHash,
    _mulmod_mersenne61,
    make_family,
)


class TestMulmodMersenne61:
    @given(
        st.integers(min_value=0, max_value=MERSENNE_PRIME_61 - 1),
        st.integers(min_value=0, max_value=MERSENNE_PRIME_61 - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_python_bigint(self, a, b):
        got = _mulmod_mersenne61(
            np.asarray([a], dtype=np.uint64), np.asarray([b], dtype=np.uint64)
        )[0]
        assert int(got) == (a * b) % MERSENNE_PRIME_61

    def test_edge_operands(self):
        p = MERSENNE_PRIME_61
        cases = [(0, 0), (1, p - 1), (p - 1, p - 1), (2**32, 2**32), (p - 1, 1)]
        for a, b in cases:
            got = _mulmod_mersenne61(
                np.asarray([a], dtype=np.uint64), np.asarray([b], dtype=np.uint64)
            )[0]
            assert int(got) == (a * b) % p

    def test_vectorised(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, MERSENNE_PRIME_61, size=1000, dtype=np.uint64)
        b = rng.integers(0, MERSENNE_PRIME_61, size=1000, dtype=np.uint64)
        got = _mulmod_mersenne61(a, b)
        for n in range(0, 1000, 97):
            assert int(got[n]) == (int(a[n]) * int(b[n])) % MERSENNE_PRIME_61


@pytest.mark.parametrize("name", FAMILY_NAMES)
class TestFamilyContracts:
    def test_range(self, name):
        h = make_family(name, 97, seed=1)
        keys = np.arange(10_000, dtype=np.uint64)
        buckets = h(keys)
        assert buckets.dtype == np.int64
        assert buckets.min() >= 0 and buckets.max() < 97

    def test_deterministic(self, name):
        keys = np.random.default_rng(2).integers(0, 2**63, size=500)
        h1 = make_family(name, 1024, seed=42)
        h2 = make_family(name, 1024, seed=42)
        assert (h1(keys) == h2(keys)).all()

    def test_seeds_differ(self, name):
        keys = np.arange(2000, dtype=np.uint64)
        h1 = make_family(name, 1024, seed=1)
        h2 = make_family(name, 1024, seed=2)
        assert (h1(keys) != h2(keys)).any()

    def test_roughly_uniform(self, name):
        # Chi-square-ish sanity: no bucket should be wildly over-loaded.
        R = 64
        h = make_family(name, R, seed=3)
        keys = np.arange(64_000, dtype=np.uint64)
        counts = np.bincount(h(keys), minlength=R)
        assert counts.max() < 2.0 * 64_000 / R

    def test_single_bucket(self, name):
        h = make_family(name, 1, seed=1)
        assert (h(np.arange(100, dtype=np.uint64)) == 0).all()

    def test_accepts_int64_keys(self, name):
        h = make_family(name, 50, seed=5)
        a = h(np.arange(100, dtype=np.int64))
        b = h(np.arange(100, dtype=np.uint64))
        assert (a == b).all()

    def test_invalid_buckets(self, name):
        with pytest.raises(ValueError):
            make_family(name, 0, seed=1)


class TestPolynomialHash:
    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialHash(10, seed=1, degree=0)

    def test_higher_degree_works(self):
        h = PolynomialHash(101, seed=4, degree=4)
        buckets = h(np.arange(5000, dtype=np.uint64))
        assert buckets.min() >= 0 and buckets.max() < 101

    def test_pairwise_independence_statistic(self):
        # For 2-independent hashing, P[h(x)=h(y)] ~ 1/R over seeds.
        R = 32
        x, y = np.uint64(123456), np.uint64(987654)
        hits = sum(
            PolynomialHash(R, seed=s)(np.asarray([x, y]))[0]
            == PolynomialHash(R, seed=s)(np.asarray([y]))[0]
            for s in range(600)
        )
        assert hits / 600 == pytest.approx(1 / R, abs=0.03)


class TestTabulationHash:
    def test_differs_on_single_byte_flip(self):
        h = TabulationHash(1 << 30, seed=9)
        a = h(np.asarray([0x0102030405060708], dtype=np.uint64))
        b = h(np.asarray([0x0102030405060709], dtype=np.uint64))
        assert a[0] != b[0]


class TestSignHash:
    def test_values_are_plus_minus_one(self):
        s = SignHash(seed=11)
        signs = s(np.arange(10_000, dtype=np.uint64))
        assert set(np.unique(signs).tolist()) == {-1.0, 1.0}

    def test_balanced(self):
        s = SignHash(seed=13)
        signs = s(np.arange(100_000, dtype=np.uint64))
        assert abs(signs.mean()) < 0.02

    def test_deterministic(self):
        keys = np.arange(1000, dtype=np.uint64)
        assert (SignHash(seed=3)(keys) == SignHash(seed=3)(keys)).all()


def test_make_family_unknown_name():
    with pytest.raises(ValueError, match="unknown hash family"):
        make_family("sha256", 10, seed=0)


def test_multiply_shift_is_fast_path_default():
    h = MultiplyShiftHash(1000, seed=0)
    assert h.num_buckets == 1000
