"""Windowed serving: PaneRing write side behind ServingEstimator + HTTP.

The serving read path is unchanged — these tests pin the integration
contract: snapshots materialise the *current window* (not the whole
stream), swaps stay atomic, and ``window_span`` / ``decay`` metadata flows
through ``stats()`` and the HTTP ``/stats`` route.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.shard import ShardSpec
from repro.serving import ServingEstimator
from repro.serving.http import ServingClient, serve_in_background

DIM = 800
BATCH = 8


@pytest.fixture
def spec():
    return ShardSpec(
        dim=DIM,
        total_samples=4096,
        batch_size=BATCH,
        num_tables=3,
        num_buckets=512,
        seed=5,
        mode="covariance",
        track_top=64,
    )


def _stream(rng, n, nnz=5):
    return [
        (
            np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64),
            rng.integers(-6, 7, size=nnz).astype(np.float64),
        )
        for _ in range(n)
    ]


class TestWindowedServing:
    def test_snapshot_serves_current_window(self, spec, rng):
        serving = ServingEstimator.windowed(
            spec, num_panes=3, pane_samples=2 * BATCH, top_index=64
        )
        samples = _stream(rng, 8 * BATCH)
        serving.ingest_sparse(samples)
        serving.refresh()

        window = serving.sketcher.window()
        probe = rng.integers(0, window.num_pairs, size=500).astype(np.int64)
        np.testing.assert_array_equal(
            serving.query_keys(probe), window.estimate_keys(probe)
        )
        # The snapshot covers the window's samples, not the whole stream.
        assert serving.snapshot.samples_seen == serving.sketcher.window_span
        assert serving.sketcher.samples_seen == 8 * BATCH

    def test_refresh_every_uses_total_ingest_position(self, spec, rng):
        serving = ServingEstimator.windowed(
            spec,
            num_panes=2,
            pane_samples=2 * BATCH,
            top_index=16,
            refresh_every=4 * BATCH,
        )
        serving.ingest_sparse(_stream(rng, 4 * BATCH))
        assert serving.swap_count == 1
        # Another full window's worth triggers exactly one more swap even
        # though window_span (what the snapshot reports) never exceeds the
        # retained panes.
        serving.ingest_sparse(_stream(rng, 4 * BATCH))
        assert serving.swap_count == 2

    def test_stats_expose_window_metadata(self, spec, rng):
        serving = ServingEstimator.windowed(
            spec, num_panes=3, pane_samples=2 * BATCH, top_index=16
        )
        serving.ingest_sparse(_stream(rng, 5 * BATCH))
        serving.refresh()
        stats = serving.stats()
        assert stats["window_span"] == 5 * BATCH
        assert stats["decay"] is None
        window = stats["window"]
        assert window["num_panes"] == 3
        assert window["pane_samples"] == 2 * BATCH
        assert window["rotations"] == 2
        assert window["served_window_span"] == 5 * BATCH

    def test_export_hook_merges_off_lock(self, spec, rng):
        """The pane merge must not run under the serving write lock.

        ``PaneRing.export_snapshot_state`` holds the lock only for the
        pane extraction; the merge runs on the extracted (immutable)
        panes.  Equivalence: the exported state answers exactly like the
        materialised window.
        """
        import threading

        ring = ServingEstimator.windowed(
            spec, num_panes=3, pane_samples=2 * BATCH
        ).sketcher
        ring.ingest(_stream(rng, 5 * BATCH))

        lock = threading.Lock()
        acquired_during_merge = []
        original_panes = ring.panes

        def instrumented_panes():
            acquired_during_merge.append(lock.locked())
            return original_panes()

        ring.panes = instrumented_panes
        state = ring.export_snapshot_state(lock=lock)
        # The extraction saw the lock held; by the time the hook returned
        # the lock was released again (merge ran outside it).
        assert acquired_during_merge == [True]
        assert not lock.locked()
        probe = rng.integers(0, 10_000, size=200).astype(np.int64)
        np.testing.assert_array_equal(
            state["sketch"].query(probe),
            ring.window().estimator.sketch.query(probe),
        )

    def test_dense_ingest_rejected(self, spec):
        serving = ServingEstimator.windowed(
            spec, num_panes=2, pane_samples=BATCH
        )
        with pytest.raises(NotImplementedError, match="sparse-only"):
            serving.ingest_dense(np.zeros((2, DIM)))


class TestWindowedHTTP:
    def test_stats_route_carries_window_and_ingest_rotates(self, spec, rng):
        serving = ServingEstimator.windowed(
            spec, num_panes=2, pane_samples=2 * BATCH, top_index=16
        )
        serving.ingest_sparse(_stream(rng, 2 * BATCH))
        serving.refresh()
        server, _ = serve_in_background(serving)
        try:
            client = ServingClient(server.url)
            stats = client.stats()
            assert stats["window_span"] == 2 * BATCH
            assert stats["window"]["pane_samples"] == 2 * BATCH
            assert stats["decay"] is None

            # Ingest over HTTP crosses a pane boundary; /refresh swaps.
            client.ingest(_stream(rng, 2 * BATCH))
            refreshed = client.refresh()
            assert refreshed["swap_count"] == 2
            stats = client.stats()
            assert stats["window"]["rotations"] >= 1
            assert stats["write_samples_seen"] == 4 * BATCH

            # Queries answer from the served window snapshot.
            window = serving.sketcher.window()
            probe = rng.integers(0, window.num_pairs, size=50).astype(np.int64)
            np.testing.assert_array_equal(
                client.query_keys(probe), serving.query_keys(probe)
            )
        finally:
            server.shutdown()
