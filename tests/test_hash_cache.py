"""Tests for the CountSketch hash cache (dense-path optimisation)."""

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.sketch.count_sketch import CountSketch


class TestCacheCorrectness:
    def test_cached_and_uncached_queries_identical(self, rng):
        keys = np.arange(5000, dtype=np.int64)
        values = rng.standard_normal(5000)

        plain = CountSketch(5, 1024, seed=3)
        plain.insert(keys.copy(), values)  # different object: no cache hit

        cached = CountSketch(5, 1024, seed=3)
        cached.cache_keys(keys)
        cached.insert(keys, values)  # same object: cache hit

        np.testing.assert_allclose(cached.table, plain.table, atol=1e-12)
        np.testing.assert_allclose(
            cached.query(keys), plain.query(keys.copy()), atol=1e-12
        )

    def test_other_arrays_bypass_cache(self, rng):
        keys = np.arange(100, dtype=np.int64)
        sk = CountSketch(3, 256, seed=1)
        sk.cache_keys(keys)
        other = rng.integers(0, 10**9, size=50)
        sk.insert(other, np.ones(50))
        # Queries on arbitrary keys must be correct despite the cache.
        assert sk.query(other).shape == (50,)
        twin = CountSketch(3, 256, seed=1)
        twin.insert(other, np.ones(50))
        np.testing.assert_allclose(sk.query(other), twin.query(other), atol=1e-12)

    def test_identity_preserved_through_validation(self):
        # np.asarray on an int64 array returns the same object, so the cache
        # hits even though insert() runs validation first.
        keys = np.arange(64, dtype=np.int64)
        assert np.asarray(keys, dtype=np.int64) is keys

    def test_float_keys_do_not_false_hit(self):
        keys = np.arange(64, dtype=np.int64)
        sk = CountSketch(3, 128, seed=2)
        sk.cache_keys(keys)
        float_keys = keys.astype(np.float64)
        sk.insert(float_keys, np.ones(64))  # coerced to a NEW int64 array
        assert sk.query_single(0) == pytest.approx(1.0)


class TestPipelineIntegration:
    def test_dense_pipeline_populates_cache_and_matches(self, rng):
        d, n = 40, 300
        data = rng.standard_normal((n, d))

        est_cached = SketchEstimator(CountSketch(3, 2048, seed=4), n)
        sk = CovarianceSketcher(d, est_cached, mode="covariance", batch_size=32)
        sk.fit_dense(data)
        assert est_cached.sketch._cached_keys is not None

        est_plain = SketchEstimator(CountSketch(3, 2048, seed=4), n)
        # bypass caching by exceeding nothing — force distinct key arrays
        p = d * (d - 1) // 2
        for start in range(0, n, 32):
            batch = data[start : start + 32]
            from repro.covariance.updates import dense_batch_products

            est_plain.ingest(
                np.arange(p, dtype=np.int64),  # fresh array each call
                dense_batch_products(batch),
                num_samples=len(batch),
            )
        np.testing.assert_allclose(
            est_cached.sketch.table, est_plain.sketch.table, atol=1e-9
        )
