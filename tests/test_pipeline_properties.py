"""Property-based tests (hypothesis) for pipeline-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.covariance.updates import dense_batch_products, triu_pair_values
from repro.sketch.count_sketch import CountSketch


def _estimator(total, seed=0):
    return SketchEstimator(CountSketch(3, 4096, seed=seed), total)


class TestSparseDenseEquivalence:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(5, 12))
    @settings(max_examples=25, deadline=None)
    def test_paths_agree_on_random_data(self, seed, d):
        """For any dataset, streaming it sparse or dense yields the same
        sketch content (covariance mode)."""
        rng = np.random.default_rng(seed)
        n = 30
        dense = np.where(
            rng.random((n, d)) < 0.4, rng.standard_normal((n, d)), 0.0
        )
        samples = []
        for row in dense:
            idx = np.nonzero(row)[0]
            samples.append((idx, row[idx]))

        est_a = _estimator(n, seed=1)
        CovarianceSketcher(d, est_a, mode="covariance", batch_size=7).fit_dense(dense)
        est_b = _estimator(n, seed=1)
        CovarianceSketcher(d, est_b, mode="covariance", batch_size=7).fit_sparse(
            iter(samples)
        )
        np.testing.assert_allclose(est_a.sketch.table, est_b.sketch.table, atol=1e-9)

    @given(st.integers(min_value=0, max_value=10**6), st.sampled_from([1, 3, 8, 25]))
    @settings(max_examples=25, deadline=None)
    def test_batch_size_invariance_for_cs(self, seed, batch_size):
        """Vanilla CS content is exactly batch-size invariant (linearity)."""
        rng = np.random.default_rng(seed)
        n, d = 25, 8
        dense = rng.standard_normal((n, d))

        est_a = _estimator(n, seed=2)
        CovarianceSketcher(d, est_a, mode="covariance", batch_size=batch_size).fit_dense(dense)
        est_b = _estimator(n, seed=2)
        CovarianceSketcher(d, est_b, mode="covariance", batch_size=n).fit_dense(dense)
        np.testing.assert_allclose(est_a.sketch.table, est_b.sketch.table, atol=1e-9)


class TestUpdateAlgebra:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_batch_products_additive(self, seed):
        """Pair products over a concatenated batch = sum over sub-batches."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((3, 6))
        combined = dense_batch_products(np.vstack([a, b]))
        np.testing.assert_allclose(
            combined,
            dense_batch_products(a) + dense_batch_products(b),
            atol=1e-10,
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_products_symmetric_under_feature_scaling_sign(self, seed):
        """Negating a feature negates exactly its pairs' products."""
        rng = np.random.default_rng(seed)
        batch = rng.standard_normal((5, 6))
        flipped = batch.copy()
        flipped[:, 2] *= -1
        base = dense_batch_products(batch)
        neg = dense_batch_products(flipped)
        mask = np.zeros((6, 6), dtype=bool)
        mask[2, :] = True
        mask[:, 2] = True
        flat_mask = triu_pair_values(mask.astype(float)) > 0
        np.testing.assert_allclose(neg[flat_mask], -base[flat_mask], atol=1e-10)
        np.testing.assert_allclose(neg[~flat_mask], base[~flat_mask], atol=1e-10)


class TestEstimateUnbiasedness:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_mean_estimate_over_seeds_tracks_truth(self, seed):
        """Averaged over hash seeds, the CS estimate of a planted pair's
        covariance is close to the truth (unbiasedness of count sketch)."""
        rng = np.random.default_rng(seed)
        n, d = 200, 10
        dense = rng.standard_normal((n, d))
        dense[:, 1] = 0.7 * dense[:, 0] + np.sqrt(1 - 0.49) * dense[:, 1]
        truth = float(dense[:, 0] @ dense[:, 1] / n)

        estimates = []
        for hash_seed in range(8):
            est = SketchEstimator(CountSketch(1, 16, seed=hash_seed), n)
            CovarianceSketcher(d, est, mode="covariance", batch_size=50).fit_dense(dense)
            estimates.append(est.estimate(np.asarray([0]))[0])
        # Single-table, tiny R: individual estimates are noisy but the mean
        # over independent hash draws concentrates near the truth.
        assert abs(np.mean(estimates) - truth) < 1.0
