"""Tests for the streaming pipeline (repro.covariance.pipeline)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.covariance.running import ExactCovariance
from repro.covariance.updates import triu_pair_values
from repro.sketch.count_sketch import CountSketch


def make_estimator(total, *, tables=5, buckets=8192, seed=0, track=0):
    return SketchEstimator(
        CountSketch(tables, buckets, seed=seed), total, track_top=track
    )


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            CovarianceSketcher(10, None, mode="magic")

    def test_bad_centering(self):
        with pytest.raises(ValueError, match="centering"):
            CovarianceSketcher(10, None, centering="magic")

    def test_bad_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            CovarianceSketcher(10, None, batch_size=0)

    def test_wrong_shape(self):
        sk = CovarianceSketcher(10, make_estimator(5))
        with pytest.raises(ValueError, match="expected shape"):
            sk.fit_dense(np.ones((5, 9)))

    def test_sparse_rejects_centering(self):
        sk = CovarianceSketcher(10, make_estimator(5), centering="running")
        with pytest.raises(ValueError, match="centering"):
            sk.fit_sparse(iter([]))


class TestDenseCovarianceAccuracy:
    def test_uncentered_estimates_match_second_moments(self, rng):
        # Zero-mean data: E[YaYb] == Cov(Ya, Yb); wide sketch -> near-exact.
        d, n = 12, 600
        data = rng.standard_normal((n, d))
        est = make_estimator(n)
        sk = CovarianceSketcher(d, est, mode="covariance", centering="none", batch_size=50)
        sk.fit_dense(data)
        truth = triu_pair_values(data.T @ data / n)
        got = sk.estimate_keys(np.arange(truth.size))
        np.testing.assert_allclose(got, truth, atol=1e-8)

    def test_running_centering_approximates_covariance(self, rng):
        d, n = 10, 2000
        data = rng.standard_normal((n, d)) + 5.0  # large mean: centering matters
        est = make_estimator(n)
        sk = CovarianceSketcher(d, est, mode="covariance", centering="running", batch_size=50)
        sk.fit_dense(data)
        truth = triu_pair_values(np.cov(data.T, bias=True))
        got = sk.estimate_keys(np.arange(truth.size))
        # Early batches are centered with immature means; tolerance is loose.
        assert np.abs(got - truth).max() < 0.2

    def test_exact_centering_matches_exact_covariance(self, rng):
        d, n = 8, 60
        data = rng.standard_normal((n, d)) + 3.0
        est = make_estimator(n)
        sk = CovarianceSketcher(d, est, mode="covariance", centering="exact", batch_size=16)
        sk.fit_dense(data)
        exact = ExactCovariance(d)
        exact.update(data)
        truth = triu_pair_values(exact.covariance())
        got = sk.estimate_keys(np.arange(truth.size))
        np.testing.assert_allclose(got, truth, atol=1e-8)

    def test_correlation_mode_estimates_correlations(self, rng):
        d, n = 10, 4000
        scales = np.linspace(1, 10, d)
        data = rng.standard_normal((n, d)) * scales
        data[:, 1] = data[:, 0] * 0.8 + data[:, 1] * 0.6  # plant corr ~0.8
        est = make_estimator(n)
        sk = CovarianceSketcher(d, est, mode="correlation", centering="none", batch_size=100)
        sk.fit_dense(data)
        truth = triu_pair_values(np.corrcoef(data.T))
        got = sk.estimate_keys(np.arange(truth.size))
        assert np.abs(got - truth).max() < 0.1
        # the planted pair is clearly the top estimate
        assert np.argmax(got) == np.argmax(truth)


class TestSparsePath:
    def test_sparse_equals_dense_on_same_data(self, rng):
        d, n = 15, 200
        dense = np.zeros((n, d))
        samples = []
        for row in range(n):
            nnz = rng.integers(2, 6)
            idx = np.sort(rng.choice(d, size=nnz, replace=False))
            vals = rng.standard_normal(nnz)
            dense[row, idx] = vals
            samples.append((idx, vals))

        est_a = make_estimator(n, seed=3)
        sk_a = CovarianceSketcher(d, est_a, mode="covariance", batch_size=16)
        sk_a.fit_dense(dense)

        est_b = make_estimator(n, seed=3)
        sk_b = CovarianceSketcher(d, est_b, mode="covariance", batch_size=16)
        sk_b.fit_sparse(iter(samples))

        keys = np.arange(d * (d - 1) // 2)
        np.testing.assert_allclose(
            sk_a.estimate_keys(keys), sk_b.estimate_keys(keys), atol=1e-8
        )

    def test_csr_dispatch(self, rng):
        d, n = 15, 100
        dense = (rng.random((n, d)) < 0.2) * rng.standard_normal((n, d))
        csr = sp.csr_matrix(dense)

        est_a = make_estimator(n, seed=4)
        CovarianceSketcher(d, est_a, mode="covariance", batch_size=8).fit(csr)
        est_b = make_estimator(n, seed=4)
        CovarianceSketcher(d, est_b, mode="covariance", batch_size=8).fit_dense(dense)

        keys = np.arange(d * (d - 1) // 2)
        np.testing.assert_allclose(
            est_a.estimate(keys), est_b.estimate(keys), atol=1e-8
        )

    def test_fit_dispatch_rejects_unknown(self):
        sk = CovarianceSketcher(10, make_estimator(5))
        with pytest.raises(TypeError):
            sk.fit(42)

    def test_samples_seen_tracked(self, rng):
        d, n = 8, 37
        sk = CovarianceSketcher(d, make_estimator(n), batch_size=10)
        sk.fit_dense(rng.standard_normal((n, d)))
        assert sk.samples_seen == n


class TestRetrieval:
    def test_top_pairs_scan(self, rng):
        d, n = 20, 2000
        data = rng.standard_normal((n, d))
        data[:, 3] = data[:, 7] * 0.9 + 0.436 * data[:, 3]
        est = make_estimator(n)
        sk = CovarianceSketcher(d, est, mode="correlation", batch_size=100)
        sk.fit_dense(data)
        i, j, vals = sk.top_pairs(1, scan=True)
        assert (int(i[0]), int(j[0])) == (3, 7)
        assert vals[0] == pytest.approx(0.9, abs=0.1)

    def test_top_pairs_tracker(self, rng):
        d, n = 20, 2000
        data = rng.standard_normal((n, d))
        data[:, 3] = data[:, 7] * 0.9 + 0.436 * data[:, 3]
        est = make_estimator(n, track=50)
        sk = CovarianceSketcher(d, est, mode="correlation", batch_size=100)
        sk.fit_dense(data)
        i, j, _ = sk.top_pairs(1, scan=False)
        assert (int(i[0]), int(j[0])) == (3, 7)

    def test_estimate_pairs(self, rng):
        d, n = 10, 500
        data = rng.standard_normal((n, d))
        est = make_estimator(n)
        sk = CovarianceSketcher(d, est, mode="covariance", batch_size=50)
        sk.fit_dense(data)
        vals = sk.estimate_pairs(np.array([0, 1]), np.array([5, 2]))
        assert vals.shape == (2,)
