"""Tests for pair-product updates and the section-4 adjustment term."""

import numpy as np
import pytest

from repro.covariance.running import ExactCovariance, RunningMoments
from repro.covariance.updates import (
    adjustment_matrix,
    aggregate_pair_updates,
    dense_batch_products,
    sparse_sample_pairs,
    triu_pair_values,
)
from repro.hashing.pairs import pair_to_index


class TestTriuPairValues:
    def test_alignment_with_pair_keys(self):
        # triu extraction must match the canonical flat pair ordering.
        d = 6
        mat = np.arange(d * d, dtype=float).reshape(d, d)
        flat = triu_pair_values(mat)
        for i in range(d):
            for j in range(i + 1, d):
                key = int(pair_to_index(i, j, d))
                assert flat[key] == mat[i, j]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            triu_pair_values(np.ones((2, 3)))

    def test_length(self):
        assert triu_pair_values(np.eye(10)).size == 45


class TestDenseBatchProducts:
    def test_matches_manual_sum(self, rng):
        batch = rng.standard_normal((7, 5))
        got = dense_batch_products(batch)
        manual = np.zeros(10)
        for row in batch:
            manual += triu_pair_values(np.outer(row, row))
        np.testing.assert_allclose(got, manual, atol=1e-10)

    def test_centering(self, rng):
        batch = rng.standard_normal((7, 5)) + 10
        center = np.full(5, 10.0)
        got = dense_batch_products(batch, center=center)
        manual = dense_batch_products(batch - center)
        np.testing.assert_allclose(got, manual, atol=1e-10)

    def test_single_row(self, rng):
        row = rng.standard_normal(4)
        got = dense_batch_products(row)
        np.testing.assert_allclose(got, triu_pair_values(np.outer(row, row)))


class TestAdjustmentTerm:
    def test_keeps_exact_centered_sums(self, rng):
        """The core claim of section 4: per-sample centered products plus
        the adjustment equal the exactly centered co-moment at every t."""
        d = 6
        data = rng.standard_normal((40, d)) + rng.standard_normal(d)
        moments = RunningMoments(d)
        exact = ExactCovariance(d)
        accumulated = np.zeros(d * (d - 1) // 2)
        for t, row in enumerate(data, start=1):
            mean_old = moments.mean
            moments.update(row[None, :])
            mean_new = moments.mean
            centered = row - mean_new
            accumulated += triu_pair_values(np.outer(centered, centered))
            accumulated += adjustment_matrix(mean_old, mean_new, t - 1)
            exact.update(row[None, :])
            expected = triu_pair_values(exact.covariance() * t)
            np.testing.assert_allclose(accumulated, expected, atol=1e-8)

    def test_adjustment_vanishes_for_stable_mean(self):
        d = 4
        mean = np.ones(d)
        adj = adjustment_matrix(mean, mean, 10)
        np.testing.assert_allclose(adj, 0.0, atol=1e-15)

    def test_adjustment_shrinks_with_t(self, rng):
        """Section 4: 'when t is large enough, the adjustment is very small'."""
        d = 5
        data = rng.standard_normal((3000, d))
        moments = RunningMoments(d)
        norms = []
        for t, row in enumerate(data, start=1):
            mean_old = moments.mean
            moments.update(row[None, :])
            if t in (10, 3000):
                adj = adjustment_matrix(mean_old, moments.mean, t - 1)
                norms.append(np.abs(adj).max())
        assert norms[1] < norms[0]


class TestSparseSamplePairs:
    def test_matches_dense_products(self, rng):
        d = 30
        idx = np.array([3, 11, 27, 8])
        vals = rng.standard_normal(4)
        keys, products = sparse_sample_pairs(idx, vals, d)
        dense = np.zeros(d)
        dense[idx] = vals
        full = dense_batch_products(dense)
        expected_keys = np.nonzero(full)[0]
        assert sorted(keys.tolist()) == sorted(expected_keys.tolist())
        lookup = dict(zip(keys.tolist(), products.tolist()))
        for key in expected_keys:
            assert lookup[int(key)] == pytest.approx(full[key])

    def test_unsorted_input_handled(self):
        keys1, vals1 = sparse_sample_pairs(
            np.array([9, 2, 5]), np.array([1.0, 2.0, 3.0]), 20
        )
        keys2, vals2 = sparse_sample_pairs(
            np.array([2, 5, 9]), np.array([2.0, 3.0, 1.0]), 20
        )
        order1, order2 = np.argsort(keys1), np.argsort(keys2)
        np.testing.assert_array_equal(keys1[order1], keys2[order2])
        np.testing.assert_allclose(vals1[order1], vals2[order2])

    def test_fewer_than_two_nonzeros(self):
        keys, vals = sparse_sample_pairs(np.array([5]), np.array([1.0]), 10)
        assert keys.size == 0 and vals.size == 0

    def test_pair_count(self):
        m = 9
        keys, _ = sparse_sample_pairs(
            np.arange(m) * 3, np.ones(m), 100
        )
        assert keys.size == m * (m - 1) // 2

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="align"):
            sparse_sample_pairs(np.array([1, 2]), np.array([1.0]), 10)


class TestAggregatePairUpdates:
    def test_sums_duplicates(self):
        keys, sums = aggregate_pair_updates(
            [np.array([5, 9]), np.array([9, 2])],
            [np.array([1.0, 2.0]), np.array([3.0, 4.0])],
        )
        lookup = dict(zip(keys.tolist(), sums.tolist()))
        assert lookup == {2: 4.0, 5: 1.0, 9: 5.0}

    def test_keys_sorted_unique(self, rng):
        lists = [rng.integers(0, 50, size=30) for _ in range(4)]
        vals = [rng.standard_normal(30) for _ in range(4)]
        keys, _ = aggregate_pair_updates(lists, vals)
        assert (np.diff(keys) > 0).all()

    def test_empty_inputs(self):
        keys, sums = aggregate_pair_updates([], [])
        assert keys.size == 0 and sums.size == 0
        keys, sums = aggregate_pair_updates(
            [np.empty(0, dtype=np.int64)], [np.empty(0)]
        )
        assert keys.size == 0 and sums.size == 0
