"""Zero-copy mmap snapshot loading and the read-only-mmap write guard.

A serving process must be able to map a multi-GB snapshot in O(1): the
counter table stays on disk and pages fault in per query.  These tests pin
the three guarantees that make that safe — bit-identity with the eager
load, genuine zero-copy (the table's base chain reaches an ``np.memmap``),
and the frozen-table guard firing on every write path into a mapped table.
"""

import numpy as np
import pytest

from repro.covariance.pipeline import CovarianceSketcher
from repro.core.estimator import SketchEstimator
from repro.serving.snapshot import CheckpointManager, SketchSnapshot
from repro.sketch.count_sketch import CountSketch
from repro.sketch.serialization import load_sketch, mmap_npz_array, save_sketch


def _fitted_sketcher(seed=2, dim=40, n=96, dtype="float64", quantum=None):
    est = SketchEstimator(
        CountSketch(3, 512, seed=seed, dtype=dtype, quantum=quantum),
        n,
        track_top=64,
    )
    sketcher = CovarianceSketcher(dim, est, mode="covariance", batch_size=8)
    rng = np.random.default_rng(seed)
    sketcher.fit_dense(rng.standard_normal((n, dim)))
    return sketcher


def _is_memmap_backed(array) -> bool:
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


class TestMmapSnapshotLoad:
    @pytest.fixture
    def saved(self, tmp_path):
        snapshot = SketchSnapshot.from_sketcher(_fitted_sketcher())
        path = tmp_path / "snap.npz"
        snapshot.save(path)
        return snapshot, path

    def test_bit_identical_to_eager_load(self, saved):
        snapshot, path = saved
        eager = SketchSnapshot.load(path)
        mapped = SketchSnapshot.load(path, mmap=True)
        keys = np.arange(snapshot.num_pairs, dtype=np.int64)
        np.testing.assert_array_equal(
            mapped.query_keys(keys), eager.query_keys(keys)
        )
        for k in (1, 10, 50):
            for a, b in zip(mapped.top_pairs(k), eager.top_pairs(k)):
                np.testing.assert_array_equal(a, b)

    def test_table_is_memmap_backed(self, saved):
        _, path = saved
        mapped = SketchSnapshot.load(path, mmap=True)
        assert _is_memmap_backed(mapped.sketch.table)
        # The eager load materializes — the opposite invariant.
        assert not _is_memmap_backed(SketchSnapshot.load(path).sketch.table)

    def test_guard_fires_on_mapped_insert(self, saved):
        """Satellite regression: the frozen-table guard must reject writes
        into read-only mmap views, not just explicitly frozen tables."""
        _, path = saved
        mapped = SketchSnapshot.load(path, mmap=True)
        with pytest.raises(ValueError, match="read-only"):
            mapped.sketch.insert(np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError, match="read-only"):
            mapped.sketch.merge(mapped.sketch)
        with pytest.raises(ValueError, match="read-only"):
            mapped.sketch.reset()

    def test_compressed_snapshot_raises_clear_error(self, tmp_path):
        snapshot = SketchSnapshot.from_sketcher(_fitted_sketcher())
        path = tmp_path / "snap.npz"
        snapshot.save(path, compress=True)
        # Eager load still works on compressed archives...
        SketchSnapshot.load(path)
        # ...but mmap needs stored members, and must say so.
        with pytest.raises(ValueError, match="compress=False"):
            SketchSnapshot.load(path, mmap=True)

    def test_quantized_snapshot_maps(self, tmp_path):
        sketcher = _fitted_sketcher(dtype="int16", quantum=2.0**-12)
        snapshot = SketchSnapshot.from_sketcher(sketcher)
        path = tmp_path / "q.npz"
        snapshot.save(path)
        mapped = SketchSnapshot.load(path, mmap=True)
        assert mapped.sketch.storage_dtype == np.int16
        assert _is_memmap_backed(mapped.sketch.table)
        keys = np.arange(snapshot.num_pairs, dtype=np.int64)
        np.testing.assert_array_equal(
            mapped.query_keys(keys), snapshot.query_keys(keys)
        )

    def test_checkpoint_manager_mmap_load(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpts", retain=2)
        snapshot = SketchSnapshot.from_sketcher(_fitted_sketcher())
        manager.save(snapshot)
        mapped = manager.load_latest(mmap=True)
        assert _is_memmap_backed(mapped.sketch.table)
        keys = np.arange(min(500, snapshot.num_pairs), dtype=np.int64)
        np.testing.assert_array_equal(
            mapped.query_keys(keys), snapshot.query_keys(keys)
        )


class TestSketchLevelMmap:
    def test_load_sketch_mmap(self, tmp_path, rng):
        sketch = CountSketch(3, 256, seed=6)
        sketch.insert(rng.integers(0, 10**6, size=1000), rng.standard_normal(1000))
        path = str(tmp_path / "sk.npz")
        save_sketch(sketch, path, compress=False)
        mapped = load_sketch(path, mmap=True)
        assert _is_memmap_backed(mapped.table)
        probe = rng.integers(0, 10**6, size=300)
        np.testing.assert_array_equal(mapped.query(probe), sketch.query(probe))
        with pytest.raises(ValueError, match="read-only"):
            mapped.insert(np.array([1]), np.array([1.0]))

    def test_mmap_npz_array_matches_np_load(self, tmp_path, rng):
        path = str(tmp_path / "arrays.npz")
        table = rng.standard_normal((5, 64))
        np.savez(path, table=table, other=np.arange(3))
        mapped = mmap_npz_array(path, "table")
        np.testing.assert_array_equal(np.asarray(mapped), table)
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable

    def test_mmap_loaded_asketch_is_fully_frozen(self, tmp_path, rng):
        """Regression: load_sketch(mmap=True) must freeze the whole state —
        an ASketch's exact filter is a dict the writeable flag can't guard,
        so without freeze() an insert would mutate it before the sketch
        path raises."""
        from repro.sketch.augmented import AugmentedSketch

        sketch = AugmentedSketch(3, 256, filter_capacity=4, seed=6)
        sketch.insert(np.array([5, 5, 5]), np.array([3.0, 3.0, 4.0]))
        assert 5 in sketch._filter  # hot key promoted to the exact filter
        path = str(tmp_path / "aug.npz")
        save_sketch(sketch, path, compress=False)
        mapped = load_sketch(path, mmap=True)
        filter_before = dict(mapped._filter)
        with pytest.raises(ValueError, match="read-only"):
            mapped.insert(np.array([5]), np.array([1.0]))  # all-filtered batch
        assert mapped._filter == filter_before  # nothing half-mutated

    def test_mmap_npz_array_missing_member(self, tmp_path):
        path = str(tmp_path / "arrays.npz")
        np.savez(path, a=np.arange(3))
        with pytest.raises(KeyError, match="members"):
            mmap_npz_array(path, "missing")
