"""Tests for TopKTracker (repro.sketch.topk)."""

import numpy as np
import pytest

from repro.sketch.count_sketch import CountSketch
from repro.sketch.topk import TopKTracker


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TopKTracker(0)
        with pytest.raises(ValueError):
            TopKTracker(10, slack=1.0)


class TestOfferAndRank:
    def test_basic_ranking(self):
        tracker = TopKTracker(10)
        tracker.offer(np.arange(5), np.array([1.0, 5.0, 3.0, 2.0, 4.0]))
        keys, ests = tracker.top_k(3)
        assert keys.tolist() == [1, 4, 2]
        assert ests.tolist() == [5.0, 4.0, 3.0]

    def test_refresh_overwrites(self):
        tracker = TopKTracker(10)
        tracker.offer(np.array([7]), np.array([1.0]))
        tracker.offer(np.array([7]), np.array([9.0]))
        keys, ests = tracker.top_k(1)
        assert keys.tolist() == [7] and ests[0] == 9.0

    def test_two_sided_ranking(self):
        tracker = TopKTracker(10, two_sided=True)
        tracker.offer(np.arange(3), np.array([-8.0, 2.0, 5.0]))
        keys, _ = tracker.top_k(2)
        assert keys.tolist() == [0, 2]

    def test_one_sided_ignores_negative(self):
        tracker = TopKTracker(10, two_sided=False)
        tracker.offer(np.arange(3), np.array([-8.0, 2.0, 5.0]))
        keys, _ = tracker.top_k(2)
        assert keys.tolist() == [2, 1]

    def test_mismatched_shapes(self):
        tracker = TopKTracker(5)
        with pytest.raises(ValueError, match="align"):
            tracker.offer(np.array([1, 2]), np.array([1.0]))

    def test_empty_pool(self):
        keys, ests = TopKTracker(5).top_k(3)
        assert keys.size == 0 and ests.size == 0


class TestPruning:
    def test_capacity_enforced(self):
        tracker = TopKTracker(100, slack=1.5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            keys = rng.integers(0, 10**9, size=50)
            tracker.offer(keys, rng.random(50))
        assert len(tracker) <= 150

    def test_prune_keeps_largest(self):
        tracker = TopKTracker(5, slack=1.2)
        tracker.offer(np.arange(100), np.arange(100, dtype=np.float64))
        keys, _ = tracker.top_k(5)
        # the largest estimates (95..99) must have survived pruning
        assert set(keys.tolist()) == {95, 96, 97, 98, 99}


class TestRequery:
    def test_final_requery_fixes_stale_estimates(self):
        sketch = CountSketch(5, 4096, seed=1)
        tracker = TopKTracker(10)
        # Offer key 3 with a stale (low) estimate, then make it heavy.
        tracker.offer(np.array([3, 4]), np.array([0.1, 0.2]))
        sketch.insert(np.array([3]), np.array([100.0]))
        keys, ests = tracker.top_k(1, sketch=sketch)
        assert keys[0] == 3
        assert ests[0] == pytest.approx(100.0)

    def test_reset(self):
        tracker = TopKTracker(5)
        tracker.offer(np.array([1]), np.array([1.0]))
        tracker.reset()
        assert len(tracker) == 0
