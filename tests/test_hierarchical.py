"""Hierarchical count sketch: construction, descent, merge and serving.

The open-world acceptance contract lives here: on a seeded block-model
stream with planted heavy pairs, ``QueryEngine.pairs_above`` answers over
the full pair space with **no materialized index** (recall 1.0 on the
planted pairs, precision floor-gated), and a sharded hierarchy merge is
bit-identical to single-shot ingest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.synthetic import BlockCorrelationModel
from repro.distributed.reduce import merge_shard_results
from repro.distributed.shard import (
    ShardSpec,
    sketch_shard,
    spec_from_arrays,
    spec_to_arrays,
)
from repro.hashing.pairs import num_pairs, pair_to_index
from repro.serving import QueryEngine, SketchSnapshot
from repro.sketch import HierarchicalCountSketch, plan
from repro.sketch.serialization import load_sketch, save_sketch


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def _planted_sketch(rng, key_space=200_000, num_heavy=20, mass=0.8):
    """A hierarchy over a noisy stream with ``num_heavy`` planted keys."""
    sketch = HierarchicalCountSketch(5, 4096, key_space=key_space, seed=1)
    keys = rng.integers(0, key_space, size=50_000)
    sketch.insert(keys, rng.normal(0.0, 0.02, size=keys.size))
    planted = rng.choice(key_space, size=num_heavy, replace=False).astype(np.int64)
    signs = rng.choice([-1.0, 1.0], size=num_heavy)
    sketch.insert(planted, signs * mass)
    return sketch, planted


class TestConstruction:
    def test_auto_levels_bound_root_size(self):
        sketch = HierarchicalCountSketch(3, 256, key_space=200_000, branching=16)
        assert sketch.levels == 3
        assert sketch._level_sizes == [200_000, 12_500, 782]
        assert sketch._level_sizes[-1] <= 1024

    def test_explicit_levels_honoured(self):
        sketch = HierarchicalCountSketch(
            3, 256, key_space=5000, branching=8, levels=4
        )
        assert sketch.levels == 4
        assert sketch._level_sizes == [5000, 625, 79, 10]

    def test_memory_accounts_all_levels(self):
        sketch = HierarchicalCountSketch(
            3, 256, key_space=5000, branching=8, levels=3
        )
        assert sketch.memory_floats == 3 * 3 * 256
        assert sketch.memory_bytes == 3 * 3 * 256 * 8
        assert sketch.table.shape == (3, 3, 256)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"key_space": 0},
            {"key_space": 100, "branching": 1},
            {"key_space": 100, "levels": 0},
            {"key_space": 100, "max_root_intervals": 0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            HierarchicalCountSketch(3, 256, **kwargs)

    def test_insert_range_checked_against_key_space(self):
        sketch = HierarchicalCountSketch(3, 256, key_space=100)
        with pytest.raises(ValueError, match="key_space"):
            sketch.insert(np.array([100]), np.array([1.0]))

    def test_insert_and_query_matches_split_calls(self, rng):
        a = HierarchicalCountSketch(3, 256, key_space=5000, seed=3)
        b = HierarchicalCountSketch(3, 256, key_space=5000, seed=3)
        keys = rng.integers(0, 5000, size=400)
        values = rng.standard_normal(400)
        fused = a.insert_and_query(keys, values)
        b.insert(keys, values)
        np.testing.assert_array_equal(fused, b.query(keys))
        for left, right in zip(a._levels, b._levels):
            np.testing.assert_array_equal(left.table, right.table)


class TestFindHeavy:
    def test_recovers_planted_keys_exactly(self, rng):
        sketch, planted = _planted_sketch(rng)
        keys, estimates = sketch.find_heavy(0.4)
        assert set(keys.tolist()) == set(planted.tolist())
        # Rank-descending order, and estimates keep their signs.
        rank = np.abs(estimates)
        assert np.all(rank[:-1] >= rank[1:])
        assert estimates.min() < 0 < estimates.max()

    def test_limit_truncates_after_ranking(self, rng):
        sketch, _ = _planted_sketch(rng)
        all_keys, all_est = sketch.find_heavy(0.4)
        top_keys, top_est = sketch.find_heavy(0.4, limit=5)
        np.testing.assert_array_equal(top_keys, all_keys[:5])
        np.testing.assert_array_equal(top_est, all_est[:5])
        empty_keys, empty_est = sketch.find_heavy(0.4, limit=0)
        assert empty_keys.size == 0 and empty_est.size == 0

    def test_high_threshold_returns_empty(self, rng):
        sketch, _ = _planted_sketch(rng)
        keys, estimates = sketch.find_heavy(1e9)
        assert keys.size == 0 and estimates.size == 0

    @pytest.mark.parametrize("threshold", [float("nan"), 0.0, -1.0])
    def test_bad_thresholds_raise(self, rng, threshold):
        sketch, _ = _planted_sketch(rng)
        with pytest.raises(ValueError):
            sketch.find_heavy(threshold)

    def test_negative_limit_raises(self, rng):
        sketch, _ = _planted_sketch(rng)
        with pytest.raises(ValueError):
            sketch.find_heavy(0.4, limit=-1)

    def test_one_sided_uses_signed_rank(self, rng):
        sketch, planted = _planted_sketch(rng)
        keys, estimates = sketch.find_heavy(0.4, two_sided=False)
        assert np.all(estimates >= 0.4)
        positive = set(keys.tolist())
        assert positive < set(planted.tolist())  # negatives excluded

    def test_descent_works_on_frozen_and_loaded_sketch(self, rng, tmp_path):
        sketch, planted = _planted_sketch(rng)
        reference = sketch.find_heavy(0.4)
        sketch.freeze()
        frozen = sketch.find_heavy(0.4)
        np.testing.assert_array_equal(frozen[0], reference[0])
        path = str(tmp_path / "hier.npz")
        save_sketch(sketch, path, compress=False)
        for mmap in (False, True):
            loaded = load_sketch(path, mmap=mmap)
            keys, estimates = loaded.find_heavy(0.4)
            np.testing.assert_array_equal(keys, reference[0])
            np.testing.assert_array_equal(estimates, reference[1])


class TestMergeAndSharding:
    def test_merge_requires_identical_shape(self):
        a = HierarchicalCountSketch(3, 256, key_space=5000, seed=2)
        b = HierarchicalCountSketch(3, 256, key_space=6000, seed=2)
        with pytest.raises(ValueError, match="key_space"):
            a.merge(b)

    def test_spec_round_trips_hierarchy_fields(self):
        spec = ShardSpec(
            dim=32,
            total_samples=256,
            method="hcs",
            num_tables=3,
            num_buckets=512,
            seed=9,
            levels=2,
            branching=8,
        )
        back = spec_from_arrays(spec_to_arrays(spec))
        assert back == spec
        assert back.levels == 2 and back.branching == 8

    def test_build_estimator_sizes_hierarchy_from_dim(self):
        spec = ShardSpec(dim=32, total_samples=256, method="hcs")
        sketch = spec.build_estimator().sketch
        assert isinstance(sketch, HierarchicalCountSketch)
        assert sketch.key_space == num_pairs(32)

    def test_shard_merge_bit_identical_to_one_shot(self, rng):
        # Power-of-two T and small-integer values: every arithmetic step
        # is an exact dyadic, so bit-identity is the honest contract.
        spec = ShardSpec(
            dim=32, total_samples=256, method="hcs", num_tables=3,
            num_buckets=512, seed=9, levels=2, branching=16,
        )
        samples = [
            (
                np.arange(32, dtype=np.int64),
                rng.integers(-3, 4, size=32).astype(np.float64),
            )
            for _ in range(256)
        ]
        halves = [
            sketch_shard(spec, samples[:128], shard_index=0, num_shards=2, start=0),
            sketch_shard(
                spec, samples[128:], shard_index=1, num_shards=2, start=128
            ),
        ]
        assert halves[0].table.shape == (2, 3, 512)
        merged = merge_shard_results(halves)
        one_shot = spec.build_sketcher()
        one_shot.fit_sparse(iter(samples))
        for left, right in zip(
            merged.estimator.sketch._levels, one_shot.estimator.sketch._levels
        ):
            np.testing.assert_array_equal(left.table, right.table)


class TestPlanner:
    def test_levels_split_the_budget(self):
        flat = plan(1000, 1.0, storage="float64")
        deep = plan(1000, 1.0, storage="float64", levels=4)
        assert deep.levels == 4
        assert deep.num_buckets == flat.num_buckets // 4
        assert deep.total_counters == deep.levels * deep.num_tables * deep.num_buckets
        assert deep.to_dict()["levels"] == 4

    def test_deep_plan_builds_hierarchy_over_pair_space(self):
        deep = plan(1000, 1.0, levels=3, branching=32)
        sketch = deep.build_sketch(seed=5)
        assert isinstance(sketch, HierarchicalCountSketch)
        assert sketch.key_space == num_pairs(1000)
        assert sketch.levels == 3 and sketch.branching == 32
        flat = plan(1000, 1.0).build_sketch(seed=5)
        assert not isinstance(flat, HierarchicalCountSketch)

    @pytest.mark.parametrize("kwargs", [{"levels": 0}, {"branching": 1}])
    def test_bad_hierarchy_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            plan(1000, 1.0, **kwargs)


class TestOpenWorldAcceptance:
    """ISSUE 7 acceptance: discovery with no materialized index."""

    DIM = 64
    THRESHOLD = 0.35

    def _engine_and_truth(self):
        model = BlockCorrelationModel.from_alpha(self.DIM, 0.05, seed=42)
        samples = model.sample(4096)
        sketch = HierarchicalCountSketch(
            5, 4096, key_space=num_pairs(self.DIM), branching=16, seed=7
        )
        estimator = SketchEstimator(
            sketch, 4096, name="HCS", two_sided=True, track_top=0
        )
        pipeline = CovarianceSketcher(
            self.DIM, estimator, mode="correlation", centering="none",
            batch_size=64,
        )
        pipeline.fit_dense(samples)
        # top_index=0: the snapshot holds NO materialized pair index.
        snapshot = SketchSnapshot.from_sketcher(pipeline, top_index=0)
        assert snapshot.index_size == 0
        return QueryEngine(snapshot), model.signal_pairs()

    def test_pairs_above_without_index_finds_all_planted(self):
        engine, planted = self._engine_and_truth()
        i, j, estimates = engine.pairs_above(self.THRESHOLD)
        found = set(pair_to_index(i, j, self.DIM).tolist())
        truth = set(planted.tolist())
        # Every planted rho is >= 0.5 (from_alpha's default range), far
        # above the query threshold: recall must be exactly 1.
        recall = len(found & truth) / len(truth)
        assert recall == 1.0
        precision = len(found & truth) / max(1, len(found))
        assert precision >= 0.9
        # Estimates ordered by descending |estimate| and all above floor.
        rank = np.abs(estimates)
        assert np.all(rank[:-1] >= rank[1:])
        assert float(rank.min()) >= self.THRESHOLD

    def test_limit_bounds_the_open_world_answer(self):
        engine, _ = self._engine_and_truth()
        i, j, estimates = engine.pairs_above(self.THRESHOLD, limit=7)
        assert i.size == j.size == estimates.size == 7
        full = engine.pairs_above(self.THRESHOLD)
        np.testing.assert_array_equal(estimates, full[2][:7])

    def test_snapshot_round_trip_preserves_discovery(self, tmp_path):
        engine, _ = self._engine_and_truth()
        reference = engine.pairs_above(self.THRESHOLD)
        path = tmp_path / "hcs-snapshot.npz"
        engine.snapshot.save(path)
        for mmap in (False, True):
            loaded = SketchSnapshot.load(path, mmap=mmap)
            result = loaded.pairs_above(self.THRESHOLD)
            for got, want in zip(result, reference):
                np.testing.assert_array_equal(got, want)
