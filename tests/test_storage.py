"""Tests for the compact counter-storage tier (repro.sketch.storage).

The load-bearing property is the promotion law: quantized tables widen
*before* any saturating write, so an int16 run that promotes is
bit-identical to a run that used the wider dtype from the start — fuzzed
here on seeded random streams and pinned exactly at the saturation
boundary.
"""

import numpy as np
import pytest

from repro.sketch.base import reject_readonly_counters, scatter_add_flat
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.decay import DecayedSketch
from repro.sketch.storage import DEFAULT_QUANTUM, CounterStore, resolve_storage


class TestConstruction:
    def test_resolve_storage_names(self):
        assert resolve_storage("int16") == np.dtype(np.int16)
        assert resolve_storage(np.float64) == np.dtype(np.float64)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="unsupported counter storage"):
            CounterStore(2, 8, dtype="int8")

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ValueError, match="quantum"):
            CounterStore(2, 8, dtype="int16", quantum=0.0)

    def test_rejects_float32_quantum(self):
        # float32 is not on the widening ladder, so a quantized float32
        # table could never promote consistently.
        with pytest.raises(ValueError, match="float32"):
            CounterStore(2, 8, dtype="float32", quantum=0.5)

    def test_int_default_quantum(self):
        store = CounterStore(2, 8, dtype="int16")
        assert store.quantum == DEFAULT_QUANTUM

    def test_quantized_float64_allowed(self):
        # The promotion terminal must be constructible directly so
        # serialized promoted stores round-trip.
        store = CounterStore(2, 8, dtype="float64", quantum=0.5)
        assert store.quantized
        assert store.dtype == np.float64

    def test_bytes_accounting(self):
        assert CounterStore(3, 64, dtype="int16").nbytes == 3 * 64 * 2
        assert CounterStore(3, 64, dtype="float64").nbytes == 3 * 64 * 8
        assert CounterStore(3, 64, dtype="int16").bytes_per_counter == 2


class TestQuantizedRoundTrip:
    def test_single_value_within_half_quantum(self):
        store = CounterStore(1, 8, dtype="int16", quantum=0.25)
        store.scatter_add(np.array([3]), np.array([1.3]), use_bincount=False)
        est = store.gather(np.array([3]))[0]
        assert abs(est - 1.3) <= 0.125 + 1e-12
        assert est == pytest.approx(np.rint(1.3 / 0.25) * 0.25)

    def test_exact_for_quantum_multiples(self):
        store = CounterStore(1, 8, dtype="int16", quantum=0.5)
        store.scatter_add(
            np.array([1, 1, 2]), np.array([1.5, 2.0, -4.5]), use_bincount=True
        )
        np.testing.assert_array_equal(store.gather(np.array([1, 2])), [3.5, -4.5])

    def test_intra_batch_duplicate_order_never_matters(self):
        # The quantized scatter aggregates per-slot deltas once per batch,
        # so permuting a batch cannot change the counters.
        rng = np.random.default_rng(5)
        idx = rng.integers(0, 16, size=200)
        w = rng.integers(-50, 50, size=200).astype(np.float64)
        perm = rng.permutation(200)
        a = CounterStore(2, 8, dtype="int16", quantum=1.0)
        b = CounterStore(2, 8, dtype="int16", quantum=1.0)
        a.scatter_add(idx, w, use_bincount=True)
        b.scatter_add(idx[perm], w[perm], use_bincount=False)
        np.testing.assert_array_equal(a.raw, b.raw)


class TestOverflowPromotion:
    """Satellite: promotion triggers exactly at saturation and is exact."""

    def test_triggers_exactly_at_saturation(self):
        info = np.iinfo(np.int16)
        store = CounterStore(1, 4, dtype="int16", quantum=1.0)
        store.scatter_add(
            np.array([0]), np.array([float(info.max)]), use_bincount=False
        )
        # Exactly iinfo.max quanta: still int16, counter sits on the bound.
        assert store.dtype == np.int16
        assert store.raw[0] == info.max
        # One more quantum: the whole table widens, nothing clips.
        store.scatter_add(np.array([0]), np.array([1.0]), use_bincount=False)
        assert store.dtype == np.int32
        assert store.raw[0] == info.max + 1

    def test_triggers_at_negative_saturation(self):
        info = np.iinfo(np.int16)
        store = CounterStore(1, 4, dtype="int16", quantum=1.0)
        store.scatter_add(np.array([1]), np.array([float(info.min)]), use_bincount=True)
        assert store.dtype == np.int16
        store.scatter_add(np.array([1]), np.array([-1.0]), use_bincount=True)
        assert store.dtype == np.int32
        assert store.raw[1] == info.min - 1

    def test_int32_promotes_to_float64_keeping_quantum(self):
        info = np.iinfo(np.int32)
        store = CounterStore(1, 2, dtype="int32", quantum=0.5)
        store.scatter_add(np.array([0]), np.array([info.max * 0.5]), use_bincount=False)
        assert store.dtype == np.int32
        store.scatter_add(np.array([0]), np.array([0.5]), use_bincount=False)
        assert store.dtype == np.float64
        assert store.quantum == 0.5
        assert store.gather(np.array([0]))[0] == (info.max + 1) * 0.5

    @pytest.mark.parametrize(
        "dtype,start,delta",
        [
            ("int16", -30000.0, 60000.0),
            ("int32", -2_100_000_000.0, 4.0e9),
        ],
    )
    def test_delta_beyond_rung_with_in_range_result(self, dtype, start, delta):
        """Regression: a batch delta can exceed the rung's range while the
        resulting counter fits (sign-cancelling updates).  Casting the
        delta would saturate; the result must be written back exactly."""
        store = CounterStore(1, 4, dtype=dtype, quantum=1.0)
        store.scatter_add(np.array([0]), np.array([start]), use_bincount=False)
        store.scatter_add(np.array([0]), np.array([delta]), use_bincount=True)
        assert store.dtype == np.dtype(dtype)  # result fits: no promotion
        assert float(store.raw[0]) == start + delta
        wide = CounterStore(1, 4, dtype="float64", quantum=1.0)
        wide.scatter_add(np.array([0]), np.array([start]), use_bincount=False)
        wide.scatter_add(np.array([0]), np.array([delta]), use_bincount=True)
        np.testing.assert_array_equal(
            store.raw.astype(np.float64), wide.raw
        )

    @pytest.mark.parametrize("narrow", ["int16", "int32"])
    def test_fuzz_promoted_bit_identical_to_all_wide(self, narrow):
        """Seeded random streams: the narrow store (which promotes mid-run)
        must end bit-identical to a store that was wide from the start."""
        rng = np.random.default_rng(20240731)
        wide = {"int16": "int32", "int32": "float64"}[narrow]
        limit = np.iinfo(np.dtype(narrow)).max
        for trial in range(5):
            a = CounterStore(2, 16, dtype=narrow, quantum=1.0)
            b = CounterStore(2, 16, dtype=wide, quantum=1.0)
            promoted = False
            for _ in range(40):
                n = int(rng.integers(1, 64))
                idx = rng.integers(0, 32, size=n)
                # Heavy-tailed magnitudes so saturation actually happens.
                w = rng.integers(-limit // 3, limit // 3, size=n).astype(np.float64)
                a.scatter_add(idx, w, use_bincount=bool(rng.integers(2)))
                b.scatter_add(idx, w, use_bincount=bool(rng.integers(2)))
                promoted = promoted or a.dtype != np.dtype(narrow)
                np.testing.assert_array_equal(
                    a.raw.astype(np.float64), b.raw.astype(np.float64)
                )
            assert promoted, f"trial {trial}: stream never saturated {narrow}"

    def test_promotion_through_sketch_queries_identical(self):
        cs16 = CountSketch(3, 32, seed=9, dtype="int16", quantum=1.0)
        cs32 = CountSketch(3, 32, seed=9, dtype="int32", quantum=1.0)
        rng = np.random.default_rng(7)
        for _ in range(20):
            keys = rng.integers(0, 500, size=40)
            values = rng.integers(-5000, 5000, size=40).astype(np.float64)
            cs16.insert(keys, values)
            cs32.insert(keys, values)
        assert cs16.storage_dtype != np.int16  # the stream saturated it
        probe = rng.integers(0, 500, size=200)
        np.testing.assert_array_equal(cs16.query(probe), cs32.query(probe))


class TestMerge:
    def test_merge_across_widths_same_quantum(self):
        a = CountSketch(2, 16, seed=4, dtype="int16", quantum=1.0)
        b = CountSketch(2, 16, seed=4, dtype="int16", quantum=1.0)
        b.insert(np.array([1]), np.array([float(np.iinfo(np.int16).max) + 10]))
        assert b.storage_dtype == np.int32
        a.insert(np.array([1]), np.array([5.0]))
        a.merge(b)  # narrow merging a promoted table must widen, not wrap
        assert a.storage_dtype == np.int32
        assert a.query_single(1) == pytest.approx(np.iinfo(np.int16).max + 15)

    def test_quantum_mismatch_rejected(self):
        a = CountSketch(2, 16, seed=4, dtype="int16", quantum=1.0)
        b = CountSketch(2, 16, seed=4, dtype="int16", quantum=0.5)
        with pytest.raises(ValueError, match="quantum"):
            a.merge(b)

    def test_quantized_float_mix_rejected(self):
        a = CountSketch(2, 16, seed=4, dtype="int16", quantum=1.0)
        b = CountSketch(2, 16, seed=4)
        with pytest.raises(ValueError, match="storage tier"):
            a.merge(b)

    def test_float_dtype_mismatch_still_rejected(self):
        a = CountSketch(2, 16, seed=4, dtype=np.float64)
        b = CountSketch(2, 16, seed=4, dtype=np.float32)
        with pytest.raises(ValueError, match="dtype"):
            a.merge(b)


class TestScaleAndDecay:
    def test_scale_folds_into_quantum_exactly(self):
        cs = CountSketch(2, 16, seed=1, dtype="int16", quantum=1.0)
        cs.insert(np.array([3]), np.array([101.0]))
        table_before = cs.table.copy()
        cs.scale(0.3)  # not a power of two: still exact on quantized tables
        np.testing.assert_array_equal(cs.table, table_before)  # ints untouched
        assert cs.query_single(3) == pytest.approx(101.0 * 0.3, rel=1e-15)

    def test_decay_rejects_quantized_backing(self):
        """Decayed inserts store v / gamma^ticks — unbounded in fixed
        point — so the combination must refuse, not silently widen."""
        with pytest.raises(ValueError, match="quantized"):
            DecayedSketch(CountSketch(3, 64, seed=2, dtype="int16", quantum=1.0), 0.5)
        with pytest.raises(ValueError, match="quantized"):
            from repro.streaming import make_decaying_sketcher

            make_decaying_sketcher(
                50, 1000, gamma=0.99, num_tables=3, num_buckets=64, storage="int16"
            )

    def test_decay_allows_float32_and_passthrough_quantized(self):
        # float32 is the compact option under decay...
        DecayedSketch(CountSketch(3, 64, seed=2, dtype=np.float32), 0.5)
        # ...and gamma=1.0 (no decay) is a transparent pass-through, so
        # quantized backings are fine there.
        DecayedSketch(CountSketch(3, 64, seed=2, dtype="int16", quantum=1.0), 1.0)


class TestFrozenAndGuards:
    def test_frozen_store_refuses_everything(self):
        store = CounterStore(2, 8, dtype="int16", quantum=1.0)
        store.scatter_add(np.array([0]), np.array([1.0]), use_bincount=False)
        store.freeze()
        for op in (
            lambda: store.scatter_add(
                np.array([0]), np.array([1.0]), use_bincount=False
            ),
            store.zero,
            lambda: store.scale(0.5),
            lambda: store.add_raw(np.zeros(16, dtype=np.int16)),
        ):
            with pytest.raises(ValueError, match="read-only"):
                op()
        # Queries still work on the frozen store.
        assert store.gather(np.array([0]))[0] == 1.0

    def test_conservative_and_cap_require_float(self):
        with pytest.raises(ValueError, match="float counter storage"):
            CountMinSketch(2, 8, conservative=True, dtype="int16")
        with pytest.raises(ValueError, match="float counter storage"):
            CountMinSketch(2, 8, cap=5.0, dtype="int32")

    def test_guard_rejects_readonly_mmap(self, tmp_path):
        path = tmp_path / "table.npy"
        np.save(path, np.zeros(32))
        mapped = np.load(path, mmap_mode="r")
        with pytest.raises(ValueError, match="read-only"):
            scatter_add_flat(mapped, np.array([0]), np.array([1.0]), use_bincount=False)

    def test_guard_rejects_copy_on_write_mmap(self, tmp_path):
        """The gap the writeable flag misses: mode 'c' arrays accept writes
        into private COW pages, silently diverging from the mapped file."""
        path = tmp_path / "table.npy"
        np.save(path, np.zeros(32))
        cow = np.load(path, mmap_mode="c")
        assert cow.flags.writeable  # numpy would have let this through
        with pytest.raises(ValueError, match="read-only"):
            scatter_add_flat(cow, np.array([0]), np.array([1.0]), use_bincount=False)

    def test_guard_walks_view_chains(self, tmp_path):
        path = tmp_path / "table.npy"
        np.save(path, np.zeros((4, 8)))
        view = np.load(path, mmap_mode="c").reshape(-1)
        with pytest.raises(ValueError, match="read-only"):
            reject_readonly_counters(view)


class TestQuantizedAcrossSubsystems:
    """The storage knob must thread end to end: sharded fits, pane rings."""

    def _samples(self, rng, n, dim=50, nnz=5):
        return [
            (
                np.sort(rng.choice(dim, size=nnz, replace=False)).astype(np.int64),
                rng.integers(1, 5, size=nnz).astype(np.float64),
            )
            for _ in range(n)
        ]

    def test_sharded_fit_quantized_matches_serial(self):
        from repro.distributed import fit_sparse_sharded

        rng = np.random.default_rng(31)
        samples = self._samples(rng, 64)
        kwargs = dict(
            num_tables=3,
            num_buckets=128,
            seed=8,
            batch_size=8,
            track_top=32,
            storage="int16",
            quantum=2.0**-10,
        )
        serial = fit_sparse_sharded(iter(samples), 50, n_workers=1, **kwargs)
        sharded = fit_sparse_sharded(iter(samples), 50, n_workers=4, **kwargs)
        assert serial.estimator.sketch.quantum == 2.0**-10
        np.testing.assert_array_equal(
            sharded.estimator.sketch.table, serial.estimator.sketch.table
        )

    def test_pane_ring_quantized_round_trip(self, tmp_path):
        from repro.distributed.shard import ShardSpec
        from repro.streaming import PaneRing

        rng = np.random.default_rng(37)
        spec = ShardSpec(
            dim=50,
            total_samples=64,
            num_tables=3,
            num_buckets=128,
            seed=8,
            batch_size=8,
            storage="int16",
            quantum=2.0**-10,
            track_top=16,
        )
        ring = PaneRing(spec, num_panes=2, pane_samples=16)
        ring.ingest(self._samples(rng, 48))
        window = ring.window()
        assert window.estimator.sketch.storage_dtype == np.int16
        ring.save(tmp_path / "ring")
        resumed = PaneRing.load(tmp_path / "ring")
        np.testing.assert_array_equal(
            resumed.window().estimator.sketch.table,
            ring.window().estimator.sketch.table,
        )


class TestCopyAndPickle:
    def test_copy_preserves_promoted_width_and_quantum(self):
        cs = CountSketch(2, 8, seed=3, dtype="int16", quantum=1.0)
        cs.insert(np.array([0]), np.array([1e5]))  # forces int32
        assert cs.storage_dtype == np.int32
        clone = cs.copy()
        assert clone.storage_dtype == np.int32
        assert clone.quantum == 1.0
        np.testing.assert_array_equal(clone.table, cs.table)
        clone.insert(np.array([0]), np.array([1.0]))
        assert cs.query_single(0) != clone.query_single(0)  # independent

    def test_pickle_keeps_flat_aliased(self):
        import pickle

        cs = CountSketch(2, 8, seed=3, dtype="int16", quantum=1.0)
        cs.insert(np.array([5]), np.array([7.0]))
        clone = pickle.loads(pickle.dumps(cs))
        np.testing.assert_array_equal(clone.table, cs.table)
        clone.insert(np.array([5]), np.array([1.0]))
        # The insert must stay visible through .table (flat is a view).
        assert clone.query_single(5) == pytest.approx(8.0)
