"""Tests for the sharded ingestion driver (repro.distributed.driver).

Covers the tentpole guarantees:

* the **serial** backend is bit-identical to the single-shard
  ``CovarianceSketcher.fit_sparse`` path, for any worker count, for both
  ``cs`` and ``ascs`` and both value modes;
* the **process** backend is deterministic — identical results across two
  runs with fixed seeds — and agrees across ``n_workers ∈ {1, 2, 4}``
  modulo the documented merge tolerance (float-addition regrouping for CS
  counters, shard-local sampling decisions for ASCS);
* partitioning is contiguous, batch-aligned and exhaustive.
"""

import numpy as np
import pytest

from repro.core.api import fit_sparse_sharded as api_fit_sparse_sharded
from repro.core.schedule import ThresholdSchedule
from repro.distributed import fit_sparse_sharded, partition_batches
from repro.distributed.shard import ShardSpec


def _stream(rng, n, dim, nnz=8, integer_values=False):
    samples = []
    for _ in range(n):
        idx = np.sort(rng.choice(dim, size=nnz, replace=False)).astype(np.int64)
        if integer_values:
            val = rng.integers(-9, 10, size=nnz).astype(np.float64)
        else:
            val = rng.standard_normal(nnz)
        samples.append((idx, val))
    return samples


class TestPartition:
    def test_batch_aligned_and_exhaustive(self):
        bounds = partition_batches(100, 8, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
            assert stop % 8 == 0

    def test_more_workers_than_batches(self):
        bounds = partition_batches(10, 8, 5)
        assert bounds == [(0, 8), (8, 10)]

    def test_single_worker_whole_stream(self):
        assert partition_batches(50, 8, 1) == [(0, 50)]

    def test_empty_stream(self):
        assert partition_batches(0, 8, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_batches(10, 0, 1)
        with pytest.raises(ValueError):
            partition_batches(10, 8, 0)
        with pytest.raises(ValueError):
            partition_batches(-1, 8, 1)


class TestSerialBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 5])
    @pytest.mark.parametrize("mode", ["covariance", "correlation"])
    def test_cs_matches_fit_sparse(self, n_workers, mode):
        rng = np.random.default_rng(42)
        dim, n = 300, 200
        samples = _stream(rng, n, dim)
        spec = ShardSpec(
            dim=dim,
            total_samples=n,
            num_tables=3,
            num_buckets=512,
            seed=9,
            mode=mode,
            batch_size=16,
            track_top=32,
        )
        reference = spec.build_sketcher()
        reference.fit_sparse(iter(samples))

        fit = fit_sparse_sharded(
            samples,
            dim,
            num_tables=3,
            num_buckets=512,
            seed=9,
            mode=mode,
            batch_size=16,
            track_top=32,
            n_workers=n_workers,
            backend="serial",
        )
        np.testing.assert_array_equal(
            fit.estimator.sketch.table, reference.estimator.sketch.table
        )
        ri, rj, re = reference.top_pairs(10, scan=False)
        fi, fj, fe = fit.top_pairs(10, scan=False)
        np.testing.assert_array_equal(fi, ri)
        np.testing.assert_array_equal(fj, rj)
        np.testing.assert_array_equal(fe, re)
        np.testing.assert_array_equal(
            fit.sketcher.sparse_moments._sum, reference.sparse_moments._sum
        )

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_ascs_matches_fit_sparse(self, n_workers):
        rng = np.random.default_rng(7)
        dim, n = 200, 256
        samples = _stream(rng, n, dim)
        schedule = (64, 1e-4, 1e-3, n)
        spec = ShardSpec(
            dim=dim,
            total_samples=n,
            method="ascs",
            num_tables=3,
            num_buckets=512,
            seed=3,
            batch_size=32,
            track_top=32,
            schedule=schedule,
        )
        reference = spec.build_sketcher()
        reference.fit_sparse(iter(samples))

        fit = fit_sparse_sharded(
            samples,
            dim,
            method="ascs",
            schedule=ThresholdSchedule(*schedule),
            num_tables=3,
            num_buckets=512,
            seed=3,
            batch_size=32,
            track_top=32,
            n_workers=n_workers,
            backend="serial",
        )
        np.testing.assert_array_equal(
            fit.estimator.sketch.table, reference.estimator.sketch.table
        )
        assert fit.estimator.updates_accepted == reference.estimator.updates_accepted
        assert fit.estimator.samples_seen == reference.estimator.samples_seen


class TestProcessBackend:
    def test_matches_serial_exactly_with_integer_values(self):
        """With exactly-representable sums, the merge regrouping is exact,
        so process and serial backends agree bit-for-bit."""
        rng = np.random.default_rng(3)
        dim, n = 200, 128
        samples = _stream(rng, n, dim, integer_values=True)
        kwargs = dict(
            num_tables=3, num_buckets=256, seed=2, batch_size=16, track_top=32
        )
        serial = fit_sparse_sharded(samples, dim, backend="serial", **kwargs)
        process = fit_sparse_sharded(
            samples, dim, backend="process", n_workers=2, **kwargs
        )
        np.testing.assert_array_equal(
            process.estimator.sketch.table, serial.estimator.sketch.table
        )

    def test_two_runs_identical(self):
        """Determinism: fixed seeds => two process runs agree bit-for-bit."""
        rng = np.random.default_rng(11)
        dim, n = 250, 192
        samples = _stream(rng, n, dim)
        kwargs = dict(
            num_tables=3,
            num_buckets=512,
            seed=21,
            batch_size=16,
            track_top=64,
            backend="process",
            n_workers=2,
        )
        first = fit_sparse_sharded(samples, dim, **kwargs)
        second = fit_sparse_sharded(samples, dim, **kwargs)
        np.testing.assert_array_equal(
            first.estimator.sketch.table, second.estimator.sketch.table
        )
        k1, e1 = first.estimator.top_k(10)
        k2, e2 = second.estimator.top_k(10)
        np.testing.assert_array_equal(k1, k2)
        np.testing.assert_array_equal(e1, e2)

    @pytest.mark.slow
    def test_deterministic_across_worker_counts(self):
        """n_workers in {1, 2, 4} agree modulo the documented tolerance:
        CS counters differ only by float-addition regrouping."""
        rng = np.random.default_rng(29)
        dim, n = 250, 256
        samples = _stream(rng, n, dim)
        kwargs = dict(
            num_tables=3,
            num_buckets=512,
            seed=8,
            batch_size=16,
            track_top=64,
            backend="process",
        )
        runs = {
            w: fit_sparse_sharded(samples, dim, n_workers=w, **kwargs)
            for w in (1, 2, 4)
        }
        base = runs[1]
        for w in (2, 4):
            np.testing.assert_allclose(
                runs[w].estimator.sketch.table,
                base.estimator.sketch.table,
                rtol=1e-12,
                atol=1e-14,
            )
            probe = rng.integers(0, base.sketcher.num_pairs, size=200)
            np.testing.assert_allclose(
                runs[w].sketcher.estimate_keys(probe),
                base.sketcher.estimate_keys(probe),
                rtol=1e-9,
                atol=1e-12,
            )

    @pytest.mark.slow
    def test_ascs_process_runs_repeatable(self):
        """ASCS with fixed seeds is repeatable run-to-run (same workers)."""
        rng = np.random.default_rng(31)
        dim, n = 150, 256
        samples = _stream(rng, n, dim)
        kwargs = dict(
            method="ascs",
            schedule=(64, 1e-4, 1e-3, n),
            num_tables=3,
            num_buckets=512,
            seed=17,
            batch_size=32,
            track_top=32,
            backend="process",
            n_workers=2,
        )
        first = fit_sparse_sharded(samples, dim, **kwargs)
        second = fit_sparse_sharded(samples, dim, **kwargs)
        np.testing.assert_array_equal(
            first.estimator.sketch.table, second.estimator.sketch.table
        )
        assert first.estimator.updates_accepted == second.estimator.updates_accepted

    def test_keep_shard_results_round_trips_through_reduce(self):
        rng = np.random.default_rng(6)
        dim, n = 120, 96
        samples = _stream(rng, n, dim)
        fit = fit_sparse_sharded(
            samples,
            dim,
            num_tables=3,
            num_buckets=256,
            seed=4,
            batch_size=16,
            backend="process",
            n_workers=3,
            keep_shard_results=True,
        )
        assert len(fit.shard_results) == fit.n_workers
        assert [
            (s.start, s.stop) for s in fit.shard_results
        ] == fit.partition
        total = sum(s.samples_seen for s in fit.shard_results)
        assert total == n == fit.estimator.samples_seen
        summed = sum(s.table for s in fit.shard_results)
        np.testing.assert_allclose(fit.estimator.sketch.table, summed)


class TestDriverValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            fit_sparse_sharded(
                [(np.array([0, 1]), np.array([1.0, 1.0]))], 4, backend="threads"
            )

    def test_unmergeable_method_rejected(self):
        with pytest.raises(ValueError, match="asketch"):
            fit_sparse_sharded(
                [(np.array([0, 1]), np.array([1.0, 1.0]))], 4, method="asketch"
            )

    def test_ascs_requires_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            fit_sparse_sharded(
                [(np.array([0, 1]), np.array([1.0, 1.0]))], 4, method="ascs"
            )

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            fit_sparse_sharded([], 4)

    def test_schedule_total_must_match(self):
        samples = [(np.array([0, 1]), np.array([1.0, 1.0]))] * 8
        with pytest.raises(ValueError, match="total_samples"):
            fit_sparse_sharded(
                samples, 4, method="ascs", schedule=(2, 1e-4, 1e-3, 99)
            )

    def test_api_reexport_delegates(self):
        """core.api exposes the driver as a first-class entry point."""
        samples = [
            (np.array([0, 1], dtype=np.int64), np.array([1.0, 2.0]))
            for _ in range(8)
        ]
        fit = api_fit_sparse_sharded(
            samples, 4, num_tables=3, num_buckets=64, seed=1, batch_size=4
        )
        assert fit.backend == "serial"
        assert fit.estimator.samples_seen == 8
