"""Tests for sketch serialisation (repro.sketch.serialization)."""

import numpy as np
import pytest

from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.serialization import load_sketch, save_sketch


@pytest.fixture
def tmp_sketch_path(tmp_path):
    return str(tmp_path / "sketch.npz")


class TestCountSketchRoundTrip:
    def test_queries_identical(self, tmp_sketch_path, rng):
        sketch = CountSketch(4, 512, seed=7, family="polynomial")
        keys = rng.integers(0, 10**9, size=2000)
        sketch.insert(keys, rng.standard_normal(2000))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        probe = rng.integers(0, 10**9, size=500)
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))

    def test_further_inserts_consistent(self, tmp_sketch_path, rng):
        sketch = CountSketch(3, 256, seed=1)
        sketch.insert(np.arange(50), np.ones(50))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        more_keys = np.arange(50)
        sketch.insert(more_keys, np.ones(50))
        loaded.insert(more_keys, np.ones(50))
        np.testing.assert_allclose(loaded.table, sketch.table, atol=1e-12)

    def test_loaded_merges_with_original_lineage(self, tmp_sketch_path):
        sketch = CountSketch(3, 256, seed=2)
        sketch.insert(np.array([5]), np.array([1.0]))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        loaded.merge(sketch)
        assert loaded.query_single(5) == pytest.approx(2.0)

    def test_parameters_preserved(self, tmp_sketch_path):
        sketch = CountSketch(6, 123, seed=99, family="tabulation")
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.num_tables == 6
        assert loaded.num_buckets == 123
        assert loaded.seed == 99
        assert loaded.family == "tabulation"


class TestCountMinRoundTrip:
    def test_round_trip_with_cap(self, tmp_sketch_path):
        sketch = CountMinSketch(3, 128, seed=3, conservative=True, cap=7.5)
        sketch.insert(np.array([1, 2]), np.array([5.0, 9.0]))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.conservative is True
        assert loaded.cap == 7.5
        np.testing.assert_array_equal(
            loaded.query(np.array([1, 2])), sketch.query(np.array([1, 2]))
        )

    def test_round_trip_without_cap(self, tmp_sketch_path):
        sketch = CountMinSketch(2, 64, seed=4)
        sketch.insert(np.array([9]), np.array([2.0]))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.cap is None
        assert loaded.query_single(9) == sketch.query_single(9)


class TestErrors:
    def test_unsupported_type(self, tmp_sketch_path):
        with pytest.raises(TypeError):
            save_sketch(object(), tmp_sketch_path)

    def test_distributed_aggregation_scenario(self, tmp_path, rng):
        """Workers sketch shards, persist, reducer loads and merges."""
        keys = rng.integers(0, 10**6, size=4000)
        values = rng.standard_normal(4000)

        paths = []
        for shard in range(4):
            worker = CountSketch(3, 512, seed=42)
            worker.insert(keys[shard::4], values[shard::4])
            path = str(tmp_path / f"shard{shard}.npz")
            save_sketch(worker, path)
            paths.append(path)

        merged = load_sketch(paths[0])
        for path in paths[1:]:
            merged.merge(load_sketch(path))

        reference = CountSketch(3, 512, seed=42)
        reference.insert(keys, values)
        np.testing.assert_allclose(merged.table, reference.table, atol=1e-9)
