"""Tests for sketch serialisation (repro.sketch.serialization) and the
distributed :class:`ShardResult` round-trip."""

import dataclasses

import numpy as np
import pytest

from repro.distributed import (
    load_shard_result,
    merge_shard_results,
    save_shard_result,
    sketch_shard,
)
from repro.distributed.shard import ShardSpec
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.serialization import load_sketch, save_sketch


@pytest.fixture
def tmp_sketch_path(tmp_path):
    return str(tmp_path / "sketch.npz")


class TestCountSketchRoundTrip:
    def test_queries_identical(self, tmp_sketch_path, rng):
        sketch = CountSketch(4, 512, seed=7, family="polynomial")
        keys = rng.integers(0, 10**9, size=2000)
        sketch.insert(keys, rng.standard_normal(2000))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        probe = rng.integers(0, 10**9, size=500)
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))

    def test_further_inserts_consistent(self, tmp_sketch_path, rng):
        sketch = CountSketch(3, 256, seed=1)
        sketch.insert(np.arange(50), np.ones(50))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        more_keys = np.arange(50)
        sketch.insert(more_keys, np.ones(50))
        loaded.insert(more_keys, np.ones(50))
        np.testing.assert_allclose(loaded.table, sketch.table, atol=1e-12)

    def test_loaded_merges_with_original_lineage(self, tmp_sketch_path):
        sketch = CountSketch(3, 256, seed=2)
        sketch.insert(np.array([5]), np.array([1.0]))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        loaded.merge(sketch)
        assert loaded.query_single(5) == pytest.approx(2.0)

    def test_parameters_preserved(self, tmp_sketch_path):
        sketch = CountSketch(6, 123, seed=99, family="tabulation")
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.num_tables == 6
        assert loaded.num_buckets == 123
        assert loaded.seed == 99
        assert loaded.family == "tabulation"


class TestCountMinRoundTrip:
    def test_round_trip_with_cap(self, tmp_sketch_path):
        sketch = CountMinSketch(3, 128, seed=3, conservative=True, cap=7.5)
        sketch.insert(np.array([1, 2]), np.array([5.0, 9.0]))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.conservative is True
        assert loaded.cap == 7.5
        np.testing.assert_array_equal(
            loaded.query(np.array([1, 2])), sketch.query(np.array([1, 2]))
        )

    def test_round_trip_without_cap(self, tmp_sketch_path):
        sketch = CountMinSketch(2, 64, seed=4)
        sketch.insert(np.array([9]), np.array([2.0]))
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.cap is None
        assert loaded.query_single(9) == sketch.query_single(9)


class TestDtypePreservation:
    """Counter dtypes must survive the round-trip bit-for-bit."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_count_min_dtype_exact(self, tmp_sketch_path, rng, dtype):
        sketch = CountMinSketch(3, 128, seed=6, dtype=dtype)
        sketch.insert(
            rng.integers(0, 10**6, size=500),
            np.abs(rng.standard_normal(500)),
        )
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.table.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(loaded.table, sketch.table)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_count_sketch_dtype_exact(self, tmp_sketch_path, rng, dtype):
        sketch = CountSketch(3, 128, seed=6, dtype=dtype)
        sketch.insert(
            rng.integers(0, 10**6, size=500), rng.standard_normal(500)
        )
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.table.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(loaded.table, sketch.table)


class TestAugmentedSketchRoundTrip:
    def _fitted(self, rng, two_sided=False):
        from repro.sketch.augmented import AugmentedSketch

        sketch = AugmentedSketch(
            3,
            256,
            filter_capacity=8,
            seed=11,
            exchange_every=2,
            two_sided=two_sided,
        )
        keys = rng.integers(0, 10**6, size=2000)
        # A few heavy keys so the exact filter is non-trivially populated;
        # several insert calls so the periodic exchange actually runs.
        keys[:400] = keys[0] % 7
        values = np.abs(rng.standard_normal(2000)) + 0.1
        for start in range(0, 2000, 250):
            sketch.insert(
                keys[start : start + 250], values[start : start + 250]
            )
        return sketch

    def test_queries_identical(self, tmp_sketch_path, rng):
        sketch = self._fitted(rng)
        assert len(sketch._filter) > 0  # the interesting state exists
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        probe = np.concatenate(
            [sketch.filter_keys, rng.integers(0, 10**6, size=500)]
        )
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))

    def test_parameters_and_filter_preserved(self, tmp_sketch_path, rng):
        sketch = self._fitted(rng, two_sided=True)
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        assert loaded.filter_capacity == 8
        assert loaded.exchange_every == 2
        assert loaded.two_sided is True
        assert loaded._inserts_since_exchange == sketch._inserts_since_exchange
        assert loaded._filter == sketch._filter
        np.testing.assert_array_equal(loaded.sketch.table, sketch.sketch.table)

    def test_further_inserts_identical(self, tmp_sketch_path, rng):
        sketch = self._fitted(rng)
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        more_keys = rng.integers(0, 10**6, size=300)
        more_vals = np.abs(rng.standard_normal(300))
        sketch.insert(more_keys, more_vals)
        loaded.insert(more_keys, more_vals)
        probe = rng.integers(0, 10**6, size=300)
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))
        assert loaded._filter == sketch._filter

    def test_merge_after_load(self, tmp_sketch_path, rng):
        from repro.sketch.augmented import AugmentedSketch

        sketch = self._fitted(rng)
        save_sketch(sketch, tmp_sketch_path)
        loaded = load_sketch(tmp_sketch_path)
        other = AugmentedSketch(
            3, 256, filter_capacity=8, seed=11, exchange_every=2
        )
        other.insert(
            rng.integers(0, 10**6, size=200),
            np.abs(rng.standard_normal(200)),
        )
        loaded.merge(other)  # compatible lineage: must not raise


class TestErrors:
    def test_unsupported_type(self, tmp_sketch_path):
        with pytest.raises(TypeError):
            save_sketch(object(), tmp_sketch_path)

    def test_error_lists_supported_kinds(self, tmp_sketch_path):
        from repro.sketch.cold_filter import ColdFilterSketch

        gate = ColdFilterSketch(3, 64, threshold=0.5)
        with pytest.raises(TypeError) as excinfo:
            save_sketch(gate, tmp_sketch_path)
        message = str(excinfo.value)
        for name in ("CountSketch", "CountMinSketch", "AugmentedSketch"):
            assert name in message
        assert "ColdFilterSketch" in message

    def test_unknown_kind_on_load(self):
        from repro.sketch.serialization import sketch_from_arrays

        with pytest.raises(ValueError, match="count-sketch"):
            sketch_from_arrays({"kind": np.asarray("mystery")})

    def test_distributed_aggregation_scenario(self, tmp_path, rng):
        """Workers sketch shards, persist, reducer loads and merges."""
        keys = rng.integers(0, 10**6, size=4000)
        values = rng.standard_normal(4000)

        paths = []
        for shard in range(4):
            worker = CountSketch(3, 512, seed=42)
            worker.insert(keys[shard::4], values[shard::4])
            path = str(tmp_path / f"shard{shard}.npz")
            save_sketch(worker, path)
            paths.append(path)

        merged = load_sketch(paths[0])
        for path in paths[1:]:
            merged.merge(load_sketch(path))

        reference = CountSketch(3, 512, seed=42)
        reference.insert(keys, values)
        np.testing.assert_allclose(merged.table, reference.table, atol=1e-9)


class TestMergeAfterRoundTrip:
    """Regression: a loaded sketch must merge *identically* to the
    in-memory original — not just answer queries identically."""

    def test_count_sketch_merge_identical(self, tmp_path, rng):
        base = CountSketch(4, 512, seed=7, family="polynomial")
        other = CountSketch(4, 512, seed=7, family="polynomial")
        base.insert(rng.integers(0, 10**9, size=2000), rng.standard_normal(2000))
        other.insert(rng.integers(0, 10**9, size=2000), rng.standard_normal(2000))

        path = str(tmp_path / "base.npz")
        save_sketch(base, path)
        loaded = load_sketch(path)

        in_memory = base.copy().merge(other)
        via_disk = loaded.merge(other)
        np.testing.assert_array_equal(via_disk.table, in_memory.table)
        probe = rng.integers(0, 10**9, size=500)
        np.testing.assert_array_equal(via_disk.query(probe), in_memory.query(probe))

    def test_count_min_merge_identical(self, tmp_path, rng):
        base = CountMinSketch(3, 256, seed=5)
        other = CountMinSketch(3, 256, seed=5)
        base.insert(
            rng.integers(0, 10**6, size=1000), np.abs(rng.standard_normal(1000))
        )
        other.insert(
            rng.integers(0, 10**6, size=1000), np.abs(rng.standard_normal(1000))
        )

        path = str(tmp_path / "cm.npz")
        save_sketch(base, path)
        loaded = load_sketch(path)

        reference = CountMinSketch(3, 256, seed=5)
        reference.table[:] = base.table
        reference.merge(other)
        loaded.merge(other)
        np.testing.assert_array_equal(loaded.table, reference.table)

    def test_loaded_sketch_rejects_incompatible_merge(self, tmp_path):
        base = CountSketch(3, 256, seed=2)
        path = str(tmp_path / "s.npz")
        save_sketch(base, path)
        loaded = load_sketch(path)
        with pytest.raises(ValueError, match="mergeable"):
            loaded.merge(CountSketch(3, 256, seed=3))


def _shard_samples(rng, n, dim, nnz=6):
    return [
        (
            np.sort(rng.choice(dim, size=nnz, replace=False)).astype(np.int64),
            rng.standard_normal(nnz),
        )
        for _ in range(n)
    ]


class TestShardResultRoundTrip:
    def _spec(self, **overrides):
        kwargs = dict(
            dim=80,
            total_samples=64,
            method="ascs",
            num_tables=3,
            num_buckets=256,
            seed=19,
            family="polynomial",
            mode="correlation",
            batch_size=8,
            std_floor=1e-5,
            track_top=16,
            two_sided=True,
            schedule=(16, 1e-4, 1e-3, 64),
        )
        kwargs.update(overrides)
        return ShardSpec(**kwargs)

    def test_all_fields_preserved(self, tmp_path, rng):
        spec = self._spec()
        result = sketch_shard(
            spec,
            _shard_samples(rng, 32, spec.dim),
            shard_index=1,
            num_shards=2,
            start=32,
        )
        path = str(tmp_path / "shard.npz")
        save_shard_result(result, path)
        loaded = load_shard_result(path)

        assert loaded.spec == spec
        for f in ("shard_index", "num_shards", "start", "stop", "samples_seen",
                  "updates_examined", "updates_accepted", "moments_count"):
            assert getattr(loaded, f) == getattr(result, f), f
        for f in ("table", "moments_sum", "moments_sumsq",
                  "tracker_keys", "tracker_estimates"):
            np.testing.assert_array_equal(getattr(loaded, f), getattr(result, f))

    def test_cs_spec_without_schedule(self, tmp_path, rng):
        spec = self._spec(
            method="cs", schedule=None, mode="covariance", two_sided=False
        )
        result = sketch_shard(spec, _shard_samples(rng, 16, spec.dim))
        path = str(tmp_path / "cs_shard.npz")
        save_shard_result(result, path)
        loaded = load_shard_result(path)
        assert loaded.spec == spec
        assert loaded.spec.schedule is None

    def test_loaded_shards_reduce_like_in_memory(self, tmp_path, rng):
        """The distributed deployment: persist shard files, reduce later."""
        spec = self._spec(method="cs", schedule=None, mode="covariance",
                          two_sided=False)
        samples = _shard_samples(rng, 64, spec.dim)
        shards = [
            sketch_shard(spec, samples[:32], shard_index=0, num_shards=2, start=0),
            sketch_shard(spec, samples[32:], shard_index=1, num_shards=2, start=32),
        ]
        paths = []
        for shard in shards:
            path = str(tmp_path / f"shard{shard.shard_index}.npz")
            save_shard_result(shard, path)
            paths.append(path)

        in_memory = merge_shard_results(shards)
        via_disk = merge_shard_results([load_shard_result(p) for p in paths])
        np.testing.assert_array_equal(
            via_disk.estimator.sketch.table, in_memory.estimator.sketch.table
        )
        k1, e1 = in_memory.estimator.top_k(8)
        k2, e2 = via_disk.estimator.top_k(8)
        np.testing.assert_array_equal(k1, k2)
        np.testing.assert_array_equal(e1, e2)

    def test_loads_pre_memory_tier_files(self, tmp_path, rng):
        """Regression: shard/pane .npz files written before the storage
        tier existed (no spec_storage/spec_quantum members) must keep
        loading, with those fields at their float64/unquantized defaults."""
        spec = self._spec(method="cs", schedule=None, mode="covariance",
                          two_sided=False)
        result = sketch_shard(spec, _shard_samples(rng, 16, spec.dim))
        path = tmp_path / "old_format.npz"
        save_shard_result(result, str(path))
        # A genuine pre-tier file has neither the storage/quantum spec
        # members nor the integrity members (both tiers came later).
        with np.load(path, allow_pickle=False) as data:
            stripped = {
                name: data[name]
                for name in data.files
                if name not in ("spec_storage", "spec_quantum")
                and not name.startswith("integrity_")
            }
        np.savez_compressed(path, **stripped)
        loaded = load_shard_result(str(path))
        assert loaded.spec.storage == "float64"
        assert loaded.spec.quantum is None
        assert loaded.spec == spec
        np.testing.assert_array_equal(loaded.table, result.table)

    def test_round_trip_covers_every_dataclass_field(self, tmp_path, rng):
        """Guards against new ShardResult fields silently skipping the
        .npz round trip."""
        spec = self._spec()
        result = sketch_shard(spec, _shard_samples(rng, 8, spec.dim))
        path = str(tmp_path / "full.npz")
        save_shard_result(result, path)
        loaded = load_shard_result(path)
        for f in dataclasses.fields(result):
            original, restored = getattr(result, f.name), getattr(loaded, f.name)
            if isinstance(original, np.ndarray):
                np.testing.assert_array_equal(restored, original, err_msg=f.name)
            else:
                assert restored == original, f.name
