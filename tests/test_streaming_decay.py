"""repro.streaming decay layer: moments, estimator, drift recovery, serving.

Includes the acceptance property of the streaming subsystem: after an
abrupt drift, the decayed estimator's top-pair F1 against the *current*
signal set beats the no-decay baseline (seeded, deterministic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import build_estimator, sketch_correlations
from repro.covariance.pipeline import CovarianceSketcher
from repro.covariance.running import RunningMoments, SparseMoments
from repro.data.drift import AbruptShiftStream
from repro.evaluation.metrics import max_f1_score
from repro.hashing.pairs import pair_to_index
from repro.serving import ServingEstimator, SketchSnapshot
from repro.sketch import CountSketch, DecayedSketch
from repro.streaming import (
    DecayedRunningMoments,
    DecayedSketchEstimator,
    DecayedSparseMoments,
    make_decaying_sketcher,
)


def _brute_decayed_stats(batches, gamma, dim):
    """Reference decayed mean/variance/weight by explicit recomputation."""
    weight = 0.0
    total = np.zeros(dim)
    total_sq = np.zeros(dim)
    stats = []
    for batch in batches:
        b = batch.shape[0]
        factor = gamma**b
        weight = weight * factor + b
        total = total * factor + batch.sum(axis=0)
        total_sq = total_sq * factor + (batch**2).sum(axis=0)
        mean = total / weight
        var = np.maximum(total_sq / weight - mean**2, 0.0)
        stats.append((weight, mean.copy(), var.copy()))
    return stats


class TestDecayedMoments:
    def test_running_matches_brute_force(self, rng):
        gamma, dim = 0.9, 7
        batches = [rng.standard_normal((rng.integers(1, 9), dim)) for _ in range(12)]
        moments = DecayedRunningMoments(dim, gamma)
        for batch, (weight, mean, var) in zip(
            batches, _brute_decayed_stats(batches, gamma, dim)
        ):
            moments.update(batch)
            assert moments.weight == pytest.approx(weight)
            np.testing.assert_allclose(moments.mean, mean, atol=1e-12)
            np.testing.assert_allclose(moments.variance(), var, atol=1e-12)

    def test_sparse_matches_brute_force(self, rng):
        gamma, dim = 0.8, 40
        moments = DecayedSparseMoments(dim, gamma)
        dense_batches = []
        for _ in range(10):
            b = int(rng.integers(1, 5))
            batch = np.zeros((b, dim))
            nnz = int(rng.integers(1, 6))
            # Unique indices within each row (the sparse-sample contract),
            # so per-entry squares equal per-feature squares.
            idx_rows = [
                rng.choice(dim, size=nnz, replace=False).astype(np.int64)
                for _ in range(b)
            ]
            val = rng.standard_normal(b * nnz)
            for row in range(b):
                batch[row, idx_rows[row]] = val[row * nnz : (row + 1) * nnz]
            moments.update_batch(
                np.concatenate(idx_rows), val, num_samples=b
            )
            dense_batches.append(batch)
        weight, mean, var = _brute_decayed_stats(dense_batches, gamma, dim)[-1]
        assert moments.weight == pytest.approx(weight)
        np.testing.assert_allclose(moments.mean, mean, atol=1e-10)
        np.testing.assert_allclose(moments.variance(), var, atol=1e-10)

    def test_gamma_one_matches_undecayed_trackers(self, rng):
        dim = 9
        batches = [rng.standard_normal((8, dim)) for _ in range(6)]
        decayed = DecayedRunningMoments(dim, 1.0)
        plain = RunningMoments(dim)
        for batch in batches:
            decayed.update(batch)
            plain.update(batch)
        assert decayed.weight == plain.count
        np.testing.assert_allclose(decayed.mean, plain.mean, atol=1e-12)
        np.testing.assert_allclose(
            decayed.variance(), plain.variance(), atol=1e-12
        )

        sparse_decayed = DecayedSparseMoments(dim, 1.0)
        sparse_plain = SparseMoments(dim)
        idx = rng.integers(0, dim, size=50).astype(np.int64)
        val = rng.standard_normal(50)
        sparse_decayed.update_batch(idx, val, num_samples=10)
        sparse_plain.update_batch(idx, val, num_samples=10)
        np.testing.assert_allclose(
            sparse_decayed.mean, sparse_plain.mean, atol=1e-15
        )

    def test_lazy_flush_invariance(self, rng):
        """Tiny scales trigger accumulator flushes without observable change."""
        moments = DecayedRunningMoments(5, 0.5)
        for _ in range(8):
            moments.update(rng.standard_normal((16, 5)))  # 16 halvings/batch
        assert np.isfinite(moments.mean).all()
        # Geometric sum 16 * (1 + 0.5^16 + 0.5^32 + ...) ≈ 16.000244.
        assert 16.0 < moments.weight < 16.001


class TestDecayedEstimator:
    def test_estimates_are_decayed_means(self):
        """On collision-free keys the estimate equals the decayed mean."""
        gamma = 0.5
        sketch = DecayedSketch(CountSketch(5, 8192, seed=11), gamma)
        est = DecayedSketchEstimator(sketch, total_samples=4)
        keys = np.asarray([123], dtype=np.int64)
        est.ingest(keys, np.asarray([8.0]), num_samples=1)
        est.ingest(keys, np.asarray([2.0]), num_samples=1)
        # decayed sum = 8*0.5 + 2 = 6; decayed weight = 1*0.5 + 1 = 1.5
        assert est.estimate(keys)[0] == pytest.approx(6.0 / 1.5)

    def test_gamma_one_matches_plain_estimator(self, rng):
        keys = rng.integers(0, 10**6, size=600).astype(np.int64)
        values = rng.standard_normal(600)
        plain = build_estimator("cs", 600, 5, 2048, seed=4, track_top=64)
        decayed = DecayedSketchEstimator(
            DecayedSketch(CountSketch(5, 2048, seed=4), 1.0),
            600,
            track_top=64,
        )
        for start in range(0, 600, 50):
            sl = slice(start, start + 50)
            plain.ingest(keys[sl], values[sl], num_samples=50)
            decayed.ingest(keys[sl], values[sl], num_samples=50)
        np.testing.assert_allclose(
            decayed.estimate(keys), plain.estimate(keys), rtol=1e-12
        )

    def test_requires_decayed_sketch(self):
        with pytest.raises(TypeError, match="DecayedSketch"):
            DecayedSketchEstimator(CountSketch(3, 64), 10)

    def test_snapshot_bit_identical_to_live_estimates(self, rng):
        sketcher = make_decaying_sketcher(
            60, 1024, gamma=0.99, num_buckets=2048, seed=9,
            mode="correlation", track_top=64,
        )
        sketcher.fit_dense(rng.standard_normal((256, 60)))
        snapshot = SketchSnapshot.from_sketcher(sketcher, top_index=64)
        keys = np.arange(sketcher.num_pairs, dtype=np.int64)[:500]
        np.testing.assert_array_equal(
            snapshot.query_keys(keys), sketcher.estimate_keys(keys)
        )
        # And through the save/load path (the registry's 'decayed' kind).
        assert snapshot.meta()["method"] == "DecayedCS"

    def test_serving_refresh_exposes_decay(self, rng):
        sketcher = make_decaying_sketcher(
            40, 2048, gamma=0.98, num_buckets=1024, seed=2, track_top=32
        )
        serving = ServingEstimator(sketcher, top_index=32)
        serving.ingest_dense(rng.standard_normal((64, 40)))
        serving.refresh()
        stats = serving.stats()
        assert stats["decay"] == pytest.approx(0.98)
        assert stats["window_span"] is None


class TestDriftRecovery:
    def test_decayed_beats_baseline_after_abrupt_drift(self):
        """Acceptance: post-drift F1, decayed > no-decay, fixed seeds."""
        dim, n = 120, 4096
        stream = AbruptShiftStream(dim, n, alpha=0.02, seed=11)
        data = stream.generate()
        truth_now = stream.signal_pairs_at(n - 1)

        def top_f1(sketcher):
            i, j, _ = sketcher.top_pairs(truth_now.size)
            return max_f1_score(pair_to_index(i, j, dim), truth_now)

        baseline = CovarianceSketcher(
            dim,
            build_estimator("cs", n, 5, 2048, seed=3, track_top=256),
            mode="correlation",
            centering="none",
            batch_size=32,
        )
        baseline.fit_dense(data)
        decayed = make_decaying_sketcher(
            dim, n, gamma=1.0 - 1.0 / 256, num_tables=5, num_buckets=2048,
            seed=3, mode="correlation", batch_size=32, track_top=256,
        )
        decayed.fit_dense(data)

        f1_baseline = top_f1(baseline)
        f1_decayed = top_f1(decayed)
        # The margin is large by construction (half the stream is stale);
        # assert a real gap, not just a tie-break.
        assert f1_decayed >= f1_baseline + 0.2
        assert f1_decayed >= 0.9

    def test_sketch_correlations_decay_parameter(self):
        dim, n = 80, 1024
        stream = AbruptShiftStream(dim, n, alpha=0.02, seed=5)
        data = stream.generate()
        truth_now = stream.signal_pairs_at(n - 1)
        result = sketch_correlations(
            data,
            memory_floats=5 * 2048,
            method="cs",
            decay=1.0 - 1.0 / 128,
            top_k=truth_now.size,
            seed=1,
        )
        keys = pair_to_index(result.pairs_i, result.pairs_j, dim)
        assert max_f1_score(keys, truth_now) >= 0.8
        assert result.sketcher.decay == pytest.approx(1.0 - 1.0 / 128)

    def test_sketch_correlations_decay_rejects_other_methods(self):
        data = np.zeros((64, 10))
        with pytest.raises(ValueError, match="method='cs'"):
            sketch_correlations(
                data, memory_floats=1024, method="ascs", decay=0.99
            )


class TestFlushBoundary:
    """Pin the lazy-scale flush semantics exactly at ``_FLUSH_BELOW``.

    The flush bound is ``2.0**-40`` and ``_age`` flushes on strict ``<``:
    with ``gamma = 0.5`` and one-sample batches the scale walks down the
    exact powers of two and *lands on* the boundary at step 40 without
    flushing; step 41 crosses it and flushes exactly once.  Because aging
    runs (and possibly flushes) *before* the incoming values are divided
    by the scale, the accumulated statistics are exact — bit-identical to
    an eager reference — on both sides of the boundary.  This test exists
    so any future reordering of the fold/flush steps (e.g. dividing by
    the pre-flush scale) fails loudly instead of silently skewing every
    post-flush estimate.
    """

    GAMMA = 0.5
    FLUSH_BELOW = 2.0**-40

    @staticmethod
    def _reference(values, gamma):
        """Eager decayed sum/sumsq/weight — exact for these inputs."""
        total = 0.0
        total_sq = 0.0
        weight = 0.0
        for v in values:
            total = total * gamma + v
            total_sq = total_sq * gamma + v * v
            weight = weight * gamma + 1.0
        return total, total_sq, weight

    def _check_sparse(self, steps):
        rng = np.random.default_rng(9)
        values = rng.integers(-3, 4, size=steps).astype(np.float64)
        m = DecayedSparseMoments(1, gamma=self.GAMMA)
        for v in values:
            m.update_batch(np.array([0]), np.array([v]), 1)
        total, total_sq, weight = self._reference(values, self.GAMMA)
        # Exact equality, not approx: every operation on this walk is a
        # power-of-two scaling of exactly representable values.
        assert m.weight == weight
        assert m._sum[0] * m._scale == total
        assert m._sumsq[0] * m._scale == total_sq
        mean = total / weight
        assert m.mean[0] == mean
        assert m.variance()[0] == max(total_sq / weight - mean * mean, 0.0)
        return m

    def test_exact_boundary_does_not_flush(self):
        m = self._check_sparse(40)
        # Landed exactly on the bound: strict < means no flush yet.
        assert m._scale == self.FLUSH_BELOW
        assert m.flushes == 0

    def test_one_past_boundary_flushes_once_exactly(self):
        m = self._check_sparse(41)
        # Crossed the bound during _age: flushed once, scale reset, and
        # (per _check_sparse) every statistic still matches the eager
        # reference exactly — the flush is invisible to estimates.
        assert m.flushes == 1
        assert m._scale == 1.0

    def test_dense_moments_same_boundary(self):
        rng = np.random.default_rng(11)
        rows = rng.integers(-3, 4, size=(41, 1)).astype(np.float64)
        m = DecayedRunningMoments(1, gamma=self.GAMMA)
        for k, row in enumerate(rows, start=1):
            m.update(row.reshape(1, 1))
            assert m.flushes == (1 if k >= 41 else 0)
        total, total_sq, weight = self._reference(rows[:, 0], self.GAMMA)
        assert m.weight == weight
        assert m.mean[0] == total / weight
        mean = total / weight
        assert m.variance()[0] == max(total_sq / weight - mean * mean, 0.0)

    def test_batch_landing_exactly_on_boundary_in_one_age(self):
        # A single 40-sample age lands on the bound in one multiplication
        # (0.5**40 is exact): still no flush, and the fold divides the
        # incoming values by the boundary scale exactly.
        m = DecayedSparseMoments(1, gamma=self.GAMMA)
        m.update_batch(np.array([0]), np.array([3.0]), 40)
        assert m.flushes == 0
        assert m._scale == self.FLUSH_BELOW
        assert m._sum[0] * m._scale == 3.0
        # The very next age crosses the bound and flushes exactly once.
        m.update_batch(np.array([0]), np.array([1.0]), 1)
        assert m.flushes == 1
        assert m._sum[0] * m._scale == 3.0 * self.GAMMA + 1.0
