"""Tests for CountMinSketch (repro.sketch.count_min)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.count_min import CountMinSketch


class TestBasics:
    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 10)
        with pytest.raises(ValueError):
            CountMinSketch(2, 0)

    def test_rejects_negative_values(self):
        cm = CountMinSketch(3, 100)
        with pytest.raises(ValueError, match="non-negative"):
            cm.insert(np.array([1]), np.array([-1.0]))

    def test_memory(self):
        assert CountMinSketch(3, 100).memory_floats == 300


class TestOverestimateInvariant:
    @given(
        st.lists(
            st.tuples(st.integers(0, 10**6), st.floats(0, 50)), min_size=1, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates(self, updates):
        cm = CountMinSketch(3, 64, seed=1)
        totals: dict[int, float] = {}
        for key, val in updates:
            cm.insert(np.array([key]), np.array([val]))
            totals[key] = totals.get(key, 0.0) + val
        keys = np.array(list(totals))
        est = cm.query(keys)
        truth = np.array([totals[k] for k in totals])
        assert (est >= truth - 1e-9).all()

    @given(
        st.lists(
            st.tuples(st.integers(0, 10**6), st.floats(0, 50)), min_size=1, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_conservative_never_underestimates(self, updates):
        cm = CountMinSketch(3, 64, seed=1, conservative=True)
        totals: dict[int, float] = {}
        for key, val in updates:
            cm.insert(np.array([key]), np.array([val]))
            totals[key] = totals.get(key, 0.0) + val
        keys = np.array(list(totals))
        est = cm.query(keys)
        truth = np.array([totals[k] for k in totals])
        assert (est >= truth - 1e-9).all()


class TestConservativeUpdate:
    def test_tighter_than_plain(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 5000, size=20_000)
        vals = rng.random(20_000)
        plain = CountMinSketch(3, 128, seed=5)
        cons = CountMinSketch(3, 128, seed=5, conservative=True)
        for n in range(0, 20_000, 100):
            plain.insert(keys[n : n + 100], vals[n : n + 100])
            cons.insert(keys[n : n + 100], vals[n : n + 100])
        probe = np.arange(5000)
        assert cons.query(probe).sum() <= plain.query(probe).sum()

    def test_duplicate_keys_in_batch(self):
        cm = CountMinSketch(2, 64, seed=7, conservative=True)
        cm.insert(np.array([9, 9, 9]), np.array([1.0, 1.0, 1.0]))
        assert cm.query_single(9) >= 3.0 - 1e-9


class TestCap:
    def test_saturates(self):
        cm = CountMinSketch(2, 64, seed=1, cap=5.0)
        cm.insert(np.array([4]), np.array([10.0]))
        assert cm.query_single(4) == pytest.approx(5.0)

    def test_cap_with_accumulation(self):
        cm = CountMinSketch(2, 64, seed=1, cap=5.0)
        for _ in range(10):
            cm.insert(np.array([4]), np.array([1.0]))
        assert cm.query_single(4) == pytest.approx(5.0)


class TestMerge:
    def test_merge_matches_combined(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1000, size=500)
        vals = rng.random(500)
        full = CountMinSketch(3, 64, seed=2)
        full.insert(keys, vals)
        a = CountMinSketch(3, 64, seed=2)
        b = CountMinSketch(3, 64, seed=2)
        a.insert(keys[:250], vals[:250])
        b.insert(keys[250:], vals[250:])
        a.merge(b)
        np.testing.assert_allclose(a.table, full.table, atol=1e-9)

    def test_conservative_merge_rejected(self):
        a = CountMinSketch(3, 64, seed=2, conservative=True)
        b = CountMinSketch(3, 64, seed=2, conservative=True)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)

    def test_incompatible_merge_rejected(self):
        a = CountMinSketch(3, 64, seed=2)
        with pytest.raises(ValueError, match="mergeable"):
            a.merge(CountMinSketch(3, 65, seed=2))

    def test_reset(self):
        cm = CountMinSketch(2, 32, seed=0)
        cm.insert(np.array([1]), np.array([2.0]))
        cm.reset()
        assert cm.query_single(1) == 0.0
