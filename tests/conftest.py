"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import BlockCorrelationModel
from repro.sketch.count_sketch import CountSketch


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_sketch():
    """A sketch wide enough that a handful of keys never collide."""
    return CountSketch(num_tables=5, num_buckets=4096, seed=7)


@pytest.fixture
def block_model():
    """A tiny block-correlation model with known signal pairs."""
    return BlockCorrelationModel.from_alpha(60, alpha=0.02, seed=3)
