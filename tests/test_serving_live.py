"""Tests for the double-buffered ServingEstimator (concurrent ingest/serve)."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.serving import ServingEstimator, SketchSnapshot
from repro.sketch.count_sketch import CountSketch

DIM = 40


def _make_samples(n, rng, nnz=5):
    return [
        (
            np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64),
            rng.standard_normal(nnz),
        )
        for _ in range(n)
    ]


def _make_serving(total_samples=10_000, **kwargs) -> ServingEstimator:
    estimator = SketchEstimator(
        CountSketch(3, 512, seed=13), total_samples=total_samples, track_top=128
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=16
    )
    kwargs.setdefault("top_index", 64)
    return ServingEstimator(sketcher, **kwargs)


class TestSwapSemantics:
    def test_refresh_swaps_engine(self, rng):
        serving = _make_serving()
        serving.ingest_sparse(_make_samples(32, rng))
        snap1 = serving.refresh()
        engine1 = serving.engine
        serving.ingest_sparse(_make_samples(32, rng))
        snap2 = serving.refresh()
        assert serving.engine is not engine1
        assert snap2.snapshot_id > snap1.snapshot_id
        assert serving.swap_count == 2
        assert serving.last_swap_seconds > 0

    def test_served_snapshot_lags_write_side_until_refresh(self, rng):
        serving = _make_serving()
        serving.ingest_sparse(_make_samples(32, rng))
        serving.refresh()
        probe = np.arange(60, dtype=np.int64)
        before = serving.query_keys(probe).copy()
        serving.ingest_sparse(_make_samples(64, rng))
        # Same snapshot keeps answering until the swap...
        np.testing.assert_array_equal(serving.query_keys(probe), before)
        serving.refresh()
        # ...and the new one answers exactly like the live estimator now.
        np.testing.assert_array_equal(
            serving.query_keys(probe),
            serving.sketcher.estimator.estimate(probe),
        )

    def test_auto_refresh_every(self, rng):
        serving = _make_serving(refresh_every=32)
        serving.ingest_sparse(_make_samples(32, rng))
        assert serving.swap_count == 1
        serving.ingest_sparse(_make_samples(16, rng))
        assert serving.swap_count == 1  # below the threshold since last swap
        serving.ingest_sparse(_make_samples(16, rng))
        assert serving.swap_count == 2

    def test_engine_property_auto_snapshots(self, rng):
        serving = _make_serving()
        serving.ingest_sparse(_make_samples(16, rng))
        assert serving.swap_count == 0
        _ = serving.engine
        assert serving.swap_count == 1

    def test_install_prebuilt_snapshot(self, rng):
        serving = _make_serving()
        serving.ingest_sparse(_make_samples(16, rng))
        snap = SketchSnapshot.from_sketcher(serving.sketcher, top_index=32)
        serving.install(snap)
        assert serving.snapshot is snap

    def test_from_spec(self):
        from repro.distributed.shard import ShardSpec

        spec = ShardSpec(
            dim=DIM, total_samples=100, num_tables=3, num_buckets=256, seed=1
        )
        serving = ServingEstimator.from_spec(spec, top_index=16)
        assert serving.sketcher.dim == DIM

    def test_bad_refresh_every(self, rng):
        with pytest.raises(ValueError):
            _make_serving(refresh_every=-1)


class TestConcurrentIngestServe:
    """The tentpole guarantee: queries never observe a half-updated sketch."""

    def test_no_torn_reads_across_swaps(self, rng):
        serving = _make_serving(cache_size=256)
        serving.ingest_sparse(_make_samples(32, rng))
        serving.refresh()

        probe = np.arange(80, dtype=np.int64)
        # Expected answer per snapshot id, recorded from each immutable
        # snapshot object itself (safe: snapshots never change once built).
        expected: dict[int, np.ndarray] = {
            serving.snapshot.snapshot_id: serving.snapshot.query_keys(probe)
        }
        observations: list[tuple[int, np.ndarray]] = []
        errors: list[BaseException] = []
        stop = threading.Event()
        swaps_target = 4

        def reader():
            try:
                while not stop.is_set():
                    observations.append(serving.query_keys_versioned(probe))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(swaps_target):
                serving.ingest_sparse(_make_samples(48, rng))
                reads_before = len(observations)
                snap = serving.refresh()
                expected[snap.snapshot_id] = snap.query_keys(probe)
                # Let the readers overlap this snapshot's serving window.
                deadline = time.time() + 5.0
                while len(observations) < reads_before + 5:
                    if time.time() > deadline:  # pragma: no cover
                        pytest.fail("readers made no progress")
                    time.sleep(0.001)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

        assert not errors
        assert serving.swap_count == 1 + swaps_target
        seen_ids = {snapshot_id for snapshot_id, _ in observations}
        # Reads overlapped at least 3 distinct swapped-in snapshots.
        assert len(seen_ids) >= 3
        assert seen_ids <= set(expected)
        for snapshot_id, values in observations:
            np.testing.assert_array_equal(
                values,
                expected[snapshot_id],
                err_msg=f"torn read against snapshot {snapshot_id}",
            )

    def test_concurrent_throughput_when_parallel_hardware(self, rng):
        """Speedup-style assertion, hardware-gated per the 1-CPU container
        rule: correctness above is always checked; wall-clock overlap is
        only asserted when the machine can actually run threads in
        parallel."""
        if (os.cpu_count() or 1) < 4:
            pytest.skip("needs >= 4 cores to measure ingest/serve overlap")
        serving = _make_serving(cache_size=1024)
        serving.ingest_sparse(_make_samples(64, rng))
        serving.refresh()
        probe = np.arange(40, dtype=np.int64)
        start = time.perf_counter()
        for _ in range(2000):
            serving.query_keys(probe)
        solo = time.perf_counter() - start

        stop = threading.Event()

        def writer():
            while not stop.is_set():
                serving.ingest_sparse(_make_samples(16, rng))

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            start = time.perf_counter()
            for _ in range(2000):
                serving.query_keys(probe)
            contended = time.perf_counter() - start
        finally:
            stop.set()
            thread.join(timeout=10.0)
        # Reads should not serialize behind the writer.
        assert contended < 5.0 * solo
