"""Tests for the stdlib HTTP front end (server + client round trips)."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.serving import (
    QueryEngine,
    ServingClient,
    ServingEstimator,
    serve_in_background,
)
from repro.sketch.count_sketch import CountSketch

DIM = 40


def _make_samples(n, rng, nnz=5):
    return [
        (
            np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64),
            rng.standard_normal(nnz),
        )
        for _ in range(n)
    ]


def _make_serving(rng) -> ServingEstimator:
    estimator = SketchEstimator(
        CountSketch(3, 512, seed=31), total_samples=1000, track_top=128
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=16
    )
    serving = ServingEstimator(sketcher, top_index=64, cache_size=256)
    serving.ingest_sparse(_make_samples(64, rng))
    serving.refresh()
    return serving


@pytest.fixture
def serving_server(rng):
    serving = _make_serving(rng)
    server, thread = serve_in_background(serving)
    yield serving, server, ServingClient(server.url)
    server.shutdown()
    server.server_close()


class TestReadEndpoints:
    def test_health(self, serving_server):
        serving, _, client = serving_server
        health = client.health()
        assert health["status"] == "ok"
        assert health["snapshot_id"] == serving.snapshot.snapshot_id
        assert health["writable"] is True

    def test_pair_round_trips_exactly(self, serving_server):
        serving, _, client = serving_server
        # JSON floats are repr-round-trip exact, so HTTP == in-process.
        assert client.pair(0, 3) == serving.query_pair(0, 3)

    def test_batch_query_pairs(self, serving_server, rng):
        serving, _, client = serving_server
        i = rng.integers(0, DIM - 1, size=50)
        j = rng.integers(i + 1, DIM, size=50)
        np.testing.assert_array_equal(
            client.query_pairs(i, j), serving.query_pairs(i, j)
        )

    def test_batch_query_keys(self, serving_server):
        serving, _, client = serving_server
        keys = np.arange(30, dtype=np.int64)
        np.testing.assert_array_equal(
            client.query_keys(keys), serving.query_keys(keys)
        )

    def test_neighbors(self, serving_server):
        serving, _, client = serving_server
        feature = int(serving.snapshot.index_i[0])
        partners, estimates = client.neighbors(feature, k=5)
        local_p, local_e = serving.top_neighbors(feature, 5)
        np.testing.assert_array_equal(partners, local_p)
        np.testing.assert_array_equal(estimates, local_e)

    def test_top_and_above(self, serving_server):
        serving, _, client = serving_server
        i, j, est = client.top(5)
        np.testing.assert_array_equal(est, serving.top_pairs(5)[2])
        ai, aj, aest = client.above(float(est[-1]))
        assert aest.size >= est.size

    def test_above_limit_zero_means_zero(self, serving_server):
        _, _, client = serving_server
        i, j, est = client.above(-1e9, limit=0)
        assert est.size == 0

    def test_health_has_no_side_effects_before_first_refresh(self, rng):
        estimator = SketchEstimator(
            CountSketch(3, 512, seed=41), total_samples=100
        )
        sketcher = CovarianceSketcher(DIM, estimator, mode="covariance")
        serving = ServingEstimator(sketcher, top_index=16)
        server, _ = serve_in_background(serving)
        try:
            health = ServingClient(server.url).health()
            assert health["snapshot_id"] is None
            assert serving.swap_count == 0  # the probe built nothing
        finally:
            server.shutdown()
            server.server_close()

    def test_stats(self, serving_server):
        serving, _, client = serving_server
        client.pair(0, 1)
        stats = client.stats()
        assert stats["swap_count"] == serving.swap_count
        assert stats["engine"]["cache"]["capacity"] == 256


class TestWriteEndpoints:
    def test_ingest_then_refresh_changes_served_snapshot(
        self, serving_server, rng
    ):
        serving, _, client = serving_server
        before_id = serving.snapshot.snapshot_id
        result = client.ingest(_make_samples(8, rng))
        assert result["ingested"] == 8
        # Served snapshot unchanged until refresh...
        assert serving.snapshot.snapshot_id == before_id
        refreshed = client.refresh()
        assert refreshed["snapshot_id"] > before_id
        assert serving.snapshot.snapshot_id == refreshed["snapshot_id"]


class TestErrorsAndReadOnlyTargets:
    def test_bad_pair_is_400(self, serving_server):
        _, server, _ = serving_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/pair?i=5&j=5")
        assert excinfo.value.code == 400

    def test_missing_param_is_400(self, serving_server):
        _, server, _ = serving_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/pair?i=5")
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, serving_server):
        _, server, _ = serving_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_malformed_samples_is_json_error_not_hangup(self, serving_server):
        _, server, _ = serving_server
        request = urllib.request.Request(
            f"{server.url}/ingest",
            data=json.dumps({"samples": [1, 2]}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code in (400, 500)
        assert "error" in json.loads(excinfo.value.read())

    def test_out_of_range_keys_is_400(self, serving_server):
        _, server, _ = serving_server
        request = urllib.request.Request(
            f"{server.url}/query",
            data=json.dumps({"keys": [-5]}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_bad_json_body_is_400(self, serving_server):
        _, server, _ = serving_server
        request = urllib.request.Request(
            f"{server.url}/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_snapshot_target_serves_reads_but_rejects_writes(self, rng):
        serving = _make_serving(rng)
        snapshot = serving.snapshot
        server, thread = serve_in_background(QueryEngine(snapshot))
        try:
            client = ServingClient(server.url)
            assert client.health()["writable"] is False
            np.testing.assert_array_equal(
                client.query_keys(np.arange(10, dtype=np.int64)),
                snapshot.query_keys(np.arange(10, dtype=np.int64)),
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.refresh()
            assert excinfo.value.code == 405
        finally:
            server.shutdown()
            server.server_close()


class TestObservabilityEndpoints:
    def test_metrics_route_serves_prometheus_text(self, serving_server):
        _, server, client = serving_server
        client.pair(0, 1)
        client.query_keys(np.arange(5, dtype=np.int64))
        with urllib.request.urlopen(f"{server.url}/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode("utf-8")
        # Serving, HTTP and breaker families all ride one exposition.
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_http_inflight",
            "repro_serving_swaps_total",
            "repro_serving_query_seconds",
            "repro_serving_cache_hit_ratio",
            "repro_breaker_rejections_total",
        ):
            assert f"# TYPE {family}" in text, family
        # Histogram families carry the full bucket/sum/count triplet.
        assert re.search(
            r'repro_http_request_seconds_bucket\{[^}]*le="\+Inf"\}', text
        )
        assert "repro_http_request_seconds_sum" in text
        assert "repro_http_request_seconds_count" in text

    def test_client_metrics_returns_raw_text(self, serving_server):
        _, _, client = serving_server
        client.pair(0, 1)
        text = client.metrics()
        assert isinstance(text, str)
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_rejected_total counter" in text

    def test_requests_counted_by_route_and_code(self, serving_server):
        _, server, client = serving_server
        client.pair(0, 1)
        client.pair(0, 2)
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{server.url}/nope")
        http = client.stats()["http"]
        assert http["requests"]["GET /pair"]["200"] >= 2
        # Unknown paths pool under "other" so junk cannot explode cardinality.
        assert http["requests"]["GET other"]["404"] >= 1
        assert "GET /pair" in http["latency"]
        assert http["latency"]["GET /pair"]["count"] >= 2

    def test_stats_reports_rejected_requests(self, serving_server):
        """Satellite: /stats must surface the HTTP admission counters the
        old plain-int implementation dropped."""
        _, server, client = serving_server
        http = client.stats()["http"]
        assert http["rejected_requests"] == 0
        assert http["rejected_requests"] == server.rejected_requests
        # inflight counts the /stats request observing itself.
        assert http["inflight"] == 1

    def test_metrics_scrape_has_no_side_effects(self, rng):
        """A scrape must never build a snapshot on a never-refreshed target."""
        estimator = SketchEstimator(
            CountSketch(3, 512, seed=47), total_samples=100
        )
        sketcher = CovarianceSketcher(DIM, estimator, mode="covariance")
        serving = ServingEstimator(sketcher, top_index=16)
        server, thread = serve_in_background(serving)
        try:
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert response.status == 200
            assert serving.swap_count == 0
        finally:
            server.shutdown()
            server.server_close()

    def test_rejected_requests_counted_when_saturated(self, rng):
        serving = _make_serving(rng)
        server, thread = serve_in_background(serving, max_inflight=1)
        try:
            client = ServingClient(server.url)
            # Hold the only admission slot, then hit a gated route.
            acquired = server._admit()
            assert acquired
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"{server.url}/pair?i=0&j=1")
                assert excinfo.value.code == 503
            finally:
                server._release()
            assert server.rejected_requests == 1
            assert client.stats()["http"]["rejected_requests"] == 1
            # /metrics is ungated: it must answer even at saturation.
            assert "repro_http_rejected_total 1" in client.metrics()
        finally:
            server.shutdown()
            server.server_close()
