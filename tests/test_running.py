"""Tests for streaming moment trackers (repro.covariance.running)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covariance.running import ExactCovariance, RunningMoments, SparseMoments


class TestRunningMoments:
    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            RunningMoments(0)

    def test_matches_numpy_batch(self, rng):
        data = rng.standard_normal((500, 7)) * 3 + 1
        mom = RunningMoments(7)
        mom.update(data)
        np.testing.assert_allclose(mom.mean, data.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(mom.variance(), data.var(axis=0), atol=1e-10)
        np.testing.assert_allclose(
            mom.variance(ddof=1), data.var(axis=0, ddof=1), atol=1e-10
        )

    def test_incremental_equals_batch(self, rng):
        data = rng.standard_normal((200, 5))
        inc = RunningMoments(5)
        for start in range(0, 200, 17):
            inc.update(data[start : start + 17])
        batch = RunningMoments(5)
        batch.update(data)
        np.testing.assert_allclose(inc.mean, batch.mean, atol=1e-10)
        np.testing.assert_allclose(inc.variance(), batch.variance(), atol=1e-10)

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_any_batch_split_is_equivalent(self, splits):
        rng = np.random.default_rng(sum(splits))
        data = rng.standard_normal((sum(splits), 3))
        inc = RunningMoments(3)
        start = 0
        for b in splits:
            inc.update(data[start : start + b])
            start += b
        np.testing.assert_allclose(inc.mean, data.mean(axis=0), atol=1e-9)
        np.testing.assert_allclose(inc.variance(), data.var(axis=0), atol=1e-9)

    def test_single_row_update(self):
        mom = RunningMoments(3)
        mom.update(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(mom.mean, [1, 2, 3])
        assert mom.count == 1

    def test_std_floor(self):
        mom = RunningMoments(2)
        mom.update(np.zeros((10, 2)))
        assert (mom.std(floor=1e-3) == 1e-3).all()

    def test_variance_before_data_is_nan(self):
        assert np.isnan(RunningMoments(2).variance()).all()

    def test_empty_batch_noop(self):
        mom = RunningMoments(2)
        mom.update(np.empty((0, 2)))
        assert mom.count == 0

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="features"):
            RunningMoments(3).update(np.ones((5, 4)))

    def test_update_sparse(self):
        mom = RunningMoments(4)
        mom.update_sparse(np.array([1, 3]), np.array([2.0, 5.0]))
        np.testing.assert_allclose(mom.mean, [0, 2, 0, 5])


class TestSparseMoments:
    def test_matches_dense_welford(self, rng):
        d = 20
        dense = np.zeros((100, d))
        sparse_mom = SparseMoments(d)
        for row in range(100):
            nnz = rng.integers(1, 6)
            idx = rng.choice(d, size=nnz, replace=False)
            vals = rng.standard_normal(nnz)
            dense[row, idx] = vals
            sparse_mom.update_batch(idx, vals, 1)
        np.testing.assert_allclose(sparse_mom.mean, dense.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(sparse_mom.variance(), dense.var(axis=0), atol=1e-10)

    def test_batched_update(self):
        mom = SparseMoments(5)
        # Two samples at once: indices concatenated.
        mom.update_batch(np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]), 2)
        assert mom.count == 2
        np.testing.assert_allclose(mom.mean, [2.0, 1.0, 0, 0, 0])

    def test_validation(self):
        mom = SparseMoments(5)
        with pytest.raises(ValueError, match="align"):
            mom.update_batch(np.array([1]), np.array([1.0, 2.0]), 1)
        with pytest.raises(ValueError, match="non-negative"):
            mom.update_batch(np.array([1]), np.array([1.0]), -1)

    def test_variance_clamped_non_negative(self):
        mom = SparseMoments(2)
        mom.update_batch(np.array([0]), np.array([1.0]), 1)
        assert (mom.variance() >= 0).all()

    def test_empty_state(self):
        mom = SparseMoments(3)
        assert (mom.mean == 0).all()
        assert np.isnan(mom.variance()).all()


class TestExactCovariance:
    def test_matches_numpy_cov(self, rng):
        data = rng.standard_normal((300, 6)) @ rng.standard_normal((6, 6))
        cov = ExactCovariance(6)
        cov.update(data)
        np.testing.assert_allclose(
            cov.covariance(), np.cov(data.T, bias=True), atol=1e-10
        )
        np.testing.assert_allclose(
            cov.covariance(ddof=1), np.cov(data.T), atol=1e-10
        )

    def test_incremental_equals_batch(self, rng):
        data = rng.standard_normal((150, 4))
        inc = ExactCovariance(4)
        for start in range(0, 150, 13):
            inc.update(data[start : start + 13])
        np.testing.assert_allclose(
            inc.covariance(), np.cov(data.T, bias=True), atol=1e-10
        )

    def test_correlation_matches_corrcoef(self, rng):
        data = rng.standard_normal((400, 5)) * np.array([1, 2, 3, 4, 5])
        cov = ExactCovariance(5)
        cov.update(data)
        np.testing.assert_allclose(cov.correlation(), np.corrcoef(data.T), atol=1e-10)

    def test_dead_feature_correlation_is_zero(self):
        data = np.random.default_rng(1).standard_normal((50, 3))
        data[:, 1] = 7.0  # constant feature
        cov = ExactCovariance(3)
        cov.update(data)
        corr = cov.correlation()
        assert (corr[1, :] == 0).all() and (corr[:, 1] == 0).all()
        assert np.isfinite(corr).all()

    def test_mean_property(self, rng):
        data = rng.standard_normal((80, 3)) + 5
        cov = ExactCovariance(3)
        cov.update(data)
        np.testing.assert_allclose(cov.mean, data.mean(axis=0), atol=1e-12)
