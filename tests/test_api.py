"""Tests for the high-level API (repro.core.api)."""

import numpy as np
import pytest

from repro.core.api import METHODS, build_estimator, run_pilot, sketch_correlations
from repro.core.ascs import ActiveSamplingCountSketch
from repro.data.synthetic import BlockCorrelationModel
from repro.theory.planner import ASCSPlan


@pytest.fixture(scope="module")
def planted_data():
    model = BlockCorrelationModel.from_alpha(80, alpha=0.02, seed=11)
    return model, model.sample(1500)


def dummy_plan():
    return ASCSPlan(
        exploration_length=50, tau0=1e-4, theta=0.1, delta=0.05,
        delta_star=0.2, saturation=0.01, used_fallback=False,
    )


class TestRunPilot:
    def test_u_and_sigma_positive(self, planted_data):
        _, data = planted_data
        pilot = run_pilot(data, alpha=0.02, seed=0)
        assert pilot.u > 0
        assert pilot.sigma > 0
        assert pilot.num_pilot_samples >= 30

    def test_u_tracks_signal_strength(self, planted_data):
        model, data = planted_data
        pilot = run_pilot(data, alpha=model.alpha, pilot_fraction=0.3, seed=0)
        # The (1-alpha) percentile sits at the signal/noise boundary, so u is
        # a conservative signal-strength estimate: clearly above the noise
        # bulk, at or below the planted strengths (0.5+).
        assert 0.05 < pilot.u < 1.2
        # Crucially, well above the typical noise estimate (bulk |est|).
        pilot_median = run_pilot(
            data, alpha=0.5, pilot_fraction=0.3, seed=0
        )
        assert pilot.u > 3 * abs(pilot_median.u)

    def test_extra_percentiles(self, planted_data):
        _, data = planted_data
        pilot = run_pilot(data, alpha=0.02, extra_percentiles=(0.5, 0.9), seed=0)
        assert set(pilot.percentiles) == {0.5, 0.9}
        assert pilot.percentiles[0.5] <= pilot.percentiles[0.9]

    def test_sigma_near_one_for_standardized_gaussians(self, rng):
        data = rng.standard_normal((400, 40))
        pilot = run_pilot(data, alpha=0.01, seed=1)
        assert pilot.sigma == pytest.approx(1.0, rel=0.25)


class TestBuildEstimator:
    def test_all_methods_constructible(self):
        for method in METHODS:
            est = build_estimator(
                method, 100, 5, 1000, plan=dummy_plan() if method == "ascs" else None
            )
            assert est.total_samples == 100

    def test_ascs_requires_plan(self):
        with pytest.raises(ValueError, match="plan"):
            build_estimator("ascs", 100, 5, 1000)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            build_estimator("magic", 100, 5, 1000)

    def test_ascs_type(self):
        est = build_estimator("ascs", 100, 5, 1000, plan=dummy_plan())
        assert isinstance(est, ActiveSamplingCountSketch)

    def test_budget_parity(self):
        # All methods must stay within ~12% of the same float budget.
        budget = 5 * 1000
        for method in METHODS:
            est = build_estimator(
                method, 100, 5, 1000,
                plan=dummy_plan() if method == "ascs" else None,
            )
            assert est.sketch.memory_floats <= budget * 1.12


class TestSketchCorrelations:
    @pytest.mark.parametrize("method", ["ascs", "cs"])
    def test_finds_planted_pairs(self, planted_data, method):
        model, data = planted_data
        result = sketch_correlations(
            data, memory_floats=8000, method=method, alpha=model.alpha,
            top_k=10, seed=2,
        )
        truth = model.true_correlation()
        found = truth[result.pairs_i, result.pairs_j]
        assert found.mean() > 0.4  # top-10 dominated by real signals

    def test_ascs_attaches_plan_and_pilot(self, planted_data):
        model, data = planted_data
        result = sketch_correlations(
            data, memory_floats=8000, method="ascs", alpha=model.alpha, seed=2
        )
        assert result.plan is not None
        assert result.pilot is not None

    def test_cs_has_no_plan(self, planted_data):
        _, data = planted_data
        result = sketch_correlations(
            data, memory_floats=8000, method="cs", alpha=0.02, seed=2
        )
        assert result.plan is None

    def test_explicit_u_sigma_skip_pilot(self, planted_data):
        _, data = planted_data
        result = sketch_correlations(
            data, memory_floats=8000, method="ascs", alpha=0.02,
            u=0.5, sigma=1.0, seed=2,
        )
        assert result.pilot is None
        assert result.plan is not None

    def test_result_sorted_descending(self, planted_data):
        _, data = planted_data
        result = sketch_correlations(
            data, memory_floats=8000, method="cs", alpha=0.02, top_k=25, seed=2
        )
        assert (np.diff(result.estimates) <= 1e-12).all()
        assert (result.pairs_i < result.pairs_j).all()

    def test_estimator_property(self, planted_data):
        _, data = planted_data
        result = sketch_correlations(
            data, memory_floats=8000, method="cs", alpha=0.02, seed=2
        )
        assert result.estimator is result.sketcher.estimator
