"""Tests for the streaming estimator base (repro.core.estimator)."""

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator, StreamingEstimator
from repro.sketch.count_sketch import CountSketch


def make(total=100, *, track=0, seed=0, observer=None):
    return SketchEstimator(
        CountSketch(5, 2048, seed=seed), total, track_top=track, observer=observer
    )


class TestScaling:
    def test_one_over_t_scaling(self):
        # Inserting the same value T times must estimate the mean = value.
        est = make(total=50)
        for _ in range(50):
            est.ingest(np.array([7]), np.array([3.0]))
        assert est.estimate(np.array([7]))[0] == pytest.approx(3.0)

    def test_batch_sums_equivalent_to_singles(self):
        a = make(total=10, seed=3)
        for _ in range(10):
            a.ingest(np.array([4]), np.array([2.0]), num_samples=1)
        b = make(total=10, seed=3)
        b.ingest(np.array([4]), np.array([20.0]), num_samples=10)
        assert a.estimate(np.array([4]))[0] == pytest.approx(
            b.estimate(np.array([4]))[0]
        )

    def test_validates_total(self):
        with pytest.raises(ValueError):
            make(total=0)


class TestBookkeeping:
    def test_samples_seen(self):
        est = make()
        est.ingest(np.array([1]), np.array([1.0]), num_samples=7)
        est.ingest(np.array([1]), np.array([1.0]), num_samples=3)
        assert est.samples_seen == 10

    def test_acceptance_rate_all_accepted(self):
        est = make()
        est.ingest(np.arange(10), np.ones(10))
        assert est.acceptance_rate == 1.0
        assert est.updates_examined == 10
        assert est.updates_accepted == 10

    def test_acceptance_rate_empty(self):
        assert make().acceptance_rate == 1.0

    def test_memory_floats(self):
        assert make().memory_floats == 5 * 2048


class TestObserver:
    def test_observer_receives_batches(self):
        calls = []

        def observer(t, keys, values, mask):
            calls.append((t, keys.copy(), values.copy(), mask.copy()))

        est = make(observer=observer)
        est.ingest(np.array([1, 2]), np.array([1.0, 2.0]), num_samples=5)
        assert len(calls) == 1
        t, keys, values, mask = calls[0]
        assert t == 5
        assert keys.tolist() == [1, 2]
        assert mask.all()


class TestTopK:
    def test_requires_tracker(self):
        with pytest.raises(RuntimeError, match="track_top"):
            make().top_k(3)

    def test_tracks_heavy_keys(self):
        est = make(total=10, track=20)
        for _ in range(10):
            est.ingest(np.arange(100), np.concatenate([[50.0], np.ones(99)]))
        keys, vals = est.top_k(1)
        assert keys[0] == 0
        assert vals[0] == pytest.approx(50.0, rel=0.2)

    def test_protocol_conformance(self):
        assert isinstance(make(track=5), StreamingEstimator)
