"""Tests for Algorithm 3 (repro.theory.planner)."""

import pytest

from repro.theory.bounds import (
    ProblemModel,
    saturation_probability,
    theorem1_miss_probability,
    theorem2_escape_probability,
)
from repro.theory.planner import (
    ASCSPlan,
    find_exploration_length,
    find_threshold_slope,
    plan_hyperparameters,
)


def easy_model(**overrides) -> ProblemModel:
    """A regime where the bounds are comfortably satisfiable."""
    base = dict(
        p=20_000, alpha=0.002, u=0.8, sigma=1.0, T=5000, num_tables=5,
        num_buckets=8_000,
    )
    base.update(overrides)
    return ProblemModel(**base)


def saturated_model() -> ProblemModel:
    """A regime where signal collisions saturate the Theorem-1 bound."""
    return ProblemModel(
        p=500_000, alpha=0.01, u=0.3, sigma=1.0, T=2000, num_tables=5,
        num_buckets=500,
    )


class TestFindExplorationLength:
    def test_result_satisfies_bound(self):
        m = easy_model()
        t0 = find_exploration_length(m, 1e-4, 0.1)
        assert t0 is not None
        assert theorem1_miss_probability(m, t0, 1e-4) <= 0.1

    def test_result_is_minimal(self):
        m = easy_model()
        t0 = find_exploration_length(m, 1e-4, 0.1, gamma=1)
        if t0 > 1:
            assert theorem1_miss_probability(m, t0 - 1, 1e-4) > 0.1

    def test_matches_brute_force(self):
        m = easy_model(T=600)
        delta = 0.2
        t0 = find_exploration_length(m, 1e-4, delta, gamma=1)
        brute = next(
            t for t in range(1, m.T + 1)
            if theorem1_miss_probability(m, t, 1e-4) <= delta
        )
        assert t0 == brute

    def test_infeasible_returns_none(self):
        assert find_exploration_length(saturated_model(), 1e-4, 0.05) is None

    def test_respects_gamma_floor(self):
        m = easy_model(u=5.0)  # very strong signal: tiny T0 would suffice
        t0 = find_exploration_length(m, 1e-4, 0.2, gamma=50)
        assert t0 >= 50

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            find_exploration_length(easy_model(), 1e-4, 0.0)


class TestFindThresholdSlope:
    def test_result_satisfies_bound(self):
        m = easy_model()
        theta = find_threshold_slope(m, 500, 1e-4, 0.1)
        assert theta is not None
        assert 0 < theta < m.u
        assert theorem2_escape_probability(m, 500, 1e-4, theta) <= 0.1 + 1e-9

    def test_result_is_near_maximal(self):
        m = easy_model()
        theta = find_threshold_slope(m, 500, 1e-4, 0.1)
        # Slightly larger theta must violate the budget (or hit u).
        step = m.u / 1024
        if theta + step < m.u:
            assert (
                theorem2_escape_probability(m, 500, 1e-4, theta + step) > 0.1 - 1e-6
            )

    def test_zero_budget_returns_none(self):
        assert find_threshold_slope(easy_model(), 500, 1e-4, 0.0) is None

    def test_larger_budget_larger_theta(self):
        m = easy_model()
        small = find_threshold_slope(m, 500, 1e-4, 0.05)
        large = find_threshold_slope(m, 500, 1e-4, 0.3)
        assert large >= small


class TestPlanHyperparameters:
    def test_easy_regime_no_fallback(self):
        plan = plan_hyperparameters(easy_model())
        assert isinstance(plan, ASCSPlan)
        assert not plan.used_fallback
        assert 0 < plan.exploration_length < easy_model().T
        assert 0 < plan.theta < easy_model().u

    def test_section81_default_budgets(self):
        m = easy_model()
        plan = plan_hyperparameters(m)
        sp = saturation_probability(m)
        assert plan.delta == pytest.approx(min(max(1.01 * sp, 0.05), 0.5))
        assert plan.delta_star == pytest.approx(min(plan.delta + 0.15, 0.95))

    def test_saturated_regime_uses_fallback(self):
        plan = plan_hyperparameters(saturated_model())
        assert plan.used_fallback
        assert plan.exploration_length >= 1
        assert plan.theta > 0

    def test_explicit_budgets_respected(self):
        plan = plan_hyperparameters(easy_model(), delta=0.07, delta_star=0.22)
        assert plan.delta == 0.07
        assert plan.delta_star == 0.22

    def test_invalid_budgets(self):
        with pytest.raises(ValueError, match="delta"):
            plan_hyperparameters(easy_model(), delta=0.3, delta_star=0.2)

    def test_threshold_at(self):
        plan = plan_hyperparameters(easy_model())
        T = easy_model().T
        t0 = plan.exploration_length
        assert plan.threshold_at(t0 - 1, T) == 0.0
        assert plan.threshold_at(t0, T) == pytest.approx(plan.tau0)
        ramp = plan.threshold_at(T, T)
        assert ramp == pytest.approx(plan.tau0 + plan.theta * (T - t0) / T)

    def test_plan_theta_below_u(self):
        for u in (0.1, 0.5, 1.0, 3.0):
            plan = plan_hyperparameters(easy_model(u=u))
            assert plan.theta < u
