"""Tests for dataset stand-ins and stream generators (repro.data)."""

import numpy as np
import pytest

from repro.covariance.ground_truth import flat_true_correlations, pair_correlations
from repro.data.dna import DNAKmerStream
from repro.data.registry import DATASET_SPECS, dataset_names, make_dataset
from repro.data.url_like import URLLikeStream
from repro.hashing.pairs import index_to_pair


class TestRegistry:
    def test_all_five_datasets_present(self):
        assert set(dataset_names()) == {"gisette", "epsilon", "cifar10", "rcv1", "sector"}

    @pytest.mark.parametrize("name", dataset_names())
    def test_make_dataset_shapes(self, name):
        ds = make_dataset(name, d=120, n=300, seed=1)
        assert ds.d == 120
        assert ds.n == 300
        assert ds.name == name
        assert 0 < ds.alpha < 1

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("mnist")

    def test_paper_metadata(self):
        spec = DATASET_SPECS["gisette"]
        assert spec.paper_dim == 5000
        assert spec.paper_samples == 6000
        assert spec.alpha == 0.02

    def test_deterministic(self):
        a = make_dataset("epsilon", d=50, n=100, seed=3).dense()
        b = make_dataset("epsilon", d=50, n=100, seed=3).dense()
        np.testing.assert_array_equal(a, b)


class TestDatasetCharacter:
    def test_sparse_datasets_are_sparse(self):
        for name in ("rcv1", "sector"):
            ds = make_dataset(name, d=200, n=500, seed=2)
            assert ds.is_sparse
            density = ds.X.nnz / (ds.n * ds.d)
            assert density < 0.2

    def test_dense_datasets_are_dense(self):
        for name in ("gisette", "epsilon", "cifar10"):
            ds = make_dataset(name, d=200, n=500, seed=2)
            assert not ds.is_sparse

    @pytest.mark.parametrize("name", dataset_names())
    def test_correlation_spectrum_is_sparse(self, name):
        """Figure-1 character: most correlations near zero, a real tail."""
        ds = make_dataset(name, d=150, n=1500, seed=4)
        flat = np.abs(flat_true_correlations(ds.dense()))
        assert np.mean(flat <= 0.15) > 0.75  # bulk near zero
        assert flat.max() > 0.3  # but signals exist

    def test_topic_datasets_have_strong_signals(self):
        for name in ("rcv1", "sector"):
            ds = make_dataset(name, d=200, n=2000, seed=5)
            flat = flat_true_correlations(ds.dense())
            assert np.sort(flat)[-20:].mean() > 0.6

    def test_cifar_neighbour_decay(self):
        ds = make_dataset("cifar10", d=100, n=4000, seed=6)
        corr = np.corrcoef(ds.dense().T)
        near = np.mean([corr[i, i + 1] for i in range(0, 80, 7)])
        far = np.mean([abs(corr[i, i + 50]) for i in range(0, 40, 7)])
        assert near > 0.4
        assert far < 0.15


class TestURLLikeStream:
    def test_stream_matches_materialized(self):
        stream = URLLikeStream(dim=500, num_samples=50, num_groups=5, group_size=4,
                               background_nnz=10, seed=7)
        mat = stream.materialize()
        rows = list(iter(stream))
        assert mat.shape == (50, 500)
        assert len(rows) == 50
        for r, sample in enumerate(rows):
            np.testing.assert_array_equal(
                np.sort(sample.indices), np.sort(mat[r].indices)
            )

    def test_planted_pairs_strongly_correlated(self):
        stream = URLLikeStream(dim=2000, num_samples=4000, num_groups=10,
                               group_size=5, group_prob=0.5, member_prob=0.95,
                               background_nnz=20, seed=8)
        mat = stream.materialize()
        keys = stream.planted_pair_keys()
        i, j = index_to_pair(keys, stream.dim)
        corr = pair_correlations(mat, i, j)
        assert corr.mean() > 0.6

    def test_background_pairs_weak(self):
        stream = URLLikeStream(dim=2000, num_samples=4000, num_groups=10,
                               group_size=5, background_nnz=20, seed=8)
        mat = stream.materialize()
        rng = np.random.default_rng(0)
        i = rng.integers(100, 2000, size=50)
        j = rng.integers(100, 2000, size=50)
        keep = i < j
        corr = pair_correlations(mat, i[keep], j[keep])
        assert np.abs(corr).mean() < 0.1

    def test_average_nnz(self):
        stream = URLLikeStream(dim=1000, num_samples=200, background_nnz=30, seed=9)
        counts = [s.nnz for s in stream]
        assert np.mean(counts) == pytest.approx(stream.average_nnz, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            URLLikeStream(dim=10, num_groups=5, group_size=6)


class TestDNAKmerStream:
    def test_kmer_encoding_is_base4(self):
        stream = DNAKmerStream(genome_length=500, read_length=50, k=3, seed=1)
        sample = stream._read_kmers(0)
        # Recompute the first k-mer code by hand.
        g = stream.genome[:3].astype(int)
        code = g[0] * 16 + g[1] * 4 + g[2]
        assert code in sample.indices.tolist()

    def test_dim_is_4_to_k(self):
        assert DNAKmerStream(genome_length=500, read_length=50, k=5).dim == 4**5

    def test_num_reads_scales_with_coverage(self):
        a = DNAKmerStream(genome_length=3000, read_length=100, coverage=1.0)
        b = DNAKmerStream(genome_length=3000, read_length=100, coverage=4.0)
        assert b.num_reads == 4 * a.num_reads

    def test_nnz_close_to_read_length(self):
        stream = DNAKmerStream(genome_length=5000, read_length=100, k=6, seed=2)
        # ~95 distinct 6-mers per 100bp read (some repeats collapse).
        assert 50 < stream.average_nnz() <= 95

    def test_materialize_consistent_with_iteration(self):
        stream = DNAKmerStream(genome_length=2000, read_length=80, k=4, seed=3)
        mat = stream.materialize()
        assert mat.shape == (stream.num_reads, 4**4)
        total_counts = sum(s.values.sum() for s in stream)
        assert mat.sum() == pytest.approx(total_counts)

    def test_adjacent_kmers_highly_correlated(self):
        stream = DNAKmerStream(genome_length=4000, read_length=100, coverage=6.0,
                               k=6, seed=4)
        mat = stream.materialize()
        # Adjacent k-mers in the genome co-occur in nearly every read.
        g = stream.genome.astype(np.int64)
        powers = (4 ** np.arange(5, -1, -1)).astype(np.int64)
        pos = 1000
        code_a = int(g[pos : pos + 6] @ powers)
        code_b = int(g[pos + 1 : pos + 7] @ powers)
        if code_a != code_b:
            i, j = min(code_a, code_b), max(code_a, code_b)
            corr = pair_correlations(mat, np.array([i]), np.array([j]))
            assert corr[0] > 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            DNAKmerStream(k=20)
        with pytest.raises(ValueError, match="read_length"):
            DNAKmerStream(read_length=5, k=8)
        with pytest.raises(ValueError, match="genome"):
            DNAKmerStream(genome_length=10, read_length=100, k=8)
