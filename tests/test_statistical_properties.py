"""Statistical sanity tests for the count-sketch error model.

These verify the scaling laws the paper's analysis builds on: collision
noise shrinks like ``1/sqrt(R)`` in the table width and like the stream's
noise energy; the median over ``K`` tables is what rescues single-table
outliers.  Seeds are fixed, sample sizes chosen so the assertions have wide
margins — these are deterministic regression tests of statistical facts,
not flaky Monte-Carlo checks.
"""

import numpy as np

from repro.sketch.count_sketch import CountSketch


def _collision_noise_rms(num_buckets: int, num_tables: int = 5, seed: int = 0) -> float:
    """RMS estimation error for absent keys after inserting pure noise."""
    rng = np.random.default_rng(seed)
    sketch = CountSketch(num_tables, num_buckets, seed=seed + 1)
    for _ in range(10):
        keys = rng.integers(0, 10**8, size=20_000)
        sketch.insert(keys, rng.standard_normal(20_000))
    probe = np.arange(10**9, 10**9 + 2_000)
    return float(np.sqrt(np.mean(sketch.query(probe) ** 2)))


class TestErrorScaling:
    def test_error_shrinks_with_buckets(self):
        errs = [_collision_noise_rms(r) for r in (256, 1024, 4096)]
        assert errs[0] > errs[1] > errs[2]

    def test_inverse_sqrt_r_law(self):
        # Quadrupling R should halve the RMS error, within a loose factor.
        e1 = _collision_noise_rms(512, seed=3)
        e2 = _collision_noise_rms(2048, seed=3)
        ratio = e1 / e2
        assert 1.4 < ratio < 2.9

    def test_median_tables_beat_single_table_on_heavy_tails(self):
        # The median's advantage is robustness to *heavy* collisions: a few
        # huge items corrupt ~50/R of single-table estimates outright, while
        # the median of K tables needs a majority of tables corrupted.
        # (Against purely Gaussian collision noise a single wide table wins
        # — that is why the comparison uses a heavy-tailed stream.)
        rng = np.random.default_rng(7)
        heavy_keys = rng.integers(0, 10**8, size=50)
        heavy_vals = np.full(50, 100.0)

        single = CountSketch(1, 5 * 1024, seed=11)
        multi = CountSketch(5, 1024, seed=11)
        for sketch in (single, multi):
            sketch.insert(heavy_keys, heavy_vals)

        probe = np.arange(10**9, 10**9 + 20_000)
        q995_single = np.quantile(np.abs(single.query(probe)), 0.995)
        q995_multi = np.quantile(np.abs(multi.query(probe)), 0.995)
        assert q995_multi < q995_single

    def test_heavy_key_signal_preserved_at_all_widths(self):
        # The planted key's estimate is unbiased regardless of R; only the
        # spread changes.
        for num_buckets in (256, 2048):
            estimates = []
            for seed in range(10):
                sketch = CountSketch(5, num_buckets, seed=seed)
                rng = np.random.default_rng(seed)
                sketch.insert(
                    rng.integers(10, 10**8, size=30_000),
                    rng.standard_normal(30_000),
                )
                sketch.insert(np.array([3]), np.array([25.0]))
                estimates.append(sketch.query_single(3))
            assert abs(np.mean(estimates) - 25.0) < 3.0
