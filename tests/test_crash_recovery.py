"""Crash-recovery property suite: kill the process anywhere, lose nothing.

The durability tier's core claim — *checkpoint + WAL replay is
bit-identical to the uninterrupted run* — is proven here the only way it
can be: by actually killing ingestion at seeded byte offsets
(:class:`~repro.durability.faults.FaultyFS` tears the write that crosses
the budget and raises :class:`SimulatedCrash`), recovering from the bytes
that really landed on disk, resuming the stream, and comparing the final
estimator state array-for-array against a run that never crashed.  The
kill points sweep the whole journal — mid-magic, mid-record-header,
mid-payload — under both float64 and quantized int16 storage.

Alongside the property live the unit contracts it rests on: journal
framing and torn-tail tolerance, WAL gap detection, checkpoint
quarantine-and-fall-back, checkpoint/journal continuity, disk-full
behaviour, and the serving CheckpointManager's walk-back over
hand-truncated snapshot files.
"""

import numpy as np
import pytest

from repro.distributed import ShardSpec
from repro.distributed.shard import extract_shard_result, spec_with
from repro.durability import (
    DurableSketcher,
    IngestJournal,
    IntegrityError,
    journal_end_seq,
    replay_journal,
)
from repro.durability.faults import (
    FaultyFS,
    SimulatedCrash,
    flip_byte,
    truncate_file,
)

pytestmark = pytest.mark.faults

SPECS = {
    "float64": ShardSpec(
        dim=48, total_samples=4000, num_tables=3, num_buckets=128, seed=11
    ),
    "int16": ShardSpec(
        dim=48,
        total_samples=4000,
        num_tables=3,
        num_buckets=128,
        seed=11,
        storage="int16",
        quantum=0.25,
    ),
}

#: Byte budgets after which the simulated process dies.  Spread across the
#: journal (records are a few hundred bytes; the full stream is ~8 KiB),
#: so the kills land mid-magic, mid-header and mid-payload of different
#: batches — ten distinct kill points per storage dtype.
KILL_POINTS = (3, 40, 300, 700, 1100, 1700, 2600, 3500, 4800, 6400)


def _batches(spec, *, num_batches=30, batch_samples=4, seed=5):
    """A deterministic stream of sparse ingest batches."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(num_batches):
        batch = []
        for _ in range(batch_samples):
            k = int(rng.integers(2, 6))
            idx = rng.choice(spec.dim, size=k, replace=False).astype(np.int64)
            val = rng.integers(1, 5, size=k).astype(np.float64)
            batch.append((idx, val))
        batches.append(batch)
    return batches


def _state_arrays(sketcher, spec):
    """The full estimator state as named arrays (the bit-identity probe)."""
    result = extract_shard_result(sketcher, spec)
    return {
        "table": result.table,
        "samples_seen": np.asarray(result.samples_seen),
        "updates_examined": np.asarray(result.updates_examined),
        "updates_accepted": np.asarray(result.updates_accepted),
        "tracker_keys": result.tracker_keys,
        "tracker_estimates": result.tracker_estimates,
        "moments_sum": result.moments_sum,
        "moments_sumsq": result.moments_sumsq,
        "moments_count": np.asarray(result.moments_count),
    }


def _assert_bit_identical(left, right, spec, context=""):
    a, b = _state_arrays(left, spec), _state_arrays(right, spec)
    for name in a:
        av, bv = np.asarray(a[name]), np.asarray(b[name])
        assert av.dtype == bv.dtype, f"{context}{name}: dtype diverged"
        np.testing.assert_array_equal(av, bv, err_msg=f"{context}{name}")


# ----------------------------------------------------------------------
# The tentpole property: kill anywhere, recover bit-identically
# ----------------------------------------------------------------------
class TestCrashRecoveryBitIdentity:
    @pytest.mark.parametrize("storage", sorted(SPECS))
    @pytest.mark.parametrize("kill_at", KILL_POINTS)
    def test_kill_point_recovers_bit_identical(self, storage, kill_at, tmp_path):
        spec = SPECS[storage]
        batches = _batches(spec)

        # Reference: the run that never crashes.
        reference = spec.build_sketcher()
        for batch in batches:
            reference.fit_sparse(iter(batch))

        # Crashing run: the journal's writes die at the byte budget.
        fs = FaultyFS(kill_at_bytes=kill_at)
        durable = DurableSketcher(
            tmp_path, spec, checkpoint_every=5, open_fn=fs
        )
        crashed_at = None
        for index, batch in enumerate(batches):
            try:
                durable.fit_sparse(batch)
            except SimulatedCrash:
                crashed_at = index
                break
        assert crashed_at is not None, (
            f"kill budget {kill_at} never fired; the sweep no longer covers "
            "the journal — adjust KILL_POINTS"
        )
        assert fs.crashed
        # The dying process does NOT close anything — recovery must work
        # from whatever bytes the torn write left behind.

        recovered = DurableSketcher(tmp_path, checkpoint_every=5)
        # The crashed batch was never acknowledged (append raised before
        # applying), so the producer resends it, then the rest.
        for batch in batches[crashed_at:]:
            recovered.fit_sparse(batch)
        recovered.close()

        _assert_bit_identical(
            recovered, reference, spec,
            context=f"[storage={storage} kill_at={kill_at}] ",
        )
        assert recovered.samples_seen == reference.samples_seen

    @pytest.mark.parametrize("storage", sorted(SPECS))
    def test_double_crash_still_recovers(self, storage, tmp_path):
        """A crash during the *recovered* run must also be recoverable."""
        spec = SPECS[storage]
        batches = _batches(spec)
        reference = spec.build_sketcher()
        for batch in batches:
            reference.fit_sparse(iter(batch))

        position = 0
        for kill_at in (900, 2300):
            fs = FaultyFS(kill_at_bytes=kill_at)
            durable = DurableSketcher(
                tmp_path, spec, checkpoint_every=4, open_fn=fs
            )
            for index in range(position, len(batches)):
                try:
                    durable.fit_sparse(batches[index])
                except SimulatedCrash:
                    position = index
                    break
            else:
                pytest.fail(f"kill budget {kill_at} never fired")

        final = DurableSketcher(tmp_path, checkpoint_every=4)
        for batch in batches[position:]:
            final.fit_sparse(batch)
        final.close()
        _assert_bit_identical(final, reference, spec)

    def test_windowed_recovery_bit_identical(self, tmp_path):
        """The sliding-window write side recovers through the same path."""
        spec = SPECS["float64"]
        batches = _batches(spec, num_batches=48)
        from repro.streaming import PaneRing

        reference = PaneRing(spec, num_panes=4, pane_samples=32)
        for batch in batches:
            reference.fit_sparse(iter(batch))

        fs = FaultyFS(kill_at_bytes=4000)
        durable = DurableSketcher(
            tmp_path, spec, num_panes=4, pane_samples=32,
            checkpoint_every=5, open_fn=fs,
        )
        crashed_at = None
        for index, batch in enumerate(batches):
            try:
                durable.fit_sparse(batch)
            except SimulatedCrash:
                crashed_at = index
                break
        assert crashed_at is not None

        recovered = DurableSketcher(tmp_path, checkpoint_every=5)
        assert recovered.windowed
        for batch in batches[crashed_at:]:
            recovered.fit_sparse(batch)
        recovered.close()
        assert recovered.samples_seen == reference.samples_seen
        assert recovered.window_span == reference.window_span
        left, right = recovered.panes(), reference.panes()
        assert len(left) == len(right)
        for lp, rp in zip(left, right):
            assert (lp.start, lp.num_samples) == (rp.start, rp.num_samples)
            np.testing.assert_array_equal(lp.table, rp.table)
        np.testing.assert_array_equal(
            recovered.window().estimator.sketch.table,
            reference.window().estimator.sketch.table,
        )

    def test_recovery_is_cold_start_safe(self, tmp_path):
        """Crash before the first checkpoint: recovery replays from zero."""
        spec = SPECS["float64"]
        batches = _batches(spec, num_batches=6)
        reference = spec.build_sketcher()
        for batch in batches:
            reference.fit_sparse(iter(batch))
        fs = FaultyFS(kill_at_bytes=700)
        durable = DurableSketcher(tmp_path, spec, checkpoint_every=0, open_fn=fs)
        crashed_at = None
        for index, batch in enumerate(batches):
            try:
                durable.fit_sparse(batch)
            except SimulatedCrash:
                crashed_at = index
                break
        assert crashed_at is not None
        recovered = DurableSketcher(tmp_path)
        assert recovered.recovered_from is None  # no checkpoint existed
        assert recovered.replayed_records == crashed_at
        for batch in batches[crashed_at:]:
            recovered.fit_sparse(batch)
        recovered.close()
        _assert_bit_identical(recovered, reference, spec)


# ----------------------------------------------------------------------
# Journal unit contracts
# ----------------------------------------------------------------------
class TestIngestJournal:
    def _batch(self, seed=0, n=3):
        rng = np.random.default_rng(seed)
        return [
            (
                rng.integers(0, 64, size=4).astype(np.int64),
                rng.standard_normal(4),
            )
            for _ in range(n)
        ]

    def test_round_trip_preserves_batches(self, tmp_path):
        batches = [self._batch(seed) for seed in range(7)]
        with IngestJournal(tmp_path, rotate_every=3) as journal:
            for batch in batches:
                journal.append(batch)
        replayed = list(replay_journal(tmp_path))
        assert [seq for seq, _ in replayed] == list(range(7))
        for (_, got), want in zip(replayed, batches):
            assert len(got) == len(want)
            for (gi, gv), (wi, wv) in zip(got, want):
                np.testing.assert_array_equal(gi, wi)
                np.testing.assert_array_equal(gv, wv)

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        with IngestJournal(tmp_path, rotate_every=100) as journal:
            for seed in range(5):
                journal.append(self._batch(seed))
        (segment,) = journal.segments()
        truncate_file(segment, keep=segment.stat().st_size - 7)
        seqs = [seq for seq, _ in replay_journal(tmp_path)]
        assert seqs == [0, 1, 2, 3]  # the torn record 4 is dropped

    def test_reopen_resumes_after_torn_tail(self, tmp_path):
        with IngestJournal(tmp_path, rotate_every=100) as journal:
            for seed in range(5):
                journal.append(self._batch(seed))
        (segment,) = journal.segments()
        truncate_file(segment, keep=segment.stat().st_size - 7)
        with IngestJournal(tmp_path, rotate_every=100) as journal:
            assert journal.next_seq == 4  # resumes where replay ends
            journal.append(self._batch(99))
        assert journal_end_seq(tmp_path) == 4
        # The re-written seq 4 lives in a fresh segment; replay must not
        # trip over the stale torn segment still covering nothing new.
        assert len(list(replay_journal(tmp_path))) == 5

    def test_gap_between_segments_is_fatal(self, tmp_path):
        journal = IngestJournal(tmp_path, rotate_every=2)
        for seed in range(6):
            journal.append(self._batch(seed))
        journal.close()
        segments = journal.segments()
        assert len(segments) == 3
        segments[1].unlink()  # an acknowledged middle segment vanishes
        with pytest.raises(IntegrityError, match="WAL gap"):
            list(replay_journal(tmp_path))

    def test_corrupt_middle_record_is_fatal(self, tmp_path):
        journal = IngestJournal(tmp_path, rotate_every=2)
        for seed in range(6):
            journal.append(self._batch(seed))
        journal.close()
        segments = journal.segments()
        flip_byte(segments[1], seed=1)  # tears segment 1's valid prefix
        with pytest.raises(IntegrityError, match="WAL gap"):
            list(replay_journal(tmp_path))

    def test_prune_through_keeps_uncovered_segments(self, tmp_path):
        journal = IngestJournal(tmp_path, rotate_every=2)
        for seed in range(6):
            journal.append(self._batch(seed))
        journal.close()
        deleted = journal.prune_through(3)  # covers segments [0,1] and [2,3]
        assert len(deleted) == 2
        assert [seq for seq, _ in replay_journal(tmp_path)] == [4, 5]

    def test_disk_full_append_is_retryable(self, tmp_path):
        fs = FaultyFS(disk_full_at_bytes=400)
        journal = IngestJournal(tmp_path, rotate_every=100, open_fn=fs)
        appended = 0
        with pytest.raises(OSError):
            for seed in range(50):
                journal.append(self._batch(seed))
                appended += 1
        assert fs.disk_full_hits == 1
        fs.heal()  # space freed: the same journal keeps accepting
        journal.append(self._batch(123))
        journal.close()
        # Everything acknowledged (including the post-heal append) replays;
        # the torn ENOSPC record does not.
        assert len(list(replay_journal(tmp_path))) == appended + 1

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_every"):
            IngestJournal(tmp_path, rotate_every=0)
        with pytest.raises(ValueError, match="fsync"):
            IngestJournal(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError, match="prefix"):
            IngestJournal(tmp_path, prefix="has-dash")


# ----------------------------------------------------------------------
# DurableSketcher checkpoint discipline
# ----------------------------------------------------------------------
class TestDurableCheckpoints:
    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path, caplog):
        spec = SPECS["float64"]
        batches = _batches(spec, num_batches=12)
        durable = DurableSketcher(tmp_path, spec, checkpoint_every=4)
        for batch in batches:
            durable.fit_sparse(batch)
        durable.close()
        checkpoints = sorted(tmp_path.glob("ckpt-*.npz"))
        assert len(checkpoints) >= 2
        truncate_file(checkpoints[-1], fraction=0.4)

        reference = spec.build_sketcher()
        for batch in batches:
            reference.fit_sparse(iter(batch))

        with caplog.at_level("WARNING"):
            recovered = DurableSketcher(tmp_path, checkpoint_every=4)
        recovered.close()
        assert "quarantin" in caplog.text
        assert checkpoints[-1].with_name(
            checkpoints[-1].name + ".corrupt"
        ).exists()
        # Fell back one checkpoint, replayed the WAL suffix: same state.
        _assert_bit_identical(recovered, reference, spec)

    def test_all_checkpoints_corrupt_replays_from_scratch(self, tmp_path):
        spec = SPECS["float64"]
        batches = _batches(spec, num_batches=10)
        durable = DurableSketcher(
            tmp_path, spec, checkpoint_every=4, keep_checkpoints=8
        )
        for batch in batches:
            durable.fit_sparse(batch)
        durable.close()
        for path in tmp_path.glob("ckpt-*.npz"):
            # Truncation (unlike a random bit flip, which can land on a
            # semantically dead zip byte) always invalidates the archive.
            truncate_file(path, fraction=0.6)
        reference = spec.build_sketcher()
        for batch in batches:
            reference.fit_sparse(iter(batch))
        recovered = DurableSketcher(tmp_path)
        recovered.close()
        assert recovered.recovered_from is None
        assert recovered.replayed_records == len(batches)
        _assert_bit_identical(recovered, reference, spec)

    def test_checkpoint_journal_gap_refuses_silent_divergence(self, tmp_path):
        spec = SPECS["float64"]
        durable = DurableSketcher(
            tmp_path, spec, checkpoint_every=0, rotate_every=2
        )
        for batch in _batches(spec, num_batches=8):
            durable.fit_sparse(batch)
        durable.close()
        # The WAL's oldest segment vanishes (over-pruned, lost to a bad
        # disk) with no checkpoint bridging the missing records: recovery
        # must refuse rather than silently diverge from record 2 onward.
        segments = sorted(tmp_path.glob("wal-*.wal"))
        assert len(segments) >= 3
        segments[0].unlink()
        with pytest.raises(IntegrityError, match="resumes at"):
            DurableSketcher(tmp_path)

    def test_prune_keeps_wal_for_previous_checkpoint(self, tmp_path):
        """keep_checkpoints=2 must retain the WAL suffix the *older*
        retained checkpoint needs — losing the newest one stays safe."""
        spec = SPECS["float64"]
        batches = _batches(spec, num_batches=20)
        durable = DurableSketcher(
            tmp_path, spec, checkpoint_every=4, rotate_every=2
        )
        for batch in batches:
            durable.fit_sparse(batch)
        durable.close()
        reference = spec.build_sketcher()
        for batch in batches:
            reference.fit_sparse(iter(batch))
        newest = sorted(tmp_path.glob("ckpt-*.npz"))[-1]
        truncate_file(newest, fraction=0.3)
        recovered = DurableSketcher(tmp_path)
        recovered.close()
        _assert_bit_identical(recovered, reference, spec)

    def test_recover_classmethod_requires_recipe(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DurableSketcher.recover(tmp_path / "nowhere")

    def test_spec_mismatch_is_rejected(self, tmp_path):
        spec = SPECS["float64"]
        DurableSketcher(tmp_path, spec).close()
        other = spec_with(spec, seed=999)
        with pytest.raises(ValueError, match="differs from the persisted"):
            DurableSketcher(tmp_path, other)

    def test_dense_ingest_is_refused(self, tmp_path):
        durable = DurableSketcher(tmp_path, SPECS["float64"])
        with pytest.raises(NotImplementedError, match="sparse-only"):
            durable.fit_dense(np.zeros((2, 48)))
        durable.close()

    def test_stats_report_wal_lag(self, tmp_path):
        spec = SPECS["float64"]
        durable = DurableSketcher(tmp_path, spec, checkpoint_every=0)
        for batch in _batches(spec, num_batches=3):
            durable.fit_sparse(batch)
        assert durable.wal_lag == 3
        durable.checkpoint()
        assert durable.wal_lag == 0
        stats = durable.stats()
        assert stats["journal"]["records_written"] == 3
        assert stats["checkpoints"] == 1
        durable.close()


# ----------------------------------------------------------------------
# Serving CheckpointManager walk-back (the satellite regression)
# ----------------------------------------------------------------------
class TestCheckpointManagerWalkBack:
    def _manager(self, tmp_path, snapshots=3):
        from repro.serving import CheckpointManager, SketchSnapshot

        spec = SPECS["float64"]
        sketcher = spec.build_sketcher()
        manager = CheckpointManager(tmp_path, retain=snapshots + 1)
        for seed in range(snapshots):
            for batch in _batches(spec, num_batches=4, seed=seed):
                sketcher.fit_sparse(iter(batch))
            manager.save(SketchSnapshot.from_sketcher(sketcher, top_index=16))
        return manager

    def test_truncated_newest_falls_back_to_previous(self, tmp_path, caplog):
        manager = self._manager(tmp_path)
        paths = manager.checkpoints()
        truncate_file(paths[-1], fraction=0.5)  # hand-truncated newest
        with caplog.at_level("WARNING"):
            snapshot = manager.load_latest()
        assert snapshot is not None
        assert "quarantin" in caplog.text
        # The bad file was renamed aside, not deleted, not served.
        assert not paths[-1].exists()
        assert paths[-1].with_name(paths[-1].name + ".corrupt").exists()

    def test_bit_flipped_newest_falls_back(self, tmp_path):
        manager = self._manager(tmp_path)
        paths = manager.checkpoints()
        flip_byte(paths[-1], seed=7)
        snapshot = manager.load_latest()
        assert snapshot is not None

    def test_every_checkpoint_corrupt_returns_none(self, tmp_path):
        manager = self._manager(tmp_path)
        for path in manager.checkpoints():
            truncate_file(path, fraction=0.3)
        assert manager.load_latest() is None
