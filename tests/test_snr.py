"""Tests for SNR instrumentation (repro.theory.snr)."""

import numpy as np
import pytest

from repro.theory.snr import SNRRecorder, estimate_sigma, estimate_sigma_sparse


class TestSNRRecorder:
    def test_separates_signal_and_noise_energy(self):
        rec = SNRRecorder(signal_keys=np.array([1, 2]), window=10)
        keys = np.array([1, 2, 3, 4])
        values = np.array([2.0, 2.0, 1.0, 1.0])
        mask = np.ones(4, dtype=bool)
        rec(10, keys, values, mask)
        rec.flush()
        assert len(rec.points) == 1
        pt = rec.points[0]
        assert pt.signal_energy == pytest.approx(8.0)
        assert pt.noise_energy == pytest.approx(2.0)
        assert pt.snr == pytest.approx(4.0)

    def test_mask_excludes_filtered_updates(self):
        rec = SNRRecorder(signal_keys=np.array([1]), window=10)
        keys = np.array([1, 2])
        values = np.array([3.0, 5.0])
        rec(10, keys, values, np.array([True, False]))
        rec.flush()
        assert rec.points[0].signal_energy == pytest.approx(9.0)
        assert rec.points[0].noise_energy == 0.0

    def test_windows_emitted_at_boundaries(self):
        rec = SNRRecorder(signal_keys=np.array([0]), window=5)
        for t in range(1, 21):
            rec(t, np.array([0]), np.array([1.0]), np.array([True]))
        assert len(rec.points) == 4

    def test_curve_shape(self):
        rec = SNRRecorder(signal_keys=np.array([0]), window=5)
        for t in range(1, 11):
            rec(t, np.array([0, 1]), np.array([1.0, 1.0]), np.array([True, True]))
        t_arr, snr_arr = rec.curve()
        assert t_arr.shape == snr_arr.shape
        assert (snr_arr > 0).all()

    def test_infinite_snr_when_no_noise(self):
        rec = SNRRecorder(signal_keys=np.array([0]), window=1)
        rec(1, np.array([0]), np.array([1.0]), np.array([True]))
        rec.flush()
        assert rec.points[0].snr == float("inf")


class TestEstimateSigma:
    def test_standard_normal_products(self, rng):
        samples = rng.standard_normal((200, 500))
        assert estimate_sigma(samples) == pytest.approx(1.0, rel=0.05)

    def test_scaling(self, rng):
        samples = 3.0 * rng.standard_normal((200, 500))
        assert estimate_sigma(samples) == pytest.approx(3.0, rel=0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_sigma(np.empty((0, 5)))


class TestEstimateSigmaSparse:
    def test_formula(self):
        assert estimate_sigma_sparse(100.0, 25, 4) == pytest.approx(1.0)

    def test_matches_dense_version(self, rng):
        samples = rng.standard_normal((50, 40))
        dense = estimate_sigma(samples)
        sparse = estimate_sigma_sparse(float((samples**2).sum()), 40, 50)
        assert sparse == pytest.approx(dense)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_sigma_sparse(1.0, 0, 5)
        with pytest.raises(ValueError):
            estimate_sigma_sparse(-1.0, 5, 5)
