"""Equivalence tests: fused kernels vs. the legacy per-table/per-sample
reference implementations (repro.reference).

The fused layer promises *bit-identical* results for identical seeds, so
every assertion here is exact equality — no tolerances.
"""

import numpy as np
import pytest

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.estimator import SketchEstimator
from repro.core.schedule import ThresholdSchedule
from repro.covariance.updates import (
    aggregate_pair_updates,
    sparse_batch_pairs,
    sparse_sample_pairs,
)
from repro.hashing.families import MultiTableHasher, SignHash, make_family
from repro.reference import (
    LegacyCountMinSketch,
    LegacyCountSketch,
    LegacyTopKTracker,
    legacy_sparse_batch_pairs,
)
import repro.sketch.kernels as kernels
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch, _median_axis0
from repro.sketch.kernels import available_backends, numba_available, numpy_ref
from repro.sketch.topk import TopKTracker

FAMILIES = ["multiply-shift", "polynomial", "tabulation"]

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba is not importable"
)


@pytest.fixture(params=available_backends())
def backend_env(request, monkeypatch):
    """Repeat the dependent test under every importable kernel backend.

    Forces the backend through the environment knob, so the sketches the
    test constructs (without an explicit ``backend=``) take that path —
    exactly how the CI matrix drives the suite.  Locally this may collapse
    to the numpy path alone; the numba leg runs both.
    """
    monkeypatch.setenv(kernels.ENV_VAR, request.param)
    return request.param


def _key_batches(rng, num_batches=4):
    """Mixed batches: empty, tiny (add.at path), large (bincount path)."""
    batches = [
        (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)),
        (rng.integers(0, 10**12, size=7), rng.standard_normal(7)),
        (rng.integers(0, 10**12, size=300), rng.standard_normal(300)),
        (rng.integers(0, 10**12, size=9000), rng.standard_normal(9000)),
    ]
    return batches[:num_batches]


# ----------------------------------------------------------------------
# Hash layer
# ----------------------------------------------------------------------
class TestMultiTableHasher:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("num_buckets", [1024, 1000])  # pow2 and not
    def test_buckets_match_per_table_families(self, family, num_buckets, rng):
        seeds = [11, 22, 33]
        hasher = MultiTableHasher(family, num_buckets, seeds)
        keys = rng.integers(0, 2**63 - 1, size=500).astype(np.int64)
        fused = hasher.buckets(keys)
        for e, seed in enumerate(seeds):
            ref = make_family(family, num_buckets, seed)(keys)
            np.testing.assert_array_equal(fused[e], ref)

    def test_signs_match_sign_hash(self, rng):
        seeds = [1, 2, 3, 4]
        hasher = MultiTableHasher(
            "multiply-shift", 64, seeds, sign_seeds=[9, 8, 7, 6]
        )
        keys = rng.integers(0, 10**15, size=256).astype(np.int64)
        fused = hasher.signs(keys)
        for e, seed in enumerate([9, 8, 7, 6]):
            ref = SignHash(seed, family="multiply-shift")(keys)
            np.testing.assert_array_equal(fused[e], ref)

    def test_single_table(self, rng):
        hasher = MultiTableHasher("multiply-shift", 128, [5])
        keys = rng.integers(0, 10**12, size=64).astype(np.int64)
        assert hasher.buckets(keys).shape == (1, 64)
        np.testing.assert_array_equal(
            hasher.buckets(keys)[0], make_family("multiply-shift", 128, 5)(keys)
        )

    def test_polynomial_degree_passthrough(self, rng):
        hasher = MultiTableHasher("polynomial", 512, [3, 4], degree=3)
        keys = rng.integers(0, 10**12, size=128).astype(np.int64)
        for e, seed in enumerate([3, 4]):
            ref = make_family("polynomial", 512, seed, degree=3)(keys)
            np.testing.assert_array_equal(hasher.buckets(keys)[e], ref)

    def test_sign_requires_sign_seeds(self):
        hasher = MultiTableHasher("multiply-shift", 64, [1])
        with pytest.raises(RuntimeError):
            hasher.sign_bits_u64(np.arange(4))


# ----------------------------------------------------------------------
# Sketch layer
# ----------------------------------------------------------------------
class TestCountSketchEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("num_tables", [1, 5])
    def test_insert_query_bit_identical(
        self, family, dtype, num_tables, backend_env, rng
    ):
        fused = CountSketch(num_tables, 2048, seed=7, family=family, dtype=dtype)
        legacy = LegacyCountSketch(
            num_tables, 2048, seed=7, family=family, dtype=dtype
        )
        for keys, values in _key_batches(rng):
            fused.insert(keys, values)
            legacy.insert(keys, values)
        np.testing.assert_array_equal(fused.table, legacy.table)
        probe = rng.integers(0, 10**12, size=777).astype(np.int64)
        np.testing.assert_array_equal(fused.query(probe), legacy.query(probe))
        np.testing.assert_array_equal(
            fused.query_per_table(probe), legacy.query_per_table(probe)
        )

    @pytest.mark.parametrize("num_tables", [2, 4])
    def test_even_table_counts_match(self, num_tables, rng):
        # Even K exercises the np.median fallback (mean of two middles).
        fused = CountSketch(num_tables, 512, seed=3)
        legacy = LegacyCountSketch(num_tables, 512, seed=3)
        keys = rng.integers(0, 10**9, size=4000)
        values = rng.standard_normal(4000)
        fused.insert(keys, values)
        legacy.insert(keys, values)
        np.testing.assert_array_equal(fused.table, legacy.table)
        np.testing.assert_array_equal(fused.query(keys[:100]), legacy.query(keys[:100]))

    def test_non_power_of_two_buckets(self, backend_env, rng):
        fused = CountSketch(3, 1000, seed=5)
        legacy = LegacyCountSketch(3, 1000, seed=5)
        keys = rng.integers(0, 10**12, size=5000)
        values = rng.standard_normal(5000)
        fused.insert(keys, values)
        legacy.insert(keys, values)
        np.testing.assert_array_equal(fused.table, legacy.table)

    def test_cached_keys_bit_identical(self, backend_env, rng):
        keys = np.arange(3000, dtype=np.int64)
        values = rng.standard_normal(3000)
        fused = CountSketch(5, 1024, seed=9)
        fused.cache_keys(keys)
        legacy = LegacyCountSketch(5, 1024, seed=9)
        fused.insert(keys, values)
        legacy.insert(keys.copy(), values)
        np.testing.assert_array_equal(fused.table, legacy.table)
        np.testing.assert_array_equal(fused.query(keys), legacy.query(keys.copy()))
        np.testing.assert_array_equal(
            fused.query_per_table(keys), legacy.query_per_table(keys.copy())
        )

    def test_empty_batch_noop(self):
        fused = CountSketch(5, 256, seed=1)
        fused.insert(np.empty(0, dtype=np.int64), np.empty(0))
        assert not fused.table.any()
        assert fused.query(np.empty(0, dtype=np.int64)).size == 0
        assert fused.query_per_table(np.empty(0, dtype=np.int64)).shape == (5, 0)

    def test_flat_view_shares_table_memory(self):
        sk = CountSketch(3, 64, seed=0)
        sk.insert(np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0]))
        assert sk._flat.base is sk.table or sk._flat.base is sk.table.base
        sk.reset()
        assert not sk._flat.any()

    @pytest.mark.parametrize("cls", [CountSketch, CountMinSketch])
    def test_pickle_rebuilds_flat_view(self, cls, backend_env, rng):
        import pickle

        sk = cls(3, 256, seed=5)
        keys = rng.integers(0, 10**9, size=100)
        values = np.abs(rng.standard_normal(100))
        sk.insert(keys, values)
        clone = pickle.loads(pickle.dumps(sk))
        np.testing.assert_array_equal(clone.table, sk.table)
        # Inserts after unpickling must stay visible through .table (the
        # flat working view has to alias the unpickled table, not a copy).
        clone.insert(keys, values)
        sk.insert(keys, values)
        np.testing.assert_array_equal(clone.table, sk.table)
        np.testing.assert_array_equal(clone.query(keys), sk.query(keys))
        clone.reset()
        assert not clone.query(keys).any()


def _cs_hash_args(sk):
    """The flat kernel argument tuple for a fused-family count sketch."""
    mask = sk._hasher._bucket_mask
    return (
        sk._hasher._combined_a.ravel(),
        sk._hasher._combined_b.ravel(),
        sk._offsets_u64.ravel(),
        np.uint64(sk.num_buckets),
        np.uint64(0) if mask is None else mask,
        mask is not None,
    )


def _cm_hash_args(cm):
    mask = cm._hasher._bucket_mask
    return (
        cm._hasher._bucket._a.ravel(),
        cm._hasher._bucket._b.ravel(),
        cm._offsets_u64.ravel(),
        np.uint64(cm.num_buckets),
        np.uint64(0) if mask is None else mask,
        mask is not None,
    )


class TestKernelModuleParity:
    """``numpy_ref`` is the executable spec of the kernel contract: it must
    replicate the inline sketch paths bit-for-bit, so the compiled module
    only ever needs comparing against it."""

    @pytest.mark.parametrize("num_buckets", [1024, 1000])  # pow2 and not
    @pytest.mark.parametrize("num_tables", [1, 3, 5])
    def test_numpy_ref_matches_inline_count_sketch(
        self, num_tables, num_buckets, rng
    ):
        sk = CountSketch(num_tables, num_buckets, seed=17, backend="numpy")
        a, b, off, r_u64, mask, use_mask = _cs_hash_args(sk)
        flat = np.zeros(num_tables * num_buckets)
        for keys, values in _key_batches(rng):
            sk.insert(keys, values)
            numpy_ref.cs_insert(
                flat,
                keys.view(np.uint64),
                values,
                a,
                b,
                off,
                r_u64,
                mask,
                use_mask,
                keys.size * 16 >= num_buckets,
            )
        np.testing.assert_array_equal(flat, sk._flat)
        probe = rng.integers(0, 10**12, size=513)
        out = np.empty(probe.size)
        numpy_ref.cs_query(
            flat, probe.view(np.uint64), a, b, off, r_u64, mask, use_mask, out
        )
        np.testing.assert_array_equal(out, sk.query(probe))
        live_keys = rng.integers(0, 10**12, size=300)
        live_values = rng.standard_normal(300)
        est = sk.insert_and_query(live_keys, live_values)
        out_live = np.empty(live_keys.size)
        numpy_ref.cs_insert_and_query(
            flat,
            live_keys.view(np.uint64),
            live_values,
            a,
            b,
            off,
            r_u64,
            mask,
            use_mask,
            live_keys.size * 16 >= num_buckets,
            out_live,
        )
        np.testing.assert_array_equal(flat, sk._flat)
        np.testing.assert_array_equal(out_live, est)

    @pytest.mark.parametrize("num_buckets", [512, 500])
    def test_numpy_ref_matches_inline_count_min(self, num_buckets, rng):
        cm = CountMinSketch(3, num_buckets, seed=19, backend="numpy")
        a, b, off, r_u64, mask, use_mask = _cm_hash_args(cm)
        flat = np.zeros(3 * num_buckets)
        for keys, values in _key_batches(rng):
            cm.insert(keys, np.abs(values))
            numpy_ref.cm_insert(
                flat,
                keys.view(np.uint64),
                np.abs(values),
                a,
                b,
                off,
                r_u64,
                mask,
                use_mask,
            )
        np.testing.assert_array_equal(flat, cm._flat)
        probe = rng.integers(0, 10**12, size=333)
        out = np.empty(probe.size)
        numpy_ref.cm_query(
            flat, probe.view(np.uint64), a, b, off, r_u64, mask, use_mask, out
        )
        np.testing.assert_array_equal(out, cm.query(probe))


@needs_numba
class TestNumbaModuleParity:
    """The compiled module must replicate ``numpy_ref`` bit-for-bit: both
    accumulation strategies, both bucket-range reductions, every median
    network, and the min-reduce — same flat layout, same summation order."""

    @pytest.mark.parametrize("num_buckets", [512, 500])
    @pytest.mark.parametrize("num_tables", [1, 3, 5])
    def test_cs_kernels_bit_identical(self, num_tables, num_buckets, rng):
        from repro.sketch.kernels import numba_jit

        sk = CountSketch(num_tables, num_buckets, seed=23, backend="numpy")
        a, b, off, r_u64, mask, use_mask = _cs_hash_args(sk)
        flat_np = np.zeros(num_tables * num_buckets)
        flat_nb = np.zeros(num_tables * num_buckets)
        for keys, values in _key_batches(rng):
            # Force both strategies regardless of batch size: strategy
            # choice is the caller's, the kernels must agree under either.
            for use_bincount in (False, True):
                args = (keys.view(np.uint64), values, a, b, off, r_u64, mask)
                numpy_ref.cs_insert(flat_np, *args, use_mask, use_bincount)
                numba_jit.cs_insert(flat_nb, *args, use_mask, use_bincount)
                np.testing.assert_array_equal(flat_nb, flat_np)
        probe = rng.integers(0, 10**12, size=777)
        out_np = np.empty(probe.size)
        out_nb = np.empty(probe.size)
        query_args = (probe.view(np.uint64), a, b, off, r_u64, mask, use_mask)
        numpy_ref.cs_query(flat_np, *query_args, out_np)
        numba_jit.cs_query(flat_nb, *query_args, out_nb)
        np.testing.assert_array_equal(out_nb, out_np)
        live_keys = rng.integers(0, 10**12, size=300)
        live_values = rng.standard_normal(300)
        live_np = np.empty(live_keys.size)
        live_nb = np.empty(live_keys.size)
        live_args = (live_keys.view(np.uint64), live_values, a, b, off, r_u64, mask)
        numpy_ref.cs_insert_and_query(flat_np, *live_args, use_mask, True, live_np)
        numba_jit.cs_insert_and_query(flat_nb, *live_args, use_mask, True, live_nb)
        np.testing.assert_array_equal(flat_nb, flat_np)
        np.testing.assert_array_equal(live_nb, live_np)

    @pytest.mark.parametrize("num_buckets", [512, 500])
    def test_cm_kernels_bit_identical(self, num_buckets, rng):
        from repro.sketch.kernels import numba_jit

        cm = CountMinSketch(3, num_buckets, seed=29, backend="numpy")
        a, b, off, r_u64, mask, use_mask = _cm_hash_args(cm)
        flat_np = np.zeros(3 * num_buckets)
        flat_nb = np.zeros(3 * num_buckets)
        for keys, values in _key_batches(rng):
            args = (keys.view(np.uint64), np.abs(values), a, b, off, r_u64, mask)
            numpy_ref.cm_insert(flat_np, *args, use_mask)
            numba_jit.cm_insert(flat_nb, *args, use_mask)
            np.testing.assert_array_equal(flat_nb, flat_np)
        probe = rng.integers(0, 10**12, size=333)
        out_np = np.empty(probe.size)
        out_nb = np.empty(probe.size)
        query_args = (probe.view(np.uint64), a, b, off, r_u64, mask, use_mask)
        numpy_ref.cm_query(flat_np, *query_args, out_np)
        numba_jit.cm_query(flat_nb, *query_args, out_nb)
        np.testing.assert_array_equal(out_nb, out_np)

    def test_median_networks_handle_ties_and_nans(self, rng):
        from repro.sketch.kernels import numba_jit

        # Tie-heavy and NaN-poisoned tables: the scalar min/max pairs in
        # the compiled networks must pick the same operand numpy does.
        for num_tables in (1, 3, 5):
            sk = CountSketch(num_tables, 64, seed=31, backend="numpy")
            a, b, off, r_u64, mask, use_mask = _cs_hash_args(sk)
            flat = rng.integers(-2, 3, size=num_tables * 64).astype(np.float64)
            flat[rng.integers(0, flat.size, size=5)] = np.nan
            probe = rng.integers(0, 10**12, size=200)
            out_np = np.empty(probe.size)
            out_nb = np.empty(probe.size)
            query_args = (probe.view(np.uint64), a, b, off, r_u64, mask, use_mask)
            numpy_ref.cs_query(flat, *query_args, out_np)
            numba_jit.cs_query(flat, *query_args, out_nb)
            np.testing.assert_array_equal(out_nb, out_np)


class TestMedianKernel:
    @pytest.mark.parametrize("k", [1, 3, 5, 7])
    def test_matches_np_median_odd(self, k, rng):
        est = rng.standard_normal((k, 513))
        np.testing.assert_array_equal(_median_axis0(est), np.median(est, axis=0))

    def test_matches_np_median_with_ties(self, rng):
        est = rng.integers(-2, 3, size=(5, 400)).astype(np.float64)
        np.testing.assert_array_equal(_median_axis0(est), np.median(est, axis=0))

    @pytest.mark.parametrize("k", [2, 4])
    def test_even_k_falls_back_to_average(self, k, rng):
        est = rng.standard_normal((k, 100))
        np.testing.assert_array_equal(_median_axis0(est), np.median(est, axis=0))


class TestCountMinEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("conservative", [False, True])
    def test_insert_query_bit_identical(
        self, family, conservative, backend_env, rng
    ):
        fused = CountMinSketch(
            3, 512, seed=4, family=family, conservative=conservative
        )
        legacy = LegacyCountMinSketch(
            3, 512, seed=4, family=family, conservative=conservative
        )
        for keys, values in _key_batches(rng):
            fused.insert(keys, np.abs(values))
            legacy.insert(keys, np.abs(values))
        np.testing.assert_array_equal(fused.table, legacy.table)
        probe = rng.integers(0, 10**12, size=333).astype(np.int64)
        np.testing.assert_array_equal(fused.query(probe), legacy.query(probe))

    def test_capped_conservative_matches(self, rng):
        fused = CountMinSketch(2, 128, seed=2, conservative=True, cap=3.0)
        legacy = LegacyCountMinSketch(2, 128, seed=2, conservative=True, cap=3.0)
        for _ in range(5):
            keys = rng.integers(0, 500, size=200)
            values = np.abs(rng.standard_normal(200))
            fused.insert(keys, values)
            legacy.insert(keys, values)
        np.testing.assert_array_equal(fused.table, legacy.table)


# ----------------------------------------------------------------------
# Tracker layer
# ----------------------------------------------------------------------
class TestTrackerEquivalence:
    @pytest.mark.parametrize("two_sided", [False, True])
    def test_offer_prune_topk_identical(self, two_sided, rng):
        fused = TopKTracker(50, slack=1.5, two_sided=two_sided)
        legacy = LegacyTopKTracker(50, slack=1.5, two_sided=two_sided)
        for _ in range(30):
            n = int(rng.integers(0, 40))
            keys = rng.integers(0, 200, size=n)  # small space: many refreshes
            ests = rng.standard_normal(n)
            fused.offer(keys, ests)
            legacy.offer(keys, ests)
            assert len(fused) == len(legacy)
        np.testing.assert_array_equal(fused.candidates(), legacy.candidates())
        fk, fe = fused.top_k(20)
        lk, le = legacy.top_k(20)
        np.testing.assert_array_equal(fk, lk)
        np.testing.assert_array_equal(fe, le)

    def test_duplicate_keys_in_one_batch_keep_last(self):
        fused = TopKTracker(10)
        legacy = LegacyTopKTracker(10)
        keys = np.array([5, 5, 5, 2])
        ests = np.array([1.0, 3.0, 2.0, 9.0])
        fused.offer(keys, ests)
        legacy.offer(keys, ests)
        fk, fe = fused.top_k(10)
        lk, le = legacy.top_k(10)
        np.testing.assert_array_equal(fk, lk)
        np.testing.assert_array_equal(fe, le)

    def test_requery_against_sketch_identical(self, rng):
        sketch = CountSketch(5, 1024, seed=6)
        keys = rng.integers(0, 10**9, size=500)
        sketch.insert(keys, rng.standard_normal(500))
        fused = TopKTracker(30)
        legacy = LegacyTopKTracker(30)
        fused.offer(keys[:100], np.zeros(100))
        legacy.offer(keys[:100], np.zeros(100))
        fk, fe = fused.top_k(10, sketch=sketch)
        lk, le = legacy.top_k(10, sketch=sketch)
        np.testing.assert_array_equal(fk, lk)
        np.testing.assert_array_equal(fe, le)

    def test_buffer_growth_beyond_initial_capacity(self, rng):
        tracker = TopKTracker(5000, slack=2.0)
        keys = rng.integers(0, 10**12, size=9000)
        tracker.offer(keys, rng.standard_normal(9000))
        assert len(tracker) == np.unique(keys).size

    def test_reset_clears(self):
        tracker = TopKTracker(5)
        tracker.offer(np.array([1]), np.array([1.0]))
        tracker.reset()
        assert len(tracker) == 0
        assert tracker.candidates().size == 0

    def test_nan_estimates_rank_worst_like_legacy(self):
        # NaN estimates must not poison the prune: the dict-era argsort
        # ranked them worst and kept `capacity` candidates.
        fused = TopKTracker(5, slack=1.2)
        legacy = LegacyTopKTracker(5, slack=1.2)
        keys = np.arange(20)
        ests = np.full(20, np.nan)
        ests[3] = 2.0
        ests[11] = 1.0
        for tr in (fused, legacy):
            tr.offer(keys, ests)
        assert len(fused) == len(legacy)
        fk, _ = fused.top_k(2)
        lk, _ = legacy.top_k(2)
        np.testing.assert_array_equal(fk, lk)
        assert fk.tolist() == [3, 11]


# ----------------------------------------------------------------------
# Pipeline layer
# ----------------------------------------------------------------------
def _random_sparse_batch(rng, num_samples, dim, max_nnz):
    lengths, idx_parts, val_parts = [], [], []
    for _ in range(num_samples):
        m = int(rng.integers(0, max_nnz + 1))
        feats = rng.choice(dim, size=m, replace=False)
        lengths.append(m)
        idx_parts.append(feats.astype(np.int64))
        val_parts.append(rng.standard_normal(m))
    indices = (
        np.concatenate(idx_parts) if idx_parts else np.empty(0, dtype=np.int64)
    )
    values = np.concatenate(val_parts) if val_parts else np.empty(0)
    return indices, values, np.asarray(lengths, dtype=np.int64)


class TestSparseBatchPairs:
    def test_matches_per_sample_loop(self, rng):
        dim = 3000
        indices, values, lengths = _random_sparse_batch(rng, 20, dim, 30)
        fused = sparse_batch_pairs(indices, values, lengths, dim)
        legacy = legacy_sparse_batch_pairs(indices, values, lengths, dim)
        np.testing.assert_array_equal(fused[0], legacy[0])
        np.testing.assert_array_equal(fused[1], legacy[1])

    def test_empty_and_singleton_samples(self):
        dim = 100
        indices = np.array([7, 3, 50, 9], dtype=np.int64)
        values = np.array([1.0, 2.0, 3.0, 4.0])
        lengths = np.array([0, 1, 3, 0], dtype=np.int64)  # only one pairful sample
        keys, products = sparse_batch_pairs(indices, values, lengths, dim)
        ref_keys, ref_products = sparse_sample_pairs(
            indices[1:4], values[1:4], dim
        )
        np.testing.assert_array_equal(keys, ref_keys)
        np.testing.assert_array_equal(products, ref_products)

    def test_all_empty(self):
        keys, products = sparse_batch_pairs(
            np.empty(0, dtype=np.int64), np.empty(0), np.zeros(4, dtype=np.int64), 10
        )
        assert keys.size == 0 and products.size == 0

    def test_unsorted_indices_match_loop(self, rng):
        dim = 500
        indices = np.array([40, 3, 17, 2, 499, 250], dtype=np.int64)
        values = rng.standard_normal(6)
        lengths = np.array([3, 3], dtype=np.int64)
        fused = sparse_batch_pairs(indices, values, lengths, dim)
        legacy = legacy_sparse_batch_pairs(indices, values, lengths, dim)
        np.testing.assert_array_equal(fused[0], legacy[0])
        np.testing.assert_array_equal(fused[1], legacy[1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="lengths"):
            sparse_batch_pairs(
                np.arange(5, dtype=np.int64),
                np.ones(5),
                np.array([2, 2], dtype=np.int64),
                10,
            )


class TestEndToEndSparsePipeline:
    def test_fused_pipeline_matches_legacy_expansion(self, rng):
        """A full fit_sparse run must leave exactly the same sketch state as
        the legacy per-sample expansion feeding the same estimator."""
        from repro.covariance.pipeline import CovarianceSketcher

        dim, n = 400, 64
        samples = []
        for _ in range(n):
            m = int(rng.integers(2, 12))
            feats = np.sort(rng.choice(dim, size=m, replace=False)).astype(np.int64)
            samples.append((feats, rng.standard_normal(m)))

        est_fused = SketchEstimator(CountSketch(5, 4096, seed=12), n, track_top=64)
        pipe = CovarianceSketcher(
            dim, est_fused, mode="covariance", batch_size=16
        )
        pipe.fit_sparse(iter(samples))

        est_ref = SketchEstimator(LegacyCountSketch(5, 4096, seed=12), n)
        for start in range(0, n, 16):
            chunk = samples[start : start + 16]
            keys_list, values_list = [], []
            for feats, vals in chunk:
                keys, products = sparse_sample_pairs(feats, vals, dim)
                if keys.size:
                    keys_list.append(keys)
                    values_list.append(products)
            keys, sums = aggregate_pair_updates(keys_list, values_list)
            est_ref.ingest(keys, sums, num_samples=len(chunk))

        np.testing.assert_array_equal(
            est_fused.sketch.table, est_ref.sketch.table
        )

    def test_ascs_tracker_reuses_gate_estimates(self, rng):
        """During sampling the tracker must hold the gate's (pre-insert)
        estimates rather than issuing a second query."""
        n = 40
        sketch = CountSketch(3, 512, seed=8)
        schedule = ThresholdSchedule(
            total_samples=n, exploration_length=10, tau0=0.0, theta=0.0
        )
        est = ActiveSamplingCountSketch(
            sketch, n, schedule, track_top=32, name="ASCS"
        )
        keys = rng.integers(0, 10**6, size=20)
        values = np.abs(rng.standard_normal(20)) + 1.0
        est.ingest(keys, values, num_samples=20)  # exploration
        gate_est = sketch.query(np.asarray(keys, dtype=np.int64))
        est.ingest(keys, values, num_samples=20)  # sampling: gate accepts all
        cand, cand_est = est.tracker.top_k(32)
        lookup = dict(zip(cand.tolist(), cand_est.tolist()))
        expect = dict(
            zip(np.asarray(keys, dtype=np.int64).tolist(), gate_est.tolist())
        )
        assert lookup == {k: v for k, v in expect.items()}
