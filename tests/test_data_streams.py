"""Tests for stream utilities (repro.data.streams)."""

import numpy as np
import pytest

from repro.data.streams import ShuffleBuffer, SparseSample, batched, dense_rows, take


class TestSparseSample:
    def test_densify(self):
        sample = SparseSample(np.array([1, 4]), np.array([2.0, 3.0]))
        dense = sample.densify(6)
        np.testing.assert_array_equal(dense, [0, 2, 0, 0, 3, 0])

    def test_nnz(self):
        assert SparseSample(np.array([1, 4]), np.array([2.0, 3.0])).nnz == 2


class TestShuffleBuffer:
    def test_preserves_multiset(self):
        items = list(range(100))
        shuffled = list(ShuffleBuffer(items, buffer_size=16, seed=1))
        assert sorted(shuffled) == items

    def test_actually_shuffles(self):
        items = list(range(1000))
        shuffled = list(ShuffleBuffer(items, buffer_size=128, seed=2))
        assert shuffled != items

    def test_deterministic(self):
        items = list(range(50))
        a = list(ShuffleBuffer(items, buffer_size=8, seed=3))
        b = list(ShuffleBuffer(items, buffer_size=8, seed=3))
        assert a == b

    def test_short_stream(self):
        assert sorted(ShuffleBuffer([1, 2], buffer_size=100, seed=0)) == [1, 2]

    def test_breaks_local_correlation(self):
        # A sorted stream should have its neighbours separated.
        items = list(range(400))
        shuffled = list(ShuffleBuffer(items, buffer_size=100, seed=4))
        gaps = np.abs(np.diff(shuffled))
        assert gaps.mean() > 5

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            ShuffleBuffer([], buffer_size=0)


class TestTake:
    def test_takes_n(self):
        assert list(take(iter(range(100)), 5)) == [0, 1, 2, 3, 4]

    def test_short_source(self):
        assert list(take(iter(range(3)), 10)) == [0, 1, 2]


class TestBatched:
    def test_even_batches(self):
        assert list(batched(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert list(batched(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(batched(range(5), 0))


class TestDenseRows:
    def test_yields_rows(self):
        mat = np.arange(6).reshape(2, 3)
        rows = list(dense_rows(mat))
        assert len(rows) == 2
        np.testing.assert_array_equal(rows[1], [3, 4, 5])
