"""Tests for evaluation metrics (repro.evaluation.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    max_f1_score,
    mean_top_true_value,
    precision_at_k,
    precision_recall_curve,
    recall_at_k,
)


class TestMeanTopTrueValue:
    def test_basic(self):
        truth = np.array([0.1, 0.9, 0.5, 0.2])
        ranked = np.array([1, 2, 0, 3])
        assert mean_top_true_value(ranked, truth, 2) == pytest.approx(0.7)

    def test_k_one(self):
        truth = np.array([0.1, 0.9])
        assert mean_top_true_value(np.array([1, 0]), truth, 1) == pytest.approx(0.9)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            mean_top_true_value(np.array([0]), np.array([1.0]), 0)

    def test_short_ranking_nan(self):
        assert np.isnan(mean_top_true_value(np.empty(0, dtype=int), np.array([1.0]), 3))


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        signal = np.array([5, 6, 7])
        ranked = np.array([7, 5, 6, 1, 2])
        precision, recall = precision_recall_curve(ranked, signal)
        np.testing.assert_allclose(precision[:3], 1.0)
        np.testing.assert_allclose(recall[:3], [1 / 3, 2 / 3, 1.0])

    def test_worst_ranking(self):
        signal = np.array([9])
        ranked = np.array([1, 2, 3])
        precision, recall = precision_recall_curve(ranked, signal)
        assert precision.max() == 0.0
        assert recall.max() == 0.0

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([1]), np.array([], dtype=int))

    def test_precision_at_k(self):
        signal = np.array([1, 2])
        ranked = np.array([1, 5, 2, 7])
        assert precision_at_k(ranked, signal, 2) == pytest.approx(0.5)
        assert precision_at_k(ranked, signal, 4) == pytest.approx(0.5)

    def test_recall_at_k(self):
        signal = np.array([1, 2])
        ranked = np.array([1, 5, 2, 7])
        assert recall_at_k(ranked, signal, 1) == pytest.approx(0.5)
        assert recall_at_k(ranked, signal, 3) == pytest.approx(1.0)

    def test_recall_empty_ranking(self):
        assert recall_at_k(np.empty(0, dtype=int), np.array([1]), 5) == 0.0


class TestMaxF1:
    def test_perfect(self):
        signal = np.array([3, 4])
        assert max_f1_score(np.array([3, 4, 9]), signal) == pytest.approx(1.0)

    def test_half_interleaved(self):
        # ranking: S N S N -> best prefix is [S N S]: P=2/3, R=1 -> F1=0.8
        signal = np.array([0, 2])
        ranked = np.array([0, 9, 2, 8])
        assert max_f1_score(ranked, signal) == pytest.approx(0.8)

    def test_no_signals_found(self):
        assert max_f1_score(np.array([5, 6]), np.array([1])) == 0.0

    def test_monotone_in_ranking_quality(self):
        signal = np.arange(10)
        good = np.arange(20)  # signals first
        bad = np.arange(20)[::-1]  # signals last
        assert max_f1_score(good, signal) > max_f1_score(bad, signal)

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounded_in_unit_interval(self, num_signals, seed):
        rng = np.random.default_rng(seed)
        universe = rng.permutation(200)
        signal = universe[:num_signals]
        ranked = rng.permutation(200)
        f1 = max_f1_score(ranked, signal)
        assert 0.0 <= f1 <= 1.0

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_f1_at_least_prefix_f1(self, seed):
        """max-F1 dominates the F1 of the |S|-prefix by construction."""
        rng = np.random.default_rng(seed)
        signal = rng.choice(100, size=10, replace=False)
        ranked = rng.permutation(100)
        k = 10
        hits = np.isin(ranked[:k], signal).sum()
        prefix_f1 = 2 * hits / (k + 10) if hits else 0.0
        assert max_f1_score(ranked, signal) >= prefix_f1 - 1e-12
