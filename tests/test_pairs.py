"""Tests for the pair-index bijection (repro.hashing.pairs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.pairs import (
    MAX_DIMENSION,
    all_pair_indices,
    index_to_pair,
    num_pairs,
    pair_to_index,
    pairs_among,
)


class TestNumPairs:
    def test_small_values(self):
        assert num_pairs(2) == 1
        assert num_pairs(3) == 3
        assert num_pairs(4) == 6
        assert num_pairs(1000) == 499_500

    def test_paper_dna_scale(self):
        # The DNA dataset: 17M features -> ~144 trillion entries.
        assert num_pairs(17_000_000) == 144_499_991_500_000

    def test_dimension_too_small(self):
        with pytest.raises(ValueError, match="at least 2"):
            num_pairs(1)

    def test_dimension_too_large(self):
        with pytest.raises(ValueError, match="MAX_DIMENSION"):
            num_pairs(MAX_DIMENSION + 1)


class TestPairToIndex:
    def test_canonical_order_small(self):
        # d=4: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5
        d = 4
        expected = {(0, 1): 0, (0, 2): 1, (0, 3): 2, (1, 2): 3, (1, 3): 4, (2, 3): 5}
        for (i, j), idx in expected.items():
            assert pair_to_index(i, j, d) == idx

    def test_vectorised_matches_scalar(self):
        d = 37
        i, j = np.triu_indices(d, k=1)
        vec = pair_to_index(i, j, d)
        for n in range(0, i.size, 7):
            assert vec[n] == pair_to_index(int(i[n]), int(j[n]), d)

    def test_full_range_is_permutation(self):
        d = 50
        i, j = np.triu_indices(d, k=1)
        idx = pair_to_index(i, j, d)
        assert sorted(idx.tolist()) == list(range(num_pairs(d)))

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError):
            pair_to_index(3, 3, 10)

    def test_rejects_swapped(self):
        with pytest.raises(ValueError):
            pair_to_index(5, 2, 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pair_to_index(0, 10, 10)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pair_to_index(-1, 3, 10)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            pair_to_index(np.array([1, 2]), np.array([3]), 10)


class TestIndexToPair:
    def test_round_trip_exhaustive_small(self):
        d = 23
        idx = np.arange(num_pairs(d))
        i, j = index_to_pair(idx, d)
        assert (i < j).all()
        assert (pair_to_index(i, j, d) == idx).all()

    @pytest.mark.parametrize("d", [2, 3, 10, 1000, 10**6, 17_000_000, 10**9])
    def test_round_trip_random(self, d):
        rng = np.random.default_rng(d)
        idx = rng.integers(0, num_pairs(d), size=500)
        i, j = index_to_pair(idx, d)
        assert (i >= 0).all() and (j < d).all() and (i < j).all()
        assert (pair_to_index(i, j, d) == idx).all()

    def test_boundary_indices(self):
        d = 12345
        p = num_pairs(d)
        idx = np.array([0, 1, p - 2, p - 1])
        i, j = index_to_pair(idx, d)
        assert (i[0], j[0]) == (0, 1)
        assert (i[-1], j[-1]) == (d - 2, d - 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_pair(num_pairs(10), 10)
        with pytest.raises(ValueError):
            index_to_pair(-1, 10)

    @given(st.integers(min_value=2, max_value=10**8), st.data())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_property(self, d, data):
        idx = data.draw(st.integers(min_value=0, max_value=num_pairs(d) - 1))
        i, j = index_to_pair(np.asarray([idx]), d)
        assert 0 <= i[0] < j[0] < d
        assert pair_to_index(i, j, d)[0] == idx


class TestPairsAmong:
    def test_matches_manual_combinations(self):
        d = 30
        feats = np.array([3, 17, 8, 25])
        keys = pairs_among(feats, d)
        expected = sorted(
            pair_to_index(min(a, b), max(a, b), d)
            for n, a in enumerate([3, 8, 17, 25])
            for b in [3, 8, 17, 25][n + 1 :]
        )
        assert sorted(keys.tolist()) == expected

    def test_deduplicates(self):
        keys = pairs_among(np.array([5, 5, 9]), 20)
        assert keys.size == 1

    def test_degenerate_inputs(self):
        assert pairs_among(np.array([7]), 20).size == 0
        assert pairs_among(np.array([], dtype=np.int64), 20).size == 0

    def test_count(self):
        feats = np.arange(0, 40, 3)
        m = feats.size
        assert pairs_among(feats, 100).size == m * (m - 1) // 2


class TestAllPairIndices:
    def test_small(self):
        assert all_pair_indices(5).tolist() == list(range(10))

    def test_refuses_huge(self):
        with pytest.raises(ValueError, match="refusing"):
            all_pair_indices(100_000)
