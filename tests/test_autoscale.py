"""Planner-loop closure: replan() decisions, validation sweep, the
AutoScaler, and history-preserving serving migration.

Covers this PR's bugfix satellites too: non-finite planner inputs are
rejected, and probe state is reset (not blended) across engine swaps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoscale import AutoScaler, plan_from_spec
from repro.autoscale.scaler import observed_saturation
from repro.distributed.shard import ShardSpec, spec_with
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import AccuracyProbe
from repro.serving import ServingEstimator
from repro.sketch.planner import ObservedSignals, Replan, plan, replan
from repro.streaming import PaneRing

DIM = 300
BATCH = 8

NON_FINITE = (float("nan"), float("inf"), float("-inf"))


def _spec(**overrides) -> ShardSpec:
    base = dict(
        dim=DIM,
        total_samples=100_000,
        batch_size=BATCH,
        num_tables=3,
        num_buckets=128,
        seed=13,
        mode="covariance",
        track_top=64,
    )
    base.update(overrides)
    return ShardSpec(**base)


def _integer_stream(rng, n, nnz=6):
    out = []
    for _ in range(n):
        idx = np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64)
        val = rng.integers(-3, 4, size=nnz).astype(np.float64)
        out.append((idx, val))
    return out


# ----------------------------------------------------------------------
# Satellite: non-finite planner inputs
# ----------------------------------------------------------------------
class TestPlanValidation:
    @pytest.mark.parametrize("bad", NON_FINITE)
    @pytest.mark.parametrize(
        "knob", ["budget_mb", "value_range", "target_f1", "headroom"]
    )
    def test_non_finite_knobs_rejected(self, knob, bad):
        kwargs = {"budget_mb": 1.0, knob: bad}
        with pytest.raises(ValueError, match=f"{knob} must be finite"):
            plan(1000, **kwargs)

    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_non_finite_quantization_tolerance_rejected(self, bad):
        with pytest.raises(
            ValueError, match="quantization_tolerance must be finite"
        ):
            plan(1000, 1.0, quantization_tolerance=bad)

    def test_nan_budget_cannot_poison_quantum(self):
        # The original bug: NaN <= 0 is False, so a NaN budget sailed past
        # the ordering check and produced a NaN quantum downstream.
        with pytest.raises(ValueError):
            plan(1000, float("nan"))
        # Finite inputs still produce a finite plan + quantum.
        p = plan(1000, 1.0)
        assert np.isfinite(p.budget_bytes)
        assert p.quantum is None or np.isfinite(p.quantum)

    def test_valid_plans_unchanged(self):
        p = plan(1000, 1.0, target_f1=0.9)
        assert p.num_buckets >= 16
        q = plan(1000, 1.0, quantization_tolerance=0.0)
        assert q.storage in ("float32", "float64")


# ----------------------------------------------------------------------
# replan(): the pure decision function
# ----------------------------------------------------------------------
class TestReplan:
    def setup_method(self):
        self.plan = plan(DIM, 0.25)

    def test_hold_when_no_signals(self):
        decision = replan(self.plan, ObservedSignals())
        assert decision.action == "hold"
        assert not decision.changed
        assert decision.plan == self.plan

    def test_collision_trigger_grows_budget(self):
        decision = replan(
            self.plan,
            ObservedSignals(collision_energy=1.0),
            collision_ceiling=0.5,
        )
        assert decision.action == "grow"
        assert decision.plan.budget_bytes == 2 * self.plan.budget_bytes
        assert decision.plan.num_buckets > self.plan.num_buckets
        assert "collision" in decision.reason

    def test_rosnr_floor_grows(self):
        decision = replan(
            self.plan, ObservedSignals(rosnr=0.4), rosnr_floor=0.8
        )
        assert decision.action == "grow"

    def test_saturation_trigger_outranks_collision(self):
        decision = replan(
            self.plan,
            ObservedSignals(collision_energy=1.0, saturation=0.99),
            collision_ceiling=0.5,
            saturation_ceiling=0.85,
        )
        assert decision.action == "grow"
        assert "saturation" in decision.reason

    def test_churn_escalates_decay_not_budget(self):
        decision = replan(self.plan, ObservedSignals(topk_churn=0.9))
        assert decision.action == "escalate_decay"
        assert decision.window_scale == 0.5
        assert decision.plan == self.plan  # same sketch, smaller window

    def test_demote_quiet_float_regime(self):
        float_plan = plan(DIM, 0.25, storage="float64")
        decision = replan(
            float_plan,
            ObservedSignals(collision_energy=1e-9),
            demote_collision_floor=1e-3,
        )
        assert decision.action == "demote"
        assert decision.plan.storage == "int16"
        assert decision.plan.budget_bytes < float_plan.budget_bytes

    def test_demote_never_fires_on_quantized_storage(self):
        int_plan = plan(DIM, 0.25, storage="int16")
        decision = replan(
            int_plan,
            ObservedSignals(collision_energy=1e-9),
            demote_collision_floor=1e-3,
        )
        assert decision.action == "hold"

    def test_budget_cap_turns_grow_into_hold(self):
        decision = replan(
            self.plan,
            ObservedSignals(collision_energy=1.0),
            collision_ceiling=0.5,
            max_budget_bytes=self.plan.budget_bytes,
        )
        assert decision.action == "hold"
        assert "cap" in decision.reason

    def test_budget_cap_clamps_partial_growth(self):
        cap = int(1.5 * self.plan.budget_bytes)
        decision = replan(
            self.plan,
            ObservedSignals(collision_energy=1.0),
            collision_ceiling=0.5,
            max_budget_bytes=cap,
        )
        assert decision.action == "grow"
        assert decision.plan.budget_bytes <= cap

    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_non_finite_thresholds_rejected(self, bad):
        with pytest.raises(ValueError, match="must be finite"):
            replan(
                self.plan, ObservedSignals(), collision_ceiling=bad
            )

    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_non_finite_observations_are_missing_not_triggers(self, bad):
        decision = replan(
            self.plan,
            ObservedSignals(
                collision_energy=bad, rosnr=bad, topk_churn=bad, saturation=bad
            ),
            collision_ceiling=0.5,
            rosnr_floor=0.8,
        )
        assert decision.action == "hold"

    def test_growth_factor_validated(self):
        with pytest.raises(ValueError, match="growth"):
            replan(self.plan, ObservedSignals(), growth=1.0)
        with pytest.raises(ValueError, match="window_shrink"):
            replan(self.plan, ObservedSignals(), window_shrink=1.0)

    def test_replan_is_a_replan_dataclass(self):
        decision = replan(self.plan, ObservedSignals())
        assert isinstance(decision, Replan)


class TestPlanFromSpec:
    def test_round_trips_geometry(self):
        spec = _spec(storage="int16", quantum=0.01)
        p = plan_from_spec(spec)
        assert p.num_tables == spec.num_tables
        assert p.num_buckets == spec.num_buckets
        assert p.storage == "int16"
        assert p.quantum == spec.quantum
        assert p.budget_bytes == 3 * 128 * 2

    def test_float_spec(self):
        p = plan_from_spec(_spec())
        assert p.storage == "float64"
        assert p.quantum is None
        assert p.quantization_step_rel == 0.0


# ----------------------------------------------------------------------
# Satellite: probe reset seam
# ----------------------------------------------------------------------
class TestProbeReset:
    def _loaded_probe(self):
        probe = AccuracyProbe(
            [1, 2, 3], key_space=10_000, window=4, seed=3
        )
        keys = np.arange(20, dtype=np.int64)
        values = np.ones(20)
        mask = np.ones(20, dtype=bool)
        for t in range(8):
            probe(t, keys, values, mask)
        probe.flush()
        probe.sample(lambda k: np.ones(len(k)), top_keys=[1, 2, 3])
        return probe

    def test_reset_clears_accumulated_state(self):
        probe = self._loaded_probe()
        assert probe._reservoir_fill > 0
        assert probe._points_consumed > 0
        assert probe._last_top is not None
        baseline = probe.baseline_snr
        probe.reset()
        assert probe._reservoir_fill == 0
        assert probe._noise_seen == 0
        assert probe._points_consumed == 0
        assert probe._last_top is None
        assert probe.recorder.points == []
        # Auto-derived baseline survives a plain reset (comparable ROSNR
        # across the migration) ...
        assert probe.baseline_snr == baseline

    def test_rebaseline_forgets_derived_baseline(self):
        probe = self._loaded_probe()
        probe.reset(rebaseline=True)
        assert probe.baseline_snr is None

    def test_rebaseline_keeps_explicit_baseline(self):
        probe = AccuracyProbe([1], baseline_snr=7.5, key_space=100)
        probe.reset(rebaseline=True)
        assert probe.baseline_snr == 7.5

    def test_reset_probe_measures_only_new_state(self):
        probe = self._loaded_probe()
        probe.reset()
        # First post-reset churn sample has no previous top set: no churn
        # reading (the pre-migration top set must not leak in).
        out = probe.sample(lambda k: np.zeros(len(k)), top_keys=[7, 8, 9])
        assert "topk_churn" not in out
        out = probe.sample(lambda k: np.zeros(len(k)), top_keys=[7, 8, 9])
        assert out["topk_churn"] == 0.0


# ----------------------------------------------------------------------
# Saturation signal
# ----------------------------------------------------------------------
class TestSaturationSignal:
    def test_counter_store_saturation(self):
        from repro.sketch.storage import CounterStore

        store = CounterStore(2, 8, dtype="int16", quantum=1.0)
        assert store.saturation == 0.0
        store.raw[3] = -16384
        assert store.saturation == pytest.approx(16384 / 32767)
        floaty = CounterStore(2, 8, dtype="float64")
        floaty.raw[0] = 1e30
        assert floaty.saturation == 0.0

    def test_sketch_property(self):
        from repro.sketch import CountSketch

        sketch = CountSketch(2, 16, seed=1, dtype="int16", quantum=0.5)
        assert sketch.saturation == 0.0
        sketch.insert([5], [100.0])
        assert 0.0 < sketch.saturation <= 1.0

    def test_observed_saturation_covers_closed_panes(self):
        # Fine quantum: covariance updates are amortised over
        # total_samples, so a coarse step would round them all to zero.
        spec = _spec(storage="int16", quantum=2.0**-20)
        ring = PaneRing(spec, num_panes=3, pane_samples=64, retain_raw=True)
        rng = np.random.default_rng(1)
        ring.ingest(_integer_stream(rng, 160))
        sat = observed_saturation(ring)
        assert sat > 0.0
        # Matches a brute-force max over the retained pane tables.
        tables = [p.table for p in ring.panes()]
        brute = max(
            max(-int(t.min()), int(t.max())) / np.iinfo(np.int16).max
            for t in tables
        )
        assert sat == pytest.approx(brute)


# ----------------------------------------------------------------------
# Migration equivalence: rebuild == from-scratch fit over the window
# ----------------------------------------------------------------------
class TestMigrationEquivalence:
    def _fill(self, ring, batches):
        for b in batches:
            ring.ingest(b)

    def test_wider_rebuild_bit_identical_to_scratch(self):
        spec = _spec()
        rng = np.random.default_rng(7)
        batches = [_integer_stream(rng, 64) for _ in range(6)]
        ring = PaneRing(spec, num_panes=4, pane_samples=64, retain_raw=True)
        self._fill(ring, batches)

        wide = spec_with(spec, num_buckets=512)
        migrated = ring.rebuild(wide)

        reference = PaneRing(
            wide, num_panes=4, pane_samples=64, retain_raw=True
        )
        self._fill(reference, batches)

        got = migrated.window().estimator
        want = reference.window().estimator
        np.testing.assert_array_equal(got.sketch.table, want.sketch.table)
        assert migrated.window_span == reference.window_span
        assert migrated.window_start == reference.window_start
        assert migrated.samples_seen == ring.samples_seen
        assert migrated.rotations == ring.rotations

    def test_rebuild_to_quantized_storage(self):
        spec = _spec()
        rng = np.random.default_rng(8)
        batches = [_integer_stream(rng, 64) for _ in range(5)]
        ring = PaneRing(spec, num_panes=3, pane_samples=64, retain_raw=True)
        self._fill(ring, batches)
        demoted_spec = spec_with(spec, storage="int16", quantum=2.0**-8)
        demoted = ring.rebuild(demoted_spec)
        reference = PaneRing(
            demoted_spec, num_panes=3, pane_samples=64, retain_raw=True
        )
        self._fill(reference, batches)
        np.testing.assert_array_equal(
            demoted.window().estimator.sketch.table,
            reference.window().estimator.sketch.table,
        )

    def test_window_shrink_keeps_newest_panes(self):
        spec = _spec()
        rng = np.random.default_rng(9)
        ring = PaneRing(spec, num_panes=5, pane_samples=64, retain_raw=True)
        self._fill(ring, [_integer_stream(rng, 64) for _ in range(7)])
        shrunk = ring.rebuild(spec, num_panes=3)
        assert shrunk.num_panes == 3
        # Keeps the newest closed panes: window start advances.
        assert shrunk.window_start > ring.window_start
        assert shrunk.window_span < ring.window_span
        # The retained panes are bit-identical to the source ring's newest.
        src = ring.panes()[-3:]
        dst = shrunk.panes()
        for a, b in zip(src, dst):
            np.testing.assert_array_equal(a.table, b.table)
            assert a.start == b.start

    def test_rebuild_requires_retention_contract(self):
        ring = PaneRing(_spec(), num_panes=3, pane_samples=64)
        with pytest.raises(ValueError, match="retain_raw"):
            ring.rebuild(_spec(num_buckets=512))

    def test_raws_survive_save_load(self, tmp_path):
        spec = _spec()
        rng = np.random.default_rng(10)
        batches = [_integer_stream(rng, 64) for _ in range(5)]
        ring = PaneRing(spec, num_panes=3, pane_samples=64, retain_raw=True)
        self._fill(ring, batches)
        ring.save(tmp_path)
        restored = PaneRing.load(tmp_path)
        assert restored.retain_raw
        wide = spec_with(spec, num_buckets=512)
        np.testing.assert_array_equal(
            restored.rebuild(wide).window().estimator.sketch.table,
            ring.rebuild(wide).window().estimator.sketch.table,
        )

    def test_rebuilt_ring_can_migrate_again(self):
        spec = _spec()
        rng = np.random.default_rng(11)
        batches = [_integer_stream(rng, 64) for _ in range(4)]
        ring = PaneRing(spec, num_panes=3, pane_samples=64, retain_raw=True)
        self._fill(ring, batches)
        once = ring.rebuild(spec_with(spec, num_buckets=256))
        twice = once.rebuild(spec_with(spec, num_buckets=512))
        reference = PaneRing(
            spec_with(spec, num_buckets=512),
            num_panes=3,
            pane_samples=64,
            retain_raw=True,
        )
        self._fill(reference, batches)
        np.testing.assert_array_equal(
            twice.window().estimator.sketch.table,
            reference.window().estimator.sketch.table,
        )


# ----------------------------------------------------------------------
# Serving migration + the AutoScaler loop
# ----------------------------------------------------------------------
class TestServingMigration:
    def _stack(self, **autoscale_options):
        spec = _spec()
        options = {"check_every": 512, "cooldown": 1}
        options.update(autoscale_options)
        return ServingEstimator.autoscaled(
            spec,
            num_panes=4,
            pane_samples=256,
            refresh_every=256,
            autoscale_options=options,
        )

    def test_manual_migrate_bumps_version_and_serves(self):
        est = ServingEstimator.windowed(
            _spec(),
            num_panes=3,
            pane_samples=64,
            retain_raw=True,
        )
        rng = np.random.default_rng(3)
        est.ingest_sparse(_integer_stream(rng, 128))
        before = est.query_keys(np.arange(8))
        assert est.config_version == 0
        est.migrate(spec_with(_spec(), num_buckets=512), trigger="manual")
        assert est.config_version == 1
        assert est.migration_count == 1
        assert est.sketcher.spec.num_buckets == 512
        after = est.query_keys(np.arange(8))
        assert after.shape == before.shape
        stats = est.stats()
        assert stats["config_version"] == 1
        assert stats["migrations"]["count"] == 1
        assert stats["migrations"]["last_trigger"] == "manual"

    def test_migrate_accepts_capacity_plan(self):
        est = ServingEstimator.windowed(
            _spec(), num_panes=3, pane_samples=64, retain_raw=True
        )
        rng = np.random.default_rng(4)
        est.ingest_sparse(_integer_stream(rng, 64))
        target = plan(DIM, 0.5, num_tables=3)
        est.migrate(target, trigger="grow")
        assert est.sketcher.spec.num_buckets == target.num_buckets
        assert est.sketcher.spec.storage == target.storage

    def test_migrate_requires_retention(self):
        est = ServingEstimator.windowed(_spec(), num_panes=3, pane_samples=64)
        with pytest.raises(ValueError, match="retain_raw"):
            est.migrate(spec_with(_spec(), num_buckets=512))

    def test_migrate_rejects_plain_sketcher(self):
        est = ServingEstimator.from_spec(_spec())
        with pytest.raises(TypeError, match="history-preserving"):
            est.migrate(spec_with(_spec(), num_buckets=512))

    def test_probe_reset_on_migration(self):
        est = self._stack(collision_ceiling=1e-12)  # always triggers
        rng = np.random.default_rng(5)
        est.ingest_sparse(_integer_stream(rng, 512))
        assert est.migration_count >= 1
        # The probe was reset at the swap: its reservoir refilled only
        # with post-migration traffic (reset zeroes it; the serving loop
        # has not run the ingest observer since — the probe's write-side
        # hook is not auto-wired in this stack).
        assert est.probe._noise_seen == 0

    def test_autoscaler_grows_until_budget_cap(self):
        cap = 3 * 512 * 8  # one doubling from the starting 128 buckets...
        est = self._stack(
            collision_ceiling=1e-12, max_budget_bytes=cap, cooldown=0
        )
        rng = np.random.default_rng(6)
        for _ in range(6):
            est.ingest_sparse(_integer_stream(rng, 512))
        assert est.autoscaler.plan.budget_bytes <= cap
        # Once capped, decisions keep logging as holds.
        actions = [d["action"] for d in est.autoscaler.decisions]
        assert "hold" in actions

    def test_autoscaler_respects_migration_budget(self):
        est = self._stack(
            collision_ceiling=1e-12, max_migrations=1, cooldown=0
        )
        rng = np.random.default_rng(7)
        for _ in range(6):
            est.ingest_sparse(_integer_stream(rng, 512))
        assert est.migration_count == 1
        suppressed = [
            d for d in est.autoscaler.decisions if "budget spent" in d["reason"]
        ]
        assert suppressed

    def test_escalate_decay_shrinks_window(self):
        est = self._stack(churn_ceiling=0.3, check_every=1024)
        rng = np.random.default_rng(8)
        est.ingest_sparse(_integer_stream(rng, 1024))
        # Force a churn reading past the ceiling via two probe samples
        # with disjoint top sets, then step the scaler directly.
        est.probe.sample(est.query_keys, top_keys=[1, 2, 3, 4])
        est.probe.sample(est.query_keys, top_keys=[5, 6, 7, 8])
        signals = est.autoscaler.observe()
        decision = replan(
            est.autoscaler.plan,
            ObservedSignals(topk_churn=1.0),
            churn_ceiling=0.3,
        )
        assert decision.action == "escalate_decay"
        before = est.sketcher.num_panes
        est.autoscaler._execute(decision)
        assert est.sketcher.num_panes == max(2, before // 2)
        assert signals.samples_seen == 1024

    def test_gauge_fns_rebind_to_new_ring(self):
        est = self._stack(collision_ceiling=1e-12)
        rng = np.random.default_rng(9)
        est.ingest_sparse(_integer_stream(rng, 512))
        assert est.migration_count >= 1
        # The ring gauges re-registered on the shared registry must read
        # the *new* ring's state, and the serving gauges must follow the
        # rebound sketcher reference.
        registry = est.registry
        span = registry.get("repro_pane_window_span").value
        assert span == est.sketcher.window_span
        seen = registry.get("repro_serving_write_samples_seen").value
        assert seen == est.sketcher.samples_seen
        version = registry.get("repro_serving_config_version").value
        assert version == est.config_version

    def test_autoscaler_errors_do_not_fail_ingest(self):
        est = self._stack()
        est.autoscaler.step = lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        rng = np.random.default_rng(10)
        est.ingest_sparse(_integer_stream(rng, 2048))  # crosses check_every
        assert est.autoscaler.last_error == "RuntimeError: boom"
        assert est.sketcher.samples_seen == 2048

    def test_decision_log_shape(self):
        est = self._stack()
        rng = np.random.default_rng(11)
        est.ingest_sparse(_integer_stream(rng, 512))
        assert est.autoscaler.decisions
        entry = est.autoscaler.decisions[-1]
        for field in (
            "samples_seen",
            "action",
            "reason",
            "executed",
            "config_version",
            "saturation",
        ):
            assert field in entry
        stats = est.autoscaler.stats()
        assert stats["plan"]["num_buckets"] >= 128
        assert isinstance(stats["decisions"], list)

    def test_stats_exposes_autoscaler(self):
        est = self._stack()
        assert "autoscaler" in est.stats()

    def test_autoscaler_constructor_validation(self):
        est = ServingEstimator.windowed(
            _spec(), num_panes=3, pane_samples=64, retain_raw=True
        )
        with pytest.raises(ValueError, match="check_every"):
            AutoScaler(est, check_every=0)
        with pytest.raises(ValueError, match="min_panes"):
            AutoScaler(est, min_panes=1)

    def test_metrics_registry_counts_migrations(self):
        est = self._stack(collision_ceiling=1e-12)
        rng = np.random.default_rng(12)
        est.ingest_sparse(_integer_stream(rng, 512))
        migrations = est.registry.get(
            "repro_serving_migrations_total", {"trigger": "grow"}
        )
        assert migrations is not None
        assert migrations.value == est.migration_count >= 1
        checks = est.registry.get("repro_autoscale_checks_total")
        assert checks is not None
        assert checks.value >= 1
