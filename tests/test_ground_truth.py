"""Tests for ground-truth utilities (repro.covariance.ground_truth)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.covariance.ground_truth import (
    correlation_matrix,
    flat_true_correlations,
    pair_correlations,
    signal_key_set,
    signal_threshold,
    top_true_pairs,
)
from repro.covariance.updates import triu_pair_values


class TestCorrelationMatrix:
    def test_matches_corrcoef(self, rng):
        data = rng.standard_normal((200, 8)) * np.arange(1, 9)
        np.testing.assert_allclose(
            correlation_matrix(data), np.corrcoef(data.T), atol=1e-10
        )

    def test_dead_features_zeroed(self, rng):
        data = rng.standard_normal((50, 4))
        data[:, 2] = 3.14
        corr = correlation_matrix(data)
        assert np.isfinite(corr).all()
        assert (corr[2] == 0).all()

    def test_sparse_input(self, rng):
        dense = (rng.random((100, 10)) < 0.3) * rng.standard_normal((100, 10))
        got = correlation_matrix(sp.csr_matrix(dense))
        np.testing.assert_allclose(got, correlation_matrix(dense), atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.ones(5))


class TestFlatTrueCorrelations:
    def test_alignment(self, rng):
        data = rng.standard_normal((100, 6))
        flat = flat_true_correlations(data)
        np.testing.assert_allclose(
            flat, triu_pair_values(np.corrcoef(data.T)), atol=1e-12
        )


class TestPairCorrelations:
    def test_dense_matches_matrix(self, rng):
        data = rng.standard_normal((300, 12)) + 2.0
        corr = correlation_matrix(data)
        i = np.array([0, 3, 5])
        j = np.array([7, 4, 11])
        got = pair_correlations(data, i, j)
        np.testing.assert_allclose(got, corr[i, j], atol=1e-10)

    def test_sparse_matches_dense(self, rng):
        dense = (rng.random((200, 15)) < 0.25) * np.abs(rng.standard_normal((200, 15)))
        csr = sp.csr_matrix(dense)
        i = np.array([0, 2, 9])
        j = np.array([5, 14, 13])
        np.testing.assert_allclose(
            pair_correlations(csr, i, j),
            pair_correlations(dense, i, j),
            atol=1e-10,
        )

    def test_zero_variance_pairs_zero(self, rng):
        data = rng.standard_normal((50, 3))
        data[:, 0] = 1.0
        got = pair_correlations(data, np.array([0]), np.array([1]))
        assert got[0] == 0.0

    def test_empty(self, rng):
        data = rng.standard_normal((10, 3))
        out = pair_correlations(data, np.empty(0, dtype=int), np.empty(0, dtype=int))
        assert out.size == 0

    def test_misaligned(self, rng):
        with pytest.raises(ValueError, match="align"):
            pair_correlations(np.ones((5, 3)), np.array([0]), np.array([1, 2]))


class TestTopTruePairs:
    def test_picks_largest(self):
        corr = np.eye(5)
        corr[0, 3] = corr[3, 0] = 0.9
        corr[1, 2] = corr[2, 1] = 0.7
        corr[0, 4] = corr[4, 0] = -0.95
        keys, vals = top_true_pairs(corr, 2)
        assert vals.tolist() == [0.9, 0.7]
        keys_abs, vals_abs = top_true_pairs(corr, 2, by_abs=True)
        assert vals_abs[0] == -0.95

    def test_k_larger_than_p(self):
        corr = np.eye(3)
        keys, vals = top_true_pairs(corr, 100)
        assert keys.size == 3


class TestSignalDefinitions:
    def test_threshold_is_quantile(self, rng):
        data = rng.standard_normal((500, 20))
        corr = correlation_matrix(data)
        u = signal_threshold(corr, 0.1)
        flat = triu_pair_values(corr)
        assert np.mean(flat >= u) == pytest.approx(0.1, abs=0.02)

    def test_threshold_validates_alpha(self):
        with pytest.raises(ValueError):
            signal_threshold(np.eye(3), 1.5)

    def test_signal_key_set_size(self, rng):
        data = rng.standard_normal((100, 20))
        corr = correlation_matrix(data)
        keys = signal_key_set(corr, 0.05)
        assert keys.size == round(0.05 * 190)

    def test_signal_keys_are_the_largest(self, rng):
        data = rng.standard_normal((100, 10))
        corr = correlation_matrix(data)
        keys = signal_key_set(corr, 0.1)
        flat = triu_pair_values(corr)
        cutoff = np.sort(flat)[-keys.size]
        assert (flat[keys] >= cutoff - 1e-12).all()
