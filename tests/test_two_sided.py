"""End-to-end tests for two-sided (negative-correlation) recovery.

The paper's model assumes positive signals (``mu_i = u > 0``); the library
additionally supports ``two_sided=True``, thresholding on ``|estimate|`` so
strongly *negative* correlations survive the sampling phase — a natural
extension flagged in DESIGN.md.
"""

import numpy as np
import pytest

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.schedule import ThresholdSchedule
from repro.covariance.ground_truth import flat_true_correlations
from repro.covariance.pipeline import CovarianceSketcher
from repro.evaluation.harness import rank_all_pairs
from repro.hashing.pairs import pair_to_index
from repro.sketch.count_sketch import CountSketch


@pytest.fixture(scope="module")
def anticorrelated_data():
    """Dataset with planted strong negative correlations."""
    rng = np.random.default_rng(55)
    d, n = 60, 3000
    data = rng.standard_normal((n, d))
    planted = []
    for a, b in [(3, 9), (20, 41), (50, 51)]:
        data[:, b] = -0.85 * data[:, a] + np.sqrt(1 - 0.85**2) * data[:, b]
        planted.append((a, b))
    return data, planted


def _run_ascs(data, *, two_sided: bool):
    n, d = data.shape
    p = d * (d - 1) // 2
    schedule = ThresholdSchedule(
        exploration_length=150, tau0=1e-4, theta=0.3, total_samples=n
    )
    est = ActiveSamplingCountSketch(
        CountSketch(5, p // 10, seed=5), n, schedule, two_sided=two_sided
    )
    sk = CovarianceSketcher(d, est, mode="correlation", batch_size=50)
    sk.fit_dense(data)
    return sk, est


class TestTwoSidedRecovery:
    def test_one_sided_loses_negative_signals(self, anticorrelated_data):
        data, planted = anticorrelated_data
        sk, _ = _run_ascs(data, two_sided=False)
        keys = pair_to_index(
            np.array([a for a, _ in planted]),
            np.array([b for _, b in planted]),
            data.shape[1],
        )
        estimates = sk.estimate_keys(keys)
        # One-sided sampling filters negative-estimate pairs after
        # exploration: their estimates freeze near the exploration level
        # instead of reaching the true -0.85.
        assert (estimates > -0.4).all()

    def test_two_sided_keeps_negative_signals(self, anticorrelated_data):
        data, planted = anticorrelated_data
        sk, est = _run_ascs(data, two_sided=True)
        d = data.shape[1]
        keys = pair_to_index(
            np.array([a for a, _ in planted]),
            np.array([b for _, b in planted]),
            d,
        )
        estimates = sk.estimate_keys(keys)
        truth = flat_true_correlations(data)[keys]
        np.testing.assert_allclose(estimates, truth, atol=0.25)
        assert (estimates < -0.5).all()

    def test_two_sided_ranking_by_magnitude(self, anticorrelated_data):
        data, planted = anticorrelated_data
        sk, _ = _run_ascs(data, two_sided=True)
        ranked, estimates = rank_all_pairs(sk)
        # Rank by |estimate|: the planted negative pairs are among the top.
        d = data.shape[1]
        order = np.argsort(-np.abs(estimates))
        top_keys = set(ranked[order[:10]].tolist())
        planted_keys = {
            int(pair_to_index(a, b, d)) for a, b in planted
        }
        assert planted_keys <= top_keys

    def test_two_sided_still_filters_noise(self, anticorrelated_data):
        data, _ = anticorrelated_data
        _, est = _run_ascs(data, two_sided=True)
        assert est.acceptance_rate < 0.8
