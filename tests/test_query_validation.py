"""Adversarial query parameters: snapshot layer, HTTP layer, pair codec.

Regression suite for the index-query bug sweep: negative ``k``/``limit``
used to fall through Python's negative-slice semantics (``top_pairs(-1)``
returned all-but-one of the index), NaN thresholds silently corrupted
``searchsorted`` comparisons, and ``/above`` with a low threshold and no
``limit`` serialized an unbounded body.  Every hostile input below must
now either raise (400 over HTTP) or come back explicitly bounded.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.hashing.pairs import (
    MAX_DIMENSION,
    index_to_pair,
    num_pairs,
    pair_to_index,
)
from repro.serving import QueryEngine, SketchSnapshot
from repro.serving.http import serve_in_background
from repro.sketch import CountSketch

DIM = 40
CAP = 16  # deliberately tiny max_response_pairs so truncation is easy to hit


@pytest.fixture(scope="module")
def snapshot():
    rng = np.random.default_rng(99)
    estimator = SketchEstimator(
        CountSketch(3, 512, seed=31), total_samples=64, track_top=0
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=16
    )
    sketcher.fit_dense(rng.normal(size=(64, DIM)))
    snap = SketchSnapshot.from_sketcher(sketcher, top_index=64)
    assert snap.index_size == 64  # enough rows to expose slicing bugs
    return snap


@pytest.fixture(scope="module")
def capped_server(snapshot):
    server, _thread = serve_in_background(
        QueryEngine(snapshot), max_response_pairs=CAP
    )
    yield server
    server.stop()


def _get(server, path: str) -> dict:
    with urllib.request.urlopen(f"{server.url}{path}") as response:
        return json.loads(response.read().decode("utf-8"))


def _status(server, path: str) -> int:
    try:
        urllib.request.urlopen(f"{server.url}{path}")
    except urllib.error.HTTPError as err:
        return err.code
    return 200


class TestSnapshotValidation:
    def test_top_pairs_negative_k_raises(self, snapshot):
        # The original bug: k=-1 sliced [:-1] and returned 63 rows.
        with pytest.raises(ValueError, match="k must be >= 0"):
            snapshot.top_pairs(-1)

    def test_top_pairs_k_zero_and_overshoot_clamped(self, snapshot):
        i, j, estimates = snapshot.top_pairs(0)
        assert i.size == j.size == estimates.size == 0
        i, j, estimates = snapshot.top_pairs(10**9)
        assert i.size == snapshot.index_size

    def test_top_neighbors_negative_k_raises(self, snapshot):
        with pytest.raises(ValueError, match="k must be >= 0"):
            snapshot.top_neighbors(0, -1)
        partners, estimates = snapshot.top_neighbors(0, 0)
        assert partners.size == estimates.size == 0

    def test_pairs_above_rejects_nan_threshold(self, snapshot):
        with pytest.raises(ValueError, match="NaN"):
            snapshot.pairs_above(float("nan"))

    def test_pairs_above_rejects_negative_limit(self, snapshot):
        with pytest.raises(ValueError, match="limit must be >= 0"):
            snapshot.pairs_above(0.1, limit=-1)
        i, j, estimates = snapshot.pairs_above(-1e9, limit=0)
        assert i.size == 0

    @pytest.mark.parametrize(
        "lo,hi", [(float("nan"), 1.0), (0.0, float("nan")), (1.0, 0.0)]
    )
    def test_pairs_in_range_rejects_bad_bounds(self, snapshot, lo, hi):
        with pytest.raises(ValueError):
            snapshot.pairs_in_range(lo, hi)

    def test_pairs_in_range_rejects_negative_limit(self, snapshot):
        with pytest.raises(ValueError, match="limit must be >= 0"):
            snapshot.pairs_in_range(0.0, 1.0, limit=-1)
        i, j, estimates = snapshot.pairs_in_range(-1e9, 1e9, limit=0)
        assert i.size == 0

    def test_engine_propagates_validation(self, snapshot):
        engine = QueryEngine(snapshot)
        with pytest.raises(ValueError):
            engine.top_pairs(-1)
        with pytest.raises(ValueError):
            engine.pairs_above(float("nan"))
        with pytest.raises(ValueError):
            engine.pairs_in_range(2.0, 1.0)


class TestHTTPAdversarial:
    """Hostile query strings over a real socket, cap = 16 rows."""

    def test_top_negative_k_is_400(self, capped_server):
        assert _status(capped_server, "/top?k=-1") == 400

    def test_top_k_zero_is_empty_200(self, capped_server):
        body = _get(capped_server, "/top?k=0")
        assert body["i"] == [] and body["truncated"] is False

    def test_top_huge_k_is_bounded_and_flagged(self, capped_server):
        body = _get(capped_server, "/top?k=999999999")
        assert len(body["i"]) == CAP
        assert len(body["estimates"]) == CAP
        assert body["truncated"] is True

    def test_neighbors_negative_k_is_400(self, capped_server):
        assert _status(capped_server, "/neighbors?i=0&k=-1") == 400

    def test_neighbors_huge_k_is_bounded(self, capped_server):
        body = _get(capped_server, "/neighbors?i=0&k=999999999")
        assert len(body["partners"]) <= CAP

    def test_above_nan_threshold_is_400(self, capped_server):
        assert _status(capped_server, "/above?threshold=nan") == 400

    def test_above_negative_limit_is_400(self, capped_server):
        assert _status(capped_server, "/above?threshold=0.1&limit=-1") == 400

    def test_above_limit_zero_is_empty(self, capped_server):
        body = _get(capped_server, "/above?threshold=-1e9&limit=0")
        assert body["i"] == []

    @pytest.mark.parametrize("threshold", ["-1e9", "-inf"])
    def test_above_everything_matches_but_body_stays_bounded(
        self, capped_server, threshold
    ):
        # Before the cap this serialized the entire index in one body.
        body = _get(capped_server, f"/above?threshold={threshold}")
        assert len(body["i"]) == CAP
        assert body["truncated"] is True

    def test_above_huge_limit_is_bounded(self, capped_server):
        body = _get(capped_server, "/above?threshold=-1e9&limit=999999999")
        assert len(body["i"]) == CAP
        assert body["truncated"] is True

    def test_above_small_limit_passes_through_untruncated(self, capped_server):
        body = _get(capped_server, "/above?threshold=-1e9&limit=3")
        assert len(body["i"]) == 3
        assert body["truncated"] is False

    def test_garbage_params_are_400_not_500(self, capped_server):
        assert _status(capped_server, "/top?k=banana") == 400
        assert _status(capped_server, "/above?threshold=") == 400


def _row_offset(i: int, d: int) -> int:
    """First flat key of row ``i`` (exact Python-int arithmetic)."""
    return i * (2 * d - i - 1) // 2


class TestPairCodecBoundary:
    """Round-trip the pair codec where float rounding would bite.

    Near ``MAX_DIMENSION`` the flat keys approach ~5e17, beyond float64's
    exact-integer range, so ``index_to_pair`` must land on the right row
    via its integer-correction loops.  Row boundaries (first/last key of a
    row) are exactly where an off-by-one in the quadratic inversion shows.
    """

    @pytest.mark.parametrize(
        "d", [MAX_DIMENSION, MAX_DIMENSION - 1, 999_999_937]
    )
    def test_round_trip_at_row_boundaries(self, d):
        rows = [0, 1, 2, d // 3, d // 2, d - 3, d - 2]
        raw = []
        for row in rows:
            base = _row_offset(row, d)
            raw.extend([base, base + 1, _row_offset(row + 1, d) - 1])
        keys = np.unique(np.asarray(raw, dtype=np.int64))
        keys = keys[(keys >= 0) & (keys < num_pairs(d))]
        i, j = index_to_pair(keys, d)
        assert np.all((0 <= i) & (i < j) & (j < d))
        np.testing.assert_array_equal(pair_to_index(i, j, d), keys)

    def test_round_trip_random_keys_at_max_dimension(self):
        d = MAX_DIMENSION
        rng = np.random.default_rng(7)
        keys = rng.integers(0, num_pairs(d), size=2000, dtype=np.int64)
        i, j = index_to_pair(keys, d)
        assert np.all((0 <= i) & (i < j) & (j < d))
        np.testing.assert_array_equal(pair_to_index(i, j, d), keys)

    def test_round_trip_random_pairs_at_max_dimension(self):
        d = MAX_DIMENSION
        rng = np.random.default_rng(11)
        i = rng.integers(0, d - 1, size=2000, dtype=np.int64)
        j = rng.integers(i + 1, d, dtype=np.int64)
        keys = pair_to_index(i, j, d)
        back_i, back_j = index_to_pair(keys, d)
        np.testing.assert_array_equal(back_i, i)
        np.testing.assert_array_equal(back_j, j)
