"""End-to-end integration tests: the paper's headline behaviours."""

import numpy as np
import pytest

from repro.covariance.ground_truth import flat_true_correlations
from repro.covariance.pipeline import CovarianceSketcher
from repro.core.api import build_estimator
from repro.data.synthetic import BlockCorrelationModel
from repro.data.url_like import URLLikeStream
from repro.evaluation.harness import run_method, run_sparse_method
from repro.evaluation.metrics import mean_top_true_value
from repro.hashing.pairs import num_pairs
from repro.theory.bounds import ProblemModel
from repro.theory.planner import plan_hyperparameters


class TestDenseHeadline:
    """Section 8.3 regime: moderate memory, ASCS >= CS on top correlations."""

    @pytest.fixture(scope="class")
    def runs(self):
        model = BlockCorrelationModel.from_alpha(
            120, alpha=0.01, rho_range=(0.6, 0.95), seed=31
        )
        data = model.sample(2500)
        truth = flat_true_correlations(data)
        out = {}
        for method in ("cs", "ascs"):
            out[method] = run_method(
                data, method, 1400, alpha=0.01, seed=7, batch_size=50
            )
        return truth, out

    def test_ascs_not_worse_on_top_50(self, runs):
        truth, out = runs
        cs = mean_top_true_value(out["cs"].ranked_keys, truth, 50)
        ascs = mean_top_true_value(out["ascs"].ranked_keys, truth, 50)
        assert ascs >= cs - 0.08  # parity or better under randomness

    def test_ascs_filters_most_updates(self, runs):
        _, out = runs
        assert out["ascs"].acceptance_rate < 0.6
        assert out["cs"].acceptance_rate == 1.0

    def test_both_find_real_signal(self, runs):
        truth, out = runs
        for run in out.values():
            assert mean_top_true_value(run.ranked_keys, truth, 20) > 0.3


class TestSparseHeadline:
    """Table 2 regime: huge key space, candidate-tracker retrieval,
    ASCS beats CS at the stressed memory point."""

    def test_ascs_beats_cs_at_tight_memory(self):
        stream = URLLikeStream(
            dim=4000, num_samples=3000, num_groups=20, group_size=5,
            group_prob=0.5, member_prob=0.95, background_nnz=25, seed=17,
        )
        stored = stream.materialize()
        from repro.covariance.ground_truth import pair_correlations
        from repro.hashing.pairs import index_to_pair

        scores = {}
        for method in ("cs", "ascs"):
            keys, _, _ = run_sparse_method(
                lambda: iter(stream), 4000, 3000, method, 6000,
                alpha=1e-4, u=0.5, top_k=150, track_top=2000, seed=3,
            )
            i, j = index_to_pair(keys, 4000)
            scores[method] = pair_correlations(stored, i, j).mean()
        assert scores["ascs"] >= scores["cs"]

    def test_trillion_scale_keyspace_smoke(self):
        """Keys near the top of a 10^14 pair space flow through the whole
        stack without overflow (the paper's DNA dimensionality)."""
        d = 17_000_000
        p = num_pairs(d)
        assert p > 10**14
        model = ProblemModel(
            p=p, alpha=1e-9, u=0.9, sigma=0.5, T=10_000, num_tables=5,
            num_buckets=100_000,
        )
        plan = plan_hyperparameters(model, delta=0.05, delta_star=0.2)
        est = build_estimator(
            "ascs", 10_000, 5, 100_000, plan=plan, seed=1, track_top=100
        )
        rng = np.random.default_rng(5)
        keys = rng.integers(p - 10**9, p, size=500)
        for _ in range(5):
            est.ingest(keys, rng.standard_normal(500), num_samples=100)
        top_keys, _ = est.top_k(10)
        assert (top_keys >= 0).all() and (top_keys < p).all()


class TestPlannerIntegration:
    def test_planned_ascs_keeps_signals_and_drops_noise(self):
        """Full loop: Algorithm 3 plan -> Algorithm 2 run -> signals retained
        within the planned miss budget."""
        model = BlockCorrelationModel.from_alpha(
            100, alpha=0.005, rho_range=(0.7, 0.95), seed=41
        )
        n = 3000
        data = model.sample(n)
        p = num_pairs(100)
        pm = ProblemModel(
            p=p, alpha=model.alpha, u=model.signal_strength, sigma=1.0,
            T=n, num_tables=5, num_buckets=p // 10,
        )
        plan = plan_hyperparameters(pm, delta=0.1, delta_star=0.3)
        est = build_estimator("ascs", n, 5, p // 10, plan=plan, seed=9)
        sk = CovarianceSketcher(100, est, mode="correlation", batch_size=50)
        sk.fit_dense(data)

        signals = model.signal_pairs()
        estimates = est.estimate(signals)
        final_tau = plan.threshold_at(n, n)
        retained = float(np.mean(estimates >= final_tau))
        assert retained >= 1.0 - plan.delta_star - 0.15

    def test_mergeable_sketches_across_shards(self):
        """Distributed aggregation: two half-stream sketches merged equal the
        full-stream sketch (linear-sketch property end to end)."""
        from repro.sketch.count_sketch import CountSketch
        from repro.core.estimator import SketchEstimator

        model = BlockCorrelationModel.from_alpha(40, alpha=0.02, seed=43)
        data = model.sample(400)

        # covariance mode: no per-shard std normalisation, so the linear
        # merge is exactly the full-stream sketch.
        full_est = SketchEstimator(CountSketch(3, 1024, seed=5), 400)
        CovarianceSketcher(40, full_est, mode="covariance", batch_size=40).fit_dense(data)

        half_a = SketchEstimator(CountSketch(3, 1024, seed=5), 400)
        half_b = SketchEstimator(CountSketch(3, 1024, seed=5), 400)
        CovarianceSketcher(40, half_a, mode="covariance", batch_size=40).fit_dense(data[:200])
        CovarianceSketcher(40, half_b, mode="covariance", batch_size=40).fit_dense(data[200:])
        half_a.sketch.merge(half_b.sketch)

        keys = np.arange(num_pairs(40))
        np.testing.assert_allclose(
            half_a.estimate(keys), full_est.estimate(keys), atol=1e-9
        )
