"""Crash injection across the durable migration write sequence.

:meth:`DurableSketcher.migrate` promises that a crash at any point leaves
recovery on **exactly one side** — the old configuration (crash before
the checkpoint marker commits) or the new one (crash after) — never a
hybrid.  Every ``write_npz`` call in the sequence is a seeded kill
point here: the k-th write raises ``SimulatedCrash``, the directory is
reopened cold, and the recovered state must be bit-identical to one of
the two reference runs.
"""

from __future__ import annotations

import contextlib
import shutil

import numpy as np
import pytest

import repro.distributed.shard as shard_mod
import repro.durability.durable as durable_mod
import repro.streaming.windows as windows_mod
from repro.distributed.shard import ShardSpec, spec_with
from repro.durability.durable import DurableSketcher

DIM = 120


def _spec(**overrides) -> ShardSpec:
    base = dict(
        dim=DIM,
        total_samples=50_000,
        batch_size=8,
        num_tables=3,
        num_buckets=64,
        seed=17,
        mode="covariance",
        track_top=32,
    )
    base.update(overrides)
    return ShardSpec(**base)


def _stream(rng, n, nnz=5):
    out = []
    for _ in range(n):
        idx = np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64)
        val = rng.integers(-3, 4, size=nnz).astype(np.float64)
        out.append((idx, val))
    return out


class SimulatedCrash(RuntimeError):
    """Raised by the kill switch in place of the k-th durable write."""


class _KillSwitch:
    """Counting ``write_npz`` stand-in; raises instead of the k-th write.

    The crash fires *before* the real write — ``write_npz`` is atomic
    (tmp + rename), so "crashed during write #k" and "crashed just before
    write #k" are indistinguishable to recovery.
    """

    def __init__(self, real, kill_at=None):
        self.real = real
        self.kill_at = kill_at
        self.count = 0

    def __call__(self, path, *args, **kwargs):
        self.count += 1
        if self.kill_at is not None and self.count == self.kill_at:
            raise SimulatedCrash(f"write #{self.count}: {path}")
        return self.real(path, *args, **kwargs)


_PATCH_MODULES = (durable_mod, shard_mod, windows_mod)


@contextlib.contextmanager
def _patched(kill_at=None):
    """Swap ``write_npz`` at every import site the migration touches."""
    switch = _KillSwitch(durable_mod.write_npz, kill_at=kill_at)
    saved = [mod.write_npz for mod in _PATCH_MODULES]
    for mod in _PATCH_MODULES:
        mod.write_npz = switch
    try:
        yield switch
    finally:
        for mod, real in zip(_PATCH_MODULES, saved):
            mod.write_npz = real


def _build_base(tmp_path):
    """A durable windowed directory with a checkpoint plus a WAL tail."""
    base = tmp_path / "base"
    rng = np.random.default_rng(21)
    with DurableSketcher(
        base,
        _spec(),
        num_panes=3,
        pane_samples=64,
        retain_raw=True,
        checkpoint_every=0,
    ) as d:
        for _ in range(4):
            d.fit_sparse(_stream(rng, 64))
        d.checkpoint()
        # Tail records past the checkpoint: migration must carry them too.
        for _ in range(2):
            d.fit_sparse(_stream(rng, 16))
    return base


def _copy(base, dest):
    shutil.copytree(base, dest)
    return dest


def _state(d):
    return (
        d.spec,
        int(d.samples_seen),
        d.window().estimator.sketch.table.copy(),
    )


class TestMigrationCrashRecovery:
    WIDE_BUCKETS = 128

    def _references(self, base, tmp_path):
        wide = spec_with(_spec(), num_buckets=self.WIDE_BUCKETS)
        with DurableSketcher.recover(_copy(base, tmp_path / "ref-old")) as d:
            old = _state(d)
        with DurableSketcher.recover(_copy(base, tmp_path / "ref-new")) as d:
            d.migrate(wide)
            new = _state(d)
        return wide, old, new

    def test_crash_at_every_write_lands_on_one_side(self, tmp_path):
        base = _build_base(tmp_path)
        wide, (old_spec, old_seen, old_table), (
            new_spec,
            new_seen,
            new_table,
        ) = self._references(base, tmp_path)
        assert old_seen == new_seen  # migration loses no history

        # Count the writes in one clean migration: panes + ring manifest,
        # then the checkpoint marker, then the recipe.
        with DurableSketcher.recover(_copy(base, tmp_path / "count")) as d:
            with _patched() as switch:
                d.migrate(wide)
            total_writes = switch.count
        assert total_writes >= 4

        for k in range(1, total_writes + 1):
            crashed = _copy(base, tmp_path / f"kill-{k:02d}")
            d = DurableSketcher.recover(crashed)
            with _patched(kill_at=k):
                with pytest.raises(SimulatedCrash):
                    d.migrate(wide)
            d.close()

            with DurableSketcher.recover(crashed) as recovered:
                spec, seen, table = _state(recovered)
                assert seen == old_seen
                if k < total_writes:
                    # The recipe write is last; the marker write right
                    # before it is the commit point — killing *at* it
                    # means the marker never landed, so every kill before
                    # the final write recovers the old side.
                    assert spec == old_spec, f"kill point {k}"
                    np.testing.assert_array_equal(table, old_table)
                else:
                    # Marker committed, recipe stale: recovery adopts the
                    # checkpoint's configuration and self-heals.
                    assert spec == new_spec, f"kill point {k}"
                    np.testing.assert_array_equal(table, new_table)

    def test_healed_recipe_is_durable(self, tmp_path):
        """After a crash between marker and recipe, the *second* recovery
        must not depend on the checkpoint still being newest."""
        base = _build_base(tmp_path)
        wide, _, (new_spec, _, new_table) = self._references(base, tmp_path)
        crashed = _copy(base, tmp_path / "heal")

        with DurableSketcher.recover(crashed) as d:
            with _patched() as switch:
                d.migrate(wide)
            total_writes = switch.count
        shutil.rmtree(crashed)

        crashed = _copy(base, tmp_path / "heal-2")
        d = DurableSketcher.recover(crashed)
        with _patched(kill_at=total_writes):  # kill the recipe rewrite
            with pytest.raises(SimulatedCrash):
                d.migrate(wide)
        d.close()

        with DurableSketcher.recover(crashed) as first:
            assert first.spec == new_spec
        # The heal rewrote the recipe on disk: reopening again (after the
        # healed instance checkpointed nothing new) still lands new-side.
        with DurableSketcher.recover(crashed) as second:
            assert second.spec == new_spec
            np.testing.assert_array_equal(
                second.window().estimator.sketch.table, new_table
            )

    def test_old_side_survivor_can_migrate_again(self, tmp_path):
        """An orphaned new-ring directory from a failed attempt is inert:
        the recovered old-side sketcher retries the migration cleanly."""
        base = _build_base(tmp_path)
        wide, _, (new_spec, new_seen, new_table) = self._references(
            base, tmp_path
        )
        crashed = _copy(base, tmp_path / "retry")
        d = DurableSketcher.recover(crashed)
        with _patched(kill_at=1):  # dies on the first pane write
            with pytest.raises(SimulatedCrash):
                d.migrate(wide)
        d.close()

        with DurableSketcher.recover(crashed) as recovered:
            recovered.migrate(wide)
            assert recovered.spec == new_spec
            assert recovered.samples_seen == new_seen
            np.testing.assert_array_equal(
                recovered.window().estimator.sketch.table, new_table
            )

    def test_post_migration_ingest_replays_into_new_config(self, tmp_path):
        """WAL continuity: records ingested after a (crash-healed)
        migration replay into the new configuration on the next boot."""
        base = _build_base(tmp_path)
        wide, _, _ = self._references(base, tmp_path)
        tail = _stream(np.random.default_rng(99), 32)

        reference = _copy(base, tmp_path / "cont-ref")
        with DurableSketcher.recover(reference) as d:
            d.migrate(wide)
            d.fit_sparse(list(tail))
            want_seen = d.samples_seen
            want = d.window().estimator.sketch.table.copy()

        crashed = _copy(base, tmp_path / "cont-crash")
        d = DurableSketcher.recover(crashed)
        with _patched() as switch:
            d.migrate(wide)
        d.close()
        # Redo with a recipe-write crash this time.
        shutil.rmtree(crashed)
        crashed = _copy(base, tmp_path / "cont-crash2")
        d = DurableSketcher.recover(crashed)
        with _patched(kill_at=switch.count):
            with pytest.raises(SimulatedCrash):
                d.migrate(wide)
        d.close()

        with DurableSketcher.recover(crashed) as healed:
            healed.fit_sparse(list(tail))
        with DurableSketcher.recover(crashed) as final:
            assert final.samples_seen == want_seen
            np.testing.assert_array_equal(
                final.window().estimator.sketch.table, want
            )
