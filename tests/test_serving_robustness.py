"""Degradation-aware serving: breaker, backoff, admission, stale reads.

The serving layer's failure contract, exercised end to end with the
deterministic fault injectors:

* the **client** retries idempotent requests through dropped connections
  and 503s with bounded backoff, and never retries writes;
* the **server** sheds load (admission control -> 503 + ``Retry-After``)
  and maps an open ingest circuit breaker the same way;
* the **estimator** keeps serving the last good snapshot through failing
  or hung refreshes (stale-but-available), reporting staleness and the
  failure through ``health()`` and ``/health``.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.estimator import SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.durability.breaker import CircuitBreaker, CircuitOpenError
from repro.durability.faults import Flaky
from repro.serving import ServingEstimator
from repro.serving.http import ServingClient, serve_in_background
from repro.sketch.count_sketch import CountSketch

pytestmark = pytest.mark.faults

DIM = 40


@pytest.fixture
def rng():
    return np.random.default_rng(4242)


def _make_samples(n, rng, nnz=5):
    return [
        (
            np.sort(rng.choice(DIM, size=nnz, replace=False)).astype(np.int64),
            rng.standard_normal(nnz),
        )
        for _ in range(n)
    ]


def _make_serving(rng, **kwargs) -> ServingEstimator:
    estimator = SketchEstimator(
        CountSketch(3, 512, seed=31), total_samples=1000, track_top=128
    )
    sketcher = CovarianceSketcher(
        DIM, estimator, mode="covariance", centering="none", batch_size=16
    )
    serving = ServingEstimator(sketcher, top_index=64, cache_size=256, **kwargs)
    serving.ingest_sparse(_make_samples(64, rng))
    serving.refresh()
    return serving


def _no_sleep(_seconds):
    pass


# ----------------------------------------------------------------------
# Circuit breaker unit behaviour
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _clocked(self, **kwargs):
        clock = [0.0]
        breaker = CircuitBreaker(time_fn=lambda: clock[0], **kwargs)
        return breaker, clock

    def test_trips_after_threshold_and_recovers(self):
        breaker, clock = self._clocked(failure_threshold=3, reset_after=10.0)
        for _ in range(3):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after == pytest.approx(10.0)
        clock[0] = 11.0  # cooldown elapsed -> half-open probe allowed
        assert breaker.state == "half-open"
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker, clock = self._clocked(failure_threshold=1, reset_after=5.0)
        breaker.before_call()
        breaker.record_failure()
        clock[0] = 6.0
        breaker.before_call()  # the probe
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_success_resets_failure_streak(self):
        breaker, _ = self._clocked(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive* failures

    def test_call_wrapper_counts(self):
        breaker, _ = self._clocked(failure_threshold=2)
        assert breaker.call(lambda: 7) == 7
        with pytest.raises(RuntimeError):
            breaker.call(self._boom)
        stats = breaker.stats()
        assert stats["consecutive_failures"] == 1
        assert stats["state"] == "closed"

    @staticmethod
    def _boom():
        raise RuntimeError("injected")


# ----------------------------------------------------------------------
# Estimator-level degradation (no HTTP)
# ----------------------------------------------------------------------
class TestStaleButAvailable:
    def test_failing_auto_refresh_marks_degraded_keeps_serving(
        self, rng, monkeypatch
    ):
        serving = _make_serving(rng)
        serving.refresh_every = 8
        served_before = serving.served_snapshot_id
        probe = serving.query_pair(0, 3)

        def broken(*args, **kwargs):
            raise RuntimeError("injected: snapshot build failed")

        monkeypatch.setattr(serving, "_refresh_locked", broken)
        # The ingest crossing the threshold must SUCCEED despite the
        # broken refresh behind it.
        serving.ingest_sparse(_make_samples(16, rng))
        assert serving.degraded
        assert serving.refresh_failures == 1
        assert "snapshot build failed" in serving.last_refresh_error
        assert serving.served_snapshot_id == served_before  # stale, alive
        assert serving.query_pair(0, 3) == probe
        health = serving.health()
        assert health["status"] == "degraded"
        assert health["stale_samples"] >= 16

    def test_successful_refresh_clears_degradation(self, rng, monkeypatch):
        serving = _make_serving(rng)
        serving.refresh_every = 8
        broken = {"on": True}
        real = serving._refresh_locked

        def flaky_refresh(*args, **kwargs):
            if broken["on"]:
                raise RuntimeError("injected")
            return real(*args, **kwargs)

        monkeypatch.setattr(serving, "_refresh_locked", flaky_refresh)
        serving.ingest_sparse(_make_samples(16, rng))
        assert serving.degraded
        broken["on"] = False
        serving.ingest_sparse(_make_samples(16, rng))
        assert not serving.degraded
        assert serving.last_refresh_error is None
        assert serving.health()["status"] == "ok"

    def test_explicit_refresh_failure_propagates_but_records(
        self, rng, monkeypatch
    ):
        serving = _make_serving(rng)

        def broken(*args, **kwargs):
            raise RuntimeError("injected: build failed")

        monkeypatch.setattr(serving, "_refresh_locked", broken)
        with pytest.raises(RuntimeError, match="injected"):
            serving.refresh()
        assert serving.degraded
        assert serving.refresh_failures == 1

    def test_hung_refresh_does_not_stall_ingest(self, rng):
        serving = _make_serving(rng)
        serving.refresh_every = 8
        hung = threading.Event()
        release = threading.Event()

        def hanging_refresh():
            with serving._refresh_lock:
                hung.set()
                assert release.wait(timeout=10.0)

        hanger = threading.Thread(target=hanging_refresh, daemon=True)
        hanger.start()
        assert hung.wait(timeout=5.0)
        # A refresh is "in flight" (hung): the threshold-crossing ingest
        # must return promptly instead of queueing on the refresh lock.
        done = threading.Event()

        def ingest():
            serving.ingest_sparse(_make_samples(16, rng))
            done.set()

        worker = threading.Thread(target=ingest, daemon=True)
        worker.start()
        assert done.wait(timeout=5.0), "ingest stalled behind a hung refresh"
        release.set()
        hanger.join(timeout=5.0)

    def test_breaker_opens_on_repeated_ingest_failures(self, rng):
        clock = [0.0]
        serving = _make_serving(
            rng,
            breaker=CircuitBreaker(
                failure_threshold=2, reset_after=30.0, time_fn=lambda: clock[0]
            ),
        )
        bad = [(np.asarray([0, 99999]), np.asarray([1.0, 2.0]))]
        for _ in range(2):
            with pytest.raises((ValueError, IndexError)):
                serving.ingest_sparse(bad)
        assert serving.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            serving.ingest_sparse(_make_samples(4, rng))
        assert serving.health()["status"] == "degraded"
        assert serving.stats()["breaker"]["rejections"] == 1
        # Reads keep working while ingest is shed.
        serving.query_pair(0, 3)
        clock[0] = 31.0  # cooldown -> half-open; a good batch closes it
        serving.ingest_sparse(_make_samples(4, rng))
        assert serving.breaker.state == "closed"
        assert serving.health()["status"] == "ok"


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class TestClientRetries:
    @pytest.fixture
    def server(self, rng):
        serving = _make_serving(rng)
        server, _thread = serve_in_background(serving)
        yield serving, server
        server.stop(timeout=5.0)

    def test_idempotent_get_retries_through_dropped_connections(
        self, rng, server
    ):
        _, srv = server
        flaky = Flaky(urllib.request.urlopen, failures=2)
        client = ServingClient(
            srv.url, retries=2, opener=flaky, sleep_fn=_no_sleep, seed=0
        )
        assert client.health()["status"] == "ok"
        assert flaky.faults == 2
        assert client.retried_requests == 2

    def test_retries_exhausted_raises_the_underlying_error(self, rng, server):
        _, srv = server
        flaky = Flaky(urllib.request.urlopen, failures=10)
        client = ServingClient(
            srv.url, retries=2, opener=flaky, sleep_fn=_no_sleep, seed=0
        )
        with pytest.raises(ConnectionResetError):
            client.health()
        assert flaky.calls == 3  # 1 try + 2 retries, then give up

    def test_ingest_is_never_retried(self, rng, server):
        _, srv = server
        flaky = Flaky(urllib.request.urlopen, failures=1)
        client = ServingClient(
            srv.url, retries=5, opener=flaky, sleep_fn=_no_sleep, seed=0
        )
        with pytest.raises(ConnectionResetError):
            client.ingest(_make_samples(2, rng))
        assert flaky.calls == 1  # one attempt, no blind replay of a write
        assert client.retried_requests == 0

    def test_post_query_is_idempotent_and_retried(self, rng, server):
        _, srv = server
        flaky = Flaky(urllib.request.urlopen, failures=1)
        client = ServingClient(
            srv.url, retries=2, opener=flaky, sleep_fn=_no_sleep, seed=0
        )
        estimates = client.query_pairs([0, 1], [3, 4])
        assert estimates.shape == (2,)
        assert flaky.faults == 1

    def test_backoff_honours_retry_after_within_cap(self, rng):
        sleeps = []
        client = ServingClient(
            "http://127.0.0.1:9", retries=0,
            backoff=0.1, backoff_max=2.0,
            sleep_fn=sleeps.append, seed=0,
        )
        assert client._backoff_delay(0, 100.0) == 2.0  # capped
        assert client._backoff_delay(0, 1.5) == 1.5  # honoured
        jittered = client._backoff_delay(3, None)
        assert 0.4 <= jittered <= 0.8  # 0.1 * 2**3, jittered in [1/2, 1]

    def test_503_is_retried_with_retry_after(self, rng, server):
        serving, srv = server
        # Trip the breaker so reads still work but ingest 503s.
        for _ in range(serving.breaker.failure_threshold):
            serving.breaker.record_failure()
        sleeps = []
        client = ServingClient(
            srv.url, retries=1, sleep_fn=sleeps.append, seed=0
        )
        # /stats is idempotent; it is NOT gated by the breaker, so it
        # answers fine — the breaker only sheds ingest.
        assert client.stats()["breaker"]["state"] == "open"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            client.ingest(_make_samples(2, rng))  # write: no retry
        assert excinfo.value.code == 503
        assert excinfo.value.headers.get("Retry-After") is not None


class TestServerDegradation:
    def test_open_breaker_maps_to_503_with_retry_after(self, rng):
        clock = [0.0]
        serving = _make_serving(
            rng,
            breaker=CircuitBreaker(
                failure_threshold=1, reset_after=30.0, time_fn=lambda: clock[0]
            ),
        )
        server, _thread = serve_in_background(serving)
        try:
            client = ServingClient(server.url, retries=0)
            with pytest.raises((ValueError, IndexError)):
                serving.ingest_sparse(
                    [(np.asarray([0, 99999]), np.asarray([1.0, 2.0]))]
                )
            assert serving.breaker.state == "open"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.ingest(_make_samples(2, rng))
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            health = client.health()
            assert health["status"] == "degraded"
            assert health["breaker"] == "open"
        finally:
            server.stop(timeout=5.0)

    def test_admission_control_sheds_excess_load(self, rng):
        serving = _make_serving(rng)
        server, _thread = serve_in_background(
            serving, max_inflight=1, retry_after=3.0
        )
        try:
            # Saturate the only slot from the outside, then probe.
            assert server._admit()
            client = ServingClient(server.url, retries=0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.stats()
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "3"
            # /health bypasses admission: probes answer under overload,
            # and report the shed requests.
            health = client.health()
            assert health["status"] == "ok"
            assert health["rejected_requests"] == 1
            server._release()
            assert client.stats()["swap_count"] >= 1  # slot free again
        finally:
            server.stop(timeout=5.0)

    def test_degraded_health_over_http(self, rng, monkeypatch):
        serving = _make_serving(rng)
        server, _thread = serve_in_background(serving)
        try:
            client = ServingClient(server.url, retries=0)

            def broken(*args, **kwargs):
                raise RuntimeError("injected: hung table scan")

            monkeypatch.setattr(serving, "_refresh_locked", broken)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.refresh()  # explicit refresh: the caller hears it
            assert excinfo.value.code == 500
            health = client.health()
            assert health["status"] == "degraded"
            assert "hung table scan" in health["last_refresh_error"]
            assert health["refresh_failures"] == 1
            # Stale reads still answer.
            assert client.pair(0, 3) == serving.query_pair(0, 3)
        finally:
            server.stop(timeout=5.0)

    def test_stop_is_bounded_and_idempotent_shutdown_still_works(self, rng):
        serving = _make_serving(rng)
        server, thread = serve_in_background(serving)
        server.stop(timeout=5.0)
        assert not thread.is_alive()
