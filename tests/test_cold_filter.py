"""Tests for the Cold Filter baseline (repro.sketch.cold_filter)."""

import numpy as np
import pytest

from repro.sketch.cold_filter import ColdFilterSketch


class TestConstruction:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ColdFilterSketch(3, 100, threshold=0.0)

    def test_memory_accounts_gate_at_quarter_width(self):
        cf = ColdFilterSketch(
            3, 100, filter_buckets=100, filter_tables=4, threshold=1.0
        )
        assert cf.memory_floats == 300 + 100  # 400 gate counters / 4


class TestGating:
    def test_cold_keys_stay_in_gate(self):
        cf = ColdFilterSketch(5, 512, threshold=10.0, seed=1)
        cf.insert(np.array([3]), np.array([2.0]))
        # Main sketch untouched: everything below threshold.
        assert cf.sketch.l2_norm() == 0.0
        # Query falls back to the gate mass.
        assert cf.query_single(3) == pytest.approx(2.0)

    def test_hot_key_graduates(self):
        cf = ColdFilterSketch(5, 512, threshold=5.0, seed=2)
        for _ in range(10):
            cf.insert(np.array([3]), np.array([2.0]))
        # 20 total mass: gate holds 5, main sketch ~15.
        assert cf.sketch.l2_norm() > 0.0
        assert cf.query_single(3) == pytest.approx(20.0, rel=0.05)

    def test_exact_crossing_accounting(self):
        cf = ColdFilterSketch(5, 512, threshold=5.0, seed=3)
        cf.insert(np.array([4]), np.array([3.0]))  # below
        cf.insert(np.array([4]), np.array([4.0]))  # crosses: overflow 2
        assert cf.query_single(4) == pytest.approx(7.0, rel=0.05)

    def test_negative_values_graduate_by_magnitude(self):
        cf = ColdFilterSketch(5, 512, threshold=5.0, seed=4)
        for _ in range(10):
            cf.insert(np.array([6]), np.array([-2.0]))
        est = cf.query_single(6)
        assert est == pytest.approx(-20.0, rel=0.1)


class TestNoiseSuppression:
    def test_one_shot_noise_never_reaches_main_sketch(self):
        rng = np.random.default_rng(5)
        cf = ColdFilterSketch(5, 256, threshold=3.0, seed=6)
        keys = rng.integers(0, 10**8, size=5000)
        vals = rng.uniform(-1, 1, size=5000)
        cf.insert(keys, vals)
        # Every |value| < 3 and keys are unique-ish: main sketch stays clean
        # apart from rare gate collisions pushing keys over the cap.
        assert cf.sketch.l2_norm() < np.abs(vals).sum() * 0.05

    def test_heavy_key_recoverable_under_noise(self):
        rng = np.random.default_rng(7)
        cf = ColdFilterSketch(5, 1024, threshold=2.0, seed=8)
        for _ in range(20):
            noise_keys = rng.integers(100, 10**8, size=500)
            cf.insert(noise_keys, rng.uniform(-0.5, 0.5, size=500))
            cf.insert(np.array([42]), np.array([5.0]))
        est = cf.query_single(42)
        assert est == pytest.approx(100.0, rel=0.15)


class TestHousekeeping:
    def test_reset(self):
        cf = ColdFilterSketch(3, 64, threshold=1.0, seed=9)
        cf.insert(np.array([1]), np.array([5.0]))
        cf.reset()
        assert cf.query_single(1) == 0.0

    def test_empty_insert(self):
        cf = ColdFilterSketch(3, 64, threshold=1.0)
        cf.insert(np.empty(0, dtype=np.int64), np.empty(0))
        assert cf.query(np.empty(0, dtype=np.int64)).size == 0
