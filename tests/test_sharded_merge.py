"""Merge-law tests for sharded ingestion (repro.distributed + sketch merges).

Property-based (seeded randomized) laws:

* CS/CMS counter merge — for random streams split into 1..8 shards, the
  merged sketch answers queries **bit-for-bit** like the unsharded sketch.
  Values are integer-valued floats so every partial sum is exactly
  representable: float addition is then associative over the regrouping a
  merge performs, turning "equal up to summation order" into exact
  equality.  A float-valued variant checks the regrouping error stays at
  the ulp level.
* Top-k tracker merge — union + one re-query against the merged sketch.
* Moments merge — exact accumulator sums (sparse) / Chan merge (dense).
* ASCS end-to-end — merged top-k retrieval F1 stays within a stated
  tolerance of the unsharded run (the selection of accepted updates is
  shard-local, so this law is approximate by design; see
  repro/distributed/reduce.py).

Plus the satellite negative tests: every sketch class raises a clear
``ValueError`` when merged across different seeds/families/shapes.
"""

import numpy as np
import pytest

from repro.core.schedule import ThresholdSchedule
from repro.covariance.running import RunningMoments, SparseMoments
from repro.distributed import fit_sparse_sharded, merge_shard_results, sketch_shard
from repro.distributed.shard import ShardSpec
from repro.sketch.augmented import AugmentedSketch
from repro.sketch.cold_filter import ColdFilterSketch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.topk import TopKTracker


def _integer_stream(rng, n, key_space=10**9, lo=-50, hi=50):
    """Random keys with integer-valued float64 values (exact summation)."""
    keys = rng.integers(0, key_space, size=n).astype(np.int64)
    values = rng.integers(lo, hi, size=n).astype(np.float64)
    return keys, values


def _split(arrays, num_shards, rng):
    """Split parallel arrays into ``num_shards`` contiguous random slices."""
    n = arrays[0].size
    cuts = (
        np.sort(rng.integers(0, n + 1, size=num_shards - 1)) if num_shards > 1 else []
    )
    bounds = [0, *map(int, cuts), n]
    return [
        tuple(a[bounds[i] : bounds[i + 1]] for a in arrays)
        for i in range(num_shards)
    ]


class TestCountSketchMergeLaw:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 8])
    def test_merged_queries_bit_identical(self, num_shards):
        rng = np.random.default_rng(100 + num_shards)
        keys, values = _integer_stream(rng, 4000)
        reference = CountSketch(5, 512, seed=11)
        reference.insert(keys, values)

        merged = None
        for shard_keys, shard_values in _split((keys, values), num_shards, rng):
            worker = CountSketch(5, 512, seed=11)
            worker.insert(shard_keys, shard_values)
            merged = worker if merged is None else merged.merge(worker)

        probe = rng.integers(0, 10**9, size=1000).astype(np.int64)
        np.testing.assert_array_equal(merged.table, reference.table)
        np.testing.assert_array_equal(merged.query(probe), reference.query(probe))
        np.testing.assert_array_equal(merged.query(keys), reference.query(keys))

    @pytest.mark.parametrize("trial", range(5))
    def test_merged_queries_bit_identical_random_trials(self, trial):
        rng = np.random.default_rng(9000 + trial)
        num_shards = int(rng.integers(1, 9))
        keys, values = _integer_stream(rng, int(rng.integers(100, 3000)))
        reference = CountSketch(3, 256, seed=trial)
        reference.insert(keys, values)
        merged = None
        for shard_keys, shard_values in _split((keys, values), num_shards, rng):
            worker = CountSketch(3, 256, seed=trial)
            worker.insert(shard_keys, shard_values)
            merged = worker if merged is None else merged.merge(worker)
        np.testing.assert_array_equal(merged.query(keys), reference.query(keys))

    def test_float_values_merge_at_ulp_level(self, rng):
        keys = rng.integers(0, 10**9, size=4000).astype(np.int64)
        values = rng.standard_normal(4000)
        reference = CountSketch(5, 512, seed=11)
        reference.insert(keys, values)
        merged = None
        for shard_keys, shard_values in _split((keys, values), 4, rng):
            worker = CountSketch(5, 512, seed=11)
            worker.insert(shard_keys, shard_values)
            merged = worker if merged is None else merged.merge(worker)
        np.testing.assert_allclose(
            merged.table, reference.table, rtol=1e-12, atol=1e-12
        )


class TestCountMinMergeLaw:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("cap", [None, 40.0])
    def test_merged_queries_bit_identical(self, num_shards, cap):
        rng = np.random.default_rng(200 + num_shards)
        keys = rng.integers(0, 10**6, size=3000).astype(np.int64)
        values = rng.integers(0, 20, size=3000).astype(np.float64)
        reference = CountMinSketch(3, 256, seed=7, cap=cap)
        reference.insert(keys, values)

        merged = None
        for shard_keys, shard_values in _split((keys, values), num_shards, rng):
            worker = CountMinSketch(3, 256, seed=7, cap=cap)
            worker.insert(shard_keys, shard_values)
            merged = worker if merged is None else merged.merge(worker)

        probe = rng.integers(0, 10**6, size=500).astype(np.int64)
        np.testing.assert_array_equal(merged.table, reference.table)
        np.testing.assert_array_equal(merged.query(probe), reference.query(probe))


class TestTrackerMergeLaw:
    def test_union_requery_against_merged_sketch(self, rng):
        sketch = CountSketch(5, 4096, seed=3)
        keys = np.arange(600, dtype=np.int64)
        sketch.insert(keys, np.linspace(1.0, 60.0, keys.size))

        left, right = TopKTracker(50), TopKTracker(50)
        left.offer(keys[:400], rng.standard_normal(400))  # stale shard estimates
        right.offer(keys[250:], rng.standard_normal(350))
        # The law operates on the *current* pools (already pruned under
        # their stale shard-local estimates).
        union = np.unique(
            np.concatenate([left.candidates(), right.candidates()])
        )
        left.merge(right, sketch=sketch)

        merged_keys, merged_ests = left.top_k(50)
        # The law: pool = union of candidates ranked by the *merged* sketch.
        expect = TopKTracker(50)
        expect.offer(union, sketch.query(union))
        expect_keys, expect_ests = expect.top_k(50)
        np.testing.assert_array_equal(np.sort(merged_keys), np.sort(expect_keys))
        np.testing.assert_allclose(np.sort(merged_ests), np.sort(expect_ests))

    def test_merge_without_sketch_keeps_other_latest(self):
        left, right = TopKTracker(10), TopKTracker(10)
        left.offer(np.array([1, 2]), np.array([5.0, 1.0]))
        right.offer(np.array([2, 3]), np.array([9.0, 2.0]))
        left.merge(right)
        keys, ests = left.top_k(10)
        assert dict(zip(keys.tolist(), ests.tolist())) == {1: 5.0, 2: 9.0, 3: 2.0}

    def test_sidedness_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sidedness"):
            TopKTracker(4).merge(TopKTracker(4, two_sided=True))


class TestMomentsMergeLaw:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_sparse_moments_merge_exact(self, num_shards, rng):
        dim = 200
        idx = rng.integers(0, dim, size=5000).astype(np.int64)
        val = rng.integers(-30, 30, size=5000).astype(np.float64)
        reference = SparseMoments(dim)
        reference.update_batch(idx, val, num_samples=500)

        merged = SparseMoments(dim)
        per_shard = _split((idx, val), num_shards, rng)
        for k, (si, sv) in enumerate(per_shard):
            shard = SparseMoments(dim)
            extra = (k == 0) * (500 % num_shards)
            shard.update_batch(si, sv, num_samples=500 // num_shards + extra)
            merged.merge(shard)
        assert merged.count == reference.count
        np.testing.assert_array_equal(merged._sum, reference._sum)
        np.testing.assert_array_equal(merged._sumsq, reference._sumsq)
        np.testing.assert_array_equal(merged.std(floor=1e-6), reference.std(floor=1e-6))

    def test_running_moments_merge_matches_stream(self, rng):
        data = rng.standard_normal((300, 16))
        reference = RunningMoments(16)
        reference.update(data)
        left, right = RunningMoments(16), RunningMoments(16)
        left.update(data[:120])
        right.update(data[120:])
        left.merge(right)
        assert left.count == reference.count
        np.testing.assert_allclose(left.mean, reference.mean, rtol=1e-12)
        np.testing.assert_allclose(left.variance(), reference.variance(), rtol=1e-10)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mergeable"):
            SparseMoments(4).merge(SparseMoments(5))
        with pytest.raises(ValueError, match="mergeable"):
            RunningMoments(4).merge(RunningMoments(5))


def _sparse_block_stream(n, dim, rng, signal_pairs=6, rho=12.0):
    """Sparse samples with planted co-occurring heavy pairs.

    Features ``(2k, 2k+1)`` for ``k < signal_pairs`` fire together with a
    large shared value; the rest is background noise — giving the top-k
    retrieval an unambiguous ground truth.
    """
    samples = []
    for _ in range(n):
        idx = np.sort(rng.choice(dim, size=10, replace=False)).astype(np.int64)
        val = rng.standard_normal(10)
        k = int(rng.integers(0, signal_pairs))
        shared = rho * (1.0 + 0.1 * rng.standard_normal())
        sig_idx = np.array([2 * k, 2 * k + 1], dtype=np.int64)
        idx = np.concatenate([sig_idx, idx[idx >= 2 * signal_pairs]])
        val = np.concatenate([np.array([shared, shared]), val[: idx.size - 2]])
        order = np.argsort(idx)
        samples.append((idx[order], val[order]))
    return samples


class TestASCSShardedRetrieval:
    """Merged ASCS top-k retrieval vs the unsharded run (stated tolerance)."""

    TOLERANCE_F1 = 0.8

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_merged_f1_within_tolerance(self, num_shards):
        rng = np.random.default_rng(77)
        dim, n, k = 120, 960, 6
        samples = _sparse_block_stream(n, dim, rng, signal_pairs=k)
        schedule = ThresholdSchedule(
            exploration_length=n // 8, tau0=1e-4, theta=1e-3, total_samples=n
        )
        common = dict(
            method="ascs",
            schedule=schedule,
            num_tables=5,
            num_buckets=2048,
            seed=13,
            track_top=64,
            batch_size=32,
            mode="covariance",
        )
        reference = fit_sparse_sharded(samples, dim, backend="serial", **common)
        ref_i, ref_j, _ = reference.top_pairs(k, scan=False)

        spec = reference.spec
        results = []
        bounds = np.linspace(0, n, num_shards + 1).astype(int)
        for w in range(num_shards):
            results.append(
                sketch_shard(
                    spec,
                    samples[bounds[w] : bounds[w + 1]],
                    shard_index=w,
                    num_shards=num_shards,
                    start=int(bounds[w]),
                )
            )
        merged = merge_shard_results(results)
        mi, mj, _ = merged.top_pairs(k, scan=False)

        ref_set = set(zip(ref_i.tolist(), ref_j.tolist()))
        merged_set = set(zip(mi.tolist(), mj.tolist()))
        f1 = 2 * len(ref_set & merged_set) / (len(ref_set) + len(merged_set))
        assert f1 >= self.TOLERANCE_F1, (ref_set, merged_set)

    def test_merged_sampler_state_rederived_from_totals(self):
        rng = np.random.default_rng(5)
        dim, n = 60, 320
        samples = _sparse_block_stream(n, dim, rng, signal_pairs=3)
        schedule = ThresholdSchedule(
            exploration_length=64, tau0=1e-4, theta=1e-3, total_samples=n
        )
        spec = ShardSpec(
            dim=dim,
            total_samples=n,
            method="ascs",
            num_tables=3,
            num_buckets=512,
            seed=1,
            schedule=(64, 1e-4, 1e-3, n),
        )
        halves = [
            sketch_shard(spec, samples[:160], shard_index=0, num_shards=2, start=0),
            sketch_shard(spec, samples[160:], shard_index=1, num_shards=2, start=160),
        ]
        merged = merge_shard_results(halves)
        est = merged.estimator
        assert est.samples_seen == n
        assert est.updates_examined == sum(h.updates_examined for h in halves)
        assert est.updates_accepted == sum(h.updates_accepted for h in halves)
        # Threshold position re-derived from the total ingested count.
        assert est.current_threshold == pytest.approx(schedule.threshold(n))
        assert not est.in_exploration


class TestMergeCompatibility:
    """Satellite: mismatched seeds/families/shapes raise clear ValueErrors."""

    def test_count_sketch_mismatches(self):
        base = CountSketch(3, 128, seed=1, family="multiply-shift")
        for other in (
            CountSketch(4, 128, seed=1),
            CountSketch(3, 256, seed=1),
            CountSketch(3, 128, seed=2),
            CountSketch(3, 128, seed=1, family="polynomial"),
        ):
            with pytest.raises(ValueError, match="mergeable"):
                base.merge(other)

    def test_count_sketch_dtype_mismatch(self):
        base = CountSketch(3, 128, seed=1)
        with pytest.raises(ValueError, match="dtype"):
            base.merge(CountSketch(3, 128, seed=1, dtype=np.float32))

    def test_count_sketch_cross_class(self):
        with pytest.raises(ValueError, match="mergeable"):
            CountSketch(3, 128, seed=1).merge(CountMinSketch(3, 128, seed=1))

    def test_count_min_mismatches(self):
        base = CountMinSketch(3, 128, seed=1)
        for other in (
            CountMinSketch(2, 128, seed=1),
            CountMinSketch(3, 64, seed=1),
            CountMinSketch(3, 128, seed=9),
            CountMinSketch(3, 128, seed=1, family="polynomial"),
            CountMinSketch(3, 128, seed=1, cap=5.0),
        ):
            with pytest.raises(ValueError, match="mergeable"):
                base.merge(other)

    def test_count_min_conservative_rejected_even_when_compatible(self):
        a = CountMinSketch(3, 128, seed=1, conservative=True)
        b = CountMinSketch(3, 128, seed=1, conservative=True)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)

    def test_augmented_mismatches(self):
        base = AugmentedSketch(3, 128, seed=1, filter_capacity=8)
        with pytest.raises(ValueError, match="mergeable"):
            base.merge(AugmentedSketch(3, 128, seed=1, filter_capacity=16))
        with pytest.raises(ValueError, match="mergeable"):
            base.merge(AugmentedSketch(3, 128, seed=2, filter_capacity=8))
        with pytest.raises(ValueError, match="mergeable"):
            base.merge(AugmentedSketch(3, 256, seed=1, filter_capacity=8))

    def test_augmented_merge_combines_state(self):
        left = AugmentedSketch(3, 512, seed=1, filter_capacity=2)
        right = AugmentedSketch(3, 512, seed=1, filter_capacity=2)
        # Seed the exact filters directly: filter entries are exact mass
        # *excluded* from the backing sketch.
        left._filter = {10: 5.0}
        right._filter = {10: 3.0, 20: 2.0}
        right.sketch.insert(
            np.array([30], dtype=np.int64), np.array([7.0], dtype=np.float64)
        )
        left.merge(right)
        # Key 10 stays exact (masses add); 20 fills the free slot; 30 stays
        # sketched — and the merged structure answers all three.
        assert left._filter == {10: 8.0, 20: 2.0}
        queries = left.query(np.array([10, 20, 30], dtype=np.int64))
        np.testing.assert_allclose(queries, [8.0, 2.0, 7.0])

    def test_augmented_merge_promotes_sketched_mass_of_adopted_key(self):
        """Regression: adopting a key from other's filter must pull the
        destination's sketched mass for that key into the exact slot —
        queries return filter values verbatim, so mass left in the sketch
        would become invisible."""
        left = AugmentedSketch(3, 512, seed=1, filter_capacity=2)
        right = AugmentedSketch(3, 512, seed=1, filter_capacity=2)
        left.sketch.insert(
            np.array([20], dtype=np.int64), np.array([4.0], dtype=np.float64)
        )
        right._filter = {20: 2.0}
        left.merge(right)
        assert left.query_single(20) == pytest.approx(6.0)

    def test_augmented_merge_spills_overflowing_filter_to_sketch(self):
        left = AugmentedSketch(3, 512, seed=1, filter_capacity=1)
        right = AugmentedSketch(3, 512, seed=1, filter_capacity=1)
        left._filter = {10: 5.0}
        right._filter = {20: 2.0}
        left.merge(right)
        # No slot free for key 20: its exact mass demotes into the sketch.
        assert left._filter == {10: 5.0}
        np.testing.assert_allclose(
            left.query(np.array([10, 20], dtype=np.int64)), [5.0, 2.0]
        )

    def test_cold_filter_mismatch_then_unmergeable(self):
        base = ColdFilterSketch(3, 128, seed=1, threshold=1.0)
        with pytest.raises(ValueError, match="mergeable"):
            base.merge(ColdFilterSketch(3, 128, seed=1, threshold=2.0))
        with pytest.raises(ValueError, match="mergeable"):
            base.merge(ColdFilterSketch(3, 64, seed=1, threshold=1.0))
        # Even fully compatible gates cannot merge (conservative update).
        with pytest.raises(ValueError, match="cannot merge"):
            base.merge(ColdFilterSketch(3, 128, seed=1, threshold=1.0))

    def test_shard_result_spec_mismatch(self, rng):
        samples = [
            (np.array([1, 4], dtype=np.int64), np.array([1.0, 2.0]))
            for _ in range(8)
        ]
        a = sketch_shard(
            ShardSpec(dim=10, total_samples=8, num_tables=3, num_buckets=64, seed=1),
            samples,
            shard_index=0,
        )
        b = sketch_shard(
            ShardSpec(dim=10, total_samples=8, num_tables=3, num_buckets=64, seed=2),
            samples,
            shard_index=1,
        )
        with pytest.raises(ValueError, match="seed"):
            merge_shard_results([a, b])

    def test_duplicate_shard_indices_rejected(self):
        spec = ShardSpec(dim=10, total_samples=4, num_tables=3, num_buckets=64)
        samples = [(np.array([1, 2], dtype=np.int64), np.array([1.0, 1.0]))] * 4
        a = sketch_shard(spec, samples, shard_index=0)
        b = sketch_shard(spec, samples, shard_index=0)
        with pytest.raises(ValueError, match="duplicate"):
            merge_shard_results([a, b])

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="zero shard"):
            merge_shard_results([])

    @pytest.mark.parametrize("second_start", [40, 20])  # gap / overlap
    def test_noncontiguous_coverage_rejected(self, second_start):
        spec = ShardSpec(dim=10, total_samples=64, num_tables=3, num_buckets=64)
        samples = [(np.array([1, 2], dtype=np.int64), np.array([1.0, 1.0]))] * 32
        a = sketch_shard(spec, samples, shard_index=0, num_shards=2, start=0)
        b = sketch_shard(
            spec, samples, shard_index=1, num_shards=2, start=second_start
        )
        with pytest.raises(ValueError, match="tile the stream"):
            merge_shard_results([a, b])
