"""Tests for the experiment modules — tiny configs, structural assertions."""

import pytest

from repro.experiments import (
    fig1_correlation_cdf,
    fig2_mean_std_cdf,
    fig3_independence,
    fig4_normality,
    fig5_rosnr,
    fig6_f1_curves,
    table1_theorem_validation,
    table2_large_scale,
    table4_top_fraction,
    table5_k_sensitivity,
    table6_timing,
)
from repro.experiments.base import TableResult, format_cell, render_results
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestTableResult:
    def test_add_row_validates_width(self):
        table = TableResult("t", ("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_everything(self):
        table = TableResult("My Title", ("col1", "col2"))
        table.add_row("x", 1.5)
        table.notes.append("a note")
        text = table.render()
        assert "My Title" in text
        assert "col1" in text and "1.500" in text
        assert "note: a note" in text

    def test_column_extraction(self):
        table = TableResult("t", ("a", "b"))
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.123456) == "0.123"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(12345.0) == "1.23e+04"
        assert format_cell("abc") == "abc"
        assert format_cell(0.0) == "0"

    def test_render_results_multiple(self):
        a = TableResult("A", ("x",))
        b = TableResult("B", ("y",))
        out = render_results([a, b])
        assert "A" in out and "B" in out


class TestFig1:
    def test_cdf_monotone_and_terminal(self):
        config = fig1_correlation_cdf.Config(
            datasets=("gisette", "rcv1"), dim=80, samples=400
        )
        table = fig1_correlation_cdf.run(config)
        for name in config.datasets:
            col = table.column(name)
            assert all(a <= b + 1e-12 for a, b in zip(col, col[1:]))
            assert col[-1] == pytest.approx(1.0)

    def test_bulk_near_zero(self):
        config = fig1_correlation_cdf.Config(datasets=("gisette",), dim=80, samples=600)
        table = fig1_correlation_cdf.run(config)
        # CDF at x=0.2 should already capture most of the mass (sparsity).
        x = table.column("x")
        col = table.column("gisette")
        assert col[x.index(0.2)] > 0.8


class TestFig2:
    def test_runs_and_bounded(self):
        config = fig2_mean_std_cdf.Config(datasets=("epsilon",), dim=60, samples=300)
        table = fig2_mean_std_cdf.run(config)
        col = table.column("epsilon")
        assert all(0.0 <= v <= 1.0 for v in col)
        assert col[-1] == pytest.approx(1.0)


class TestFig3:
    def test_independence_fractions(self):
        config = fig3_independence.Config(
            dim=30, num_replicates=300, t=60, num_entries=40, gisette_samples=400
        )
        table = fig3_independence.run(config)
        assert len(table.rows) == 2
        # At the loosest threshold everything should be uncorrelated.
        last_col = table.column("x=0.2")
        assert all(v > 0.9 for v in last_col)


class TestFig4:
    def test_normality_diagnostics(self):
        config = fig4_normality.Config(
            dim=30, num_replicates=250, t=60, num_entries=2, gisette_samples=400
        )
        table = fig4_normality.run(config)
        assert len(table.rows) == 4  # 2 entries x 2 sources
        for qq in table.column("qq_corr"):
            assert qq > 0.97  # CLT: near-perfect normal QQ


class TestFig5:
    def test_rosnr_structure(self):
        config = fig5_rosnr.Config(dim=50, samples=800, window=200)
        table = fig5_rosnr.run(config)
        assert len(table.rows) > 4
        for theory, measured in zip(
            table.column("theoretical_ratio"), table.column("measured_ratio")
        ):
            assert theory > 0 and measured > 0

    def test_theory_curve_nondecreasing_per_source(self):
        config = fig5_rosnr.Config(dim=50, samples=800, window=200)
        table = fig5_rosnr.run(config)
        for source in ("simulation", "gisette"):
            series = [
                row[2] for row in table.rows if row[0] == source
            ]
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))


class TestTable1:
    def test_bounds_hold_within_sampling_noise(self):
        # d=40 is too small for the multi-table median approximation, so the
        # unit test uses d=60 with the looser targets; the full-size default
        # config (d=80, 12 replicates) is exercised by the benchmark suite.
        config = table1_theorem_validation.Config(
            dim=60,
            samples=600,
            num_replicates=4,
            delta_targets=(0.1,),
            escape_targets=(0.15,),
            sources=("simulation",),
        )
        table = table1_theorem_validation.run(config)
        # ~60 Bernoulli trials per cell: allow two binomial stds of slack.
        rows = [r for r in table.rows if r[3] == r[3]]  # drop nan rows
        assert rows
        for _, _, target, realised, _ in rows:
            slack = 2.0 * (target * (1 - target) / 60) ** 0.5
            assert realised <= target + slack


class TestTable2:
    def test_small_config_runs(self):
        config = table2_large_scale.Config(
            url_dim=2000,
            url_samples=800,
            url_buckets=(4000,),
            dna_genome=4000,
            dna_read_length=100,
            dna_coverage=3.0,
            dna_k=6,
            dna_buckets=(4000,),
            top_k=50,
            track_top=500,
        )
        table = table2_large_scale.run(config)
        assert len(table.rows) == 2
        for row in table.rows:
            cs_score, ascs_score = row[5], row[6]
            assert 0.0 <= cs_score <= 1.0 or cs_score != cs_score
            assert 0.0 <= ascs_score <= 1.0 or ascs_score != ascs_score


class TestTable4:
    def test_structure_and_ranges(self):
        config = table4_top_fraction.Config(
            datasets=("gisette",), methods=("cs", "ascs"),
            fractions=(0.1, 1.0), dim=60, samples=500,
        )
        table = table4_top_fraction.run(config)
        assert len(table.rows) == 4
        for row in table.rows:
            assert -1.0 <= row[2] <= 1.0

    def test_smaller_fraction_higher_mean(self):
        config = table4_top_fraction.Config(
            datasets=("gisette",), methods=("cs",),
            fractions=(0.05, 1.0), dim=80, samples=1000,
        )
        table = table4_top_fraction.run(config)
        small_frac = table.rows[0][2]
        full_frac = table.rows[1][2]
        assert small_frac >= full_frac - 0.05


class TestTable5:
    def test_structure(self):
        config = table5_k_sensitivity.Config(
            dim=60, samples=500, budget_fractions=(0.1, 1.0),
            num_tables_sweep=(2, 4),
        )
        table = table5_k_sensitivity.run(config)
        assert len(table.rows) == 2
        assert len(table.columns) == 3

    def test_bigger_budget_no_worse(self):
        config = table5_k_sensitivity.Config(
            dim=60, samples=800, budget_fractions=(0.04, 1.0),
            num_tables_sweep=(4,),
        )
        table = table5_k_sensitivity.run(config)
        small, big = table.rows[0][1], table.rows[1][1]
        assert big >= small - 0.1


class TestTable6:
    def test_timing_positive_and_comparable(self):
        config = table6_timing.Config(datasets=("gisette",), dim=60, samples=400)
        table = table6_timing.run(config)
        row = table.rows[0]
        assert row[1] > 0 and row[2] > 0
        assert row[3] < 10  # ASCS within an order of magnitude of CS


class TestFig6:
    def test_structure(self):
        config = fig6_f1_curves.Config(
            datasets=("gisette",), dim=60, samples=600,
            u_percentiles=(0.95,), top_sizes=(10, 30),
            alphas_panel_f=(0.02,),
        )
        main, panel_f = fig6_f1_curves.run(config)
        assert len(main.rows) == 4  # (CS + 1 ASCS) x 2 sizes
        assert len(panel_f.rows) == 2
        for f1 in main.column("max_f1"):
            assert 0.0 <= f1 <= 1.0


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "table1", "table2", "table4", "table5", "table6", "sweep",
        }

    def test_run_experiment_by_name(self):
        config = fig1_correlation_cdf.Config(datasets=("gisette",), dim=40, samples=200)
        table = run_experiment("fig1", config)
        assert isinstance(table, TableResult)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_every_module_has_contract(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "Config")
            assert hasattr(module, "run")
            assert isinstance(module.PAPER_REFERENCE, str)
