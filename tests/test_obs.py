"""Tests for the observability tier (repro.obs).

Covers the metric primitives under concurrency, the Prometheus text
exposition format, span tracing, structured logging, the accuracy probe
against the theory SNR model, and the cache-stats snapshot regression.
"""

from __future__ import annotations

import io
import json
import re
import threading

import numpy as np
import pytest

from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    render_exposition,
)
from repro.obs.probe import AccuracyProbe
from repro.obs.tracing import Tracer
from repro.serving.cache import LRUCache
from repro.theory.snr import model_stream_snr


class TestCounterAndGauge:
    def test_counter_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert reg.counter("x_total", labels={"a": "1"}) is not reg.counter(
            "x_total", labels={"a": "2"}
        )

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_gauge_fn_evaluates_at_collect_time(self):
        reg = MetricsRegistry()
        state = {"v": 1.0}
        reg.gauge_fn("g", lambda: state["v"])
        state["v"] = 7.0
        assert reg.get("g").value == 7.0

    def test_gauge_fn_rebinds(self):
        reg = MetricsRegistry()
        reg.gauge_fn("g", lambda: 1.0)
        reg.gauge_fn("g", lambda: 2.0)
        assert reg.get("g").value == 2.0

    def test_gauge_fn_exception_reads_nan(self):
        reg = MetricsRegistry()
        reg.gauge_fn("g", lambda: 1 / 0)
        assert np.isnan(reg.get("g").value)


class TestHistogram:
    def test_counts_and_sum(self):
        h = MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        _, total, count = h.snapshot()
        assert count == 3
        assert total == pytest.approx(5.55)

    def test_percentile_interpolates_within_buckets(self):
        h = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        p50 = h.percentile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h_seconds", buckets=(1.0, 3.0))

    def test_timer_context_manager_observes(self):
        h = MetricsRegistry().histogram("h_seconds")
        with h.time():
            pass
        assert h.stats()["count"] == 1


class TestRegistryThreadHammer:
    """ISSUE acceptance: 8 writer threads, final counts exact."""

    THREADS = 8
    PER_THREAD = 10_000

    def test_counter_exact_under_contention(self):
        reg = MetricsRegistry()
        c = reg.counter("hammer_total")
        h = reg.histogram("hammer_seconds", buckets=(0.5,))
        start = threading.Barrier(self.THREADS)

        def work():
            start.wait()
            for _ in range(self.PER_THREAD):
                c.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.THREADS * self.PER_THREAD
        assert c.value == expected
        counts, total, count = h.snapshot()
        assert count == expected
        assert counts[0] == expected
        assert total == pytest.approx(0.25 * expected)

    def test_get_or_create_race_yields_one_instrument(self):
        reg = MetricsRegistry()
        seen = []
        start = threading.Barrier(self.THREADS)

        def work():
            start.wait()
            seen.append(reg.counter("raced_total"))

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1


class TestExpositionFormat:
    def test_golden_render(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs processed", labels={"kind": "a"}).inc(3)
        reg.gauge("depth", "queue depth").set(2.5)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert reg.render() == (
            "# HELP jobs_total jobs processed\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{kind="a"} 3\n'
            "# HELP depth queue depth\n"
            "# TYPE depth gauge\n"
            "depth 2.5\n"
            "# HELP lat_seconds latency\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 5.55\n"
            "lat_seconds_count 3\n"
        )

    def test_every_line_is_valid_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help", labels={"x": "y"}).inc()
        reg.histogram("b_seconds", "help").observe(0.01)
        reg.gauge_fn("c", lambda: 1.0, "help")
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
            r"[^ ]+$"
        )
        text = reg.render()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            else:
                assert line_re.match(line), line

    def test_families_merge_across_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared_total", "help", labels={"src": "a"}).inc()
        b.counter("shared_total", "help", labels={"src": "b"}).inc(2)
        text = render_exposition([a, b])
        assert text.count("# TYPE shared_total counter") == 1
        assert 'shared_total{src="a"} 1' in text
        assert 'shared_total{src="b"} 2' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", labels={"p": 'a"b\\c'}).inc()
        assert 'esc_total{p="a\\"b\\\\c"} 1' in reg.render()


class TestNullRegistry:
    def test_everything_is_a_cheap_noop(self):
        reg = NullRegistry()
        c = reg.counter("x")
        c.inc()
        assert c.value == 0
        h = reg.histogram("y")
        with h.time():
            pass
        h.observe(1.0)
        assert h.stats()["count"] == 0
        g = reg.gauge_fn("z", lambda: 1 / 0)
        g.set(3.0)
        assert reg.instruments() == []


class TestTracer:
    def test_span_tree_nesting(self):
        tracer = Tracer(slow_threshold=0.0)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                child.note(rows=3)
        assert root.duration >= 0
        tree = root.to_dict()
        assert tree["name"] == "root"
        assert tree["children"][0]["name"] == "child"
        assert tree["children"][0]["fields"] == {"rows": 3}

    def test_slow_ring_captures_and_bounds(self):
        tracer = Tracer(slow_threshold=0.0, ring=2)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        slow = tracer.slow_traces()
        assert len(slow) == 2
        assert [t["name"] for t in slow] == ["op3", "op4"]

    def test_fast_spans_not_retained(self):
        tracer = Tracer(slow_threshold=10.0)
        with tracer.span("quick"):
            pass
        assert tracer.slow_traces() == []
        assert tracer.stats()["traces_started"] == 1
        assert tracer.stats()["traces_slow"] == 0

    def test_decorator(self):
        tracer = Tracer(slow_threshold=0.0)

        @tracer.trace("fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert tracer.slow_traces()[0]["name"] == "fn"


class TestStructuredLog:
    def test_event_renders_one_json_line(self):
        stream = io.StringIO()
        configure(level="info", stream=stream, logger_name="repro.obstest")
        log = get_logger("obstest.unit")
        log.event("wal.rotate", segment="wal-1", seconds=0.5)
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "wal.rotate"
        assert payload["segment"] == "wal-1"
        assert payload["seconds"] == 0.5
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.obstest.unit"

    def test_silenced_by_default(self, capsys):
        get_logger("obstest.silent").event("noisy", level="info")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_configure_is_idempotent(self):
        import logging

        s1, s2 = io.StringIO(), io.StringIO()
        configure(level="info", stream=s1, logger_name="repro.obstest2")
        configure(level="info", stream=s2, logger_name="repro.obstest2")
        handlers = [
            h
            for h in logging.getLogger("repro.obstest2").handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(handlers) == 1
        get_logger("obstest2").event("once")
        assert s1.getvalue() == "" and s2.getvalue() != ""

    def test_non_serialisable_fields_reprd(self):
        stream = io.StringIO()
        configure(level="info", stream=stream, logger_name="repro.obstest3")
        get_logger("obstest3").event("ev", arr=np.arange(2))
        payload = json.loads(stream.getvalue().strip())
        assert "array" in payload["arr"]


class TestModelStreamSnr:
    def test_formula(self):
        # alpha*(u^2+sigma^2) / ((1-alpha)*sigma^2)
        assert model_stream_snr(0.5, 2.0, 1.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            model_stream_snr(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model_stream_snr(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model_stream_snr(0.5, 1.0, 0.0)


class TestAccuracyProbe:
    def _drive_model_stream(self, probe, alpha, u, sigma, n, seed=7):
        """Feed the observer hook the paper's product-stream model: each
        update is a signal key w.p. alpha with value N(u, sigma^2), else a
        noise key with value N(0, sigma^2)."""
        rng = np.random.default_rng(seed)
        signal = probe._signal_keys
        for t in range(1, n + 1):
            if rng.random() < alpha:
                key = int(rng.choice(signal))
                value = u + sigma * rng.standard_normal()
            else:
                key = int(rng.integers(1000, 100_000))
                value = sigma * rng.standard_normal()
            probe(
                t,
                np.array([key], dtype=np.int64),
                np.array([value]),
                np.array([True]),
            )

    def test_rosnr_gauge_tracks_theory(self):
        """ISSUE acceptance: the ROSNR gauge reads ~1 when the observed
        stream matches the theory model it is baselined against."""
        alpha, u, sigma = 0.05, 5.0, 1.0
        theory = model_stream_snr(alpha, u, sigma)
        probe = AccuracyProbe(
            np.arange(8, dtype=np.int64),
            window=50_000,
            baseline_snr=theory,
            seed=3,
        )
        self._drive_model_stream(probe, alpha, u, sigma, 40_000)
        probe.flush()
        snr = probe.snr_gauge.value
        rosnr = probe.rosnr_gauge.value
        assert snr == pytest.approx(theory, rel=0.15)
        assert rosnr == pytest.approx(1.0, rel=0.15)
        assert probe.windows_counter.value >= 1

    def test_relative_baseline_from_first_window(self):
        probe = AccuracyProbe(np.array([1]), window=10, baseline_snr=None)
        for t in range(1, 21):
            probe(
                t,
                np.array([1, 500 + t], dtype=np.int64),
                np.array([3.0, 1.0]),
                np.array([True, True]),
            )
        # Both windows identical, so relative ROSNR reads exactly 1.
        assert probe.windows_counter.value == 2
        assert probe.rosnr_gauge.value == pytest.approx(1.0)

    def test_reservoir_holds_noise_keys_only(self):
        probe = AccuracyProbe(np.array([1, 2]), reservoir=16)
        for t in range(1, 101):
            probe(
                t,
                np.array([1, 100 + t], dtype=np.int64),
                np.array([1.0, 1.0]),
                np.array([True, True]),
            )
        noise = probe.noise_keys
        assert 0 < noise.size <= 16
        assert not set(noise.tolist()) & {1, 2}

    def test_sentinels_exclude_signal_keys(self):
        probe = AccuracyProbe(
            np.arange(10, dtype=np.int64),
            collision_probes=32,
            key_space=1000,
        )
        sentinels = probe.sentinel_keys
        assert sentinels.size == 32
        assert not set(sentinels.tolist()) & set(range(10))

    def test_sample_refreshes_read_side_gauges(self):
        probe = AccuracyProbe(
            np.array([1, 2], dtype=np.int64),
            collision_probes=8,
            key_space=100,
        )
        for t in range(1, 31):
            probe(
                t,
                np.array([1, 40 + t], dtype=np.int64),
                np.array([5.0, 1.0]),
                np.array([True, True]),
            )
        est = {1: 5.0, 2: 5.0}
        out = probe.sample(
            lambda keys: np.array([est.get(int(k), 0.1) for k in keys])
        )
        assert out["estimate_snr"] > 1.0
        assert out["collision_energy"] == pytest.approx(0.01)
        assert probe.samples_counter.value == 1

    def test_topk_churn(self):
        probe = AccuracyProbe(np.array([1]), topk=4)
        query = lambda keys: np.ones(len(keys))
        first = probe.sample(query, top_keys=np.array([1, 2, 3, 4]))
        assert "topk_churn" not in first  # no previous set yet
        second = probe.sample(query, top_keys=np.array([3, 4, 5, 6]))
        # union 6, kept 2 -> churn 1 - 2/6
        assert second["topk_churn"] == pytest.approx(1.0 - 2.0 / 6.0)
        third = probe.sample(query, top_keys=np.array([3, 4, 5, 6]))
        assert third["topk_churn"] == 0.0


class TestCacheStatsSnapshot:
    """Regression: stats() must be one consistent point-in-time snapshot
    taken under the cache lock, never a torn read across counters."""

    def test_snapshot_consistent_under_concurrent_mutation(self):
        cache = LRUCache(capacity=64)
        stop = threading.Event()
        GETS_PER_WORKER = 30_000

        def churn(seed):
            rng = np.random.default_rng(seed)
            for _ in range(GETS_PER_WORKER):
                key = int(rng.integers(0, 256))
                if cache.get(key) is None:
                    cache.put(key, float(key))

        workers = [
            threading.Thread(target=churn, args=(seed,)) for seed in range(4)
        ]
        snapshots = []

        def poll():
            while not stop.is_set():
                snapshots.append(cache.stats())

        poller = threading.Thread(target=poll)
        poller.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        poller.join()
        final = cache.stats()
        # Every get is exactly one hit or one miss.
        assert final.hits + final.misses == 4 * GETS_PER_WORKER
        assert final.size <= final.capacity
        for snap in snapshots:
            assert snap.size <= snap.capacity
            assert 0.0 <= snap.hit_rate <= 1.0
        # Counters are monotone across successive snapshots.
        for prev, cur in zip(snapshots, snapshots[1:]):
            assert cur.hits >= prev.hits
            assert cur.misses >= prev.misses
            assert cur.evictions >= prev.evictions

    def test_stats_as_dict_round_trip(self):
        cache = LRUCache(capacity=2)
        cache.put(1, 1.0)
        cache.get(1)
        cache.get(2)
        d = cache.stats().as_dict()
        assert d == {
            "capacity": 2,
            "size": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }
