"""Tests for the Augmented Sketch baseline (repro.sketch.augmented)."""

import numpy as np
import pytest

from repro.sketch.augmented import AugmentedSketch


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AugmentedSketch(3, 100, filter_capacity=0)

    def test_memory_includes_filter(self):
        asx = AugmentedSketch(3, 100, filter_capacity=16)
        assert asx.memory_floats == 300 + 32


class TestHotKeyExactness:
    def test_hot_key_promoted_and_exact(self):
        asx = AugmentedSketch(3, 512, filter_capacity=4, seed=1)
        hot = np.array([7])
        for _ in range(10):
            asx.insert(hot, np.array([5.0]))
        assert 7 in asx.filter_keys.tolist()
        assert asx.query(hot)[0] == pytest.approx(50.0)

    def test_total_mass_conserved_across_promotion(self):
        # Promoting moves mass from sketch to filter without double counting.
        asx = AugmentedSketch(5, 1024, filter_capacity=2, seed=2)
        for _ in range(5):
            asx.insert(np.array([1, 2, 3]), np.array([10.0, 1.0, 0.5]))
        np.testing.assert_allclose(
            asx.query(np.array([1, 2, 3])), [50.0, 5.0, 2.5], atol=1e-6
        )

    def test_eviction_pushes_mass_back(self):
        asx = AugmentedSketch(5, 2048, filter_capacity=1, seed=3)
        # Key 1 becomes hot first, then key 2 overtakes it.
        asx.insert(np.array([1]), np.array([5.0]))
        asx.insert(np.array([2]), np.array([50.0]))
        # Whatever ended up in the filter, both totals must still be right.
        np.testing.assert_allclose(
            asx.query(np.array([1, 2])), [5.0, 50.0], atol=1e-6
        )

    def test_filter_capacity_respected(self):
        asx = AugmentedSketch(3, 512, filter_capacity=3, seed=4)
        for key in range(20):
            asx.insert(np.array([key]), np.array([float(key)]))
        assert len(asx.filter_keys) <= 3


class TestQueries:
    def test_cold_keys_use_sketch(self):
        asx = AugmentedSketch(5, 2048, filter_capacity=2, seed=5)
        asx.insert(np.arange(10), np.ones(10))
        est = asx.query(np.arange(10))
        np.testing.assert_allclose(est, 1.0, atol=0.5)

    def test_empty_operations(self):
        asx = AugmentedSketch(3, 64, filter_capacity=2)
        asx.insert(np.empty(0, dtype=np.int64), np.empty(0))
        assert asx.query(np.empty(0, dtype=np.int64)).size == 0

    def test_reset(self):
        asx = AugmentedSketch(3, 64, filter_capacity=2, seed=1)
        asx.insert(np.array([1]), np.array([3.0]))
        asx.reset()
        assert asx.query_single(1) == 0.0
        assert len(asx.filter_keys) == 0


class TestTwoSided:
    def test_negative_heavy_key_tracked(self):
        asx = AugmentedSketch(5, 1024, filter_capacity=1, seed=6, two_sided=True)
        for _ in range(5):
            asx.insert(np.array([9]), np.array([-10.0]))
        assert asx.query_single(9) == pytest.approx(-50.0)
        assert 9 in asx.filter_keys.tolist()


class TestAccuracyGain:
    def test_beats_plain_sketch_on_heavy_keys_under_crowding(self):
        # Crowded tables: the filter should protect the heavy keys.
        rng = np.random.default_rng(7)
        heavy_keys = np.arange(4)
        asx = AugmentedSketch(3, 64, filter_capacity=8, seed=8, exchange_every=1)
        from repro.sketch.count_sketch import CountSketch

        cs = CountSketch(3, 64, seed=8)
        for _ in range(30):
            noise_k = rng.integers(10, 10**6, size=200)
            noise_v = rng.standard_normal(200)
            for sk in (asx, cs):
                sk.insert(heavy_keys, np.full(4, 3.0))
                sk.insert(noise_k, noise_v)
        truth = 90.0
        err_asx = np.abs(asx.query(heavy_keys) - truth).mean()
        err_cs = np.abs(cs.query(heavy_keys) - truth).mean()
        assert err_asx <= err_cs + 1e-9
