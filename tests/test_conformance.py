"""Registry-wide sketch conformance suite.

Auto-parametrized over the serialisation kind registry
(:func:`repro.sketch.serialization.kind_registry`): every registered kind
— current and future — is held to the same contracts *for free*:

* **save/load bit-identity** — the array codec and the file round-trip
  reproduce the exact state (dtypes, quantum, filters, decay clock);
* **freeze immutability** — after ``freeze()``, queries answer unchanged
  and every mutating entry point raises *without* partial mutation;
* **merge law** — the kind's *declared* law (``KindSpec.merge_law``):
  ``exact`` kinds must be associative/commutative bit-for-bit on random
  shard splits of an exactly-representable stream and equal to a one-shot
  run; ``approximate`` kinds must merge without error and preserve
  heavy-key estimates; ``unsupported`` kinds must raise ``ValueError``
  citing their declared reason;
* **insert/query vs reference** — estimates of isolated keys in a wide
  table recover the inserted mass.

A kind registered without conformance metadata (no example factory, or an
undeclared merge law) fails loudly here instead of silently escaping the
net.  ``ColdFilterSketch`` — deliberately *not* registered — is pinned at
the bottom: it must keep declaring both non-serializability and
non-mergeability with a reason.
"""

import numpy as np
import pytest

import repro.sketch.kernels as kernels
from repro.sketch.cold_filter import ColdFilterSketch
from repro.sketch.kernels import available_backends
from repro.sketch.serialization import (
    MERGE_LAWS,
    kind_registry,
    load_sketch,
    save_sketch,
    sketch_from_arrays,
    sketch_to_arrays,
)

KINDS = kind_registry()
BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS, autouse=True)
def kernel_backend(request, monkeypatch):
    """Run the whole conformance net once per importable kernel backend.

    The registry factories build sketches without an explicit ``backend=``,
    so forcing the environment knob routes every contract — round-trip,
    freeze, merge law, corruption — through that backend's hot paths.
    Locally this may collapse to numpy alone; the CI numba leg runs both.
    """
    monkeypatch.setenv(kernels.ENV_VAR, request.param)
    return request.param


def _make(name, seed=0):
    spec = KINDS[name]
    if spec.make is None:
        pytest.fail(
            f"kind {name!r} is registered without an example factory; "
            "register_kind(..., make=...) so the conformance suite can "
            "exercise it"
        )
    return spec.make(seed)


def _stream(rng, n=600, key_space=5000, integral=False):
    """(keys, values) usable by every kind: positive (count-min-safe) and
    optionally integer-valued (exactly representable partial sums, the
    precondition for bit-for-bit merge laws)."""
    keys = rng.integers(0, key_space, size=n)
    if integral:
        values = rng.integers(1, 8, size=n).astype(np.float64)
    else:
        values = np.abs(rng.standard_normal(n)) + 0.05
    return keys, values


def _insert_stream(sketch, keys, values, batch=100):
    for start in range(0, keys.size, batch):
        sketch.insert(keys[start : start + batch], values[start : start + batch])


def _assert_state_equal(left, right):
    """Bit-for-bit comparison through the canonical array encoding."""
    a, b = sketch_to_arrays(left), sketch_to_arrays(right)
    assert a.keys() == b.keys()
    for name in a:
        av, bv = np.asarray(a[name]), np.asarray(b[name])
        assert av.dtype == bv.dtype, f"{name}: {av.dtype} != {bv.dtype}"
        np.testing.assert_array_equal(av, bv, err_msg=name)


@pytest.fixture
def rng():
    return np.random.default_rng(90210)


class TestRegistryMetadata:
    """A registration without conformance metadata must fail loudly."""

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_kind_declares_example_factory(self, name):
        _make(name)  # fails with the actionable message when absent

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_kind_declares_valid_merge_law(self, name):
        spec = KINDS[name]
        assert spec.merge_law in MERGE_LAWS
        if spec.merge_law == "unsupported":
            assert spec.merge_reason, (
                f"kind {name!r} declares merge_law='unsupported' without a "
                "reason; raise with one so reducers surface it"
            )

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_factory_matches_registered_class(self, name):
        assert type(_make(name)) is KINDS[name].cls


class TestSaveLoadBitIdentity:
    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_file_round_trip(self, name, rng, tmp_path):
        sketch = _make(name, seed=3)
        _insert_stream(sketch, *_stream(rng))
        path = str(tmp_path / f"{name}.npz")
        save_sketch(sketch, path)
        loaded = load_sketch(path)
        _assert_state_equal(loaded, sketch)
        probe = rng.integers(0, 5000, size=400)
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_array_round_trip(self, name, rng):
        sketch = _make(name, seed=5)
        _insert_stream(sketch, *_stream(rng))
        rebuilt = sketch_from_arrays(sketch_to_arrays(sketch))
        _assert_state_equal(rebuilt, sketch)

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_loaded_sketch_ingests_identically(self, name, rng, tmp_path):
        sketch = _make(name, seed=7)
        keys, values = _stream(rng)
        _insert_stream(sketch, keys, values)
        path = str(tmp_path / f"{name}.npz")
        save_sketch(sketch, path)
        loaded = load_sketch(path)
        more_k, more_v = _stream(rng, n=200)
        sketch.insert(more_k, more_v)
        loaded.insert(more_k, more_v)
        probe = rng.integers(0, 5000, size=300)
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))


class TestFreezeImmutability:
    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_freeze_blocks_writes_preserves_reads(self, name, rng):
        sketch = _make(name, seed=11)
        keys, values = _stream(rng)
        _insert_stream(sketch, keys, values)
        probe = rng.integers(0, 5000, size=300)
        before = sketch.query(probe).copy()
        assert hasattr(sketch, "freeze"), (
            f"kind {name!r} has no freeze(): serving snapshots cannot "
            "guarantee immutability for it"
        )
        sketch.freeze()
        with pytest.raises(ValueError):
            sketch.insert(keys[:50], values[:50])
        # The failed insert must not have half-mutated anything.
        np.testing.assert_array_equal(sketch.query(probe), before)

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_frozen_reset_raises(self, name, rng):
        sketch = _make(name, seed=13)
        _insert_stream(sketch, *_stream(rng))
        sketch.freeze()
        with pytest.raises(ValueError):
            sketch.reset()


class TestMergeLaw:
    def _shards(self, name, rng, num_shards):
        keys, values = _stream(rng, n=900, integral=True)
        splits = np.sort(rng.integers(1, 899, size=num_shards - 1))
        bounds = [0, *splits.tolist(), 900]
        shards = []
        for s in range(num_shards):
            shard = _make(name, seed=17)
            _insert_stream(
                shard,
                keys[bounds[s] : bounds[s + 1]],
                values[bounds[s] : bounds[s + 1]],
            )
            shards.append(shard)
        one_shot = _make(name, seed=17)
        _insert_stream(one_shot, keys, values)
        return shards, one_shot

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_declared_merge_law_holds(self, name, rng):
        spec = KINDS[name]
        if spec.merge_law == "unsupported":
            a, b = _make(name, seed=17), _make(name, seed=17)
            with pytest.raises(ValueError) as excinfo:
                a.merge(b)
            assert spec.merge_reason.split()[0].lower() in str(excinfo.value).lower()
            return
        shards, one_shot = self._shards(name, rng, num_shards=3)

        def merged(order):
            parts = [shards[i].copy() for i in order]
            acc = parts[0]
            for part in parts[1:]:
                acc.merge(part)
            return acc

        left = merged([0, 1, 2])
        right = merged([2, 0, 1])
        if spec.merge_law == "exact":
            # Associativity + commutativity, bit-for-bit, and equality with
            # the one-shot run (integer stream => exactly representable).
            probe = rng.integers(0, 5000, size=500)
            reference = one_shot.query(probe)
            _assert_state_equal(left, right)
            np.testing.assert_array_equal(left.query(probe), reference)
            np.testing.assert_array_equal(right.query(probe), reference)
        else:
            # Approximate law: merge order may shuffle which keys stay
            # exact, but a planted heavy key's mass must survive any order.
            planted, mass = 4242, 400.0
            for shard in shards:
                shard.insert(np.array([planted]), np.array([mass]))
            for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
                acc = merged(order)
                got = acc.query_single(planted)
                assert got == pytest.approx(3 * mass, rel=0.15), (
                    f"merge order {order} lost the planted heavy key: "
                    f"{got} vs {3 * mass}"
                )

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_random_split_counts(self, name, rng):
        """Merge law must hold for any shard count, not just 3."""
        spec = KINDS[name]
        if spec.merge_law != "exact":
            pytest.skip("random-split sweep applies to exact merge laws")
        for num_shards in (2, 4, 6):
            shards, one_shot = self._shards(name, rng, num_shards=num_shards)
            acc = shards[0]
            for part in shards[1:]:
                acc.merge(part)
            probe = rng.integers(0, 5000, size=300)
            np.testing.assert_array_equal(acc.query(probe), one_shot.query(probe))


class TestQuantizedVariantsConform:
    """The compact tier rides the same registry entries (dtype + quantum in
    the arrays), so the core contracts are re-pinned on quantized tables."""

    def _pair(self, dtype, seed=23):
        from repro.sketch.count_sketch import CountSketch

        return CountSketch(3, 256, seed=seed, dtype=dtype, quantum=0.25)

    @pytest.mark.parametrize("dtype", ["int16", "int32"])
    def test_round_trip_preserves_storage(self, dtype, rng, tmp_path):
        sketch = self._pair(dtype)
        keys, values = _stream(rng, integral=True)
        _insert_stream(sketch, keys, values)
        path = str(tmp_path / f"q{dtype}.npz")
        save_sketch(sketch, path)
        loaded = load_sketch(path)
        assert loaded.storage_dtype == np.dtype(dtype)
        assert loaded.quantum == 0.25
        np.testing.assert_array_equal(loaded.table, sketch.table)
        probe = rng.integers(0, 5000, size=300)
        np.testing.assert_array_equal(loaded.query(probe), sketch.query(probe))

    def test_promoted_table_round_trips(self, rng, tmp_path):
        sketch = self._pair("int16")
        sketch.insert(np.array([1]), np.array([0.25 * (np.iinfo(np.int16).max + 5)]))
        assert sketch.storage_dtype == np.int32  # promoted
        path = str(tmp_path / "promoted.npz")
        save_sketch(sketch, path)
        loaded = load_sketch(path)
        assert loaded.storage_dtype == np.int32
        assert loaded.quantum == 0.25
        np.testing.assert_array_equal(loaded.table, sketch.table)

    @pytest.mark.parametrize("dtype", ["int16", "int32"])
    def test_merge_law_exact_on_quantized(self, dtype, rng):
        keys, values = _stream(rng, n=600, integral=True)
        full = self._pair(dtype)
        _insert_stream(full, keys, values)
        a, b = self._pair(dtype), self._pair(dtype)
        _insert_stream(a, keys[:250], values[:250])
        _insert_stream(b, keys[250:], values[250:])
        ab = a.copy().merge(b)
        ba = b.copy().merge(a)
        np.testing.assert_array_equal(ab.table, ba.table)
        np.testing.assert_array_equal(ab.table, full.table)


class TestCorruptionDetection:
    """Every registered kind's file must fail *loudly* when damaged.

    A truncated copy or a flipped byte must raise
    :class:`~repro.durability.IntegrityError` naming the file and a
    reason — never load into a silently wrong sketch, never leak a
    zipfile/zlib internal error.  Rides the registry like every other
    conformance contract: future kinds inherit the tests for free.
    """

    def _saved(self, name, rng, tmp_path):
        sketch = _make(name, seed=31)
        _insert_stream(sketch, *_stream(rng))
        path = tmp_path / f"{name}.npz"
        save_sketch(sketch, str(path))
        return path

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_truncated_file_raises_clean_error(self, name, rng, tmp_path):
        from repro.durability import IntegrityError
        from repro.durability.faults import truncate_file

        path = self._saved(name, rng, tmp_path)
        truncate_file(path, fraction=0.5)
        with pytest.raises(IntegrityError) as excinfo:
            load_sketch(str(path))
        assert str(path) in str(excinfo.value)  # names the file

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_flipped_byte_raises_clean_error(self, name, rng, tmp_path):
        from repro.durability import IntegrityError
        from repro.durability.faults import flip_byte

        path = self._saved(name, rng, tmp_path)
        # Mid-file lands inside a member's compressed payload — a flip on
        # a zip header byte can be semantically dead, this one never is.
        flip_byte(path, offset=path.stat().st_size // 2)
        with pytest.raises(IntegrityError) as excinfo:
            load_sketch(str(path))
        assert str(path) in str(excinfo.value)

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_corrupt_table_caught_even_with_mmap(self, name, rng, tmp_path):
        """The lazy-verify mmap path must still catch table corruption
        when table verification is requested."""
        from repro.durability import IntegrityError
        from repro.durability.faults import flip_byte

        sketch = _make(name, seed=37)
        _insert_stream(sketch, *_stream(rng))
        path = tmp_path / f"{name}-mmap.npz"
        save_sketch(sketch, str(path), compress=False)
        flip_byte(path, offset=path.stat().st_size // 2)
        with pytest.raises(IntegrityError):
            load_sketch(str(path), mmap=True, verify_tables=True)


class TestCrossBackendBitIdentity:
    """Every registered kind must leave byte-identical state and answers on
    every importable backend — the backend is a throughput knob, never an
    accuracy knob.  One-backend hosts trivially pass with a single entry;
    the CI numba leg turns these into real numpy-vs-numba comparisons.
    """

    def _fitted(self, name, backend, monkeypatch, *, seed_stream=777):
        monkeypatch.setenv(kernels.ENV_VAR, backend)
        sketch = _make(name, seed=41)
        rng = np.random.default_rng(seed_stream)
        _insert_stream(sketch, *_stream(rng))
        return sketch

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_insert_and_query_identical(self, name, monkeypatch):
        probe = np.random.default_rng(778).integers(0, 5000, size=400)
        sketches = [
            self._fitted(name, backend, monkeypatch) for backend in BACKENDS
        ]
        reference = sketches[0]
        expected = reference.query(probe)
        for other in sketches[1:]:
            _assert_state_equal(other, reference)
            np.testing.assert_array_equal(other.query(probe), expected)

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_combined_insert_and_query_identical(self, name, monkeypatch):
        if not hasattr(KINDS[name].cls, "insert_and_query"):
            pytest.skip(f"kind {name!r} has no combined insert_and_query")
        live_rng = np.random.default_rng(555)
        live_keys, live_values = _stream(live_rng, n=300)
        outputs, sketches = [], []
        for backend in BACKENDS:
            sketch = self._fitted(name, backend, monkeypatch)
            outputs.append(sketch.insert_and_query(live_keys, live_values))
            sketches.append(sketch)
        for estimates, sketch in zip(outputs[1:], sketches[1:]):
            np.testing.assert_array_equal(estimates, outputs[0])
            _assert_state_equal(sketch, sketches[0])

    @pytest.mark.parametrize("name", sorted(KINDS))
    def test_merged_state_identical(self, name, monkeypatch):
        if KINDS[name].merge_law == "unsupported":
            pytest.skip(f"kind {name!r} declares merging unsupported")
        merged = []
        for backend in BACKENDS:
            monkeypatch.setenv(kernels.ENV_VAR, backend)
            rng = np.random.default_rng(911)
            keys, values = _stream(rng, n=600, integral=True)
            a = _make(name, seed=43)
            b = _make(name, seed=43)
            _insert_stream(a, keys[:300], values[:300])
            _insert_stream(b, keys[300:], values[300:])
            merged.append(a.merge(b))
        for other in merged[1:]:
            _assert_state_equal(other, merged[0])


class TestColdFilterDeclares:
    """Not registered — but it must *declare* both exclusions, not fail
    silently (the conformance contract for non-participating kinds)."""

    def test_not_serializable_with_reason(self, tmp_path):
        gate = ColdFilterSketch(3, 64, threshold=0.5)
        with pytest.raises(TypeError, match="order-dependent"):
            save_sketch(gate, str(tmp_path / "cf.npz"))

    def test_not_mergeable_with_reason(self):
        a = ColdFilterSketch(3, 64, threshold=0.5)
        b = ColdFilterSketch(3, 64, threshold=0.5)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)

    def test_not_registered(self):
        assert all(spec.cls is not ColdFilterSketch for spec in KINDS.values())
