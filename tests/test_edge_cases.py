"""Edge-case and cross-feature tests not covered by the per-module suites."""

import numpy as np
import pytest

from repro.core.api import build_estimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.core.estimator import SketchEstimator
from repro.data.streams import ShuffleBuffer, SparseSample
from repro.data.url_like import URLLikeStream
from repro.sketch.augmented import AugmentedSketch
from repro.sketch.count_sketch import CountSketch


class TestCorrelationWithRunningCentering:
    def test_combined_modes_estimate_correlations(self, rng):
        """correlation mode + running centering: shifted, scaled data."""
        d, n = 12, 4000
        data = rng.standard_normal((n, d)) * np.arange(1, d + 1) + 50.0
        data[:, 4] = 0.75 * (data[:, 2] - 50) / 3 * 5 + 0.66 * (data[:, 4] - 50) + 50
        est = SketchEstimator(CountSketch(5, 4096, seed=2), n)
        sk = CovarianceSketcher(
            d, est, mode="correlation", centering="running", batch_size=100
        )
        sk.fit_dense(data)
        truth = np.corrcoef(data.T)
        i, j, vals = sk.top_pairs(1, scan=True)
        true_top = np.unravel_index(
            np.argmax(np.abs(np.triu(truth, k=1))), truth.shape
        )
        assert {int(i[0]), int(j[0])} == set(true_top)

    def test_exact_centering_with_correlation_mode(self, rng):
        d, n = 8, 64
        data = rng.standard_normal((n, d)) + 7.0
        est = SketchEstimator(CountSketch(5, 4096, seed=3), n)
        sk = CovarianceSketcher(
            d, est, mode="correlation", centering="exact", batch_size=16
        )
        sk.fit_dense(data)
        keys = np.arange(d * (d - 1) // 2)
        got = sk.estimate_keys(keys)
        assert np.isfinite(got).all()
        assert np.abs(got).max() <= 1.5  # correlation-scale values


class TestColdFilterEstimatorIntegration:
    def test_explicit_threshold(self):
        est = build_estimator(
            "coldfilter", 100, 5, 1000, cold_threshold=0.25, seed=1
        )
        assert est.sketch.threshold == 0.25

    def test_default_threshold_scales_with_t(self):
        est = build_estimator("coldfilter", 200, 5, 1000, seed=1)
        assert est.sketch.threshold == pytest.approx(1.0 / 200)

    def test_end_to_end_on_planted_data(self, rng):
        d, n = 40, 1500
        data = rng.standard_normal((n, d))
        data[:, 5] = 0.9 * data[:, 2] + np.sqrt(1 - 0.81) * data[:, 5]
        est = build_estimator("coldfilter", n, 5, 2000, seed=2)
        sk = CovarianceSketcher(d, est, mode="correlation", batch_size=50)
        sk.fit_dense(data)
        i, j, _ = sk.top_pairs(1, scan=True)
        assert (int(i[0]), int(j[0])) == (2, 5)


class TestAugmentedExchangeCadence:
    def test_delayed_exchange_still_converges(self):
        asx = AugmentedSketch(
            3, 512, filter_capacity=2, seed=4, exchange_every=5
        )
        for _ in range(25):
            asx.insert(np.array([7]), np.array([4.0]))
        assert asx.query_single(7) == pytest.approx(100.0, rel=0.05)
        assert 7 in asx.filter_keys.tolist()


class TestShuffleBufferWithSparseSamples:
    def test_samples_survive_shuffling_intact(self):
        stream = URLLikeStream(dim=200, num_samples=40, num_groups=3,
                               group_size=4, background_nnz=5, seed=6)
        original = list(iter(stream))
        shuffled = list(ShuffleBuffer(original, buffer_size=16, seed=7))
        assert len(shuffled) == len(original)
        assert all(isinstance(s, SparseSample) for s in shuffled)
        total_in = sum(s.values.sum() for s in original)
        total_out = sum(s.values.sum() for s in shuffled)
        assert total_out == pytest.approx(total_in)


class TestFloat32Sketch:
    def test_float32_tables_work_end_to_end(self, rng):
        sketch = CountSketch(3, 1024, seed=8, dtype=np.float32)
        est = SketchEstimator(sketch, 100)
        keys = np.arange(50)
        for _ in range(100):
            est.ingest(keys, rng.standard_normal(50))
        out = est.estimate(keys)
        assert out.dtype == np.float64  # queries always return float64
        assert np.isfinite(out).all()
        # memory_floats is the paper's budget unit; memory_bytes reports
        # the actual residency of the storage tier (4 bytes per float32).
        assert sketch.memory_floats == 3 * 1024
        assert sketch.memory_bytes == 3 * 1024 * 4


class TestSingleSampleStreams:
    def test_one_sample_dense(self):
        est = SketchEstimator(CountSketch(3, 256, seed=9), 1)
        sk = CovarianceSketcher(5, est, mode="covariance", batch_size=4)
        sk.fit_dense(np.ones((1, 5)))
        assert sk.samples_seen == 1
        np.testing.assert_allclose(sk.estimate_keys(np.arange(10)), 1.0, atol=1e-9)

    def test_one_sample_sparse(self):
        est = SketchEstimator(CountSketch(3, 256, seed=9), 1)
        sk = CovarianceSketcher(5, est, mode="covariance", batch_size=4)
        sk.fit_sparse(iter([(np.array([0, 2]), np.array([2.0, 3.0]))]))
        key = 1  # pair (0, 2) in d=5: index = 0*4 - 0 + (2-0-1) = 1
        assert est.estimate(np.array([key]))[0] == pytest.approx(6.0)
