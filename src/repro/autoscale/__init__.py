"""Adaptive re-sketching: close the capacity-planner loop online.

The capacity planner (:mod:`repro.sketch.planner`) picks ``(K, R, dtype,
quantum, levels)`` once; the paper's whole point is *active* measurement —
adapt the budget as observed signal-to-noise shifts.  This package wires
the two together for a live serving stack:

* :func:`repro.sketch.planner.replan` — the pure decision function:
  ``(current plan, observed signals) -> Replan`` (grow / demote /
  escalate_decay / hold);
* :class:`AutoScaler` — the loop: samples the
  :class:`repro.obs.AccuracyProbe` gauges (collision energy, ROSNR, top-K
  churn) plus counter saturation at an ingest-driven cadence, asks
  ``replan``, and executes changed decisions through
  :meth:`repro.serving.ServingEstimator.migrate` — a history-preserving
  re-sketch that replays the retained window
  (:meth:`repro.streaming.PaneRing.rebuild`) into the new shape during a
  double-buffered swap.

Build the whole stack in one call with
:meth:`repro.serving.ServingEstimator.autoscaled`.
"""

from repro.autoscale.scaler import AutoScaler, plan_from_spec

__all__ = ["AutoScaler", "plan_from_spec"]
