"""The online autoscaling loop: observe -> replan -> migrate.

:class:`AutoScaler` owns everything :func:`repro.sketch.planner.replan`
deliberately does not: cadence (ingest-driven checks every
``check_every`` samples), cooldown after a migration (gauges must refill
before they are trusted again), a hard migration budget, the decision
log, and the actual execution through
:meth:`repro.serving.ServingEstimator.migrate`.
"""

from __future__ import annotations

import logging
import math
from collections import deque

import numpy as np

from repro.hashing.pairs import num_pairs, pair_to_index
from repro.obs.metrics import MetricsRegistry
from repro.sketch.planner import CapacityPlan, ObservedSignals, replan

__all__ = ["AutoScaler", "plan_from_spec"]

logger = logging.getLogger(__name__)


def plan_from_spec(spec, *, value_range: float = 1.0) -> CapacityPlan:
    """Describe an existing :class:`ShardSpec` as a :class:`CapacityPlan`.

    The autoscaler's starting point: the spec the stack was built from,
    restated in the planner's vocabulary so :func:`replan` can scale its
    budget.  ``value_range`` seeds the quantum of future *quantized*
    plans; the returned plan keeps the spec's own quantum verbatim.
    """
    itemsize = np.dtype(spec.storage).itemsize
    levels = max(1, int(getattr(spec, "levels", 1) or 1))
    if spec.method != "hcs":
        levels = 1
    budget_bytes = levels * spec.num_tables * spec.num_buckets * itemsize
    step_rel = 0.0
    if np.dtype(spec.storage).kind == "i":
        step_rel = 1.0 / float(np.iinfo(np.dtype(spec.storage)).max)
    gain = 8.0 / itemsize
    return CapacityPlan(
        n_features=int(spec.dim),
        num_pairs=int(num_pairs(int(spec.dim))),
        budget_bytes=int(budget_bytes),
        num_tables=int(spec.num_tables),
        num_buckets=int(spec.num_buckets),
        storage=str(spec.storage),
        quantum=spec.quantum,
        predicted_bytes_per_counter=float(itemsize),
        counters_vs_float64=float(gain),
        predicted_snr_gain_db=float(10.0 * math.log10(gain)),
        quantization_step_rel=float(step_rel),
        levels=levels,
        branching=int(getattr(spec, "branching", 16)),
    )


def _table_saturation(table: np.ndarray) -> float:
    if table.dtype.kind != "i" or table.size == 0:
        return 0.0
    peak = float(max(-int(table.min()), int(table.max())))
    return peak / float(np.iinfo(table.dtype).max)


def observed_saturation(sketcher) -> float:
    """Peak counter saturation across a write side's retained state.

    For a :class:`~repro.streaming.PaneRing` (or a durable wrapper over
    one) this is the max over every closed pane's table plus the open
    pane's live store; for a plain pipeline, the backing sketch's
    :attr:`~repro.sketch.CountSketch.saturation`.  Float storage reports
    0.0 throughout.
    """
    closed = getattr(sketcher, "_closed", None)
    if closed is not None:
        sat = max(
            (_table_saturation(pane.table) for pane in closed), default=0.0
        )
        open_side = getattr(sketcher, "_open", None)
        sketch = getattr(getattr(open_side, "estimator", None), "sketch", None)
    else:
        sketch = getattr(getattr(sketcher, "estimator", None), "sketch", None)
        sat = 0.0
    if sketch is not None:
        sat = max(sat, float(getattr(sketch, "saturation", 0.0)))
    return sat


class AutoScaler:
    """Drive :meth:`ServingEstimator.migrate` from live accuracy gauges.

    Parameters
    ----------
    serving:
        The :class:`repro.serving.ServingEstimator` to watch and migrate.
        Its :attr:`probe` supplies the read-side signals (built
        automatically by :meth:`ServingEstimator.autoscaled`).
    check_every:
        Ingest-driven cadence: run one observe/replan step every this
        many write-side samples (the serving layer calls
        :meth:`on_ingest` after each committed ingest).
    cooldown:
        Check intervals to sit out after a committed migration — the
        probe was just reset, so its gauges need at least one full
        refill before they describe the *new* configuration.
    max_migrations:
        Hard budget on executed migrations (a runaway trigger loop must
        not ratchet memory forever); ``None`` removes the bound.
    min_panes:
        Floor for decay escalation — the window never shrinks below this
        many panes (history-preserving migration needs retained panes).
    collision_ceiling / rosnr_floor / churn_ceiling / saturation_ceiling
    / demote_collision_floor / growth / window_shrink / max_budget_bytes:
        Trigger thresholds, forwarded verbatim to
        :func:`repro.sketch.planner.replan` (``None`` disables the
        corresponding trigger).
    topk:
        Top-pair set size fed to the probe's churn gauge each check.
    log_limit:
        Decision-log ring size (every check logs one decision, executed
        or not).
    """

    def __init__(
        self,
        serving,
        *,
        check_every: int = 2000,
        cooldown: int = 1,
        max_migrations: int | None = 8,
        min_panes: int = 2,
        collision_ceiling: float | None = None,
        rosnr_floor: float | None = None,
        churn_ceiling: float | None = 0.5,
        saturation_ceiling: float | None = 0.85,
        demote_collision_floor: float | None = None,
        growth: float = 2.0,
        window_shrink: float = 0.5,
        max_budget_bytes: int | None = None,
        value_range: float = 1.0,
        topk: int = 32,
        log_limit: int = 64,
    ):
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if min_panes < 2:
            raise ValueError(f"min_panes must be >= 2, got {min_panes}")
        self.serving = serving
        self.check_every = int(check_every)
        self.cooldown = int(cooldown)
        self.max_migrations = max_migrations
        self.min_panes = int(min_panes)
        self.thresholds = {
            "collision_ceiling": collision_ceiling,
            "rosnr_floor": rosnr_floor,
            "churn_ceiling": churn_ceiling,
            "saturation_ceiling": saturation_ceiling,
            "demote_collision_floor": demote_collision_floor,
            "growth": growth,
            "window_shrink": window_shrink,
            "max_budget_bytes": max_budget_bytes,
        }
        self.plan = plan_from_spec(
            serving.sketcher.spec, value_range=value_range
        )
        self.topk = int(topk)
        self.decisions: deque[dict] = deque(maxlen=int(log_limit))
        self.migrations_executed = 0
        self.last_error: str | None = None
        self._next_check = self.check_every
        self._cooldown_until = 0

        registry = serving.registry
        if not isinstance(registry, MetricsRegistry):  # pragma: no cover
            registry = MetricsRegistry()
        self._registry = registry
        self._checks_total = registry.counter(
            "repro_autoscale_checks_total", "observe/replan steps run"
        )
        self._errors_total = registry.counter(
            "repro_autoscale_errors_total",
            "autoscale steps that raised (ingest unaffected)",
        )
        registry.gauge_fn(
            "repro_autoscale_budget_bytes",
            lambda: self.plan.budget_bytes,
            "current plan's counter byte budget",
        )
        registry.gauge_fn(
            "repro_autoscale_migrations_executed",
            lambda: self.migrations_executed,
            "migrations this scaler committed",
        )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def on_ingest(self) -> None:
        """Ingest hook: run a check when the cadence threshold crosses.

        Never raises — a broken autoscale step must not fail the ingest
        that triggered it.  Errors are counted, logged and surfaced via
        :attr:`last_error` / :meth:`stats`.
        """
        if self.serving.sketcher.samples_seen < self._next_check:
            return
        try:
            self.step()
        except Exception as exc:  # noqa: BLE001 - ingest must survive
            self._errors_total.inc()
            self.last_error = f"{type(exc).__name__}: {exc}"
            logger.warning("autoscale step failed: %s", exc)

    def observe(self) -> ObservedSignals:
        """One probe pass -> the planner's :class:`ObservedSignals`."""
        serving = self.serving
        readings: dict = {}
        probe = serving.probe
        if probe is not None:
            i, j, _ = serving.top_pairs(self.topk)
            top_keys = (
                pair_to_index(i, j, serving.sketcher.dim)
                if np.asarray(i).size
                else np.empty(0, dtype=np.int64)
            )
            readings = probe.sample(serving.query_keys, top_keys=top_keys)
        return ObservedSignals(
            samples_seen=int(serving.sketcher.samples_seen),
            collision_energy=readings.get("collision_energy"),
            rosnr=readings.get("rosnr"),
            topk_churn=readings.get("topk_churn"),
            saturation=observed_saturation(serving.sketcher),
        )

    def step(self) -> dict:
        """Observe, replan, and execute a changed decision; returns the
        decision-log entry."""
        serving = self.serving
        self._checks_total.inc()
        samples_seen = int(serving.sketcher.samples_seen)
        self._next_check = samples_seen + self.check_every

        observed = self.observe()
        decision = replan(self.plan, observed, **self.thresholds)
        entry = {
            "samples_seen": samples_seen,
            "action": decision.action,
            "reason": decision.reason,
            "executed": False,
            "config_version": serving.config_version,
            "collision_energy": observed.collision_energy,
            "rosnr": observed.rosnr,
            "topk_churn": observed.topk_churn,
            "saturation": observed.saturation,
        }
        self._registry.counter(
            "repro_autoscale_decisions_total",
            "replan decisions by action",
            labels={"action": decision.action},
        ).inc()
        if decision.changed and self._may_execute(samples_seen, entry):
            self._execute(decision)
            entry["executed"] = True
            entry["config_version"] = serving.config_version
        self.decisions.append(entry)
        return entry

    def _may_execute(self, samples_seen: int, entry: dict) -> bool:
        if samples_seen < self._cooldown_until:
            entry["reason"] += "; suppressed: cooling down"
            return False
        if (
            self.max_migrations is not None
            and self.migrations_executed >= self.max_migrations
        ):
            entry["reason"] += "; suppressed: migration budget spent"
            return False
        return True

    def _execute(self, decision) -> None:
        serving = self.serving
        num_panes = None
        if decision.window_scale != 1.0:
            current = int(serving.sketcher.num_panes)
            num_panes = max(
                self.min_panes, int(round(current * decision.window_scale))
            )
            if num_panes == current and decision.action == "escalate_decay":
                # Already at the floor: nothing to change.
                return
        serving.migrate(
            decision.plan,
            num_panes=num_panes,
            trigger=decision.action,
            reason=decision.reason,
        )
        self.plan = decision.plan
        self.migrations_executed += 1
        self._cooldown_until = (
            int(serving.sketcher.samples_seen)
            + self.cooldown * self.check_every
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready scaler state: plan, counters, decision-log tail."""
        return {
            "plan": {
                "budget_bytes": self.plan.budget_bytes,
                "num_tables": self.plan.num_tables,
                "num_buckets": self.plan.num_buckets,
                "storage": self.plan.storage,
                "quantum": self.plan.quantum,
                "levels": self.plan.levels,
            },
            "check_every": self.check_every,
            "cooldown": self.cooldown,
            "migrations_executed": self.migrations_executed,
            "max_migrations": self.max_migrations,
            "last_error": self.last_error,
            "decisions": list(self.decisions)[-8:],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutoScaler(budget={self.plan.budget_bytes}b, "
            f"migrations={self.migrations_executed}, "
            f"decisions={len(self.decisions)})"
        )
