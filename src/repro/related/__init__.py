"""Related-work baselines (section 2 of the paper) implemented for comparison."""

from repro.related.pagh import CompressedCovarianceSketch

__all__ = ["CompressedCovarianceSketch"]
