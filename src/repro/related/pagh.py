"""Compressed Matrix Multiplication (Pagh 2013) as a covariance sketcher.

The paper's related-work section: "Pagh uses count sketch (AMS Sketch) to
compute the matrix outer product when the product is sparse ... they first
'compress' the matrix product into a polynomial expression.  Then, they use
FFT for polynomial multiplication ... [it] can also be used to compute the
empirical covariance matrix in sub-quadratic time since a covariance matrix
can be expressed in the form of an outer product."

The construction: with per-feature hashes ``h1, h2: [d] -> [b]`` and signs
``s1, s2``, the count sketch of the outer product ``y y^T`` under the pair
hash ``h(i, j) = (h1(i) + h2(j)) mod b`` and sign ``s1(i) s2(j)`` equals the
circular convolution of the two sketched feature polynomials::

    p1[k] = sum_{i: h1(i)=k} s1(i) y_i        p2 likewise with (h2, s2)
    conv(p1, p2)[k] = sum_{h1(i)+h2(j) = k mod b} s1(i) s2(j) y_i y_j

Convolution is an elementwise product in the frequency domain, so each
sample costs ``O(nnz + b log b)`` per repetition — *independent of the d^2
pair count*, which is Pagh's sub-quadratic claim.  Accumulation happens in
the frequency domain (linear), with a single inverse FFT at query time.

Contrast with ASCS: Pagh compresses every sample wholesale and cannot
filter noise pairs, so its estimation error is the vanilla count-sketch
error; it trades the pair-expansion loop for FFTs.  The benchmark
``benchmarks/bench_related_pagh.py`` measures both sides of that trade.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import SignHash, make_family
from repro.hashing.pairs import index_to_pair

__all__ = ["CompressedCovarianceSketch"]


class CompressedCovarianceSketch:
    """FFT-based count sketch of the streaming covariance outer product.

    Parameters
    ----------
    dim:
        Number of features ``d``.  Per-feature hash values are precomputed,
        so memory includes ``O(K d)`` small integers.
    num_tables:
        ``K`` independent repetitions (median of estimates).
    num_buckets:
        ``b`` — polynomial length per repetition.  The pair sketch lives in
        ``b`` buckets, so accuracy matches a count sketch with ``R = b``.
    seed, family:
        Hashing configuration (see :mod:`repro.hashing`).
    """

    def __init__(
        self,
        dim: int,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
    ):
        if dim < 2:
            raise ValueError(f"dim must be >= 2, got {dim}")
        if num_tables < 1 or num_buckets < 2:
            raise ValueError("need num_tables >= 1 and num_buckets >= 2")
        self.dim = int(dim)
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.samples_seen = 0

        features = np.arange(self.dim, dtype=np.int64)
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(4 * self.num_tables)
        self._h1 = np.empty((self.num_tables, self.dim), dtype=np.int64)
        self._h2 = np.empty((self.num_tables, self.dim), dtype=np.int64)
        self._s1 = np.empty((self.num_tables, self.dim), dtype=np.float64)
        self._s2 = np.empty((self.num_tables, self.dim), dtype=np.float64)
        for e in range(self.num_tables):
            seeds = [int(children[4 * e + k].generate_state(1)[0]) for k in range(4)]
            self._h1[e] = make_family(family, self.num_buckets, seeds[0])(features)
            self._h2[e] = make_family(family, self.num_buckets, seeds[1])(features)
            self._s1[e] = SignHash(seeds[2])(features)
            self._s2[e] = SignHash(seeds[3])(features)

        # Frequency-domain accumulators, one per repetition.
        self._freq = np.zeros(
            (self.num_tables, self.num_buckets // 2 + 1), dtype=np.complex128
        )
        self._time_domain: np.ndarray | None = None

    # ------------------------------------------------------------------
    def insert_sample(self, sample: np.ndarray) -> None:
        """Fold one dense sample ``y`` into the sketch."""
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {sample.shape}")
        idx = np.nonzero(sample)[0]
        self.insert_sparse(idx, sample[idx])

    def insert_sparse(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Fold one sparse sample (non-zero ``indices`` / ``values``) in."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape:
            raise ValueError("indices and values must align")
        self.samples_seen += 1
        self._time_domain = None
        if indices.size == 0:
            return
        b = self.num_buckets
        for e in range(self.num_tables):
            p1 = np.bincount(
                self._h1[e, indices], weights=self._s1[e, indices] * values,
                minlength=b,
            )
            p2 = np.bincount(
                self._h2[e, indices], weights=self._s2[e, indices] * values,
                minlength=b,
            )
            self._freq[e] += np.fft.rfft(p1) * np.fft.rfft(p2)

    def _tables(self) -> np.ndarray:
        """Time-domain pair sketch, ``(K, b)`` (cached until next insert)."""
        if self._time_domain is None:
            self._time_domain = np.fft.irfft(self._freq, n=self.num_buckets, axis=1)
        return self._time_domain

    # ------------------------------------------------------------------
    def query_pairs(self, i, j) -> np.ndarray:
        """Estimate ``sum_t y_i y_j`` for feature pairs ``(i, j)``.

        Uses both symmetric cells ``(i, j)`` and ``(j, i)`` of the outer
        product in every repetition — ``2K`` values per pair — and returns
        their median.
        """
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if i.shape != j.shape:
            raise ValueError("i and j must align")
        if i.size == 0:
            return np.empty(0, dtype=np.float64)
        tables = self._tables()
        b = self.num_buckets
        estimates = np.empty((2 * self.num_tables, i.size), dtype=np.float64)
        for e in range(self.num_tables):
            cell_ij = (self._h1[e, i] + self._h2[e, j]) % b
            cell_ji = (self._h1[e, j] + self._h2[e, i]) % b
            estimates[2 * e] = tables[e, cell_ij] * self._s1[e, i] * self._s2[e, j]
            estimates[2 * e + 1] = tables[e, cell_ji] * self._s1[e, j] * self._s2[e, i]
        return np.median(estimates, axis=0)

    def query_keys(self, keys) -> np.ndarray:
        """Estimate by flat pair key (canonical upper-triangle index)."""
        i, j = index_to_pair(np.asarray(keys, dtype=np.int64), self.dim)
        return self.query_pairs(i, j)

    def query_mean_keys(self, keys) -> np.ndarray:
        """Mean-scaled estimates, comparable to the pipeline estimators."""
        if self.samples_seen == 0:
            return np.zeros(np.asarray(keys).shape, dtype=np.float64)
        return self.query_keys(keys) / self.samples_seen

    # ------------------------------------------------------------------
    @property
    def memory_floats(self) -> int:
        """Counter budget: K complex spectra of b/2+1 = K*(b+2) floats."""
        return self.num_tables * (self.num_buckets + 2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedCovarianceSketch(d={self.dim}, K={self.num_tables}, "
            f"b={self.num_buckets}, seen={self.samples_seen})"
        )
