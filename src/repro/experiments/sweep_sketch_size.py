"""Section 8.3 text — "ASCS vs CS at different sketch sizes".

The paper describes (figures cut for space): sweeping ``R`` from 1,000 to
100,000 on gisette with ``K = 5``, "ASCS consistently outperforms CS ...
when R is large the improvement is minuscule ... at very small R hash
tables are too crowded and both have bad F1 scores ... for reasonable R
(10,000 or 20,000) the improvement is significant."

This module reproduces that excluded figure as a table: max-F1 of locating
the top signal correlations at each sketch size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covariance.ground_truth import flat_true_correlations
from repro.data.registry import make_dataset
from repro.evaluation.harness import run_method
from repro.evaluation.metrics import max_f1_score
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Section 8.3 text: ASCS >= CS across R = 1,000..100,000 (K=5, gisette); "
    "both bad at R=1,000, improvement significant at R=10,000-20,000, "
    "minuscule at R=100,000."
)


@dataclass
class Config:
    dim: int = 300
    samples: int = 3000
    # Bucket counts as fractions of p, spanning crowded -> comfortable
    # (the paper's 1,000..100,000 over p ~ 500K is 0.2%..20%).
    bucket_fractions: tuple[float, ...] = (0.002, 0.01, 0.04, 0.1, 0.3)
    num_tables: int = 5
    signal_set_size: int = 200
    batch_size: int = 50
    seed: int = 0


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Section 8.3 sweep - max F1 vs sketch size R (gisette, K=5)",
        columns=("R", "R/p", "CS", "ASCS", "ASCS-CS"),
    )
    dataset = make_dataset("gisette", d=config.dim, n=config.samples, seed=config.seed)
    dense = dataset.dense()
    truth = flat_true_correlations(dense)
    p = truth.size
    signals = np.argsort(-truth)[: config.signal_set_size]

    for fraction in config.bucket_fractions:
        num_buckets = max(16, int(fraction * p))
        memory = num_buckets * config.num_tables
        f1 = {}
        for method in ("cs", "ascs"):
            result = run_method(
                dense,
                method,
                memory,
                dataset.alpha,
                num_tables=config.num_tables,
                batch_size=config.batch_size,
                seed=config.seed,
            )
            f1[method] = max_f1_score(
                result.ranked_keys[: 20 * config.signal_set_size], signals
            )
        table.add_row(
            num_buckets, fraction, f1["cs"], f1["ascs"], f1["ascs"] - f1["cs"]
        )

    table.notes.append(
        f"d={config.dim}, n={config.samples}, signal set = top "
        f"{config.signal_set_size} true correlations"
    )
    return table
