"""Table 4 — mean correlation of top fractions of ``alpha * p`` entries.

For each dataset and each fraction ``f`` in {0.01, 0.05, 0.1, 0.25, 0.5, 1},
rank all pairs by sketch estimate and average the *true* correlation of the
top ``f * alpha * p`` — comparing CS, Augmented Sketch and ASCS at the same
memory budget (the paper's R=20000, K=5 = 20% of p).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covariance.ground_truth import flat_true_correlations
from repro.data.registry import make_dataset
from repro.evaluation.harness import run_method
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Table 4 (fraction 0.01*alpha*p row): cifar10 CS 0.43 / ASketch 0.40 / "
    "ASCS 0.58; epsilon 0.43/0.38/0.62; gisette 0.92/0.98/0.97; rcv1 "
    "0.85/0.85/0.97; sector 0.90/0.88/0.94.  ASCS best or tied on nearly "
    "every cell, advantage shrinking as the fraction grows."
)


@dataclass
class Config:
    datasets: tuple[str, ...] = ("cifar10", "epsilon", "gisette", "rcv1", "sector")
    methods: tuple[str, ...] = ("cs", "asketch", "ascs")
    fractions: tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)
    dim: int = 300
    samples: int = 3000
    memory_fraction: float = 0.2
    num_tables: int = 5
    batch_size: int = 50
    seed: int = 0


METHOD_LABELS = {"cs": "CS", "asketch": "ASketch", "ascs": "ASCS"}


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Table 4 - mean correlation of top fraction*alpha*p entries",
        columns=("fraction", "method") + tuple(config.datasets),
    )
    p = config.dim * (config.dim - 1) // 2
    memory = max(200, int(config.memory_fraction * p))

    # dataset -> method -> ranked keys; dataset -> (truth, alpha)
    rankings: dict[str, dict[str, np.ndarray]] = {}
    truths: dict[str, tuple[np.ndarray, float]] = {}
    for name in config.datasets:
        dataset = make_dataset(name, d=config.dim, n=config.samples, seed=config.seed)
        dense = dataset.dense()
        truths[name] = (flat_true_correlations(dense), dataset.alpha)
        rankings[name] = {}
        for method in config.methods:
            result = run_method(
                dense,
                method,
                memory,
                dataset.alpha,
                num_tables=config.num_tables,
                batch_size=config.batch_size,
                seed=config.seed,
            )
            rankings[name][method] = result.ranked_keys

    for fraction in config.fractions:
        for method in config.methods:
            row = [fraction, METHOD_LABELS[method]]
            for name in config.datasets:
                truth, alpha = truths[name]
                k = max(1, int(round(fraction * alpha * truth.size)))
                row.append(
                    mean_top_true_value(rankings[name][method], truth, k)
                )
            table.add_row(*row)

    table.notes.append(
        f"d={config.dim}, n={config.samples}, memory = {memory} floats "
        f"(~{config.memory_fraction:.0%} of p), K={config.num_tables}"
    )
    return table
