"""Figure 3 — pairwise correlation between covariance entries.

Validates the independence assumption of section 6.1: across replicates,
the empirical covariance entries ``(X-bar_i, X-bar_j)`` should be nearly
uncorrelated.  The paper reports that on the simulation dataset "over 97%
of the covariance pairs have correlations less than 0.02".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.registry import make_dataset
from repro.experiments.base import TableResult
from repro.experiments.replicates import replicate_covariances, simulation_model

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Figure 3: histogram of |corr(X-bar_i, X-bar_j)| concentrated near 0; "
    "simulation: >97% of pairs below 0.02."
)


@dataclass
class Config:
    dim: int = 60
    num_replicates: int = 4000
    t: int = 150
    num_entries: int = 120  # covariance entries whose cross-correlations we test
    thresholds: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2)
    gisette_samples: int = 1500
    seed: int = 0


def _cross_correlation_stats(entries: np.ndarray, thresholds) -> list[float]:
    """Fraction of entry pairs with |corr| below each threshold."""
    corr = np.corrcoef(entries.T)
    rows, cols = np.triu_indices(corr.shape[0], k=1)
    vals = np.abs(corr[rows, cols])
    vals = vals[np.isfinite(vals)]
    return [float(np.mean(vals <= thr)) for thr in thresholds]


def run(config: Config = Config()) -> TableResult:
    rng = np.random.default_rng(config.seed)
    table = TableResult(
        title="Figure 3 - fraction of covariance-entry pairs with |corr| <= x",
        columns=("source",) + tuple(f"x={thr}" for thr in config.thresholds)
        + ("median |corr|",),
    )

    # Simulation dataset (fresh samples per replicate).
    model = simulation_model(config.dim, seed=config.seed)
    p = config.dim * (config.dim - 1) // 2
    keys = rng.choice(p, size=min(config.num_entries, p), replace=False)
    sim = replicate_covariances(
        model, config.num_replicates, config.t, seed=config.seed + 1, pair_keys=keys
    )
    corr = np.corrcoef(sim.T)
    med = float(np.median(np.abs(corr[np.triu_indices(corr.shape[0], k=1)])))
    table.add_row("simulation", *_cross_correlation_stats(sim, config.thresholds), med)

    # gisette-like (bootstrap replicates).
    dataset = make_dataset(
        "gisette", d=config.dim, n=config.gisette_samples, seed=config.seed + 2
    )
    gis = replicate_covariances(
        dataset.dense(),
        config.num_replicates,
        config.t,
        seed=config.seed + 3,
        pair_keys=keys,
    )
    corr = np.corrcoef(gis.T)
    med = float(np.median(np.abs(corr[np.triu_indices(corr.shape[0], k=1)])))
    table.add_row("gisette", *_cross_correlation_stats(gis, config.thresholds), med)

    noise_floor = 1.0 / np.sqrt(config.num_replicates)
    table.notes.append(
        f"{config.num_replicates} replicates of t={config.t} samples, "
        f"{len(keys)} covariance entries inspected"
    )
    table.notes.append(
        f"correlation-estimation noise floor ~{noise_floor:.3f}: even exactly "
        "independent entries show |corr| of this order (the paper's 15k "
        "replicates have floor 0.008)"
    )
    return table
