"""Replicate machinery for the distribution-assumption studies (section 6.2).

Figures 3/4 and Table 1 need many independent realisations of the empirical
covariance entries ``X-bar_i^(t)``: the paper simulates 15,000 datasets (and
bootstraps "gisette") of 1,000 samples each, computing the covariances of
the first 150 samples.  This module reproduces that protocol at configurable
scale for either a generative model (fresh samples per replicate) or a
dataset (bootstrap resampling, as the paper does for gisette).
"""

from __future__ import annotations

import numpy as np

from repro.covariance.updates import triu_pair_values
from repro.data.synthetic import BlockCorrelationModel

__all__ = ["replicate_covariances", "simulation_model"]


def simulation_model(
    dim: int = 80, alpha: float = 0.005, seed: int = 0
) -> BlockCorrelationModel:
    """The section-6.2 simulation source: alpha signal pairs, strengths
    uniform in (0.5, 1)."""
    return BlockCorrelationModel.from_alpha(
        dim, alpha=alpha, rho_range=(0.5, 1.0), seed=seed
    )


def replicate_covariances(
    source,
    num_replicates: int,
    t: int,
    *,
    seed: int = 0,
    pair_keys: np.ndarray | None = None,
    standardize: bool = True,
) -> np.ndarray:
    """Matrix of empirical covariance entries across replicates.

    Parameters
    ----------
    source:
        Either a :class:`repro.data.BlockCorrelationModel` (each replicate
        draws ``t`` fresh samples) or a dense ``(n, d)`` array (each
        replicate bootstraps ``t`` rows with replacement — the paper's
        protocol for datasets with limited samples).
    num_replicates:
        Number of independent replicates.
    t:
        Samples per replicate (paper: 150).
    pair_keys:
        Optional flat pair keys to keep (default: all pairs).
    standardize:
        Divide by the replicate feature stds (correlation-scale entries),
        matching the experiments' correlation setting.

    Returns
    -------
    Array of shape ``(num_replicates, num_pairs_kept)``.
    """
    rng = np.random.default_rng(seed)
    if isinstance(source, BlockCorrelationModel):
        draw = lambda: source.sample(t, rng)  # noqa: E731 - tight local lambda
    else:
        data = np.asarray(source, dtype=np.float64)
        draw = lambda: data[rng.integers(0, data.shape[0], size=t)]  # noqa: E731

    out = []
    for _ in range(num_replicates):
        sample = draw()
        centered = sample - sample.mean(axis=0)
        cov = centered.T @ centered / t
        if standardize:
            std = np.sqrt(np.maximum(np.diag(cov), 1e-12))
            cov = cov / np.outer(std, std)
        flat = triu_pair_values(cov)
        out.append(flat if pair_keys is None else flat[pair_keys])
    return np.asarray(out)
