"""Figure 1 — empirical CDF of |correlation| across datasets.

The paper's motivation figure: "most of the correlations are close to zero,
and only a few of them are significantly larger than zero."  We compute the
exact correlation matrix of each (synthetic stand-in) dataset and report
the proportion of ``|corr| <= x`` on a grid of thresholds — the (x, y)
series of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.covariance.ground_truth import flat_true_correlations
from repro.data.registry import make_dataset
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Figure 1: for all four datasets the CDF of |correlation| rises almost "
    "to 1 within x <= 0.1; only a tiny tail extends to large correlations."
)


@dataclass
class Config:
    datasets: tuple[str, ...] = ("gisette", "epsilon", "cifar10", "rcv1")
    dim: int = 400
    samples: int = 2500
    thresholds: tuple[float, ...] = field(
        default=(0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)
    )
    seed: int = 0


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Figure 1 - proportion of |correlation| <= x",
        columns=("x",) + tuple(config.datasets),
    )
    flats = {}
    for name in config.datasets:
        dataset = make_dataset(name, d=config.dim, n=config.samples, seed=config.seed)
        flats[name] = np.abs(flat_true_correlations(dataset.dense()))
    for x in config.thresholds:
        row = [x]
        for name in config.datasets:
            row.append(float(np.mean(flats[name] <= x)))
        table.add_row(*row)
    table.notes.append(
        f"synthetic stand-ins at d={config.dim}, n={config.samples} "
        "(see DESIGN.md substitutions)"
    )
    return table
