"""Figure 6 — accuracy (max F1) of locating the top signal correlations.

Panels (a)-(e): per dataset, the max-F1 achieved by vanilla CS and by ASCS
run with several choices of the signal strength ``u`` (percentiles of the
pilot estimate vector around the ``(1-alpha)`` percentile) — demonstrating
robustness of the improvement to ``u``.  Panel (f): gisette with ``u``
fixed and ``alpha`` varied — robustness to ``alpha``.

The x-axis of the paper's figure is the number of top signal correlations
``s`` (with the corresponding correlation value in brackets); the y-axis is
the maximum F1 over all prefixes of the estimate ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covariance.ground_truth import flat_true_correlations
from repro.core.api import run_pilot
from repro.data.registry import make_dataset
from repro.evaluation.harness import run_method
from repro.evaluation.metrics import max_f1_score
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Figure 6: ASCS's F1 dominates CS for every dataset across a wide range "
    "of u percentiles (panels a-e) and is robust to the choice of alpha "
    "(panel f)."
)


@dataclass
class Config:
    datasets: tuple[str, ...] = ("gisette", "epsilon", "cifar10", "sector", "rcv1")
    dim: int = 300
    samples: int = 3000
    memory_fraction: float = 0.2  # M = 20% of p, the paper's R=20000/K=5 setting
    num_tables: int = 5
    u_percentiles: tuple[float, ...] = (0.90, 0.95, 0.99)
    top_sizes: tuple[int, ...] = (10, 30, 100, 300, 1000)
    alphas_panel_f: tuple[float, ...] = (0.01, 0.02, 0.04)
    seed: int = 0


def _signal_sets(truth: np.ndarray, sizes) -> dict[int, np.ndarray]:
    order = np.argsort(-truth, kind="stable")
    return {s: order[:s] for s in sizes if s <= truth.size}


def _f1_rows(
    table: TableResult,
    dataset_name: str,
    label: str,
    ranked: np.ndarray,
    truth: np.ndarray,
    sizes,
) -> None:
    sets = _signal_sets(truth, sizes)
    for s, keys in sets.items():
        corr_at_s = float(truth[keys[-1]])
        f1 = max_f1_score(ranked[: 20 * s], keys)
        table.add_row(dataset_name, label, s, corr_at_s, f1)


def run(config: Config = Config()) -> list[TableResult]:
    main = TableResult(
        title="Figure 6(a-e) - max F1 of locating top-s signal correlations",
        columns=("dataset", "method", "s", "corr_at_s", "max_f1"),
    )
    p = config.dim * (config.dim - 1) // 2
    memory = max(200, int(config.memory_fraction * p))

    for name in config.datasets:
        dataset = make_dataset(name, d=config.dim, n=config.samples, seed=config.seed)
        dense = dataset.dense()
        alpha = dataset.alpha
        truth = flat_true_correlations(dense)

        pilot = run_pilot(
            dense,
            alpha,
            num_buckets=memory // config.num_tables,
            num_tables=config.num_tables,
            seed=config.seed,
            extra_percentiles=tuple(config.u_percentiles),
        )

        cs = run_method(
            dense, "cs", memory, alpha, seed=config.seed, batch_size=50
        )
        _f1_rows(main, name, "CS", cs.ranked_keys, truth, config.top_sizes)

        for q in config.u_percentiles:
            u = max(pilot.percentiles[q], 1e-6)
            ascs = run_method(
                dense,
                "ascs",
                memory,
                alpha,
                u=u,
                sigma=pilot.sigma,
                seed=config.seed,
                batch_size=50,
            )
            _f1_rows(
                main,
                name,
                f"ASCS u@{int(q * 100)}%",
                ascs.ranked_keys,
                truth,
                config.top_sizes,
            )

    panel_f = TableResult(
        title="Figure 6(f) - gisette, robustness to alpha (u fixed)",
        columns=("dataset", "alpha", "s", "corr_at_s", "max_f1"),
    )
    dataset = make_dataset("gisette", d=config.dim, n=config.samples, seed=config.seed)
    dense = dataset.dense()
    truth = flat_true_correlations(dense)
    pilot = run_pilot(
        dense,
        dataset.alpha,
        num_buckets=memory // config.num_tables,
        num_tables=config.num_tables,
        seed=config.seed,
    )
    for alpha in config.alphas_panel_f:
        ascs = run_method(
            dense,
            "ascs",
            memory,
            alpha,
            u=pilot.u,
            sigma=pilot.sigma,
            seed=config.seed,
            batch_size=50,
        )
        sets = _signal_sets(truth, config.top_sizes)
        for s, keys in sets.items():
            panel_f.add_row(
                "gisette",
                alpha,
                s,
                float(truth[keys[-1]]),
                max_f1_score(ascs.ranked_keys[: 20 * s], keys),
            )

    main.notes.append(f"memory = {memory} floats (~{config.memory_fraction:.0%} of p)")
    return [main, panel_f]
