"""Table 5 — ASCS sensitivity to the number of hash tables ``K``.

For a fixed float budget ``M`` the sketch can spend its memory on more
tables (better medians) or wider tables (fewer collisions): ``R = M / K``.
The paper sweeps ``K`` in {2,4,6,8,10} and budgets from 2% to 100% of ``p``
on gisette, reporting the mean correlation of the top ``0.1 * alpha * p``
entries found by ASCS — concluding ASCS is robust for ``K`` in 4-10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.covariance.ground_truth import flat_true_correlations
from repro.data.registry import make_dataset
from repro.evaluation.harness import run_method
from repro.evaluation.metrics import mean_top_true_value
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Table 5 (gisette, top 0.1*alpha*p): performance rises with budget "
    "(M=10K: ~0.10-0.14 -> M=500K: ~0.54-0.63) and is flat in K for K>=4; "
    "K=2 lags at every budget."
)


@dataclass
class Config:
    dim: int = 300
    samples: int = 3000
    # Budgets as fractions of p, mirroring the paper's 10K..500K over p=500K.
    budget_fractions: tuple[float, ...] = (0.02, 0.04, 0.1, 0.2, 1.0)
    num_tables_sweep: tuple[int, ...] = (2, 4, 6, 8, 10)
    top_fraction: float = 0.1
    batch_size: int = 50
    seed: int = 0


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Table 5 - ASCS mean correlation of top 0.1*alpha*p (gisette) vs K",
        columns=("budget M",) + tuple(f"K={k}" for k in config.num_tables_sweep),
    )
    dataset = make_dataset("gisette", d=config.dim, n=config.samples, seed=config.seed)
    dense = dataset.dense()
    truth = flat_true_correlations(dense)
    alpha = dataset.alpha
    p = truth.size
    top_k = max(1, int(round(config.top_fraction * alpha * p)))

    for fraction in config.budget_fractions:
        memory = max(100, int(fraction * p))
        row = [f"{memory} ({fraction:.0%} p)"]
        for num_tables in config.num_tables_sweep:
            result = run_method(
                dense,
                "ascs",
                memory,
                alpha,
                num_tables=num_tables,
                batch_size=config.batch_size,
                seed=config.seed,
            )
            row.append(mean_top_true_value(result.ranked_keys, truth, top_k))
        table.add_row(*row)

    table.notes.append(
        f"d={config.dim}, n={config.samples}, metric = mean true correlation "
        f"of top {top_k} reported pairs"
    )
    return table
