"""Allow ``python -m repro.experiments <name>``."""

from repro.experiments.runner import main

raise SystemExit(main())
