"""Figure 5 — theoretical vs realised SNR ratio of ASCS over CS (ROSNR).

Protocol (section 7.3): sketch size ``R = p/20``, ``K = 5``, hyperparameters
from Algorithm 3 with ``delta = 0.05``, ``delta* = 0.15``; the realised SNR
of each method is measured every 200 samples via the energy of the inserted
signal/noise updates, and compared with the Theorem-3 lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covariance.ground_truth import (
    flat_true_correlations,
    signal_key_set,
    signal_threshold,
)
from repro.data.registry import make_dataset
from repro.evaluation.harness import run_method
from repro.experiments.base import TableResult
from repro.experiments.replicates import simulation_model
from repro.hashing.pairs import num_pairs
from repro.theory.bounds import ProblemModel, theorem3_snr_ratio
from repro.theory.planner import plan_hyperparameters
from repro.theory.snr import SNRRecorder, estimate_sigma

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Figure 5: theoretical ROSNR rises to a plateau; the realised ROSNR "
    "exceeds the theoretical lower bound, with a growing gap (simulation "
    "markedly larger than gisette)."
)


@dataclass
class Config:
    dim: int = 120
    samples: int = 3000
    window: int = 200
    delta: float = 0.05
    delta_star: float = 0.15
    num_tables: int = 5
    bucket_fraction: float = 1.0 / 20.0  # R = p/20 as in the paper
    gisette_alpha: float = 0.02
    seed: int = 0


def _pair_product_sigma(data: np.ndarray, pilot: int = 200) -> float:
    """RMS pair product of std-normalised pilot rows (section 7.2 sigma)."""
    work = data[:pilot] / np.maximum(data[:pilot].std(axis=0), 1e-6)
    prods = []
    for row in work[: min(64, len(work))]:
        outer = np.outer(row, row)
        prods.append(outer[np.triu_indices(len(row), k=1)])
    return estimate_sigma(np.asarray(prods))


def _run_source(
    name: str,
    data: np.ndarray,
    alpha: float,
    u: float,
    config: Config,
    table: TableResult,
) -> None:
    n, d = data.shape
    p = num_pairs(d)
    num_buckets = max(16, int(config.bucket_fraction * p))
    sigma = _pair_product_sigma(data)
    model = ProblemModel(
        p=p,
        alpha=alpha,
        u=u,
        sigma=sigma,
        T=n,
        num_tables=config.num_tables,
        num_buckets=num_buckets,
    )
    plan = plan_hyperparameters(
        model, delta=config.delta, delta_star=config.delta_star
    )

    truth = flat_true_correlations(data)
    signals = signal_key_set(
        np.zeros((0, 0)) if truth.size == 0 else _square_from_flat(truth, d), alpha
    )

    recorders = {}
    for method in ("cs", "ascs"):
        recorder = SNRRecorder(signals, window=config.window)
        run_method(
            data,
            method,
            num_buckets * config.num_tables,
            alpha,
            u=u,
            sigma=sigma,
            delta=config.delta,
            delta_star=config.delta_star,
            batch_size=50,
            seed=config.seed,
            observer=recorder,
        )
        recorder.flush()
        recorders[method] = dict(zip(*recorder.curve()))

    for t in sorted(recorders["ascs"]):
        snr_ascs = recorders["ascs"][t]
        snr_cs = recorders["cs"].get(t)
        if snr_cs is None or snr_cs <= 0 or not np.isfinite(snr_ascs):
            continue
        measured = snr_ascs / snr_cs
        t_eff = max(t, plan.exploration_length)
        theory = theorem3_snr_ratio(
            model, t_eff, plan.exploration_length, plan.theta, config.delta_star
        )
        table.add_row(name, int(t), theory, measured)


def _square_from_flat(flat: np.ndarray, d: int) -> np.ndarray:
    """Rebuild a symmetric matrix from a flat strict-upper-triangle vector."""
    mat = np.zeros((d, d))
    rows, cols = np.triu_indices(d, k=1)
    mat[rows, cols] = flat
    mat[cols, rows] = flat
    np.fill_diagonal(mat, 1.0)
    return mat


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Figure 5 - ROSNR (SNR_ASCS / SNR_CS): theory lower bound vs measured",
        columns=("source", "t", "theoretical_ratio", "measured_ratio"),
    )

    model = simulation_model(config.dim, seed=config.seed)
    data = model.sample(config.samples)
    _run_source("simulation", data, model.alpha, model.signal_strength, config, table)

    dataset = make_dataset(
        "gisette", d=config.dim, n=config.samples, seed=config.seed + 1
    )
    dense = dataset.dense()
    truth_mat = np.corrcoef(dense.T)
    u = signal_threshold(truth_mat, config.gisette_alpha)
    _run_source("gisette", dense, config.gisette_alpha, max(u, 0.05), config, table)

    table.notes.append(
        f"R = p/20, K = {config.num_tables}, delta = {config.delta}, "
        f"delta* = {config.delta_star}, window = {config.window}"
    )
    return table
