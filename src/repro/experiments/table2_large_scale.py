"""Table 2 — mean of the top-1000 correlations on trillion-scale streams.

The paper streams the URL dataset (10^12 pair entries) and the DNA 12-mer
dataset (1.4x10^14 entries) through CS and ASCS at three sketch sizes each,
reporting the mean (empirical) correlation of the top-1000 reported pairs.
The headline: at small memory ASCS finds near-perfect pairs where CS finds
noise; at 10x the memory CS catches up.

Here the streams are the scaled generators of :mod:`repro.data` (see the
DESIGN.md substitution table): the pair space still far exceeds the sketch
(10^8-10^9 entries vs 10^4-10^5 buckets), retrieval uses the candidate
tracker (no full scan is possible), and evaluation computes the exact
empirical correlation of the reported pairs from the stored stream —
precisely the paper's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.covariance.ground_truth import pair_correlations
from repro.data.dna import DNAKmerStream
from repro.data.url_like import URLLikeStream
from repro.evaluation.harness import run_sparse_method, sparse_pilot
from repro.experiments.base import TableResult
from repro.hashing.pairs import index_to_pair, num_pairs

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Table 2: URL (p=1e12): K=5, R=1e6 -> CS 0.439 / ASCS 0.979; R=5e6 -> "
    "0.980/0.987; R=1e7 -> 0.992/0.989.  DNA (p=1.4e14): R=1e7 -> "
    "0.023/0.087; R=1e8 -> 0.347/0.998; R=1e9 -> 0.999/0.999."
)


@dataclass
class Config:
    # URL-like stream (scaled): p ~ 2e8 pair entries.
    url_dim: int = 20_000
    url_samples: int = 12_000
    url_buckets: tuple[int, ...] = (20_000, 100_000, 400_000)
    # DNA stream (scaled): p ~ 2e9 pair entries.  Coverage 8 puts the
    # bucket-noise scale (~sqrt(G*L/(c^3 R)) in correlation units) in the
    # paper's regime: CS broken at the small R, clean at the large one.
    dna_genome: int = 30_000
    dna_read_length: int = 150
    dna_coverage: float = 8.0
    dna_k: int = 8
    dna_buckets: tuple[int, ...] = (10_000, 60_000, 240_000)
    num_tables: int = 5
    top_k: int = 1000
    u: float = 0.5
    alpha: float = 1e-5
    batch_size: int = 32
    track_top: int = 5_000
    seed: int = 0
    extra: dict = field(default_factory=dict)


def _evaluate_stream(
    table: TableResult,
    name: str,
    stream_factory,
    dim: int,
    total_samples: int,
    buckets: tuple[int, ...],
    config: Config,
) -> None:
    p = num_pairs(dim)
    stored = stream_factory().materialize() if hasattr(stream_factory(), "materialize") else None
    sigma = sparse_pilot(iter(stream_factory()), dim, num_pilot=400)
    for num_buckets in buckets:
        scores = {}
        accepts = {}
        for method in ("cs", "ascs"):
            keys, _, run_info = run_sparse_method(
                lambda: iter(stream_factory()),
                dim,
                total_samples,
                method,
                num_buckets,
                num_tables=config.num_tables,
                alpha=config.alpha,
                u=config.u,
                sigma=sigma,
                batch_size=config.batch_size,
                track_top=config.track_top,
                top_k=config.top_k,
                seed=config.seed,
            )
            i, j = index_to_pair(keys, dim)
            truth = pair_correlations(stored, i, j)
            scores[method] = float(truth.mean()) if truth.size else float("nan")
            accepts[method] = run_info.acceptance_rate
        memory_mb = config.num_tables * num_buckets * 8 / 1e6
        table.add_row(
            name,
            f"{p:.2g}",
            config.num_tables,
            num_buckets,
            f"{memory_mb:.1f}MB",
            scores["cs"],
            scores["ascs"],
            accepts["ascs"],
        )


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Table 2 - mean correlation of top-1000 reported pairs (large scale)",
        columns=(
            "dataset",
            "pair entries",
            "K",
            "R",
            "memory",
            "CS",
            "ASCS",
            "ASCS accept",
        ),
    )

    url_factory = lambda: URLLikeStream(  # noqa: E731
        dim=config.url_dim,
        num_samples=config.url_samples,
        num_groups=60,
        group_size=6,
        group_prob=0.5,
        member_prob=0.95,
        background_nnz=40,
        seed=config.seed + 5,
    )
    _evaluate_stream(
        table,
        "url",
        url_factory,
        config.url_dim,
        config.url_samples,
        config.url_buckets,
        config,
    )

    dna_factory = lambda: DNAKmerStream(  # noqa: E731
        genome_length=config.dna_genome,
        read_length=config.dna_read_length,
        coverage=config.dna_coverage,
        k=config.dna_k,
        seed=42,
    )
    dna = dna_factory()
    _evaluate_stream(
        table,
        "dna",
        dna_factory,
        dna.dim,
        dna.num_reads,
        config.dna_buckets,
        config,
    )

    table.notes.append(
        "streams scaled per DESIGN.md; metric = exact empirical correlation "
        "of reported pairs, as in the paper"
    )
    return table
