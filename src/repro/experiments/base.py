"""Experiment infrastructure: result tables, rendering, registry plumbing.

Every paper table/figure is reproduced by a module exposing

* a ``Config`` dataclass with scaled-down-but-faithful defaults,
* ``run(config) -> TableResult`` (or a list of them),
* a ``PAPER_REFERENCE`` string quoting what the paper reports, so the
  rendered output can be compared side by side (EXPERIMENTS.md records the
  comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TableResult", "format_cell", "render_results"]


def format_cell(value) -> str:
    """Human-friendly cell formatting for mixed numeric/string tables."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class TableResult:
    """One rendered experiment artifact (a table or a figure's data series).

    Attributes
    ----------
    title:
        Human-readable caption, e.g. ``"Table 2 - mean of top-1000 ..."``.
    columns:
        Column headers.
    rows:
        Row tuples aligned with ``columns``.
    notes:
        Free-form caveats (scale substitutions, fallbacks used, ...).
    """

    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Monospace-aligned text rendering."""
        header = [str(c) for c in self.columns]
        body = [[format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[c]), *(len(r[c]) for r in body)) if body else len(header[c])
            for c in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_results(results: "TableResult | Sequence[TableResult]") -> str:
    """Render one or several results separated by blank lines."""
    if isinstance(results, TableResult):
        results = [results]
    return "\n\n".join(r.render() for r in results)
