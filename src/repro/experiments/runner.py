"""Experiment registry and CLI.

``python -m repro.experiments <name>`` (or the ``repro-experiments``
console script) runs one reproduction with its default config and prints
the table(s) plus the paper's reference values for side-by-side reading.
Tables go to stdout (the deliverable); diagnostics — per-experiment
timing, failures — are structured log events on stderr, silenced below
``warning`` unless ``--verbose`` raises the level.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    fig1_correlation_cdf,
    fig2_mean_std_cdf,
    fig3_independence,
    fig4_normality,
    fig5_rosnr,
    fig6_f1_curves,
    sweep_sketch_size,
    table1_theorem_validation,
    table2_large_scale,
    table4_top_fraction,
    table5_k_sensitivity,
    table6_timing,
)
from repro.experiments.base import render_results
from repro.obs.log import configure, get_logger

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

_log = get_logger("experiments")

EXPERIMENTS = {
    "fig1": fig1_correlation_cdf,
    "fig2": fig2_mean_std_cdf,
    "fig3": fig3_independence,
    "fig4": fig4_normality,
    "fig5": fig5_rosnr,
    "fig6": fig6_f1_curves,
    "table1": table1_theorem_validation,
    "table2": table2_large_scale,
    "table4": table4_top_fraction,
    "table5": table5_k_sensitivity,
    "table6": table6_timing,
    "sweep": sweep_sketch_size,
}


def run_experiment(name: str, config=None):
    """Run one experiment by registry name; returns its TableResult(s)."""
    module = EXPERIMENTS.get(name)
    if module is None:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return module.run(config if config is not None else module.Config())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the ASCS paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="experiment names (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="emit info-level diagnostics (timings) as JSON lines on stderr",
    )
    args = parser.parse_args(argv)
    configure(level="info" if args.verbose else "warning")

    if args.list:
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    names = args.names or list(EXPERIMENTS)
    for name in names:
        module = EXPERIMENTS.get(name)
        if module is None:
            _log.error(
                "experiment.unknown", name=name, available=sorted(EXPERIMENTS)
            )
            return 2
        start = time.perf_counter()
        results = module.run(module.Config())
        elapsed = time.perf_counter() - start
        print(render_results(results))
        print(f"\npaper reference: {module.PAPER_REFERENCE}")
        _log.info("experiment.completed", name=name, seconds=round(elapsed, 3))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
