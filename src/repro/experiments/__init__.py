"""Experiment harness: one module per paper table/figure.

See :mod:`repro.experiments.runner` for the registry and CLI; DESIGN.md for
the experiment index mapping paper artifacts to modules.
"""

from repro.experiments.base import TableResult, render_results

__all__ = ["TableResult", "render_results"]
