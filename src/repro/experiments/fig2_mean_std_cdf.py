"""Figure 2 — empirical CDF of |mean/std| per feature.

Justifies the section-5 fast path: "the mean of most of the features have
extremely low (less than 1% of its standard deviation)", so the uncentered
product ``Y_a Y_b`` approximates the covariance update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.registry import make_dataset
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Figure 2: for the sparse text datasets the bulk of features have "
    "|mean/std| below ~0.1; dense datasets sit higher but still far below 1."
)


@dataclass
class Config:
    datasets: tuple[str, ...] = ("gisette", "epsilon", "cifar10", "rcv1")
    dim: int = 400
    samples: int = 2500
    thresholds: tuple[float, ...] = field(
        default=(0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0)
    )
    seed: int = 0


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Figure 2 - proportion of features with |mean/std| <= x",
        columns=("x",) + tuple(config.datasets),
    )
    ratios = {}
    for name in config.datasets:
        dataset = make_dataset(name, d=config.dim, n=config.samples, seed=config.seed)
        dense = dataset.dense()
        mean = dense.mean(axis=0)
        std = dense.std(axis=0)
        safe = np.maximum(std, 1e-12)
        ratios[name] = np.abs(mean) / safe
    for x in config.thresholds:
        row = [x]
        for name in config.datasets:
            row.append(float(np.mean(ratios[name] <= x)))
        table.add_row(*row)
    return table
