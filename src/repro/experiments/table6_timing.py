"""Table 6 — sketching wall-time of ASCS vs CS.

The claim being reproduced: "All the algorithms ... are streaming
algorithms and have similar execution speeds" — ASCS's sampling step adds
only a query per batch, so the two columns should be within a small factor
of each other on every dataset.  Absolute numbers depend on hardware; the
*ratio* is the reproducible quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.registry import make_dataset
from repro.evaluation.harness import run_method
from repro.experiments.base import TableResult

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Table 6 (seconds): gisette CS 47 / ASCS 44; rcv1 16/13; sector 5/4; "
    "cifar10 41/47; epsilon 24/30 — the two are within ~25% of each other "
    "everywhere."
)


@dataclass
class Config:
    datasets: tuple[str, ...] = ("gisette", "rcv1", "sector", "cifar10", "epsilon")
    dim: int = 300
    samples: int = 2000
    memory_fraction: float = 0.2
    batch_size: int = 50
    seed: int = 0


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Table 6 - sketching wall time (seconds), CS vs ASCS",
        columns=("dataset", "CS", "ASCS", "ASCS/CS"),
    )
    p = config.dim * (config.dim - 1) // 2
    memory = max(200, int(config.memory_fraction * p))
    for name in config.datasets:
        dataset = make_dataset(name, d=config.dim, n=config.samples, seed=config.seed)
        dense = dataset.dense()
        times = {}
        for method in ("cs", "ascs"):
            result = run_method(
                dense,
                method,
                memory,
                dataset.alpha,
                batch_size=config.batch_size,
                seed=config.seed,
            )
            times[method] = result.fit_seconds
        ratio = times["ascs"] / max(times["cs"], 1e-9)
        table.add_row(name, times["cs"], times["ascs"], ratio)
    table.notes.append(
        "absolute times are hardware-specific; the paper's claim is the "
        "ratio staying near 1"
    )
    return table
