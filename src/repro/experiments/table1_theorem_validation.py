"""Table 1 — validation of the Theorem-1/2 miss-probability bounds.

Protocol (section 7.3): simulation datasets (and gisette bootstraps) with
``R = p/20``, ``K = 5``.  For each target ``delta``, Algorithm 3 picks
``T0``; we then measure across replicates the realised fraction of signal
covariances whose estimate falls below ``tau(T0)`` at the first sampling
decision — it must stay below ``delta``.  For each target ``delta* - delta``
the planner picks ``theta`` and we measure the realised fraction of signals
that passed at ``T0`` but were filtered at some later decision — it must
stay below ``delta* - delta``.

Saturation note: at the paper's own parameters (``R = p/20``, ``alpha ~
0.5%``, ``K = 5``) the Theorem-1 bound saturates at ``SP = 1 - p0^K ~ 0.39``
— the worst-case assumption that *any* signal-signal collision loses the
signal.  Targets of 0.05-0.10 are therefore only satisfiable for the
non-saturated component ``Phi(.) * p0^K``; we budget the target against
that component (``bound <= SP + delta``), which is the only reading under
which the paper's Table-1 targets are feasible.  The realised miss rates
come out far below the targets exactly as the paper reports, because a
signal-signal collision does not actually lose the signal in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.schedule import ThresholdSchedule
from repro.covariance.pipeline import CovarianceSketcher
from repro.data.registry import make_dataset
from repro.experiments.base import TableResult
from repro.experiments.replicates import simulation_model
from repro.hashing.pairs import num_pairs
from repro.sketch.count_sketch import CountSketch
from repro.theory.bounds import ProblemModel, saturation_probability
from repro.theory.planner import find_exploration_length, find_threshold_slope
from repro.theory.snr import estimate_sigma
from repro.covariance.ground_truth import flat_true_correlations

__all__ = ["Config", "run", "PAPER_REFERENCE", "SignalMissTracker"]

PAPER_REFERENCE = (
    "Table 1: realised miss probabilities are strictly below their targets; "
    "e.g. simulation delta=0.05 -> realised 0.0056, delta*-delta=0.05 -> "
    "realised 0.0421."
)


class SignalMissTracker:
    """Observer recording, per signal key, the first-decision and
    during-sampling filtering events of an ASCS run.

    Works with the dense pipeline, where every batch carries all ``p`` keys
    in sorted order, so signal keys index the mask directly.
    """

    def __init__(self, signal_keys: np.ndarray, exploration_length: int):
        self.signal_keys = np.asarray(signal_keys, dtype=np.int64)
        self.exploration_length = int(exploration_length)
        self._last_t = 0
        self.first_decision_pass: np.ndarray | None = None
        self.filtered_later = np.zeros(self.signal_keys.size, dtype=bool)

    def __call__(self, t, keys, values, mask) -> None:
        t_pre = self._last_t
        self._last_t = int(t)
        if t_pre < self.exploration_length:
            return  # exploration batch (or the batch straddling T0)
        positions = np.searchsorted(keys, self.signal_keys)
        found = keys[np.minimum(positions, keys.size - 1)] == self.signal_keys
        ok = (positions < keys.size) & found
        signal_mask = np.zeros(self.signal_keys.size, dtype=bool)
        signal_mask[ok] = mask[positions[ok]]
        if self.first_decision_pass is None:
            self.first_decision_pass = signal_mask.copy()
        else:
            self.filtered_later |= self.first_decision_pass & ~signal_mask

    @property
    def miss_at_t0_rate(self) -> float:
        if self.first_decision_pass is None:
            return float("nan")
        return float(1.0 - self.first_decision_pass.mean())

    @property
    def miss_during_sampling_rate(self) -> float:
        if self.first_decision_pass is None:
            return float("nan")
        passed = self.first_decision_pass.sum()
        if passed == 0:
            return 0.0
        return float(self.filtered_later[self.first_decision_pass].sum() / passed)


@dataclass
class Config:
    dim: int = 80
    samples: int = 1000
    num_tables: int = 5
    bucket_fraction: float = 1.0 / 20.0
    num_replicates: int = 12
    delta_targets: tuple[float, ...] = (0.05, 0.06, 0.07, 0.08, 0.09, 0.10)
    escape_targets: tuple[float, ...] = (0.05, 0.07, 0.09, 0.11, 0.13, 0.15)
    base_delta: float = 0.05
    tau0: float = 1e-4
    sources: tuple[str, ...] = ("simulation", "gisette")
    seed: int = 0


def _one_replicate(
    data: np.ndarray,
    signal_keys: np.ndarray,
    model: ProblemModel,
    t0: int,
    theta: float,
    tau0: float,
    seed: int,
) -> SignalMissTracker:
    """Run ASCS once with fixed hyperparameters, instrumented."""
    tracker = SignalMissTracker(signal_keys, t0)
    schedule = ThresholdSchedule(
        exploration_length=t0, tau0=tau0, theta=theta, total_samples=model.T
    )
    sketch = CountSketch(model.num_tables, model.num_buckets, seed=seed)
    estimator = ActiveSamplingCountSketch(
        sketch, model.T, schedule, observer=tracker
    )
    sketcher = CovarianceSketcher(
        data.shape[1], estimator, mode="correlation", batch_size=25
    )
    sketcher.fit_dense(data)
    return tracker


def _source_data(name: str, config: Config, replicate: int):
    """(data, signal_keys, u, sigma) for one replicate of a source."""
    if name == "simulation":
        model = simulation_model(config.dim, seed=config.seed)
        rng = np.random.default_rng(config.seed + 1000 + replicate)
        data = model.sample(config.samples, rng)
        return data, model.signal_pairs(), model.signal_strength
    dataset = make_dataset("gisette", d=config.dim, n=4 * config.samples, seed=config.seed)
    rng = np.random.default_rng(config.seed + 2000 + replicate)
    rows = rng.integers(0, dataset.n, size=config.samples)
    data = dataset.dense()[rows]
    truth = flat_true_correlations(dataset.dense())
    order = np.argsort(-truth)
    k = max(1, int(round(dataset.alpha * truth.size)))
    signal_keys = np.sort(order[:k])
    u = float(truth[order[k - 1]])
    return data, signal_keys, max(u, 0.05)


def run(config: Config = Config()) -> TableResult:
    table = TableResult(
        title="Table 1 - target probability bounds vs realised miss rates",
        columns=("source", "bound", "target", "realised", "bounded"),
    )
    p = num_pairs(config.dim)
    num_buckets = max(16, int(config.bucket_fraction * p))

    for source in config.sources:
        data0, signal_keys, u = _source_data(source, config, 0)
        work = data0 / np.maximum(data0.std(axis=0), 1e-6)
        prods = [
            np.outer(row, row)[np.triu_indices(config.dim, k=1)]
            for row in work[:64]
        ]
        sigma = estimate_sigma(np.asarray(prods))
        model = ProblemModel(
            p=p,
            alpha=max(signal_keys.size / p, 1e-9),
            u=u,
            sigma=sigma,
            T=config.samples,
            num_tables=config.num_tables,
            num_buckets=num_buckets,
        )

        sp = saturation_probability(model)

        # --- Theorem 1: miss at T0 vs target delta -------------------
        # Budget the target against the non-saturated bound component
        # (see the module docstring's saturation note).
        for delta in config.delta_targets:
            t0 = find_exploration_length(model, config.tau0, min(sp + delta, 0.999))
            if t0 is None:
                table.add_row(source, "thm1 (delta)", delta, float("nan"), False)
                continue
            misses = []
            for rep in range(config.num_replicates):
                data, keys, _ = _source_data(source, config, rep)
                tracker = _one_replicate(
                    data, keys, model, t0, 0.0, config.tau0, config.seed + rep
                )
                misses.append(tracker.miss_at_t0_rate)
            realised = float(np.nanmean(misses))
            table.add_row(source, "thm1 (delta)", delta, realised, realised <= delta)

        # --- Theorem 2: escape during sampling vs delta* - delta -----
        t0 = find_exploration_length(
            model, config.tau0, min(sp + config.base_delta, 0.999)
        )
        if t0 is None:
            continue
        for budget in config.escape_targets:
            theta = find_threshold_slope(model, t0, config.tau0, budget)
            if theta is None:
                table.add_row(source, "thm2 (d*-d)", budget, float("nan"), False)
                continue
            misses = []
            for rep in range(config.num_replicates):
                data, keys, _ = _source_data(source, config, rep)
                tracker = _one_replicate(
                    data, keys, model, t0, theta, config.tau0, config.seed + rep
                )
                misses.append(tracker.miss_during_sampling_rate)
            realised = float(np.nanmean(misses))
            table.add_row(source, "thm2 (d*-d)", budget, realised, realised <= budget)

    table.notes.append(
        f"{config.num_replicates} replicates, d={config.dim}, T={config.samples}, "
        f"R=p/20, K={config.num_tables}"
    )
    return table
