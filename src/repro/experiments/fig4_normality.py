"""Figure 4 — normality of the empirical covariance entries.

Validates the Gaussian assumption of section 6.1 via QQ statistics: across
replicates, ``X-bar_i^(t)`` should be well approximated by a normal
distribution.  Instead of plots we report, per inspected entry, the QQ
correlation coefficient (1.0 = perfectly normal), skewness, excess kurtosis
and the Kolmogorov-Smirnov p-value against the fitted normal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.data.registry import make_dataset
from repro.experiments.base import TableResult
from repro.experiments.replicates import replicate_covariances, simulation_model

__all__ = ["Config", "run", "PAPER_REFERENCE"]

PAPER_REFERENCE = (
    "Figure 4: QQ-plots hug the diagonal; simulation entries are virtually "
    "exactly normal, gisette entries slightly right-skewed but close."
)


@dataclass
class Config:
    dim: int = 60
    num_replicates: int = 600
    t: int = 150
    num_entries: int = 4  # entries inspected per source, like the paper's 4 panels
    gisette_samples: int = 1500
    seed: int = 0


def _qq_stats(values: np.ndarray) -> tuple[float, float, float, float]:
    """(QQ correlation, skewness, excess kurtosis, KS p-value)."""
    values = np.sort(values)
    n = values.size
    theoretical = stats.norm.ppf((np.arange(1, n + 1) - 0.5) / n)
    qq_corr = float(np.corrcoef(theoretical, values)[0, 1])
    skew = float(stats.skew(values))
    kurt = float(stats.kurtosis(values))
    mean, std = values.mean(), values.std()
    ks = stats.kstest(values, "norm", args=(mean, max(std, 1e-12)))
    return qq_corr, skew, kurt, float(ks.pvalue)


def run(config: Config = Config()) -> TableResult:
    rng = np.random.default_rng(config.seed)
    table = TableResult(
        title="Figure 4 - normality diagnostics of empirical covariance entries",
        columns=("source", "entry", "qq_corr", "skewness", "excess_kurtosis", "ks_pvalue"),
    )
    p = config.dim * (config.dim - 1) // 2
    keys = rng.choice(p, size=config.num_entries, replace=False)

    model = simulation_model(config.dim, seed=config.seed)
    sim = replicate_covariances(
        model, config.num_replicates, config.t, seed=config.seed + 1, pair_keys=keys
    )
    for col, key in enumerate(keys):
        table.add_row("simulation", int(key), *_qq_stats(sim[:, col]))

    dataset = make_dataset(
        "gisette", d=config.dim, n=config.gisette_samples, seed=config.seed + 2
    )
    gis = replicate_covariances(
        dataset.dense(),
        config.num_replicates,
        config.t,
        seed=config.seed + 3,
        pair_keys=keys,
    )
    for col, key in enumerate(keys):
        table.add_row("gisette", int(key), *_qq_stats(gis[:, col]))

    table.notes.append(
        f"{config.num_replicates} replicates, t={config.t}; qq_corr near 1 "
        "means the QQ plot hugs the diagonal"
    )
    return table
