"""Empirical SNR instrumentation (section 7.1 / Figure 5).

The paper defines the SNR of the ``t``-th ingested sample as
``E ||X_S||^2 / E ||X_N||^2`` over the signal/noise variables actually
inserted into the sketch.  :class:`SNRRecorder` plugs into an estimator's
``observer`` hook, receives every (keys, values, accepted-mask) batch, and
accumulates the signal and noise energy of the accepted subset so the
realised ROSNR curve of Figure 5 can be compared with the Theorem-3 bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SNRRecorder",
    "estimate_sigma",
    "estimate_sigma_sparse",
    "model_stream_snr",
]


def model_stream_snr(alpha: float, u: float, sigma: float) -> float:
    """Closed-form raw-stream SNR under the section-6.1 generative model.

    A fraction ``alpha`` of variables are signal with per-sample values
    ``N(u, sigma^2)`` and the rest noise with ``N(0, sigma^2)``, so the
    expected inserted energies give

        ``SNR = alpha (u^2 + sigma^2) / ((1 - alpha) sigma^2)``

    — the value :class:`SNRRecorder` (and the online
    :class:`repro.obs.AccuracyProbe`) converge to on an *unsampled*
    stream, and the baseline against which observed ROSNR is normalised.
    Matches :func:`repro.theory.bounds.snr_count_sketch` evaluated on the
    equivalent :class:`~repro.theory.bounds.ProblemModel`.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return alpha * (u * u + sigma * sigma) / ((1.0 - alpha) * sigma * sigma)


@dataclass
class SNRPoint:
    """One measurement window of the realised SNR."""

    t: int
    signal_energy: float
    noise_energy: float

    @property
    def snr(self) -> float:
        if self.noise_energy <= 0.0:
            return float("inf")
        return self.signal_energy / self.noise_energy


@dataclass
class SNRRecorder:
    """Accumulate inserted signal/noise energy per measurement window.

    Parameters
    ----------
    signal_keys:
        Flat keys of the true signal variables.
    window:
        Emit one :class:`SNRPoint` every ``window`` stream samples.
    """

    signal_keys: np.ndarray
    window: int = 200
    points: list[SNRPoint] = field(default_factory=list)
    _signal_set: frozenset = field(init=False)
    _t: int = 0
    _sig: float = 0.0
    _noise: float = 0.0
    _window_start: int = 0

    def __post_init__(self):
        self.signal_keys = np.asarray(self.signal_keys, dtype=np.int64)
        self._signal_set = frozenset(self.signal_keys.tolist())

    def __call__(
        self, t: int, keys: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Observer hook: record the energy of accepted updates."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        if keys.size:
            accepted_keys = keys[mask]
            accepted_vals = values[mask]
            if accepted_keys.size:
                is_signal = np.fromiter(
                    (key in self._signal_set for key in accepted_keys.tolist()),
                    dtype=bool,
                    count=accepted_keys.size,
                )
                energy = accepted_vals**2
                self._sig += float(energy[is_signal].sum())
                self._noise += float(energy[~is_signal].sum())
        self._t = t
        if t - self._window_start >= self.window:
            self.flush()

    def flush(self) -> None:
        """Close the current window and append its point."""
        if self._t > self._window_start:
            self.points.append(SNRPoint(self._t, self._sig, self._noise))
        self._sig = 0.0
        self._noise = 0.0
        self._window_start = self._t

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """``(t, snr)`` arrays for plotting the realised SNR trajectory."""
        t = np.array([pt.t for pt in self.points], dtype=np.int64)
        snr = np.array([pt.snr for pt in self.points], dtype=np.float64)
        return t, snr


def estimate_sigma(samples: np.ndarray) -> float:
    """Average per-variable std from dense pilot samples of ``X``.

    Section 7.2 relaxation: approximate ``E Var(X_i)`` by the mean of
    ``X_i^2`` over a pilot window, ``(1/(p r)) sum_t sum_i X_i^(t)^2``.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    if samples.size == 0:
        raise ValueError("need at least one pilot sample")
    return float(np.sqrt(np.mean(samples**2)))


def estimate_sigma_sparse(total_sq: float, p: int, r: int) -> float:
    """Sparse-stream form of :func:`estimate_sigma`.

    Parameters
    ----------
    total_sq:
        ``sum_t sum_i X_i^(t)^2`` accumulated over the pilot window (zero
        entries contribute nothing, so only non-zeros are summed).
    p:
        Number of variables.
    r:
        Number of pilot samples.
    """
    if p < 1 or r < 1:
        raise ValueError("p and r must be positive")
    if total_sq < 0:
        raise ValueError("total_sq must be non-negative")
    return float(np.sqrt(total_sq / (p * r)))
