"""Closed-form bounds from the paper (Theorems 1-3 and supporting terms).

Everything is expressed through a :class:`ProblemModel` carrying the
distributional parameters of section 6.1:

* ``p`` variables, a fraction ``alpha`` of which are signals with common
  mean ``u > 0``;
* every variable's sample mean is Gaussian with variance ``sigma^2 / t``;
* a count sketch with ``K`` tables of ``R`` buckets ingests the stream of
  length ``T``, scaled by ``1/T``.

For ``K = 1`` the formulas are the exact statements of Theorems 1 and 2.
For ``K > 1`` we use the closed-form approximations the paper derives by
replacing the median of ``K`` normals with its asymptotic distribution:
``kappa0 -> kappa`` (a ``pi/2K`` collision-variance factor) and
``p0 -> p0^K``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from scipy.stats import norm

__all__ = [
    "ProblemModel",
    "collision_free_probability",
    "saturation_probability",
    "collision_inflation",
    "theorem1_miss_probability",
    "omega_squared",
    "theorem2_escape_probability",
    "snr_count_sketch",
    "theorem3_snr_lower_bound",
    "theorem3_snr_ratio",
]


@dataclass(frozen=True)
class ProblemModel:
    """Distributional and sketch parameters shared by all bounds.

    Attributes
    ----------
    p:
        Number of stream variables (covariance entries), ``d(d-1)/2``.
    alpha:
        Fraction of signal variables (``P[mu_i != 0]``).
    u:
        Signal strength — common (or lower-bound) mean of signal variables.
    sigma:
        Per-sample standard deviation of each variable (or the average
        relaxation of section 7.2).
    T:
        Total number of stream samples.
    num_tables:
        ``K`` hash tables in the sketch.
    num_buckets:
        ``R`` buckets per table.
    """

    p: int
    alpha: float
    u: float
    sigma: float
    T: int
    num_tables: int
    num_buckets: int

    def __post_init__(self):
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.u <= 0.0:
            raise ValueError(f"u must be positive, got {self.u}")
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.T < 1:
            raise ValueError(f"T must be >= 1, got {self.T}")
        if self.num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {self.num_tables}")
        if self.num_buckets <= self.alpha:
            raise ValueError("num_buckets must exceed alpha")

    def with_(self, **kwargs) -> "ProblemModel":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)


def collision_free_probability(model: ProblemModel) -> float:
    """``p0 = ((R - alpha)/R)^(p-1)`` — probability that a given variable
    shares its bucket with no *signal* variable (one table).

    Computed in log space: at trillion scale ``p0`` underflows otherwise.
    """
    return math.exp((model.p - 1) * math.log1p(-model.alpha / model.num_buckets))


def saturation_probability(model: ProblemModel) -> float:
    """``SP = 1 - p0^K`` — the floor of the Theorem-1 bound.

    Below this probability no choice of ``T0`` can push the bound; the
    planner's ``delta`` must exceed it (section 6.4).
    """
    p0 = collision_free_probability(model)
    return 1.0 - p0**model.num_tables


def collision_inflation(model: ProblemModel) -> float:
    """Std-inflation factor from hash collisions.

    ``kappa0 = sqrt(1 + (p-1)(1-alpha)/(R-alpha))`` for ``K = 1`` (exact,
    Theorem 1) and ``kappa = sqrt(1 + pi (p-1)(1-alpha) / (2K (R-alpha)))``
    for ``K > 1`` (median-of-normals approximation).
    """
    ratio = (model.p - 1) * (1.0 - model.alpha) / (model.num_buckets - model.alpha)
    if model.num_tables == 1:
        return math.sqrt(1.0 + ratio)
    return math.sqrt(1.0 + math.pi * ratio / (2.0 * model.num_tables))


def theorem1_miss_probability(model: ProblemModel, t0: float, tau0: float) -> float:
    """Theorem 1: probability a signal's estimate falls below ``tau0`` at the
    end of an exploration period of length ``t0``.

    ``P <= Phi(-(sqrt(t0) u - T tau0 / sqrt(t0)) / (kappa sigma)) p0^K
    + (1 - p0^K)``.
    """
    if t0 <= 0:
        return 1.0
    p0_k = collision_free_probability(model) ** model.num_tables
    kappa = collision_inflation(model)
    z = -(math.sqrt(t0) * model.u - model.T * tau0 / math.sqrt(t0)) / (
        kappa * model.sigma
    )
    return float(norm.cdf(z) * p0_k + (1.0 - p0_k))


def omega_squared(model: ProblemModel) -> float:
    """The ``omega^2`` (``K = 1``) / ``omega_1^2`` (``K > 1``) variance term
    of Theorem 2, implemented exactly as printed in the paper.

    ``K = 1``:  ``sigma^2 (1 + (p-1)(1-alpha) / (T^2 (R-alpha)))``
    ``K > 1``:  ``sigma^2 (1 + pi (p-1)(1-alpha) / (2 K T^2 (R-alpha)))``
    """
    ratio = (model.p - 1) * (1.0 - model.alpha) / (model.num_buckets - model.alpha)
    t_sq = float(model.T) ** 2
    if model.num_tables == 1:
        return model.sigma**2 * (1.0 + ratio / t_sq)
    return model.sigma**2 * (
        1.0 + math.pi * ratio / (2.0 * model.num_tables * t_sq)
    )


def theorem2_escape_probability(
    model: ProblemModel, t0: float, tau0: float, theta: float
) -> float:
    """Theorem 2: probability that a signal that survived exploration is
    filtered at some point of the sampling period, under the linear schedule
    ``tau(t) = tau0 + theta (t - T0) / T``.

    ``P <= exp((u - theta)(tau0 - T0 theta / T) / omega^2)
          * Phi((T0 (2 theta - u) - tau0 T) / (sqrt(T0) omega))``,
    clipped to [0, 1].
    """
    if not 0.0 <= theta < model.u:
        raise ValueError(f"theta must be in [0, u={model.u}), got {theta}")
    if t0 <= 0:
        return 1.0
    om2 = omega_squared(model)
    om = math.sqrt(om2)
    log_factor = (model.u - theta) * (tau0 - t0 * theta / model.T) / om2
    z = (t0 * (2.0 * theta - model.u) - tau0 * model.T) / (math.sqrt(t0) * om)
    # Multiply in log space; the exp factor can overflow for aggressive
    # schedules before the clip.
    log_phi = norm.logcdf(z)
    value = math.exp(min(log_factor + log_phi, 0.0))
    return float(min(max(value, 0.0), 1.0))


def snr_count_sketch(model: ProblemModel) -> float:
    """SNR of the raw stream — what vanilla CS ingests (section 7.1):
    ``alpha (u^2 + sigma^2) / ((1 - alpha) sigma^2)``."""
    return (
        model.alpha
        * (model.u**2 + model.sigma**2)
        / ((1.0 - model.alpha) * model.sigma**2)
    )


def theorem3_snr_ratio(
    model: ProblemModel, t: float, t0: float, theta: float, delta_star: float
) -> float:
    """Theorem 3: lower bound on ``SNR_ASCS(t) / SNR_CS``.

    ``ratio >= (1 - delta*) / (Phi(-theta (sqrt(t) - sqrt(T0)) / (kappa
    sigma)) p0^K + 1 - p0^K)``.
    """
    if t < t0:
        raise ValueError(f"t={t} must be >= t0={t0}")
    if not 0.0 < delta_star < 1.0:
        raise ValueError(f"delta_star must be in (0, 1), got {delta_star}")
    p0_k = collision_free_probability(model) ** model.num_tables
    kappa = collision_inflation(model)
    z = -theta * (math.sqrt(t) - math.sqrt(t0)) / (kappa * model.sigma)
    noise_fraction = float(norm.cdf(z)) * p0_k + (1.0 - p0_k)
    return (1.0 - delta_star) / noise_fraction


def theorem3_snr_lower_bound(
    model: ProblemModel, t: float, t0: float, theta: float, delta_star: float
) -> float:
    """Absolute SNR lower bound for ASCS at time ``t`` (ratio x SNR_CS)."""
    return theorem3_snr_ratio(model, t, t0, theta, delta_star) * snr_count_sketch(
        model
    )
