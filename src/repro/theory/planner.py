"""Algorithm 3 — principled hyperparameter selection for ASCS.

Given the problem model (``p``, ``alpha``, ``u``, ``sigma``, ``T``, sketch
shape) and risk budgets ``delta`` / ``delta*``, the planner produces:

* ``T0`` — the shortest exploration period for which the Theorem-1 bound on
  missing a signal at the first sampling step is at most ``delta``;
* ``theta`` — the steepest threshold slope for which the Theorem-2 bound on
  filtering a signal *during* sampling is at most ``delta* - delta``.

Section 8.1 defaults are wired into :func:`plan_hyperparameters`:
``delta = max(1.01 * SP, 0.05)``, ``delta* = delta + 0.15``,
``tau(T0) = 1e-4`` for correlation streams.  When the bounds saturate
(``SP`` close to 1 — the trillion-scale regime where every bucket holds
signals), the planner falls back to a fixed exploration fraction and a
conservative slope, mirroring what any practical deployment must do; the
fallback is flagged on the returned plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.theory.bounds import (
    ProblemModel,
    saturation_probability,
    theorem1_miss_probability,
    theorem2_escape_probability,
)

__all__ = ["ASCSPlan", "find_exploration_length", "find_threshold_slope", "plan_hyperparameters"]

#: Minimum exploration length for the CLT assumption (the paper's gamma).
DEFAULT_GAMMA = 30

#: Exploration fraction used when the Theorem-1 bound saturates.
FALLBACK_EXPLORATION_FRACTION = 0.1

#: Slope fraction of ``u`` used when the Theorem-2 bound saturates.
FALLBACK_THETA_FRACTION = 0.5


@dataclass(frozen=True)
class ASCSPlan:
    """Resolved ASCS hyperparameters plus provenance.

    Attributes
    ----------
    exploration_length:
        ``T0`` — samples inserted unconditionally before sampling starts.
    tau0:
        Initial sampling threshold ``tau(T0)``.
    theta:
        Threshold slope; ``tau(t) = tau0 + theta (t - T0) / T``.
    delta / delta_star:
        Risk budgets actually used (after the saturation adjustment).
    saturation:
        The model's saturation probability ``1 - p0^K``.
    used_fallback:
        True when the closed-form bounds were vacuous and heuristic
        defaults were substituted.
    """

    exploration_length: int
    tau0: float
    theta: float
    delta: float
    delta_star: float
    saturation: float
    used_fallback: bool

    def threshold_at(self, t: int, total: int) -> float:
        """The sampling threshold ``tau(t)`` for stream position ``t``."""
        if t < self.exploration_length:
            return 0.0
        return self.tau0 + self.theta * (t - self.exploration_length) / total


def find_exploration_length(
    model: ProblemModel,
    tau0: float,
    delta: float,
    *,
    gamma: int = DEFAULT_GAMMA,
) -> int | None:
    """Binary search the minimum ``T0`` with Theorem-1 bound ``<= delta``.

    Returns ``None`` when even ``T0 = T`` cannot satisfy the budget (the
    bound saturates above ``delta``).
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    lo, hi = max(1, int(gamma)), int(model.T)
    if lo > hi:
        lo = hi
    # The Theorem-1 bound decreases in T0 (longer exploration, better
    # estimates), so a binary search for the crossing point is valid.
    if theorem1_miss_probability(model, hi, tau0) > delta:
        return None
    if theorem1_miss_probability(model, lo, tau0) <= delta:
        return lo
    while lo < hi:
        mid = (lo + hi) // 2
        if theorem1_miss_probability(model, mid, tau0) <= delta:
            hi = mid
        else:
            lo = mid + 1
    return lo


def find_threshold_slope(
    model: ProblemModel,
    t0: int,
    tau0: float,
    budget: float,
    *,
    grid: int = 4096,
) -> float | None:
    """Largest ``theta`` in ``(0, u)`` with Theorem-2 bound ``<= budget``.

    The bound is not provably monotone in ``theta`` across all regimes, so
    the search scans a dense grid (robust) and refines the winning cell by
    bisection against the feasibility predicate.
    """
    if budget <= 0.0:
        return None
    thetas = np.linspace(0.0, model.u, grid, endpoint=False)[1:]
    feasible = np.array(
        [theorem2_escape_probability(model, t0, tau0, th) <= budget for th in thetas]
    )
    if not feasible.any():
        return None
    best = float(thetas[np.nonzero(feasible)[0][-1]])
    # Refine within the grid cell above the last feasible point.
    lo, hi = best, min(best + model.u / grid, model.u * (1 - 1e-12))
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if theorem2_escape_probability(model, t0, tau0, mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo


def plan_hyperparameters(
    model: ProblemModel,
    *,
    tau0: float = 1e-4,
    delta: float | None = None,
    delta_star: float | None = None,
    gamma: int = DEFAULT_GAMMA,
) -> ASCSPlan:
    """Run Algorithm 3 with the section-8.1 defaults.

    Parameters
    ----------
    model:
        Problem parameters (see :class:`repro.theory.ProblemModel`).
    tau0:
        Initial sampling threshold; the paper uses ``1e-4`` for correlation
        matrices and a low percentile of the explored estimates for
        covariance matrices.
    delta:
        Probability budget for missing a signal at ``T0``.  Default:
        ``max(1.01 * SP, 0.05)`` capped at 0.5.
    delta_star:
        Total miss budget.  Default ``delta + 0.15``.
    gamma:
        CLT floor for ``T0``.
    """
    sp = saturation_probability(model)
    if delta is None:
        delta = min(max(1.01 * sp, 0.05), 0.5)
    if delta_star is None:
        delta_star = min(delta + 0.15, 0.95)
    if not delta < delta_star:
        raise ValueError(f"need delta < delta_star, got {delta} >= {delta_star}")

    used_fallback = False
    t0 = find_exploration_length(model, tau0, delta, gamma=gamma)
    if t0 is None or t0 >= model.T:
        t0 = max(int(gamma), int(FALLBACK_EXPLORATION_FRACTION * model.T))
        t0 = min(t0, model.T - 1) if model.T > 1 else model.T
        used_fallback = True

    theta = find_threshold_slope(model, t0, tau0, delta_star - delta)
    if theta is None:
        theta = FALLBACK_THETA_FRACTION * model.u
        used_fallback = True

    return ASCSPlan(
        exploration_length=int(t0),
        tau0=float(tau0),
        theta=float(theta),
        delta=float(delta),
        delta_star=float(delta_star),
        saturation=float(sp),
        used_fallback=used_fallback,
    )
