"""Theory layer: the paper's bounds (Theorems 1-3) and Algorithm 3 planner."""

from repro.theory.bounds import (
    ProblemModel,
    collision_free_probability,
    collision_inflation,
    omega_squared,
    saturation_probability,
    snr_count_sketch,
    theorem1_miss_probability,
    theorem2_escape_probability,
    theorem3_snr_lower_bound,
    theorem3_snr_ratio,
)
from repro.theory.planner import (
    ASCSPlan,
    find_exploration_length,
    find_threshold_slope,
    plan_hyperparameters,
)
from repro.theory.snr import SNRRecorder, estimate_sigma, estimate_sigma_sparse

__all__ = [
    "ASCSPlan",
    "ProblemModel",
    "SNRRecorder",
    "collision_free_probability",
    "collision_inflation",
    "estimate_sigma",
    "estimate_sigma_sparse",
    "find_exploration_length",
    "find_threshold_slope",
    "omega_squared",
    "plan_hyperparameters",
    "saturation_probability",
    "snr_count_sketch",
    "theorem1_miss_probability",
    "theorem2_escape_probability",
    "theorem3_snr_lower_bound",
    "theorem3_snr_ratio",
]
