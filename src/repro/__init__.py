"""repro — Active Sampling Count Sketch (ASCS), SIGMOD 2021 reproduction.

Online one-pass sparse estimation of very large covariance/correlation
matrices.  The package layers:

* :mod:`repro.hashing` — pair-index algebra and universal hash families;
* :mod:`repro.sketch` — count sketch, count-min, ASketch, Cold Filter;
* :mod:`repro.covariance` — streaming moments, pair updates, the pipeline;
* :mod:`repro.theory` — Theorems 1-3 and the Algorithm-3 planner;
* :mod:`repro.core` — ASCS itself and the high-level API;
* :mod:`repro.distributed` — sharded parallel ingestion: mergeable shard
  workers, the merge-law reducer and the ``fit_sparse_sharded`` driver;
* :mod:`repro.serving` — the read path: immutable query-optimized
  snapshots, the cached single-gather query engine, double-buffered
  concurrent ingest/serve and a stdlib HTTP front end;
* :mod:`repro.streaming` — recency over unbounded streams: exponential
  time decay (lazy O(1) scale) and sliding windows as rings of mergeable
  panes;
* :mod:`repro.obs` — dependency-free observability: the metrics registry
  behind every ``stats()`` view and the ``/metrics`` exposition, request
  tracing, structured JSON logging and the accuracy probe;
* :mod:`repro.autoscale` — adaptive re-sketching: the online
  ``AutoScaler`` loop that watches the accuracy probe's gauges and
  re-shapes a live serving stack through history-preserving migrations;
* :mod:`repro.data` — synthetic datasets and stream generators;
* :mod:`repro.evaluation` — paper metrics and the comparison harness;
* :mod:`repro.experiments` — one module per paper table/figure;
* :mod:`repro.reference` — pre-fusion reference implementations used by
  the equivalence tests and kernel benchmarks.

Performance architecture: every per-update hot path is a fused vectorised
pass over all ``K`` hash tables at once — stacked hash parameters produce
``(K, n)`` bucket/sign matrices in one broadcast, counters live in a flat
``(K*R,)`` array scattered/gathered through single numpy kernels, and the
tracker and sparse pair expansion are loop-free.  See ``PERF.md`` for the
layout, the fused hash contract, measured throughput, and
``benchmarks/bench_kernels.py`` / ``benchmarks/run_bench.py`` usage.

Quick start::

    import numpy as np
    from repro import sketch_correlations
    from repro.data import BlockCorrelationModel

    model = BlockCorrelationModel.from_alpha(300, alpha=0.01, seed=7)
    data = model.sample(4000)
    result = sketch_correlations(data, memory_floats=20_000, method="ascs",
                                 alpha=0.01, top_k=20)
    for i, j, est in zip(result.pairs_i, result.pairs_j, result.estimates):
        print(f"({i:3d},{j:3d})  corr-estimate={est:+.3f}")
"""

from repro.autoscale import AutoScaler, plan_from_spec
from repro.core import (
    ActiveSamplingCountSketch,
    SketchEstimator,
    SketchResult,
    ThresholdSchedule,
    build_estimator,
    fit_sparse_sharded,
    run_pilot,
    sketch_correlations,
)
from repro.covariance import CovarianceSketcher
from repro.obs import (
    AccuracyProbe,
    MetricsRegistry,
    Tracer,
    get_logger,
    render_exposition,
)
from repro.obs import configure as configure_logging
from repro.serving import (
    CheckpointManager,
    QueryEngine,
    ServingEstimator,
    SketchSnapshot,
)
from repro.sketch import CountSketch, DecayedSketch
from repro.streaming import (
    DecayingSketcher,
    PaneRing,
    make_decaying_sketcher,
)
from repro.theory import ProblemModel, plan_hyperparameters

__version__ = "1.0.0"

__all__ = [
    "AccuracyProbe",
    "ActiveSamplingCountSketch",
    "AutoScaler",
    "CheckpointManager",
    "CountSketch",
    "CovarianceSketcher",
    "DecayedSketch",
    "DecayingSketcher",
    "MetricsRegistry",
    "PaneRing",
    "ProblemModel",
    "QueryEngine",
    "ServingEstimator",
    "SketchEstimator",
    "SketchResult",
    "SketchSnapshot",
    "ThresholdSchedule",
    "Tracer",
    "build_estimator",
    "configure_logging",
    "fit_sparse_sharded",
    "get_logger",
    "make_decaying_sketcher",
    "plan_from_spec",
    "plan_hyperparameters",
    "render_exposition",
    "run_pilot",
    "sketch_correlations",
    "__version__",
]
