"""High-level one-call API: data in, top correlation pairs out.

This is the entry point a downstream user adopts.  It packages the paper's
full recipe (section 8.1):

1. a pilot pass over the first few percent of the data estimates the
   signal strength ``u`` (the ``(1-alpha)`` percentile of pilot count-sketch
   estimates) and the noise scale ``sigma`` (root mean square pair product);
2. Algorithm 3 turns (``u``, ``sigma``, ``alpha``, sketch shape) into the
   exploration length ``T0`` and threshold slope ``theta``;
3. one streaming pass feeds every sample through the chosen estimator
   (``ascs``, ``cs``, ``asketch`` or ``coldfilter``);
4. retrieval returns the top pairs with their estimates.

For sparse streams too large for one process, :func:`fit_sparse_sharded`
is the scale-out variant of step 3: it partitions the stream into
batch-aligned shards, sketches each shard independently (``serial`` or
``multiprocessing`` backends) and merges the shard states — exact counter
and moment summation, top-k candidate union re-queried against the merged
sketch, and ASCS sampler counts summed with the threshold-schedule
position re-derived from the total sample count.  The serial backend is
bit-identical to ``CovarianceSketcher.fit_sparse``; the full merge laws
live in :mod:`repro.distributed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.estimator import SketchEstimator
from repro.core.schedule import ThresholdSchedule
from repro.covariance.pipeline import CovarianceSketcher
from repro.hashing.pairs import num_pairs
from repro.sketch.augmented import AugmentedSketch
from repro.sketch.cold_filter import ColdFilterSketch
from repro.sketch.count_sketch import CountSketch
from repro.theory.bounds import ProblemModel
from repro.theory.planner import ASCSPlan, plan_hyperparameters

__all__ = [
    "SketchResult",
    "PilotEstimates",
    "run_pilot",
    "build_estimator",
    "fit_sparse_sharded",
    "sketch_correlations",
]

METHODS = ("ascs", "cs", "asketch", "coldfilter")


@dataclass
class PilotEstimates:
    """Signal/noise scale estimated from a pilot prefix of the stream."""

    u: float
    sigma: float
    num_pilot_samples: int
    percentiles: dict[float, float] = field(default_factory=dict)


@dataclass
class SketchResult:
    """Outcome of :func:`sketch_correlations`."""

    pairs_i: np.ndarray
    pairs_j: np.ndarray
    estimates: np.ndarray
    method: str
    plan: ASCSPlan | None
    pilot: PilotEstimates | None
    sketcher: CovarianceSketcher

    @property
    def estimator(self):
        return self.sketcher.estimator

    def snapshot(self, **kwargs):
        """Freeze this result into a query-optimized serving snapshot.

        Convenience hook for the read path: returns
        ``repro.serving.SketchSnapshot.from_sketcher(self.sketcher)``.  See
        :mod:`repro.serving` for the query engine, double-buffered serving
        estimator and HTTP front end built on top of it.
        """
        # Lazy import: repro.serving builds on repro.core.
        from repro.serving import SketchSnapshot

        return SketchSnapshot.from_sketcher(self.sketcher, **kwargs)


def _as_dense(data) -> np.ndarray:
    if hasattr(data, "toarray") and not isinstance(data, np.ndarray):
        return np.asarray(data.toarray(), dtype=np.float64)
    return np.asarray(data, dtype=np.float64)


def run_pilot(
    data,
    alpha: float,
    *,
    num_tables: int = 5,
    num_buckets: int = 4096,
    pilot_fraction: float = 0.05,
    mode: str = "correlation",
    seed: int = 0,
    extra_percentiles: tuple[float, ...] = (),
) -> PilotEstimates:
    """Estimate ``u`` and ``sigma`` from the first ``pilot_fraction`` of data.

    Follows section 8.1: insert the pilot prefix into a vanilla count
    sketch, query the pair estimates and take the ``(1 - alpha)``
    percentile as the signal strength ``u``; ``sigma`` is the section-7.2
    average-variance relaxation (RMS of pilot pair products).
    """
    dense = _as_dense(data)
    n, d = dense.shape
    n_pilot = max(min(n, 30), int(round(pilot_fraction * n)))
    pilot = dense[:n_pilot]

    sketch = CountSketch(num_tables, num_buckets, seed=seed + 101)
    estimator = SketchEstimator(sketch, total_samples=n_pilot, name="pilot")
    sketcher = CovarianceSketcher(
        d, estimator, mode=mode, centering="none", batch_size=max(8, n_pilot // 8)
    )
    sketcher.fit_dense(pilot)

    p = num_pairs(d)
    if p <= 4_000_000:
        keys = np.arange(p, dtype=np.int64)
    else:
        rng = np.random.default_rng(seed + 13)
        keys = rng.integers(0, p, size=200_000)
    estimates = estimator.estimate(keys)
    u = float(np.quantile(estimates, 1.0 - alpha))

    # sigma via the section-7.2 relaxation on the same (normalised) stream.
    if mode == "correlation":
        std = sketcher.moments.std(floor=sketcher.std_floor)
        work = pilot / std
    else:
        work = pilot
    gram_sq = 0.0
    for row in work:
        prod = np.outer(row, row)
        gram_sq += float((prod**2).sum() - (np.diag(prod) ** 2).sum()) / 2.0
    sigma = float(np.sqrt(gram_sq / (p * n_pilot)))

    percentiles = {
        q: float(np.quantile(estimates, q)) for q in extra_percentiles
    }
    return PilotEstimates(
        u=max(u, 1e-12),
        sigma=max(sigma, 1e-12),
        num_pilot_samples=n_pilot,
        percentiles=percentiles,
    )


def build_estimator(
    method: str,
    total_samples: int,
    num_tables: int,
    num_buckets: int,
    *,
    plan: ASCSPlan | None = None,
    seed: int = 0,
    track_top: int = 0,
    two_sided: bool = False,
    observer=None,
    filter_capacity: int | None = None,
    cold_threshold: float | None = None,
    storage: str = "float64",
    quantum: float | None = None,
    backend: str | None = None,
) -> SketchEstimator:
    """Construct any of the four comparable estimators at a common budget.

    ``storage``/``quantum`` select the counter tier of the backing sketch
    (:mod:`repro.sketch.storage`): ``"int16"``/``"int32"`` fixed-point
    tables hold the same ``(K, R)`` shape at 2/4 bytes per counter and
    widen exactly on saturation.  All four methods accept it (the Cold
    Filter gate stays float — only its main sketch is quantized).
    ``backend`` selects the kernel backend of the backing sketch
    (:mod:`repro.sketch.kernels`): ``"numpy"``, ``"numba"`` or ``"auto"``;
    ``None`` defers to ``$REPRO_KERNEL_BACKEND`` / auto-detection.
    Backends change throughput only — estimates stay bit-identical.
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    common = dict(
        track_top=track_top, two_sided=two_sided, observer=observer
    )
    tier = dict(dtype=storage, quantum=quantum, backend=backend)
    if method == "ascs":
        if plan is None:
            raise ValueError("method='ascs' requires a plan (run Algorithm 3 first)")
        sketch = CountSketch(num_tables, num_buckets, seed=seed, **tier)
        schedule = ThresholdSchedule.from_plan(plan, total_samples)
        return ActiveSamplingCountSketch(
            sketch, total_samples, schedule, name="ASCS", **common
        )
    if method == "cs":
        sketch = CountSketch(num_tables, num_buckets, seed=seed, **tier)
        return SketchEstimator(sketch, total_samples, name="CS", **common)
    if method == "asketch":
        capacity = filter_capacity or max(32, num_buckets // 64)
        # Charge the filter against the budget so comparisons stay fair.
        buckets = max(1, num_buckets - (2 * capacity) // num_tables)
        sketch = AugmentedSketch(
            num_tables,
            buckets,
            filter_capacity=capacity,
            seed=seed,
            two_sided=two_sided,
            **tier,
        )
        return SketchEstimator(sketch, total_samples, name="ASketch", **common)
    # coldfilter
    threshold = cold_threshold if cold_threshold is not None else 1.0 / total_samples
    gate_tables = 3
    gate_buckets = num_buckets
    # The gate's quarter-width counters are charged at R/4 floats.
    main_buckets = max(1, num_buckets - gate_buckets // (4 * num_tables))
    sketch = ColdFilterSketch(
        num_tables,
        main_buckets,
        filter_buckets=gate_buckets,
        filter_tables=gate_tables,
        threshold=threshold,
        seed=seed,
        **tier,
    )
    return SketchEstimator(sketch, total_samples, name="ColdFilter", **common)


def fit_sparse_sharded(samples, dim: int, **kwargs):
    """Sharded (optionally multiprocess) sparse ingestion — scale-out fit.

    Partitions a sparse sample stream into contiguous batch-aligned shards,
    sketches every shard with an independent estimator built from one
    shared :class:`repro.distributed.ShardSpec` (same seed → mergeable),
    and reduces the shard states into a single queryable estimator.

    Parameters (all keyword-only; see
    :func:`repro.distributed.driver.fit_sparse_sharded` for the full list)
    ----------------------------------------------------------------------
    samples:
        Iterable of sparse ``(indices, values)`` samples.
    dim:
        Feature dimension ``d``.
    method:
        ``"cs"`` (default) or ``"ascs"`` — only the linear-mergeable
        estimators; ``"ascs"`` also needs ``schedule`` (a
        :class:`repro.core.ThresholdSchedule` or its parameter tuple).
    n_workers, backend:
        ``backend="serial"`` (default) threads one estimator through the
        partition and is bit-identical to
        :meth:`repro.covariance.CovarianceSketcher.fit_sparse`;
        ``backend="process"`` maps shards over a ``multiprocessing`` pool
        and merges — exact for CS counters/moments up to float-addition
        regrouping, approximate in ASCS *selection* (each shard's sampling
        gate consulted its own partial sketch).  Merge laws and measured
        scaling: ``PERF.md`` ("Sharded ingestion").

    Returns
    -------
    :class:`repro.distributed.ShardedFit`; its ``sketcher`` answers
    ``estimate_keys`` / ``top_pairs`` like a ``fit_sparse`` result.
    """
    # Imported lazily: repro.distributed builds on repro.core, so a
    # module-level import here would be circular.
    from repro.distributed.driver import fit_sparse_sharded as _fit_sparse_sharded

    return _fit_sparse_sharded(samples, dim, **kwargs)


def sketch_correlations(
    data,
    memory_floats: int,
    *,
    method: str = "ascs",
    alpha: float = 0.01,
    top_k: int = 100,
    num_tables: int = 5,
    mode: str = "correlation",
    batch_size: int = 32,
    pilot_fraction: float = 0.05,
    tau0: float = 1e-4,
    delta: float | None = None,
    delta_star: float | None = None,
    u: float | None = None,
    sigma: float | None = None,
    two_sided: bool = False,
    decay: float | None = None,
    storage: str = "float64",
    quantum: float | None = None,
    backend: str | None = None,
    seed: int = 0,
) -> SketchResult:
    """One-pass sparse correlation estimation with a memory budget.

    Parameters
    ----------
    data:
        ``(n, d)`` dense array or scipy sparse matrix.  Rows are treated as
        one ordered stream (shuffle upstream if your data is not i.i.d.,
        section 3).
    memory_floats:
        Total sketch budget ``M``; the paper's recipe ``R = M / K`` sizes
        the tables.
    method:
        ``"ascs"`` (default), ``"cs"``, ``"asketch"`` or ``"coldfilter"``.
    alpha:
        Assumed fraction of signal pairs (Table 3 lists the paper's picks).
    u, sigma:
        Optional overrides for the pilot estimates.
    top_k:
        Number of top pairs to return.
    decay:
        Optional per-sample exponential decay factor in ``(0, 1)``.
        Estimates become recency-weighted (decayed) means, which track
        drifting streams instead of the all-time average — see
        :mod:`repro.streaming`.  Supported for ``method="cs"`` only: the
        ASCS threshold schedule and the filter baselines are calibrated
        against undecayed mass.
    storage, quantum:
        Counter tier of the backing sketch (:mod:`repro.sketch.storage`).
        ``storage="int16"`` stores fixed-point counters at 2 bytes each —
        4x the buckets of float64 at the same byte budget — widening
        exactly on saturation; :func:`repro.sketch.planner.plan` picks
        these (plus ``K``/``R``) from a byte budget directly.
    backend:
        Kernel backend of the backing sketch
        (:mod:`repro.sketch.kernels`): ``"numpy"``, ``"numba"`` or
        ``"auto"``; ``None`` defers to ``$REPRO_KERNEL_BACKEND`` / auto.
        Throughput only — results are bit-identical across backends.

    Returns
    -------
    :class:`SketchResult` with the top pairs sorted by decreasing estimate.
    """
    dense = _as_dense(data)
    n, d = dense.shape
    num_buckets = max(16, int(memory_floats) // int(num_tables))

    if decay is not None:
        if method != "cs":
            raise ValueError(
                "decay is supported for method='cs' only (the ASCS schedule "
                f"and filter baselines assume undecayed mass), got {method!r}"
            )
        # Lazy import: repro.streaming builds on repro.core.
        from repro.streaming import make_decaying_sketcher

        sketcher = make_decaying_sketcher(
            d,
            n,
            gamma=float(decay),
            num_tables=num_tables,
            num_buckets=num_buckets,
            seed=seed,
            mode=mode,
            batch_size=batch_size,
            track_top=max(4 * top_k, 64),
            two_sided=two_sided,
            storage=storage,
            quantum=quantum,
            backend=backend,
        )
        sketcher.fit_dense(dense)
        i, j, estimates = sketcher.top_pairs(top_k)
        return SketchResult(
            pairs_i=i,
            pairs_j=j,
            estimates=estimates,
            method=method,
            plan=None,
            pilot=None,
            sketcher=sketcher,
        )

    pilot = None
    plan = None
    if method == "ascs":
        if u is None or sigma is None:
            pilot = run_pilot(
                dense,
                alpha,
                num_tables=num_tables,
                num_buckets=num_buckets,
                pilot_fraction=pilot_fraction,
                mode=mode,
                seed=seed,
            )
            u = u if u is not None else pilot.u
            sigma = sigma if sigma is not None else pilot.sigma
        model = ProblemModel(
            p=num_pairs(d),
            alpha=alpha,
            u=u,
            sigma=sigma,
            T=n,
            num_tables=num_tables,
            num_buckets=num_buckets,
        )
        plan = plan_hyperparameters(
            model, tau0=tau0, delta=delta, delta_star=delta_star
        )

    estimator = build_estimator(
        method,
        n,
        num_tables,
        num_buckets,
        plan=plan,
        seed=seed,
        two_sided=two_sided,
        track_top=max(4 * top_k, 64),
        storage=storage,
        quantum=quantum,
        backend=backend,
    )
    sketcher = CovarianceSketcher(
        d, estimator, mode=mode, centering="none", batch_size=batch_size
    )
    sketcher.fit_dense(dense)

    i, j, estimates = sketcher.top_pairs(top_k)
    return SketchResult(
        pairs_i=i,
        pairs_j=j,
        estimates=estimates,
        method=method,
        plan=plan,
        pilot=pilot,
        sketcher=sketcher,
    )
