"""Active Sampling Count Sketch — Algorithm 2, the paper's contribution.

ASCS wraps a count sketch with a two-phase ingestion policy:

* **exploration** (``t < T0``): every update is inserted, building a coarse
  estimate of each variable's mean;
* **sampling** (``t >= T0``): an update for key ``i`` is inserted only when
  the sketch's current estimate clears the schedule threshold ``tau(t)``.

Filtering removes most noise-variable mass from the tables, shrinking the
collision term ``H_e(i)`` and raising the SNR of what the sketch ingests
(Theorem 3) — which is why ASCS recovers top correlations at a tenth of the
memory vanilla CS needs (Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Observer, SketchEstimator
from repro.core.schedule import ThresholdSchedule
from repro.sketch.count_sketch import CountSketch
from repro.theory.bounds import ProblemModel
from repro.theory.planner import ASCSPlan, plan_hyperparameters

__all__ = ["ActiveSamplingCountSketch"]


class ActiveSamplingCountSketch(SketchEstimator):
    """Algorithm 2: count sketch with exploration + active sampling.

    Parameters
    ----------
    sketch:
        Backing count sketch (or any :class:`repro.sketch.ValueSketch`).
    total_samples:
        ``T`` — stream length used for the ``1/T`` update scaling and the
        threshold ramp normalisation.
    schedule:
        The ``(T0, tau0, theta)`` threshold schedule.
    track_top / two_sided / observer / name:
        As for :class:`repro.core.SketchEstimator`.  ``two_sided=True``
        applies the threshold to ``|estimate|``, required when negative
        correlations are signals too.
    """

    def __init__(
        self,
        sketch,
        total_samples: int,
        schedule: ThresholdSchedule,
        *,
        track_top: int = 0,
        two_sided: bool = False,
        observer: Observer | None = None,
        name: str = "ASCS",
    ):
        super().__init__(
            sketch,
            total_samples,
            track_top=track_top,
            two_sided=two_sided,
            observer=observer,
            name=name,
        )
        if schedule.total_samples != total_samples:
            raise ValueError(
                "schedule.total_samples must match the estimator's total_samples"
            )
        self.schedule = schedule

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_plan(
        cls,
        plan: ASCSPlan,
        total_samples: int,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        **kwargs,
    ) -> "ActiveSamplingCountSketch":
        """Build an ASCS from a resolved :class:`repro.theory.ASCSPlan`."""
        sketch = CountSketch(num_tables, num_buckets, seed=seed, family=family)
        schedule = ThresholdSchedule.from_plan(plan, total_samples)
        return cls(sketch, total_samples, schedule, **kwargs)

    @classmethod
    def plan_and_build(
        cls,
        model: ProblemModel,
        *,
        tau0: float = 1e-4,
        delta: float | None = None,
        delta_star: float | None = None,
        seed: int = 0,
        family: str = "multiply-shift",
        **kwargs,
    ) -> tuple["ActiveSamplingCountSketch", ASCSPlan]:
        """Run Algorithm 3 on ``model`` and build the resulting ASCS.

        Returns the estimator together with the plan (for reporting the
        chosen ``T0``/``theta`` as the experiment tables do).
        """
        plan = plan_hyperparameters(
            model, tau0=tau0, delta=delta, delta_star=delta_star
        )
        est = cls.from_plan(
            plan,
            model.T,
            model.num_tables,
            model.num_buckets,
            seed=seed,
            family=family,
            **kwargs,
        )
        return est, plan

    # ------------------------------------------------------------------
    # The sampling rule
    # ------------------------------------------------------------------
    def _accept(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        if self.schedule.in_exploration(self.samples_seen):
            return None, None
        # Algorithm 2 line 10-11: gate on the estimate as of the *previous*
        # step; with batching, samples_seen is exactly the pre-batch t-1.
        # The estimates are returned so ingest's tracker refresh can reuse
        # them instead of querying the same buckets a second time.
        tau = self.schedule.threshold(self.samples_seen)
        estimates = self.sketch.query(keys)
        if self.two_sided:
            return np.abs(estimates) >= tau, estimates
        return estimates >= tau, estimates

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_exploration(self) -> bool:
        """Whether the estimator is still in the exploration period."""
        return self.schedule.in_exploration(self.samples_seen)

    @property
    def current_threshold(self) -> float:
        """The sampling threshold that will gate the next batch."""
        return self.schedule.threshold(self.samples_seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveSamplingCountSketch(T={self.total_samples}, "
            f"T0={self.schedule.exploration_length}, "
            f"tau0={self.schedule.tau0:g}, theta={self.schedule.theta:g}, "
            f"seen={self.samples_seen})"
        )
