"""Sampling-threshold schedule for ASCS (sections 6.4-6.5).

The paper restricts the threshold to a linear ramp,
``tau(t) = tau(T0) + theta/T * (t - T0)`` — two parameters, and close to the
law-of-iterated-logarithm optimal growth.  :class:`ThresholdSchedule`
packages the ramp together with the exploration length so the estimator can
ask one object a single question: "what threshold applies at stream position
``t``?"
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.theory.planner import ASCSPlan

__all__ = ["ThresholdSchedule"]


@dataclass(frozen=True)
class ThresholdSchedule:
    """Linear sampling-threshold schedule.

    Attributes
    ----------
    exploration_length:
        ``T0`` — stream positions ``t < T0`` are in the exploration period
        (insert everything).
    tau0:
        Threshold at the start of sampling, ``tau(T0)``.
    theta:
        Slope parameter; the threshold reaches ``tau0 + theta (T - T0)/T``
        at the end of the stream.
    total_samples:
        ``T`` — the stream-length normaliser of the ramp.
    """

    exploration_length: int
    tau0: float
    theta: float
    total_samples: int

    def __post_init__(self):
        if self.exploration_length < 0:
            raise ValueError("exploration_length must be non-negative")
        if self.total_samples < 1:
            raise ValueError("total_samples must be >= 1")
        if self.theta < 0:
            raise ValueError("theta must be non-negative")

    @classmethod
    def from_plan(cls, plan: ASCSPlan, total_samples: int) -> "ThresholdSchedule":
        """Build the schedule an :class:`repro.theory.ASCSPlan` prescribes."""
        return cls(
            exploration_length=plan.exploration_length,
            tau0=plan.tau0,
            theta=plan.theta,
            total_samples=int(total_samples),
        )

    def in_exploration(self, t: int) -> bool:
        """Whether stream position ``t`` (0-based samples seen) is still in
        the exploration period."""
        return t < self.exploration_length

    def threshold(self, t: int) -> float:
        """``tau(t)`` — defined for ``t >= T0``; clamps below ``T0``."""
        t_eff = max(int(t), self.exploration_length)
        progress = (t_eff - self.exploration_length) / self.total_samples
        return self.tau0 + self.theta * progress

    def thresholds(self, t: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`threshold`."""
        t = np.maximum(np.asarray(t, dtype=np.float64), self.exploration_length)
        progress = (t - self.exploration_length) / self.total_samples
        return self.tau0 + self.theta * progress

    @property
    def final_threshold(self) -> float:
        return self.threshold(self.total_samples)
