"""Streaming mean estimators over flat keys — the layer Algorithm 1/2 run at.

An estimator consumes batches of (key, summed-value) updates produced by the
covariance pipeline, maintains the ``1/T`` scaling of Algorithms 1-2, tracks
top candidates for trillion-scale retrieval, and exposes a uniform query
interface.  :class:`SketchEstimator` is the ingest-everything behaviour
(vanilla CS, ASketch, Cold Filter — anything satisfying
:class:`repro.sketch.ValueSketch`); ASCS subclasses it and overrides the
acceptance rule.
"""

from __future__ import annotations

import copy
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.sketch.base import ValueSketch, validate_batch
from repro.sketch.topk import TopKTracker

__all__ = ["StreamingEstimator", "SketchEstimator"]

#: Observer signature: (samples_seen_after_batch, keys, values, accepted_mask).
Observer = Callable[[int, np.ndarray, np.ndarray, np.ndarray], None]


@runtime_checkable
class StreamingEstimator(Protocol):
    """Anything that can ingest keyed updates and estimate means."""

    def ingest(self, keys, values, num_samples: int = 1) -> None: ...

    def estimate(self, keys) -> np.ndarray: ...

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]: ...


class SketchEstimator:
    """Ingest-everything streaming mean estimator backed by a value sketch.

    Parameters
    ----------
    sketch:
        Backing :class:`repro.sketch.ValueSketch` (count sketch for the
        vanilla baseline; ASketch / Cold Filter plug in unchanged).
    total_samples:
        ``T`` — stream length; updates are scaled by ``1/T`` as in
        Algorithm 1 so queries estimate the stream mean directly.
    track_top:
        Candidate-pool capacity for trillion-scale top-k retrieval
        (0 disables tracking; retrieval then requires a full scan).
    two_sided:
        Rank/accept by absolute value instead of signed value.
    observer:
        Optional hook called after every batch with
        ``(samples_seen, keys, values, accepted_mask)`` — used by the SNR
        instrumentation of Figure 5.
    name:
        Label used by experiment tables.
    """

    def __init__(
        self,
        sketch: ValueSketch,
        total_samples: int,
        *,
        track_top: int = 0,
        two_sided: bool = False,
        observer: Observer | None = None,
        name: str = "CS",
    ):
        if total_samples < 1:
            raise ValueError(f"total_samples must be >= 1, got {total_samples}")
        self.sketch = sketch
        self.total_samples = int(total_samples)
        self.two_sided = bool(two_sided)
        self.observer = observer
        self.name = name
        self.samples_seen = 0
        self.updates_examined = 0
        self.updates_accepted = 0
        self.tracker = (
            TopKTracker(track_top, two_sided=two_sided) if track_top else None
        )

    # ------------------------------------------------------------------
    def _accept(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """``(mask, estimates)`` for a batch; a ``None`` mask accepts everything.

        Subclasses (ASCS) override this with the active-sampling rule and
        return the sketch estimates the rule already computed, so the
        tracker refresh below does not re-gather the same buckets.
        """
        return None, None

    def ingest(self, keys, values, num_samples: int = 1) -> None:
        """Consume a batch of per-key *summed* updates covering
        ``num_samples`` stream samples."""
        keys, values = validate_batch(keys, values)
        mask, gate_estimates = self._accept(keys, values)
        if mask is None:
            accepted_keys, accepted_values = keys, values
            mask_out = np.ones(keys.size, dtype=bool)
        else:
            accepted_keys, accepted_values = keys[mask], values[mask]
            mask_out = mask
        scaled = accepted_values / self.total_samples
        track = self.tracker is not None and accepted_keys.size > 0
        if track and gate_estimates is None and hasattr(self.sketch, "insert_and_query"):
            # Fused insert + post-insert estimate: one hashing pass instead
            # of two, identical results.
            estimates = self.sketch.insert_and_query(accepted_keys, scaled)
        else:
            self.sketch.insert(accepted_keys, scaled)
            if not track:
                estimates = None
            elif gate_estimates is not None:
                # Reuse the estimates the acceptance rule already gathered.
                # They are pre-insert (one batch staler than the query the
                # pre-fusion code issued), which can shift tracker prune
                # decisions near the pool boundary — an accepted trade for
                # halving the gate's query cost; the final top_k re-queries
                # the finished sketch either way.
                estimates = gate_estimates[mask]
            else:
                estimates = self.sketch.query(accepted_keys)
        self.samples_seen += int(num_samples)
        self.updates_examined += keys.size
        self.updates_accepted += int(mask_out.sum())
        if track:
            self.tracker.offer(accepted_keys, estimates)
        if self.observer is not None:
            self.observer(self.samples_seen, keys, values, mask_out)

    def estimate(self, keys) -> np.ndarray:
        """Current mean estimates for the given keys."""
        return self.sketch.query(keys)

    def export_snapshot_state(self) -> dict:
        """Snapshot export hook: an independent frozen copy of the query state.

        Returns everything the serving layer needs to answer queries exactly
        as this estimator would right now, decoupled from future ingestion:

        * ``sketch`` — a deep copy of the backing sketch, made read-only via
          ``freeze()`` where the sketch supports it (flat-table sketches do;
          filter-backed baselines are plain copies, which is still
          independent state — their ``query`` never mutates);
        * ``tracker_keys`` — the candidate pool for trillion-scale top-k
          (empty when tracking is off);
        * the sampler statistics and identity fields.

        Querying the returned sketch is bit-identical to :meth:`estimate`
        on this estimator at the moment of export.
        """
        sketch = (
            self.sketch.copy()
            if hasattr(self.sketch, "copy")
            else copy.deepcopy(self.sketch)
        )
        if hasattr(sketch, "freeze"):
            sketch.freeze()
        if self.tracker is not None:
            tracker_keys = self.tracker.candidates()
        else:
            tracker_keys = np.empty(0, dtype=np.int64)
        return {
            "sketch": sketch,
            "tracker_keys": tracker_keys,
            "name": self.name,
            "total_samples": self.total_samples,
            "samples_seen": self.samples_seen,
            "updates_examined": self.updates_examined,
            "updates_accepted": self.updates_accepted,
            "two_sided": self.two_sided,
        }

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` candidates by final estimate (requires ``track_top``)."""
        if self.tracker is None:
            raise RuntimeError(
                "top_k requires track_top > 0; use a full scan for small key spaces"
            )
        return self.tracker.top_k(k, sketch=self.sketch)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of examined updates that reached the sketch."""
        if self.updates_examined == 0:
            return 1.0
        return self.updates_accepted / self.updates_examined

    @property
    def memory_floats(self) -> int:
        return self.sketch.memory_floats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, T={self.total_samples}, "
            f"seen={self.samples_seen})"
        )
