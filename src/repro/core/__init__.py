"""Core layer: ASCS (Algorithm 2), estimator protocol, high-level API."""

from repro.core.api import (
    METHODS,
    PilotEstimates,
    SketchResult,
    build_estimator,
    fit_sparse_sharded,
    run_pilot,
    sketch_correlations,
)
from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.estimator import SketchEstimator, StreamingEstimator
from repro.core.schedule import ThresholdSchedule

__all__ = [
    "METHODS",
    "ActiveSamplingCountSketch",
    "PilotEstimates",
    "SketchEstimator",
    "SketchResult",
    "StreamingEstimator",
    "ThresholdSchedule",
    "build_estimator",
    "fit_sparse_sharded",
    "run_pilot",
    "sketch_correlations",
]
