"""Streaming (one-pass) moment trackers.

Two levels of fidelity:

* :class:`RunningMoments` — per-feature mean/variance via Welford's update,
  batched.  Costs O(d) per sample and is what the paper keeps alongside the
  sketch: the running mean feeds the covariance update of section 4, and
  the running std converts covariance estimates to correlations.
* :class:`ExactCovariance` — the full dense ``d x d`` streaming covariance
  (Chan et al. pairwise merge).  Quadratic memory, usable only at small
  ``d``; it provides the ground truth for the section 8.3 evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import scatter_add_flat

__all__ = ["RunningMoments", "SparseMoments", "ExactCovariance"]


class RunningMoments:
    """Per-feature running mean and variance (batched Welford).

    Parameters
    ----------
    dim:
        Number of features ``d``.

    Notes
    -----
    The update consumes a whole batch at once using the parallel-merge form::

        delta = batch_mean - mean
        M2   += batch_M2 + delta^2 * n*b/(n+b)

    which is numerically stable and exactly equals the one-sample-at-a-time
    Welford recursion.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.count = 0
        self._mean = np.zeros(self.dim, dtype=np.float64)
        self._m2 = np.zeros(self.dim, dtype=np.float64)

    def update(self, batch: np.ndarray) -> None:
        """Fold a dense batch of shape ``(b, dim)`` (or ``(dim,)``) in."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        if batch.shape[1] != self.dim:
            raise ValueError(f"batch has {batch.shape[1]} features, expected {self.dim}")
        b = batch.shape[0]
        if b == 0:
            return
        batch_mean = batch.mean(axis=0)
        batch_m2 = ((batch - batch_mean) ** 2).sum(axis=0)
        n = self.count
        delta = batch_mean - self._mean
        total = n + b
        self._mean += delta * (b / total)
        self._m2 += batch_m2 + delta * delta * (n * b / total)
        self.count = total

    def update_sparse(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Fold one sparse sample in (implicit zeros elsewhere)."""
        dense = np.zeros(self.dim, dtype=np.float64)
        dense[np.asarray(indices, dtype=np.int64)] = values
        self.update(dense[None, :])

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Fold another tracker's state in (Chan et al. parallel merge).

        Exactly the two-accumulator form of :meth:`update`, so merging
        per-shard moments reproduces the statistics of the concatenated
        stream — the reduction step of sharded ingestion.
        """
        if not isinstance(other, RunningMoments) or other.dim != self.dim:
            raise ValueError(
                "moments are mergeable only between RunningMoments of equal dim"
            )
        b = other.count
        if b == 0:
            return self
        n = self.count
        delta = other._mean - self._mean
        total = n + b
        self._mean += delta * (b / total)
        self._m2 += other._m2 + delta * delta * (n * b / total)
        self.count = total
        return self

    @property
    def mean(self) -> np.ndarray:
        """Current sample mean per feature."""
        return self._mean.copy()

    def variance(self, ddof: int = 0) -> np.ndarray:
        """Current sample variance per feature."""
        if self.count <= ddof:
            return np.full(self.dim, np.nan)
        return self._m2 / (self.count - ddof)

    def std(self, ddof: int = 0, floor: float = 0.0) -> np.ndarray:
        """Current sample standard deviation, optionally floored.

        ``floor`` guards correlation normalisation against zero-variance
        features (dead features produce 0/0 otherwise).
        """
        return np.maximum(np.sqrt(self.variance(ddof)), floor)


class SparseMoments:
    """Per-feature running moments for high-dimensional sparse streams.

    Equivalent to :class:`RunningMoments` (``ddof=0``) but with O(nnz)
    updates: absent features are implicit zeros, so only ``sum`` and
    ``sum of squares`` accumulators are touched.  This is the structure a
    one-pass correlation sketcher keeps next to the sketch at URL/DNA scale,
    where densifying every sample would dominate the runtime.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.count = 0
        self._sum = np.zeros(self.dim, dtype=np.float64)
        self._sumsq = np.zeros(self.dim, dtype=np.float64)

    def update_batch(
        self, indices: np.ndarray, values: np.ndarray, num_samples: int
    ) -> None:
        """Fold ``num_samples`` sparse samples in, given their concatenated
        non-zero ``indices`` / ``values``."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape:
            raise ValueError("indices and values must align")
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        if indices.size:
            # Touch only the hit accumulator slots when the batch is small
            # relative to dim — at URL/DNA scale a dense length-d bincount
            # per batch would dominate the whole ingest path.  The add.at
            # branch folds duplicate indices into the accumulators in a
            # different order than the old always-bincount code, so moments
            # (hence correlation-mode stds) can differ from the pre-fusion
            # pipeline at the last ulp; estimates are unaffected beyond
            # that rounding.
            use_bincount = indices.size * 16 >= self.dim
            scatter_add_flat(self._sum, indices, values, use_bincount=use_bincount)
            scatter_add_flat(
                self._sumsq, indices, values * values, use_bincount=use_bincount
            )
        self.count += int(num_samples)

    def merge(self, other: "SparseMoments") -> "SparseMoments":
        """Fold another tracker's accumulators in — exact (plain sums).

        ``sum``/``sum of squares``/``count`` are all linear in the stream,
        so sharded moments merge without approximation; this is the
        reduction step of :func:`repro.distributed.fit_sparse_sharded`.
        """
        if not isinstance(other, SparseMoments) or other.dim != self.dim:
            raise ValueError(
                "moments are mergeable only between SparseMoments of equal dim"
            )
        self._sum += other._sum
        self._sumsq += other._sumsq
        self.count += other.count
        return self

    @property
    def mean(self) -> np.ndarray:
        if self.count == 0:
            return np.zeros(self.dim)
        return self._sum / self.count

    def variance(self) -> np.ndarray:
        if self.count == 0:
            return np.full(self.dim, np.nan)
        mean = self._sum / self.count
        return np.maximum(self._sumsq / self.count - mean * mean, 0.0)

    def std(self, floor: float = 0.0) -> np.ndarray:
        return np.maximum(np.sqrt(self.variance()), floor)


class ExactCovariance:
    """Exact dense streaming covariance — ground truth for small ``d``.

    Maintains ``mean`` and the centered co-moment matrix ``M2`` such that
    ``cov = M2 / n`` matches the batch formula
    ``(Y - mean).T @ (Y - mean) / n`` at every prefix of the stream.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.count = 0
        self._mean = np.zeros(self.dim, dtype=np.float64)
        self._m2 = np.zeros((self.dim, self.dim), dtype=np.float64)

    def update(self, batch: np.ndarray) -> None:
        """Fold a dense batch of shape ``(b, dim)`` (or ``(dim,)``) in."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        if batch.shape[1] != self.dim:
            raise ValueError(f"batch has {batch.shape[1]} features, expected {self.dim}")
        b = batch.shape[0]
        if b == 0:
            return
        batch_mean = batch.mean(axis=0)
        centered = batch - batch_mean
        batch_m2 = centered.T @ centered
        n = self.count
        delta = batch_mean - self._mean
        total = n + b
        self._mean += delta * (b / total)
        self._m2 += batch_m2 + np.outer(delta, delta) * (n * b / total)
        self.count = total

    @property
    def mean(self) -> np.ndarray:
        return self._mean.copy()

    def covariance(self, ddof: int = 0) -> np.ndarray:
        """Covariance matrix estimate, ``M2 / (n - ddof)``."""
        if self.count <= ddof:
            return np.full((self.dim, self.dim), np.nan)
        return self._m2 / (self.count - ddof)

    def correlation(self, std_floor: float = 1e-12) -> np.ndarray:
        """Correlation matrix; zero-variance features yield 0 correlations."""
        cov = self.covariance()
        std = np.sqrt(np.diag(cov))
        safe = np.maximum(std, std_floor)
        corr = cov / np.outer(safe, safe)
        dead = std <= std_floor
        corr[dead, :] = 0.0
        corr[:, dead] = 0.0
        np.fill_diagonal(corr, np.where(dead, 0.0, 1.0))
        return corr
