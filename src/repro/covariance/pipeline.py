"""One-pass streaming pipeline: samples ``Y^(t)`` -> pair updates -> sketch.

This is the glue that makes Algorithm 1/2 of the paper operate on raw data
streams.  Responsibilities:

* maintain per-feature running moments (mean for centering, std for the
  correlation normalisation used throughout the paper's experiments);
* expand each batch of samples into covariance-entry updates (dense GEMM
  path or sparse pair-expansion path, section 5);
* feed the updates to any streaming estimator (vanilla CS, ASCS, ASketch,
  Cold Filter) through the uniform ``ingest(keys, values, num_samples)``
  interface;
* convert retrieval results back from flat pair keys to ``(i, j)`` pairs.

Batching is exact for the sketch content (linear sketches commute with
summation); it only coarsens the *sampling decision* grid of ASCS, which is
the documented production trade-off (DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.covariance.running import RunningMoments, SparseMoments
from repro.covariance.updates import (
    adjustment_matrix,
    aggregate_pair_updates,
    dense_batch_products,
    sparse_batch_pairs,
    triu_pair_values,
)
from repro.hashing.pairs import index_to_pair, num_pairs
from repro.sketch.topk import scan_top_keys

__all__ = ["CovarianceSketcher"]

_CENTERING_MODES = ("none", "running", "exact")
_VALUE_MODES = ("covariance", "correlation")


class CovarianceSketcher:
    """Stream samples into a sketch-backed sparse covariance estimator.

    Parameters
    ----------
    dim:
        Number of features ``d``.
    estimator:
        Any object with ``ingest(keys, values, num_samples)`` and
        ``estimate(keys)`` — see :mod:`repro.core`.
    mode:
        ``"covariance"`` sketches raw covariance mass; ``"correlation"``
        normalises each sample by the running per-feature std first, so the
        sketch estimates correlations directly (the paper's experimental
        setting).
    centering:
        ``"none"`` (section-5 fast path, default), ``"running"`` (subtract
        the running mean, skip the drift adjustment — the paper's
        implementation choice, section 8.1) or ``"exact"`` (running mean
        plus the section-4 adjustment; dense path only).
    batch_size:
        Samples per ingest call.
    std_floor:
        Lower clamp for the normalising std (guards dead features).
    """

    def __init__(
        self,
        dim: int,
        estimator,
        *,
        mode: str = "correlation",
        centering: str = "none",
        batch_size: int = 32,
        std_floor: float = 1e-6,
    ):
        if mode not in _VALUE_MODES:
            raise ValueError(f"mode must be one of {_VALUE_MODES}, got {mode!r}")
        if centering not in _CENTERING_MODES:
            raise ValueError(
                f"centering must be one of {_CENTERING_MODES}, got {centering!r}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dim = int(dim)
        self.num_pairs = num_pairs(self.dim)
        self.estimator = estimator
        self.mode = mode
        self.centering = centering
        self.batch_size = int(batch_size)
        self.std_floor = float(std_floor)
        self.moments = RunningMoments(self.dim)
        self.sparse_moments = SparseMoments(self.dim)
        self.samples_seen = 0
        self._dense_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Dense path
    # ------------------------------------------------------------------
    def _dense_pair_keys(self) -> np.ndarray:
        if self._dense_keys is None:
            if self.num_pairs > 50_000_000:
                raise ValueError(
                    "dense path would materialise too many pair keys; "
                    "use the sparse path for this dimension"
                )
            self._dense_keys = np.arange(self.num_pairs, dtype=np.int64)
            # The dense path re-hashes this exact array every batch; let
            # cache-capable sketches precompute the buckets and signs.
            sketch = getattr(self.estimator, "sketch", None)
            if (
                sketch is not None
                and hasattr(sketch, "cache_keys")
                and self.num_pairs <= 4_000_000
            ):
                sketch.cache_keys(self._dense_keys)
        return self._dense_keys

    def fit_dense(self, data: np.ndarray) -> "CovarianceSketcher":
        """Stream a dense ``(n, d)`` array through the estimator in batches."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {data.shape}")
        for start in range(0, data.shape[0], self.batch_size):
            self.partial_fit_dense(data[start : start + self.batch_size])
        return self

    def partial_fit_dense(self, batch: np.ndarray) -> None:
        """Ingest one dense batch (rows are samples)."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        b = batch.shape[0]
        if b == 0:
            return
        if self.centering == "exact":
            self._partial_fit_dense_exact(batch)
            return
        self.moments.update(batch)
        center = self.moments.mean if self.centering == "running" else None
        work = batch if center is None else batch - center
        if self.mode == "correlation":
            work = work / self.moments.std(floor=self.std_floor)
        values = dense_batch_products(work)
        self.estimator.ingest(self._dense_pair_keys(), values, num_samples=b)
        self.samples_seen += b

    def _partial_fit_dense_exact(self, batch: np.ndarray) -> None:
        """Per-sample centered products plus the section-4 adjustment term.

        Keeps the accumulated (unscaled) sketch content exactly equal to
        ``sum_k (Y^k - mean_t)(Y^k - mean_t)`` after every sample.  O(d^2)
        per sample — intended for validation, not production streams.
        """
        keys = self._dense_pair_keys()
        for row in batch:
            mean_old = self.moments.mean
            t_prev = self.moments.count
            self.moments.update(row[None, :])
            mean_new = self.moments.mean
            centered = row - mean_new
            values = triu_pair_values(np.outer(centered, centered))
            values += adjustment_matrix(mean_old, mean_new, t_prev)
            if self.mode == "correlation":
                std = self.moments.std(floor=self.std_floor)
                values /= triu_pair_values(np.outer(std, std))
            self.estimator.ingest(keys, values, num_samples=1)
            self.samples_seen += 1

    # ------------------------------------------------------------------
    # Sparse path
    # ------------------------------------------------------------------
    def fit_sparse(
        self,
        samples: Iterable[tuple[np.ndarray, np.ndarray]],
    ) -> "CovarianceSketcher":
        """Stream sparse samples ``(indices, values)`` through the estimator.

        Centering other than ``"none"`` is rejected: at sparse scale the
        paper's section-5 approximation (means negligible vs stds) is the
        whole point of the fast path.
        """
        if self.centering != "none":
            raise ValueError("sparse path supports centering='none' only")
        batch: list[tuple[np.ndarray, np.ndarray]] = []
        for sample in samples:
            batch.append(sample)
            if len(batch) >= self.batch_size:
                self._ingest_sparse_batch(batch)
                batch = []
        if batch:
            self._ingest_sparse_batch(batch)
        return self

    def _ingest_sparse_batch(self, batch: list[tuple[np.ndarray, np.ndarray]]) -> None:
        b = len(batch)
        idx_arrays = [np.asarray(s[0], dtype=np.int64) for s in batch]
        val_arrays = [np.asarray(s[1], dtype=np.float64) for s in batch]
        if any(i.size != v.size for i, v in zip(idx_arrays, val_arrays)):
            raise ValueError("indices and values must align")
        lengths = np.asarray([a.size for a in idx_arrays], dtype=np.int64)
        all_idx = np.concatenate(idx_arrays)
        all_val = np.concatenate(val_arrays)
        self.sparse_moments.update_batch(all_idx, all_val, num_samples=b)

        if self.mode == "correlation" and all_idx.size:
            all_val = all_val / self.sparse_moments.std(floor=self.std_floor)[all_idx]

        # One fused kernel expands every sample's m*(m-1)/2 pairs at once —
        # identical output to looping sparse_sample_pairs per sample.
        keys, products = sparse_batch_pairs(all_idx, all_val, lengths, self.dim)
        keys, sums = aggregate_pair_updates([keys], [products])
        self.estimator.ingest(keys, sums, num_samples=b)
        self.samples_seen += b

    def fit(self, data) -> "CovarianceSketcher":
        """Dispatch on input type: dense array, scipy CSR matrix, or an
        iterable of sparse ``(indices, values)`` samples."""
        if isinstance(data, np.ndarray):
            return self.fit_dense(data)
        if hasattr(data, "tocsr") and hasattr(data, "indptr"):
            return self.fit_sparse(_iter_csr_rows(data))
        if isinstance(data, Iterable):
            return self.fit_sparse(data)
        raise TypeError(f"unsupported data type: {type(data).__name__}")

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def estimate_keys(self, keys) -> np.ndarray:
        """Estimates for flat pair keys (in the mode's units)."""
        return np.asarray(self.estimator.estimate(keys), dtype=np.float64)

    def estimate_pairs(self, i, j) -> np.ndarray:
        """Estimates for explicit ``(i, j)`` pairs."""
        from repro.hashing.pairs import pair_to_index

        return self.estimate_keys(pair_to_index(i, j, self.dim))

    def top_pairs(
        self, k: int, *, scan: bool | None = None, chunk: int = 1 << 20
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-``k`` pairs by estimate.

        ``scan=True`` ranks by querying every pair key (exact, small ``p``
        only — the section 8.3 protocol); ``scan=False`` uses the
        estimator's candidate tracker (trillion-scale protocol).  The
        default picks scanning whenever ``p <= 4e6``.

        Returns ``(i, j, estimates)`` sorted by decreasing estimate.
        """
        if scan is None:
            scan = self.num_pairs <= 4_000_000
        if scan:
            keys, estimates = self._scan_top_keys(k, chunk)
        else:
            keys, estimates = self.estimator.top_k(k)
        i, j = index_to_pair(keys, self.dim)
        return i, j, estimates

    def _scan_top_keys(self, k: int, chunk: int) -> tuple[np.ndarray, np.ndarray]:
        # One shared fixed-buffer scan kernel (the serving snapshot builder
        # uses the same one with a two-sided rank transform).
        return scan_top_keys(self.estimate_keys, self.num_pairs, k, chunk=chunk)


def _iter_csr_rows(matrix) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(indices, values)`` per row of a scipy CSR matrix."""
    indptr = matrix.indptr
    for row in range(matrix.shape[0]):
        lo, hi = indptr[row], indptr[row + 1]
        yield matrix.indices[lo:hi].astype(np.int64), matrix.data[lo:hi]
