"""Pair-product update computation (section 4 of the paper).

The stream of covariance increments is ``X_i^(t) = (Y_a - E Y_a)(Y_b - E Y_b)``
for the pair ``i = (a, b)``.  Three practical variants are provided:

* **uncentered** — ``Y_a Y_b`` directly; the paper's recommended fast path
  (section 5) valid when feature means are negligible vs their stds.
* **running-mean centered** — subtract the current running mean, skipping
  the correction for the drift of earlier samples ("In the real experiments
  ... we may just skip the adjustment term", section 4).
* **exact centered** — running mean plus the closed-form ``adjustment`` term
  of section 4, which keeps the sketch content exactly equal to the batch
  centered co-moment at every time step.

All three are expressed as batched matrix products so the dense path costs
one ``d x d`` GEMM per batch regardless of batch size.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.hashing.pairs import pair_to_index

__all__ = [
    "triu_pair_values",
    "dense_batch_products",
    "adjustment_matrix",
    "sparse_sample_pairs",
    "sparse_batch_pairs",
    "aggregate_pair_updates",
]


@lru_cache(maxsize=8)
def _triu_indices(d: int) -> tuple[np.ndarray, np.ndarray]:
    return np.triu_indices(d, k=1)


def triu_pair_values(matrix: np.ndarray) -> np.ndarray:
    """Extract the strict upper triangle row-major — aligned with flat pair
    keys ``0..p-1`` of :func:`repro.hashing.pair_to_index`."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    rows, cols = _triu_indices(matrix.shape[0])
    return matrix[rows, cols]


def dense_batch_products(
    batch: np.ndarray, center: np.ndarray | None = None
) -> np.ndarray:
    """Sum of pair products over a dense batch, as a flat ``p``-vector.

    Computes ``sum_t (y_t - c)(y_t - c)^T`` restricted to the strict upper
    triangle, where ``c`` is ``center`` (or zero).  This equals the total
    update mass a batch of samples contributes to every covariance entry.
    """
    batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
    if center is not None:
        batch = batch - np.asarray(center, dtype=np.float64)
    gram = batch.T @ batch
    return triu_pair_values(gram)


def adjustment_matrix(
    mean_old: np.ndarray,
    mean_new: np.ndarray,
    t_prev: int,
) -> np.ndarray:
    """The section-4 ``adjustment`` term as a flat ``p``-vector.

    When the running mean moves from ``mean_old`` (over ``t_prev`` samples)
    to ``mean_new`` (over ``t_prev + 1``), the ``t_prev`` previously
    inserted centered products must be corrected by::

        sum_k (y_k - m_new)(y_k - m_new)^T - sum_k (y_k - m_old)(y_k - m_old)^T
            = t_prev * d d^T,    d = m_old - m_new

    (the cross terms vanish because ``sum_k (y_k - m_old) = 0``).  Adding
    this to the newly inserted ``(y_new - m_new)`` product keeps the
    accumulated sum exactly equal to the batch centered co-moment at every
    step — verified against :class:`repro.covariance.ExactCovariance` in
    the tests.

    Note: the paper's printed expression,
    ``(t+1) d_a d_b + e_a d_b + d_a e_b`` with ``e = y_new - m_old``, is the
    variant that pairs with centering the *new* sample by the **old** mean;
    both variants agree with this one after simplification (``d`` is
    proportional to ``e``), and this closed form is the one that is exact
    for the new-mean centering the pipeline uses.
    """
    d = np.asarray(mean_old, dtype=np.float64) - np.asarray(mean_new, dtype=np.float64)
    return triu_pair_values(t_prev * np.outer(d, d))


def sparse_sample_pairs(
    indices: np.ndarray,
    values: np.ndarray,
    dim: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair keys and products ``v_a * v_b`` for one sparse sample.

    A sample with ``m`` non-zeros touches exactly ``m*(m-1)/2`` covariance
    entries; everything else receives a zero update and is skipped — the
    sparsity shortcut of section 5.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if indices.shape != values.shape:
        raise ValueError("indices and values must align")
    order = np.argsort(indices, kind="stable")
    indices = indices[order]
    values = values[order]
    m = indices.size
    if m < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    rows, cols = _triu_indices(m)
    keys = pair_to_index(indices[rows], indices[cols], dim)
    return keys, values[rows] * values[cols]


def sparse_batch_pairs(
    indices: np.ndarray,
    values: np.ndarray,
    lengths: np.ndarray,
    dim: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair keys and products for a whole batch of sparse samples at once.

    ``indices``/``values`` are the concatenated non-zeros of every sample
    and ``lengths`` gives each sample's non-zero count, so sample ``s``
    owns the slice ``[sum(lengths[:s]), sum(lengths[:s+1]))``.  The output
    equals concatenating :func:`sparse_sample_pairs` over the samples in
    order (same keys, same products, same ordering), but the whole batch is
    expanded with one ``lexsort`` plus a handful of ``repeat``/``cumsum``
    kernels instead of a Python loop over samples.

    The expansion works on the per-sample-sorted arrays: the element at
    local position ``a`` of a sample with ``m`` non-zeros is the row of
    ``m - 1 - a`` upper-triangle pairs, so ``np.repeat`` with those counts
    lays out all rows, and a cumulative block-offset subtraction yields the
    matching column positions.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if indices.shape != values.shape or indices.ndim != 1:
        raise ValueError("indices and values must be aligned 1-D arrays")
    total = int(lengths.sum()) if lengths.size else 0
    if total != indices.size:
        raise ValueError(
            f"lengths sum to {total} but {indices.size} non-zeros were given"
        )
    if indices.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    # Sort indices *within* each sample (stable, matching the per-sample
    # argsort of sparse_sample_pairs).
    sample_id = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    order = np.lexsort((indices, sample_id))
    idx = indices[order]
    val = values[order]

    starts = np.cumsum(lengths) - lengths  # first slot of each sample
    m_of = np.repeat(lengths, lengths)  # sample size, per element
    local = np.arange(idx.size, dtype=np.int64) - np.repeat(starts, lengths)
    reps = m_of - 1 - local  # pairs rowed by this element
    num_out = int(reps.sum())
    if num_out == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    rows = np.repeat(np.arange(idx.size, dtype=np.int64), reps)
    block_starts = np.cumsum(reps) - reps
    cols = np.arange(num_out, dtype=np.int64) - np.repeat(block_starts, reps)
    cols += rows + 1
    keys = pair_to_index(idx[rows], idx[cols], dim)
    return keys, val[rows] * val[cols]


def aggregate_pair_updates(
    keys_list: list[np.ndarray],
    values_list: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-sample pair updates into unique (key, summed value) arrays.

    Batching the stream this way is exact for any linear sketch: inserting
    the per-key sums is identical to inserting each sample separately.
    """
    if not keys_list:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    keys = np.concatenate(keys_list)
    values = np.concatenate(values_list)
    if keys.size == 0:
        return keys.astype(np.int64), values.astype(np.float64)
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=values, minlength=uniq.size)
    return uniq.astype(np.int64), sums.astype(np.float64)
