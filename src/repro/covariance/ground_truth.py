"""Exact covariance/correlation ground truth for evaluation.

Section 8.3 evaluates sketches against the *exact* correlation matrix of the
dataset, which is computable at the 1000-feature scale.  At URL/DNA scale
the exact matrix is impossible, but the paper's Table-2 metric only needs
the empirical correlation of the ~1000 *reported* pairs — computable from
stored data with one column-dot-product per pair.  Both utilities live here.
"""

from __future__ import annotations

import numpy as np

from repro.covariance.updates import triu_pair_values

__all__ = [
    "correlation_matrix",
    "flat_true_correlations",
    "pair_correlations",
    "top_true_pairs",
    "signal_threshold",
    "signal_key_set",
]


def correlation_matrix(data, std_floor: float = 1e-12) -> np.ndarray:
    """Exact empirical correlation matrix of a dataset (dense or sparse).

    Zero-variance features get zero correlation rows/columns rather than
    NaNs, so downstream ranking code never sees non-finite values.
    """
    if hasattr(data, "toarray") and not isinstance(data, np.ndarray):
        dense = np.asarray(data.toarray(), dtype=np.float64)
    else:
        dense = np.asarray(data, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError(f"expected a 2-D dataset, got shape {dense.shape}")
    n = dense.shape[0]
    mean = dense.mean(axis=0)
    centered = dense - mean
    cov = centered.T @ centered / n
    std = np.sqrt(np.diag(cov))
    safe = np.maximum(std, std_floor)
    corr = cov / np.outer(safe, safe)
    dead = std <= std_floor
    corr[dead, :] = 0.0
    corr[:, dead] = 0.0
    np.fill_diagonal(corr, np.where(dead, 0.0, 1.0))
    return corr


def flat_true_correlations(data) -> np.ndarray:
    """All ``p`` off-diagonal correlations as a flat vector aligned with the
    canonical pair keys."""
    return triu_pair_values(correlation_matrix(data))


def pair_correlations(data, i, j, std_floor: float = 1e-12) -> np.ndarray:
    """Empirical correlations of specific pairs, without forming the matrix.

    Works on dense arrays and scipy sparse matrices (CSC recommended).
    This is the trillion-scale evaluation path: cost is one column gather
    and one dot product per requested pair.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    if i.shape != j.shape:
        raise ValueError("i and j must align")
    if i.size == 0:
        return np.empty(0, dtype=np.float64)

    sparse = hasattr(data, "tocsc") and not isinstance(data, np.ndarray)
    n = data.shape[0]
    if sparse:
        csc = data.tocsc()
        ones = np.ones(n)
        col_sum = np.asarray(csc.T @ ones).ravel()
        col_sumsq = np.asarray(csc.multiply(csc).T @ ones).ravel()
        mean = col_sum / n
        var = np.maximum(col_sumsq / n - mean * mean, 0.0)
        left = csc[:, i]
        right = csc[:, j]
        dots = np.asarray(left.multiply(right).sum(axis=0)).ravel()
    else:
        dense = np.asarray(data, dtype=np.float64)
        mean = dense.mean(axis=0)
        var = dense.var(axis=0)
        dots = np.einsum("ni,ni->i", dense[:, i], dense[:, j])

    cov = dots / n - mean[i] * mean[j]
    std_i = np.sqrt(var[i])
    std_j = np.sqrt(var[j])
    denom = np.maximum(std_i * std_j, std_floor**2)
    corr = cov / denom
    corr[(std_i <= std_floor) | (std_j <= std_floor)] = 0.0
    return corr


def top_true_pairs(
    corr: np.ndarray, k: int, *, by_abs: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Flat keys and values of the ``k`` largest true correlations.

    Parameters
    ----------
    corr:
        Full correlation matrix.
    k:
        Number of pairs.
    by_abs:
        Rank by ``|corr|`` instead of signed value.
    """
    flat = triu_pair_values(corr)
    rank = np.abs(flat) if by_abs else flat
    k = min(int(k), flat.size)
    top = np.argpartition(-rank, k - 1)[:k]
    order = np.argsort(-rank[top], kind="stable")
    keys = top[order].astype(np.int64)
    return keys, flat[keys]


def signal_threshold(corr: np.ndarray, alpha: float) -> float:
    """The ``(1 - alpha)`` percentile of the flat correlation vector —
    the paper's definition of the signal strength ``u`` (section 8.1)."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    flat = triu_pair_values(corr)
    return float(np.quantile(flat, 1.0 - alpha))


def signal_key_set(corr: np.ndarray, alpha: float) -> np.ndarray:
    """Flat keys of the top ``alpha * p`` correlations — the signal set used
    by the F1 evaluations of Figure 6."""
    p = triu_pair_values(corr).size
    k = max(1, int(round(alpha * p)))
    keys, _ = top_true_pairs(corr, k)
    return keys
