"""Streaming covariance engine: moments, pair updates, pipeline, truth."""

from repro.covariance.ground_truth import (
    correlation_matrix,
    flat_true_correlations,
    pair_correlations,
    signal_key_set,
    signal_threshold,
    top_true_pairs,
)
from repro.covariance.pipeline import CovarianceSketcher
from repro.covariance.running import ExactCovariance, RunningMoments, SparseMoments
from repro.covariance.updates import (
    adjustment_matrix,
    aggregate_pair_updates,
    dense_batch_products,
    sparse_batch_pairs,
    sparse_sample_pairs,
    triu_pair_values,
)

__all__ = [
    "CovarianceSketcher",
    "ExactCovariance",
    "RunningMoments",
    "SparseMoments",
    "adjustment_matrix",
    "aggregate_pair_updates",
    "correlation_matrix",
    "dense_batch_products",
    "flat_true_correlations",
    "pair_correlations",
    "signal_key_set",
    "signal_threshold",
    "sparse_batch_pairs",
    "sparse_sample_pairs",
    "top_true_pairs",
    "triu_pair_values",
]
