"""Shared experiment engine: run estimators over datasets, rank all pairs.

Every section-8.3-style experiment follows the same skeleton:

1. generate a dataset and its exact ground-truth correlations;
2. stream it through one or more estimators at a common memory budget;
3. rank all ``p`` pair keys by final sketch estimate;
4. score the ranking against the truth.

:func:`run_method` performs 1-3 for one estimator; the experiment modules
layer their specific tables/figures on top.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.api import build_estimator, run_pilot
from repro.covariance.pipeline import CovarianceSketcher
from repro.covariance.running import SparseMoments
from repro.covariance.updates import sparse_sample_pairs
from repro.hashing.pairs import num_pairs
from repro.theory.bounds import ProblemModel
from repro.theory.planner import ASCSPlan, plan_hyperparameters
from repro.theory.snr import estimate_sigma_sparse

__all__ = ["MethodRun", "run_method", "rank_all_pairs", "sparse_pilot", "run_sparse_method"]


@dataclass
class MethodRun:
    """One estimator's pass over one dataset."""

    method: str
    ranked_keys: np.ndarray
    estimates: np.ndarray
    fit_seconds: float
    acceptance_rate: float
    plan: ASCSPlan | None
    sketcher: CovarianceSketcher


def rank_all_pairs(
    sketcher: CovarianceSketcher, *, chunk: int = 1 << 20
) -> tuple[np.ndarray, np.ndarray]:
    """Estimates for every pair key, sorted descending (section 8.3 scan)."""
    p = sketcher.num_pairs
    estimates = np.empty(p, dtype=np.float64)
    for start in range(0, p, chunk):
        keys = np.arange(start, min(start + chunk, p), dtype=np.int64)
        estimates[start : start + keys.size] = sketcher.estimate_keys(keys)
    order = np.argsort(-estimates, kind="stable")
    return order.astype(np.int64), estimates[order]


def run_method(
    data: np.ndarray,
    method: str,
    memory_floats: int,
    alpha: float,
    *,
    num_tables: int = 5,
    batch_size: int = 32,
    mode: str = "correlation",
    seed: int = 0,
    u: float | None = None,
    sigma: float | None = None,
    tau0: float = 1e-4,
    delta: float | None = None,
    delta_star: float | None = None,
    two_sided: bool = False,
    observer=None,
    pilot_fraction: float = 0.05,
) -> MethodRun:
    """Stream ``data`` through one estimator and rank every pair.

    ``data`` must be dense ``(n, d)`` (section 8.3 operates on the
    1000-feature subsamples, which are always materialisable); the
    large-scale experiments use their own sparse drivers.
    """
    data = np.asarray(data, dtype=np.float64)
    n, d = data.shape
    num_buckets = max(16, int(memory_floats) // int(num_tables))

    plan = None
    if method == "ascs":
        if u is None or sigma is None:
            pilot = run_pilot(
                data,
                alpha,
                num_tables=num_tables,
                num_buckets=num_buckets,
                pilot_fraction=pilot_fraction,
                mode=mode,
                seed=seed,
            )
            u = u if u is not None else pilot.u
            sigma = sigma if sigma is not None else pilot.sigma
        model = ProblemModel(
            p=num_pairs(d),
            alpha=alpha,
            u=u,
            sigma=sigma,
            T=n,
            num_tables=num_tables,
            num_buckets=num_buckets,
        )
        plan = plan_hyperparameters(
            model, tau0=tau0, delta=delta, delta_star=delta_star
        )

    estimator = build_estimator(
        method,
        n,
        num_tables,
        num_buckets,
        plan=plan,
        seed=seed,
        two_sided=two_sided,
        observer=observer,
    )
    sketcher = CovarianceSketcher(
        d, estimator, mode=mode, centering="none", batch_size=batch_size
    )

    start = time.perf_counter()
    sketcher.fit_dense(data)
    fit_seconds = time.perf_counter() - start

    ranked_keys, estimates = rank_all_pairs(sketcher)
    return MethodRun(
        method=method,
        ranked_keys=ranked_keys,
        estimates=estimates,
        fit_seconds=fit_seconds,
        acceptance_rate=estimator.acceptance_rate,
        plan=plan,
        sketcher=sketcher,
    )


def sparse_pilot(
    samples: Iterable[tuple[np.ndarray, np.ndarray]],
    dim: int,
    *,
    num_pilot: int = 500,
    std_floor: float = 1e-6,
) -> float:
    """Estimate ``sigma`` from a sparse stream prefix (section 7.2).

    Accumulates the per-feature moments of the pilot window, normalises each
    pilot sample by the resulting std, and returns the RMS pair-product over
    the *full* variable space ``p`` — zero entries contribute nothing but
    count in the denominator, exactly the average-variance relaxation.
    """
    pilot = list(itertools.islice(iter(samples), num_pilot))
    if not pilot:
        raise ValueError("pilot stream produced no samples")
    moments = SparseMoments(dim)
    for indices, values in pilot:
        moments.update_batch(
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            1,
        )
    std = moments.std(floor=std_floor)
    total_sq = 0.0
    for indices, values in pilot:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64) / std[indices]
        _, products = sparse_sample_pairs(indices, values, dim)
        total_sq += float((products**2).sum())
    return estimate_sigma_sparse(total_sq, num_pairs(dim), len(pilot))


def run_sparse_method(
    stream_factory,
    dim: int,
    total_samples: int,
    method: str,
    num_buckets: int,
    *,
    num_tables: int = 5,
    alpha: float = 1e-5,
    u: float = 0.5,
    sigma: float | None = None,
    batch_size: int = 32,
    track_top: int = 5000,
    top_k: int = 1000,
    delta: float = 0.05,
    delta_star: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, "MethodRun"]:
    """Large-scale protocol (Table 2): sparse stream, candidate tracking.

    ``stream_factory`` must return a fresh iterable of sparse samples per
    call (one for the optional pilot, one for the run).  ``u`` is the
    correlation level of interest — a user choice at this scale, since no
    exact percentile of an ``O(10^14)``-entry vector exists.

    Returns ``(top_keys, top_estimates, run)``.
    """
    plan = None
    if method == "ascs":
        if sigma is None:
            sigma = sparse_pilot(stream_factory(), dim)
        model = ProblemModel(
            p=num_pairs(dim),
            alpha=alpha,
            u=u,
            sigma=sigma,
            T=total_samples,
            num_tables=num_tables,
            num_buckets=num_buckets,
        )
        plan = plan_hyperparameters(model, delta=delta, delta_star=delta_star)

    estimator = build_estimator(
        method,
        total_samples,
        num_tables,
        num_buckets,
        plan=plan,
        seed=seed,
        track_top=track_top,
    )
    sketcher = CovarianceSketcher(
        dim, estimator, mode="correlation", centering="none", batch_size=batch_size
    )
    start = time.perf_counter()
    sketcher.fit_sparse(stream_factory())
    fit_seconds = time.perf_counter() - start

    keys, estimates = estimator.top_k(top_k)
    run = MethodRun(
        method=method,
        ranked_keys=keys,
        estimates=estimates,
        fit_seconds=fit_seconds,
        acceptance_rate=estimator.acceptance_rate,
        plan=plan,
        sketcher=sketcher,
    )
    return keys, estimates, run
