"""Evaluation layer: paper metrics and the shared experiment engine."""

from repro.evaluation.harness import (
    MethodRun,
    rank_all_pairs,
    run_method,
    run_sparse_method,
    sparse_pilot,
)
from repro.evaluation.metrics import (
    max_f1_score,
    mean_top_true_value,
    precision_at_k,
    precision_recall_curve,
    recall_at_k,
)

__all__ = [
    "MethodRun",
    "max_f1_score",
    "mean_top_true_value",
    "precision_at_k",
    "precision_recall_curve",
    "rank_all_pairs",
    "recall_at_k",
    "run_method",
    "run_sparse_method",
    "sparse_pilot",
]
