"""Evaluation metrics from section 3 and the experiment sections.

Two families:

* **mean true correlation of reported pairs** — Tables 2, 4, 5: rank pairs
  by sketch estimate, look up the *true* correlation of the top ``k``
  (or top fraction of ``alpha * p``), average.
* **max-F1 for signal identification** — Figure 6: treat the top ``s`` true
  pairs as the signal class, scan every prefix of the estimate ranking and
  report the best F1 it achieves.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_top_true_value",
    "max_f1_score",
    "precision_recall_curve",
    "precision_at_k",
    "recall_at_k",
]


def mean_top_true_value(
    ranked_keys: np.ndarray, true_values: np.ndarray, k: int
) -> float:
    """Average true value over the top-``k`` reported keys.

    Parameters
    ----------
    ranked_keys:
        Pair keys sorted by decreasing sketch estimate.
    true_values:
        Flat vector of ground-truth values indexed by key.
    k:
        Prefix length to evaluate.
    """
    ranked_keys = np.asarray(ranked_keys, dtype=np.int64)
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    prefix = ranked_keys[:k]
    if prefix.size == 0:
        return float("nan")
    return float(np.mean(np.asarray(true_values)[prefix]))


def _prefix_hits(ranked_keys: np.ndarray, signal_keys: np.ndarray) -> np.ndarray:
    """Cumulative count of signals within each ranking prefix."""
    signal_set = set(np.asarray(signal_keys, dtype=np.int64).tolist())
    hits = np.fromiter(
        (1 if key in signal_set else 0 for key in ranked_keys.tolist()),
        dtype=np.int64,
        count=len(ranked_keys),
    )
    return np.cumsum(hits)


def precision_recall_curve(
    ranked_keys: np.ndarray, signal_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Precision and recall at every prefix of the ranking."""
    ranked_keys = np.asarray(ranked_keys, dtype=np.int64)
    num_signals = np.asarray(signal_keys).size
    if num_signals == 0:
        raise ValueError("signal set must be non-empty")
    cum = _prefix_hits(ranked_keys, signal_keys)
    lengths = np.arange(1, ranked_keys.size + 1)
    precision = cum / lengths
    recall = cum / num_signals
    return precision, recall


def max_f1_score(ranked_keys: np.ndarray, signal_keys: np.ndarray) -> float:
    """Best F1 over all prefixes of the ranking (Figure 6's y-axis).

    The ranking only needs to extend a few multiples of ``len(signal_keys)``
    deep; any deeper prefix has precision below the best achievable F1.
    """
    precision, recall = precision_recall_curve(ranked_keys, signal_keys)
    denom = precision + recall
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    return float(f1.max(initial=0.0))


def precision_at_k(ranked_keys: np.ndarray, signal_keys: np.ndarray, k: int) -> float:
    """Fraction of the top-``k`` reported keys that are true signals."""
    ranked_keys = np.asarray(ranked_keys, dtype=np.int64)[: int(k)]
    if ranked_keys.size == 0:
        return float("nan")
    cum = _prefix_hits(ranked_keys, signal_keys)
    return float(cum[-1] / ranked_keys.size)


def recall_at_k(ranked_keys: np.ndarray, signal_keys: np.ndarray, k: int) -> float:
    """Fraction of true signals recovered within the top-``k``."""
    ranked_keys = np.asarray(ranked_keys, dtype=np.int64)[: int(k)]
    num_signals = np.asarray(signal_keys).size
    if num_signals == 0:
        raise ValueError("signal set must be non-empty")
    if ranked_keys.size == 0:
        return 0.0
    cum = _prefix_hits(ranked_keys, signal_keys)
    return float(cum[-1] / num_signals)
