"""Vectorised universal hash families over 64-bit keys.

Count Sketch needs, per hash table, a bucket hash ``h: [p] -> [R]`` and a
sign hash ``s: [p] -> {+1, -1}`` (Charikar et al. 2002; paper section 4).
At trillion scale the key space cannot be tabulated, so every family here
computes hashes on the fly for whole ``uint64`` arrays:

* :class:`MultiplyShiftHash` — the classic ``(a*x + b) mod 2^64`` high-bits
  scheme.  Fastest; near-universal.  The library default.
* :class:`PolynomialHash` — ``(sum_m a_m x^m) mod (2^61 - 1) mod R`` with
  exact Mersenne-prime modular arithmetic implemented via 32-bit limb
  splitting (numpy has no 128-bit integers).  Degree ``k`` gives genuine
  k-wise independence, which the paper's analysis assumes.
* :class:`TabulationHash` — 8x256 XOR table lookup; 3-independent and
  empirically behaves like full randomness.

All families are deterministic functions of their ``seed`` and are
picklable, so sketches can be serialised and merged across processes.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "MERSENNE_PRIME_61",
    "HashFamily",
    "MultiplyShiftHash",
    "PolynomialHash",
    "TabulationHash",
    "SignHash",
    "MultiTableHasher",
    "make_family",
    "FAMILY_NAMES",
]

#: The Mersenne prime 2^61 - 1 used for exact modular polynomial hashing.
MERSENNE_PRIME_61 = (1 << 61) - 1

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_MASK29 = _U64((1 << 29) - 1)
_MASK61 = _U64(MERSENNE_PRIME_61)


def _as_u64(keys) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.dtype != np.uint64:
        keys = keys.astype(np.uint64, copy=False)
    return keys


def _mod_mersenne61(x: np.ndarray) -> np.ndarray:
    """Reduce ``uint64`` values modulo 2^61 - 1 (exact)."""
    x = (x >> _U64(61)) + (x & _MASK61)
    x = (x >> _U64(61)) + (x & _MASK61)
    return np.where(x >= _MASK61, x - _MASK61, x)


def _mulmod_mersenne61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``(a * b) mod (2^61 - 1)`` for operands already ``< 2^61``.

    Splits both operands into 32-bit limbs so that every partial product
    fits in a ``uint64``, then folds using ``2^61 === 1 (mod P)``.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    ah, al = a >> _U64(32), a & _MASK32
    bh, bl = b >> _U64(32), b & _MASK32

    high = ah * bh  # < 2^58
    mid = ah * bl + al * bh  # < 2^62
    low = al * bl  # < 2^64 (wraps are impossible)

    # a*b = high*2^64 + mid*2^32 + low;  2^64 === 8, 2^61 === 1 (mod P).
    total = high * _U64(8)
    total = total + (mid >> _U64(29))
    total = total + ((mid & _MASK29) << _U64(32))
    total = total + (low >> _U64(61))
    total = total + (low & _MASK61)
    return _mod_mersenne61(total)


class HashFamily(abc.ABC):
    """A seeded hash function from ``uint64`` keys to ``[0, num_buckets)``."""

    def __init__(self, num_buckets: int, seed: int):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self._init_params(np.random.default_rng(self.seed))

    @abc.abstractmethod
    def _init_params(self, rng: np.random.Generator) -> None:
        """Draw the family's random parameters from ``rng``."""

    @abc.abstractmethod
    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        """Map a ``uint64`` array to ``uint64`` hashes (full range)."""

    def __call__(self, keys) -> np.ndarray:
        """Bucket indices in ``[0, num_buckets)`` as ``int64``."""
        hashed = self._hash_u64(_as_u64(keys))
        return (hashed % _U64(self.num_buckets)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(num_buckets={self.num_buckets}, "
            f"seed={self.seed})"
        )


class MultiplyShiftHash(HashFamily):
    """Dietzfelbinger multiply-shift hashing: ``((a*x + b) mod 2^64) >> 32``.

    ``a`` is a random odd 64-bit multiplier.  The top 32 bits of the wrapped
    product are close to uniform, and the final ``% R`` bias is ``O(R/2^32)``
    — negligible for every sketch size used here.
    """

    def _init_params(self, rng: np.random.Generator) -> None:
        self._a = _U64(rng.integers(1, 1 << 63, dtype=np.uint64) * 2 + 1)
        self._b = _U64(rng.integers(0, 1 << 63, dtype=np.uint64))

    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        return (keys * self._a + self._b) >> _U64(32)


class PolynomialHash(HashFamily):
    """k-wise independent polynomial hashing modulo the Mersenne prime 2^61-1.

    ``h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod P mod R``.
    ``degree=2`` yields the pairwise independence that the count-sketch
    variance analysis (and the paper's Theorems 1-3) rely on.
    """

    def __init__(self, num_buckets: int, seed: int, degree: int = 2):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = int(degree)
        super().__init__(num_buckets, seed)

    def _init_params(self, rng: np.random.Generator) -> None:
        coeffs = rng.integers(
            0, MERSENNE_PRIME_61, size=self.degree, dtype=np.uint64
        )
        # Leading coefficient must be non-zero for true degree.
        if self.degree > 1 and coeffs[-1] == 0:
            coeffs[-1] = _U64(1)
        self._coeffs = coeffs.astype(np.uint64)

    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        x = _mod_mersenne61(keys)
        # Horner evaluation, highest coefficient first.
        acc = np.broadcast_to(self._coeffs[-1], x.shape).copy()
        for m in range(self.degree - 2, -1, -1):
            acc = _mulmod_mersenne61(acc, x)
            acc = _mod_mersenne61(acc + self._coeffs[m])
        return acc


class TabulationHash(HashFamily):
    """Simple tabulation hashing: XOR of 8 per-byte lookup tables.

    3-independent, and by Patrascu-Thorup it behaves essentially like a
    fully random function for hashing-based sketches.  Costs 8 gathers per
    key, so it is the slowest family but the strongest.
    """

    def _init_params(self, rng: np.random.Generator) -> None:
        self._tables = rng.integers(
            0, np.iinfo(np.uint64).max, size=(8, 256), dtype=np.uint64
        )

    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        acc = np.zeros(keys.shape, dtype=np.uint64)
        for byte in range(8):
            chunk = ((keys >> _U64(8 * byte)) & _U64(0xFF)).astype(np.int64)
            acc ^= self._tables[byte][chunk]
        return acc


class SignHash:
    """Random sign function ``s: keys -> {+1.0, -1.0}``.

    Wraps any :class:`HashFamily` with two buckets; returns ``float64``
    signs so they can multiply update values without casting.
    """

    def __init__(self, seed: int, family: str = "multiply-shift"):
        self.seed = int(seed)
        self.family = family
        self._hash = make_family(family, 2, seed)

    def __call__(self, keys) -> np.ndarray:
        bits = self._hash(keys)
        return 1.0 - 2.0 * bits.astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignHash(seed={self.seed}, family={self.family!r})"


# ----------------------------------------------------------------------
# Stacked (multi-table) hashing
# ----------------------------------------------------------------------
#
# A K-table sketch needs K independent hashes of the *same* key batch.
# Evaluating K separate HashFamily objects costs K Python round-trips per
# operation; stacking the per-table parameters as ``(K, ...)`` arrays lets
# one broadcast produce the full ``(K, n)`` hash matrix.  Each stacked
# family performs exactly the same elementwise arithmetic as its scalar
# counterpart, so the results are bit-identical for the same seeds.


class _StackedMultiplyShift:
    """``(K, n)`` multiply-shift hashing from stacked ``a``/``b`` columns."""

    def __init__(self, families: list[MultiplyShiftHash]):
        self._a = np.array([f._a for f in families], dtype=np.uint64)[:, None]
        self._b = np.array([f._b for f in families], dtype=np.uint64)[:, None]

    def hash_u64(self, keys_u64: np.ndarray) -> np.ndarray:
        w = np.multiply(keys_u64, self._a)
        np.add(w, self._b, out=w)
        np.right_shift(w, _U64(32), out=w)
        return w


class _StackedPolynomial:
    """``(K, n)`` Mersenne-prime polynomial hashing from a ``(K, deg)``
    coefficient matrix (all tables must share the same degree).

    Large batches are processed in column blocks: the limb-split modular
    multiply materialises ~10 temporaries per step, and blocking keeps all
    of them cache-resident instead of streaming ``(K, n)`` arrays through
    memory once per op.
    """

    #: Columns per block; 2048 keeps a (K, block) mulmod working set in L2.
    BLOCK = 2048

    def __init__(self, families: list[PolynomialHash]):
        degrees = {f.degree for f in families}
        if len(degrees) != 1:
            raise ValueError("stacked polynomial tables must share one degree")
        self.degree = degrees.pop()
        self._coeffs = np.stack([f._coeffs for f in families]).astype(np.uint64)

    def _hash_block(self, x: np.ndarray) -> np.ndarray:
        acc = np.broadcast_to(
            self._coeffs[:, -1:], (self._coeffs.shape[0], x.shape[1])
        ).copy()
        for m in range(self.degree - 2, -1, -1):
            acc = _mulmod_mersenne61(acc, x)
            acc = _mod_mersenne61(acc + self._coeffs[:, m : m + 1])
        return acc

    def hash_u64(self, keys_u64: np.ndarray) -> np.ndarray:
        x = _mod_mersenne61(keys_u64)[None, :]
        n = x.shape[1]
        if n <= self.BLOCK:
            return self._hash_block(x)
        out = np.empty((self._coeffs.shape[0], n), dtype=np.uint64)
        for start in range(0, n, self.BLOCK):
            stop = min(start + self.BLOCK, n)
            out[:, start:stop] = self._hash_block(x[:, start:stop])
        return out


class _StackedTabulation:
    """``(K, n)`` tabulation hashing from a ``(K, 8, 256)`` table stack.

    The per-byte chunk extraction is shared across tables (the legacy loop
    recomputed it ``K`` times); the lookups stay per-table 1-D gathers,
    which numpy executes much faster than one strided 2-D fancy index.
    """

    def __init__(self, families: list[TabulationHash]):
        self._tables = np.stack([f._tables for f in families]).astype(np.uint64)

    def hash_u64(self, keys_u64: np.ndarray) -> np.ndarray:
        num_tables = self._tables.shape[0]
        acc = np.zeros((num_tables, keys_u64.size), dtype=np.uint64)
        for byte in range(8):
            chunk = ((keys_u64 >> _U64(8 * byte)) & _U64(0xFF)).astype(np.int64)
            for k in range(num_tables):
                acc[k] ^= self._tables[k, byte][chunk]
        return acc


_STACKERS = {
    MultiplyShiftHash: _StackedMultiplyShift,
    PolynomialHash: _StackedPolynomial,
    TabulationHash: _StackedTabulation,
}


def _stack_families(families: list[HashFamily]):
    kinds = {type(f) for f in families}
    if len(kinds) != 1:
        raise ValueError("all stacked tables must use the same hash family")
    kind = kinds.pop()
    stacker = _STACKERS.get(kind)
    if stacker is None:
        raise TypeError(f"no stacked implementation for {kind.__name__}")
    return stacker(families)


def _keys_as_u64(keys) -> np.ndarray:
    """Zero-copy reinterpretation of contiguous int64 keys as uint64.

    ``astype`` and ``view`` agree bit-for-bit on two's-complement ints, so
    this matches :func:`_as_u64` exactly while avoiding the copy on the
    common (validated int64 batch) path.
    """
    keys = np.asarray(keys)
    if keys.dtype == np.uint64:
        return keys
    if keys.dtype == np.int64 and keys.flags.c_contiguous:
        return keys.view(np.uint64)
    return keys.astype(np.uint64)


class MultiTableHasher:
    """Fused bucket (and optional sign) hashing for ``K`` sketch tables.

    One call computes the full ``(K, n)`` bucket matrix — and, when sign
    seeds are given, the ``(K, n)`` sign matrix — via a single broadcast
    over stacked per-table parameters.  Output is bit-identical to
    evaluating ``K`` independent :class:`HashFamily` / :class:`SignHash`
    objects built from the same seeds.

    Parameters
    ----------
    family:
        Bucket hash family name (see :func:`make_family`).
    num_buckets:
        Output range ``R`` shared by every table.  Power-of-two ranges use
        a bitmask instead of the modulo (identical results, much faster).
    seeds:
        Per-table bucket-hash seeds (length ``K``).
    sign_seeds:
        Optional per-table sign-hash seeds; enables :meth:`signs`.
    sign_family:
        Family used for the sign hashes (matches :class:`SignHash`).
    kwargs:
        Extra family options (e.g. ``degree`` for polynomial).
    """

    def __init__(
        self,
        family: str,
        num_buckets: int,
        seeds,
        *,
        sign_seeds=None,
        sign_family: str = "multiply-shift",
        **kwargs,
    ):
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("need at least one table seed")
        self.family = family
        self.num_tables = len(seeds)
        self.num_buckets = int(num_buckets)
        self._bucket = _stack_families(
            [make_family(family, self.num_buckets, s, **kwargs) for s in seeds]
        )
        r = self.num_buckets
        self._bucket_mask = _U64(r - 1) if r & (r - 1) == 0 else None
        self._sign = None
        self._combined_a = None
        self._combined_b = None
        self._combined_mask = None
        if sign_seeds is not None:
            sign_seeds = [int(s) for s in sign_seeds]
            if len(sign_seeds) != self.num_tables:
                raise ValueError("sign_seeds must have one entry per table")
            self._sign = _stack_families(
                [make_family(sign_family, 2, s) for s in sign_seeds]
            )
            if isinstance(self._bucket, _StackedMultiplyShift) and isinstance(
                self._sign, _StackedMultiplyShift
            ):
                # Both hashes are (a*x + b) >> 32: stack their parameters
                # vertically so one (2K, n) broadcast evaluates bucket and
                # sign hashes together (rows 0..K-1 buckets, K..2K-1 signs).
                self._combined_a = np.vstack([self._bucket._a, self._sign._a])
                self._combined_b = np.vstack([self._bucket._b, self._sign._b])
                if self._bucket_mask is not None:
                    # Power-of-two R: one masked AND finishes both halves.
                    self._combined_mask = np.vstack(
                        [
                            np.full((self.num_tables, 1), self._bucket_mask),
                            np.full((self.num_tables, 1), _U64(1)),
                        ]
                    )
                else:
                    self._combined_mask = None

    # -- raw kernels (uint64 in, uint64 out) ---------------------------
    def bucket_u64(self, keys) -> np.ndarray:
        """``(K, n)`` bucket indices in ``[0, R)`` as ``uint64``."""
        w = self._bucket.hash_u64(_keys_as_u64(keys))
        if self._bucket_mask is not None:
            np.bitwise_and(w, self._bucket_mask, out=w)
        else:
            np.mod(w, _U64(self.num_buckets), out=w)
        return w

    def sign_bits_u64(self, keys) -> np.ndarray:
        """``(K, n)`` sign bits (0 => +1, 1 => -1) as ``uint64``."""
        if self._sign is None:
            raise RuntimeError("this hasher was built without sign seeds")
        s = self._sign.hash_u64(_keys_as_u64(keys))
        np.bitwise_and(s, _U64(1), out=s)
        return s

    def bucket_sign_u64(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """``(buckets, sign_bits)`` in one fused pass where possible.

        With the default multiply-shift bucket *and* sign hashes, a single
        ``(2K, n)`` broadcast evaluates both; the result is identical to
        calling :meth:`bucket_u64` and :meth:`sign_bits_u64` separately.
        """
        if self._combined_a is None:
            return self.bucket_u64(keys), self.sign_bits_u64(keys)
        w = np.multiply(_keys_as_u64(keys), self._combined_a)
        np.add(w, self._combined_b, out=w)
        np.right_shift(w, _U64(32), out=w)
        buckets, bits = w[: self.num_tables], w[self.num_tables :]
        if self._combined_mask is not None:
            np.bitwise_and(w, self._combined_mask, out=w)
        else:
            np.mod(buckets, _U64(self.num_buckets), out=buckets)
            np.bitwise_and(bits, _U64(1), out=bits)
        return buckets, bits

    # -- legacy-typed views --------------------------------------------
    def buckets(self, keys) -> np.ndarray:
        """``(K, n)`` bucket indices as ``int64`` (values ``< R < 2^63``)."""
        return self.bucket_u64(keys).view(np.int64)

    def signs(self, keys) -> np.ndarray:
        """``(K, n)`` signs as ``float64`` in ``{+1.0, -1.0}``."""
        return _sign_bits_to_float(self.sign_bits_u64(keys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiTableHasher(family={self.family!r}, K={self.num_tables}, "
            f"R={self.num_buckets}, signs={self._sign is not None})"
        )


def _sign_bits_to_float(bits: np.ndarray) -> np.ndarray:
    """Map sign bits to ``{+1.0, -1.0}`` via ``1 - 2*b`` (exact)."""
    out = bits.astype(np.float64)
    np.multiply(out, -2.0, out=out)
    np.add(out, 1.0, out=out)
    return out


FAMILY_NAMES = ("multiply-shift", "polynomial", "tabulation")


def make_family(name: str, num_buckets: int, seed: int, **kwargs) -> HashFamily:
    """Instantiate a hash family by name.

    Parameters
    ----------
    name:
        One of ``"multiply-shift"``, ``"polynomial"``, ``"tabulation"``.
    num_buckets:
        Output range ``R``.
    seed:
        Deterministic seed for the family parameters.
    kwargs:
        Extra family-specific options (e.g. ``degree`` for polynomial).
    """
    if name == "multiply-shift":
        return MultiplyShiftHash(num_buckets, seed, **kwargs)
    if name == "polynomial":
        return PolynomialHash(num_buckets, seed, **kwargs)
    if name == "tabulation":
        return TabulationHash(num_buckets, seed, **kwargs)
    raise ValueError(f"unknown hash family {name!r}; choose from {FAMILY_NAMES}")
