"""Vectorised universal hash families over 64-bit keys.

Count Sketch needs, per hash table, a bucket hash ``h: [p] -> [R]`` and a
sign hash ``s: [p] -> {+1, -1}`` (Charikar et al. 2002; paper section 4).
At trillion scale the key space cannot be tabulated, so every family here
computes hashes on the fly for whole ``uint64`` arrays:

* :class:`MultiplyShiftHash` — the classic ``(a*x + b) mod 2^64`` high-bits
  scheme.  Fastest; near-universal.  The library default.
* :class:`PolynomialHash` — ``(sum_m a_m x^m) mod (2^61 - 1) mod R`` with
  exact Mersenne-prime modular arithmetic implemented via 32-bit limb
  splitting (numpy has no 128-bit integers).  Degree ``k`` gives genuine
  k-wise independence, which the paper's analysis assumes.
* :class:`TabulationHash` — 8x256 XOR table lookup; 3-independent and
  empirically behaves like full randomness.

All families are deterministic functions of their ``seed`` and are
picklable, so sketches can be serialised and merged across processes.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "MERSENNE_PRIME_61",
    "HashFamily",
    "MultiplyShiftHash",
    "PolynomialHash",
    "TabulationHash",
    "SignHash",
    "make_family",
    "FAMILY_NAMES",
]

#: The Mersenne prime 2^61 - 1 used for exact modular polynomial hashing.
MERSENNE_PRIME_61 = (1 << 61) - 1

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_MASK29 = _U64((1 << 29) - 1)
_MASK61 = _U64(MERSENNE_PRIME_61)


def _as_u64(keys) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.dtype != np.uint64:
        keys = keys.astype(np.uint64, copy=False)
    return keys


def _mod_mersenne61(x: np.ndarray) -> np.ndarray:
    """Reduce ``uint64`` values modulo 2^61 - 1 (exact)."""
    x = (x >> _U64(61)) + (x & _MASK61)
    x = (x >> _U64(61)) + (x & _MASK61)
    return np.where(x >= _MASK61, x - _MASK61, x)


def _mulmod_mersenne61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``(a * b) mod (2^61 - 1)`` for operands already ``< 2^61``.

    Splits both operands into 32-bit limbs so that every partial product
    fits in a ``uint64``, then folds using ``2^61 === 1 (mod P)``.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    ah, al = a >> _U64(32), a & _MASK32
    bh, bl = b >> _U64(32), b & _MASK32

    high = ah * bh                      # < 2^58
    mid = ah * bl + al * bh             # < 2^62
    low = al * bl                       # < 2^64 (wraps are impossible)

    # a*b = high*2^64 + mid*2^32 + low;  2^64 === 8, 2^61 === 1 (mod P).
    total = high * _U64(8)
    total = total + (mid >> _U64(29))
    total = total + ((mid & _MASK29) << _U64(32))
    total = total + (low >> _U64(61))
    total = total + (low & _MASK61)
    return _mod_mersenne61(total)


class HashFamily(abc.ABC):
    """A seeded hash function from ``uint64`` keys to ``[0, num_buckets)``."""

    def __init__(self, num_buckets: int, seed: int):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self._init_params(np.random.default_rng(self.seed))

    @abc.abstractmethod
    def _init_params(self, rng: np.random.Generator) -> None:
        """Draw the family's random parameters from ``rng``."""

    @abc.abstractmethod
    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        """Map a ``uint64`` array to ``uint64`` hashes (full range)."""

    def __call__(self, keys) -> np.ndarray:
        """Bucket indices in ``[0, num_buckets)`` as ``int64``."""
        hashed = self._hash_u64(_as_u64(keys))
        return (hashed % _U64(self.num_buckets)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(num_buckets={self.num_buckets}, "
            f"seed={self.seed})"
        )


class MultiplyShiftHash(HashFamily):
    """Dietzfelbinger multiply-shift hashing: ``((a*x + b) mod 2^64) >> 32``.

    ``a`` is a random odd 64-bit multiplier.  The top 32 bits of the wrapped
    product are close to uniform, and the final ``% R`` bias is ``O(R/2^32)``
    — negligible for every sketch size used here.
    """

    def _init_params(self, rng: np.random.Generator) -> None:
        self._a = _U64(rng.integers(1, 1 << 63, dtype=np.uint64) * 2 + 1)
        self._b = _U64(rng.integers(0, 1 << 63, dtype=np.uint64))

    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        return (keys * self._a + self._b) >> _U64(32)


class PolynomialHash(HashFamily):
    """k-wise independent polynomial hashing modulo the Mersenne prime 2^61-1.

    ``h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod P mod R``.
    ``degree=2`` yields the pairwise independence that the count-sketch
    variance analysis (and the paper's Theorems 1-3) rely on.
    """

    def __init__(self, num_buckets: int, seed: int, degree: int = 2):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = int(degree)
        super().__init__(num_buckets, seed)

    def _init_params(self, rng: np.random.Generator) -> None:
        coeffs = rng.integers(
            0, MERSENNE_PRIME_61, size=self.degree, dtype=np.uint64
        )
        # Leading coefficient must be non-zero for true degree.
        if self.degree > 1 and coeffs[-1] == 0:
            coeffs[-1] = _U64(1)
        self._coeffs = coeffs.astype(np.uint64)

    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        x = _mod_mersenne61(keys)
        # Horner evaluation, highest coefficient first.
        acc = np.broadcast_to(self._coeffs[-1], x.shape).copy()
        for m in range(self.degree - 2, -1, -1):
            acc = _mulmod_mersenne61(acc, x)
            acc = _mod_mersenne61(acc + self._coeffs[m])
        return acc


class TabulationHash(HashFamily):
    """Simple tabulation hashing: XOR of 8 per-byte lookup tables.

    3-independent, and by Patrascu-Thorup it behaves essentially like a
    fully random function for hashing-based sketches.  Costs 8 gathers per
    key, so it is the slowest family but the strongest.
    """

    def _init_params(self, rng: np.random.Generator) -> None:
        self._tables = rng.integers(
            0, np.iinfo(np.uint64).max, size=(8, 256), dtype=np.uint64
        )

    def _hash_u64(self, keys: np.ndarray) -> np.ndarray:
        acc = np.zeros(keys.shape, dtype=np.uint64)
        for byte in range(8):
            chunk = ((keys >> _U64(8 * byte)) & _U64(0xFF)).astype(np.int64)
            acc ^= self._tables[byte][chunk]
        return acc


class SignHash:
    """Random sign function ``s: keys -> {+1.0, -1.0}``.

    Wraps any :class:`HashFamily` with two buckets; returns ``float64``
    signs so they can multiply update values without casting.
    """

    def __init__(self, seed: int, family: str = "multiply-shift"):
        self.seed = int(seed)
        self.family = family
        self._hash = make_family(family, 2, seed)

    def __call__(self, keys) -> np.ndarray:
        bits = self._hash(keys)
        return 1.0 - 2.0 * bits.astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignHash(seed={self.seed}, family={self.family!r})"


FAMILY_NAMES = ("multiply-shift", "polynomial", "tabulation")


def make_family(name: str, num_buckets: int, seed: int, **kwargs) -> HashFamily:
    """Instantiate a hash family by name.

    Parameters
    ----------
    name:
        One of ``"multiply-shift"``, ``"polynomial"``, ``"tabulation"``.
    num_buckets:
        Output range ``R``.
    seed:
        Deterministic seed for the family parameters.
    kwargs:
        Extra family-specific options (e.g. ``degree`` for polynomial).
    """
    if name == "multiply-shift":
        return MultiplyShiftHash(num_buckets, seed, **kwargs)
    if name == "polynomial":
        return PolynomialHash(num_buckets, seed, **kwargs)
    if name == "tabulation":
        return TabulationHash(num_buckets, seed, **kwargs)
    raise ValueError(f"unknown hash family {name!r}; choose from {FAMILY_NAMES}")
