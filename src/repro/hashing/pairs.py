"""Bijection between feature pairs and flat covariance-entry indices.

The paper (section 3) encodes the off-diagonal covariance entries of a
``d``-dimensional random vector as a flat vector ``X`` of length
``p = d * (d - 1) / 2``.  Every sketching structure in this library is keyed
by that flat index, so the mapping must be

* canonical — the flat index of ``(i, j)`` with ``i < j`` is its rank in the
  row-major upper triangle (diagonal excluded), and
* cheap in both directions for *vectors* of indices, because the sparse
  streaming path expands each sample into thousands of pair keys.

For a pair ``(i, j)`` with ``0 <= i < j < d`` the flat index is::

    index(i, j) = i*d - i*(i+1)/2 + (j - i - 1)

All arithmetic is performed in ``int64``.  The mapping is exact for
``d <= 1_000_000_000`` (pair space ~5e17), comfortably covering the paper's
trillion-entry matrices (``d = 1.7e7`` gives ``p = 1.4e14``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_DIMENSION",
    "num_pairs",
    "pair_to_index",
    "index_to_pair",
    "pairs_among",
    "all_pair_indices",
]

#: Largest dimension for which the int64 index arithmetic is overflow-free.
MAX_DIMENSION = 1_000_000_000


def _check_dimension(d: int) -> None:
    if d < 2:
        raise ValueError(f"need at least 2 features to form a pair, got d={d}")
    if d > MAX_DIMENSION:
        raise ValueError(
            f"d={d} exceeds MAX_DIMENSION={MAX_DIMENSION}; int64 pair "
            "indices would overflow"
        )


def num_pairs(d: int) -> int:
    """Number of unordered feature pairs, ``p = d*(d-1)/2``."""
    _check_dimension(d)
    return d * (d - 1) // 2


def _row_offset(i: np.ndarray, d: int) -> np.ndarray:
    """Flat index of pair ``(i, i+1)`` — the start of row ``i``."""
    i = i.astype(np.int64, copy=False)
    return i * (2 * d - i - 1) // 2


def pair_to_index(i, j, d: int) -> np.ndarray:
    """Map pairs ``(i, j)`` with ``i < j`` to flat indices in ``[0, p)``.

    Parameters
    ----------
    i, j:
        Scalars or arrays of feature indices.  Every element must satisfy
        ``0 <= i < j < d``.
    d:
        Total number of features.

    Returns
    -------
    ``int64`` array (or 0-d array for scalar input) of flat pair indices.
    """
    _check_dimension(d)
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    if i.shape != j.shape:
        raise ValueError(f"i and j must have the same shape, got {i.shape} vs {j.shape}")
    if i.size and (
        (i < 0).any() or (j >= d).any() or (i >= j).any()
    ):
        raise ValueError("pair indices must satisfy 0 <= i < j < d")
    return _row_offset(i, d) + (j - i - 1)


def index_to_pair(index, d: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pair_to_index`.

    Uses a float64 initial guess for the row ``i`` followed by an exact
    integer correction, so the result is exact even where the float sqrt
    loses precision (large ``d``).

    Returns
    -------
    ``(i, j)`` — two ``int64`` arrays with ``i < j``.
    """
    _check_dimension(d)
    index = np.asarray(index, dtype=np.int64)
    p = num_pairs(d)
    if index.size and ((index < 0).any() or (index >= p).any()):
        raise ValueError(f"pair index out of range [0, {p})")

    # Solve i*(2d - i - 1)/2 <= index for the largest integer i.
    b = 2.0 * d - 1.0
    disc = b * b - 8.0 * index.astype(np.float64)
    i = np.floor((b - np.sqrt(np.maximum(disc, 0.0))) / 2.0).astype(np.int64)
    i = np.clip(i, 0, d - 2)

    # Exact correction for float rounding: enforce offset(i) <= index and
    # offset(i + 1) > index.  Each loop moves every element at most a few
    # steps, so this terminates immediately in practice.
    offset = _row_offset(i, d)
    while True:
        too_high = offset > index
        if not too_high.any():
            break
        i = np.where(too_high, i - 1, i)
        offset = _row_offset(i, d)
    while True:
        nxt = _row_offset(np.minimum(i + 1, d - 1), d)
        too_low = (nxt <= index) & (i < d - 2)
        if not too_low.any():
            break
        i = np.where(too_low, i + 1, i)
        offset = np.where(too_low, nxt, offset)

    j = index - offset + i + 1
    return i, j


def pairs_among(features: np.ndarray, d: int) -> np.ndarray:
    """Flat indices of all pairs among a set of active features.

    This is the inner loop of the sparse streaming path: a sample with
    non-zero features ``features`` touches exactly these covariance entries.

    Parameters
    ----------
    features:
        1-D array of distinct feature indices (any order).
    d:
        Total number of features.

    Returns
    -------
    ``int64`` array of length ``m*(m-1)/2`` where ``m = len(features)``,
    in the order produced by iterating the sorted feature list row-major.
    """
    feats = np.unique(np.asarray(features, dtype=np.int64))
    m = feats.size
    if m < 2:
        return np.empty(0, dtype=np.int64)
    rows, cols = np.triu_indices(m, k=1)
    return pair_to_index(feats[rows], feats[cols], d)


def all_pair_indices(d: int) -> np.ndarray:
    """All flat pair indices ``[0, p)`` — only sensible for small ``d``."""
    p = num_pairs(d)
    if p > 50_000_000:
        raise ValueError(
            f"refusing to materialise {p} pair indices; "
            "use chunked iteration for large d"
        )
    return np.arange(p, dtype=np.int64)
