"""Hashing substrate: pair-index algebra and universal hash families."""

from repro.hashing.families import (
    FAMILY_NAMES,
    MERSENNE_PRIME_61,
    HashFamily,
    MultiplyShiftHash,
    MultiTableHasher,
    PolynomialHash,
    SignHash,
    TabulationHash,
    make_family,
)
from repro.hashing.pairs import (
    MAX_DIMENSION,
    all_pair_indices,
    index_to_pair,
    num_pairs,
    pair_to_index,
    pairs_among,
)

__all__ = [
    "FAMILY_NAMES",
    "MERSENNE_PRIME_61",
    "HashFamily",
    "MultiplyShiftHash",
    "MultiTableHasher",
    "PolynomialHash",
    "SignHash",
    "TabulationHash",
    "make_family",
    "MAX_DIMENSION",
    "all_pair_indices",
    "index_to_pair",
    "num_pairs",
    "pair_to_index",
    "pairs_among",
]
