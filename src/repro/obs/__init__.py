"""Unified observability tier: metrics, tracing, structured logs, probes.

Dependency-free (stdlib + numpy) building blocks every layer shares:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket histograms, plus :func:`render_exposition` (Prometheus
  text format 0.0.4) and the no-op :class:`NullRegistry`;
* :mod:`repro.obs.tracing` — :class:`Tracer` span trees with a bounded
  ring of recent slow traces;
* :mod:`repro.obs.log` — structured JSON event logging
  (:func:`get_logger`, :func:`configure`), silenced by default;
* :mod:`repro.obs.probe` — :class:`AccuracyProbe`, online ROSNR /
  collision-energy / top-K-churn gauges.

Design rule: hot paths touch only counter increments and pre-created
instrument references; derived values (hit ratios, staleness, lag) are
computed at *collect* time via :meth:`MetricsRegistry.gauge_fn`
callbacks, so reading ``/metrics`` is what pays for them.
"""

from repro.obs.log import JsonFormatter, StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_exposition,
)
from repro.obs.probe import AccuracyProbe
from repro.obs.tracing import Span, Tracer

__all__ = [
    "AccuracyProbe",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "StructuredLogger",
    "Tracer",
    "configure",
    "get_logger",
    "render_exposition",
]
