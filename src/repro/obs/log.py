"""Structured JSON logging over the stdlib ``logging`` machinery.

Every subsystem logs **events with fields**, not interpolated prose::

    from repro.obs.log import get_logger

    log = get_logger(__name__)
    log.event("wal.rotate", segment="wal-00000042.wal", seconds=0.0031)

which a configured handler renders as one JSON line::

    {"ts": "2026-08-08T12:00:00.123Z", "level": "info",
     "logger": "repro.durability.journal", "event": "wal.rotate",
     "segment": "wal-00000042.wal", "seconds": 0.0031}

Discipline:

* the ``event`` is a stable dotted name (grep-able, dashboard-able) —
  never a formatted sentence; everything variable goes in fields;
* fields must be JSON-serialisable (non-serialisable values are
  ``repr``'d rather than crashing the log call);
* the ``repro`` logger tree is **silenced by default** (a ``NullHandler``
  on the root ``repro`` logger, no propagation surprises): importing the
  library never writes to a stream the host application did not choose.

Call :func:`configure` to attach a JSON stream handler (CLIs do this at
entry; services usually ship records to their own logging stack instead).
Plain stdlib ``logging`` calls elsewhere in the package flow through the
same tree, so one ``configure()`` governs everything.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["StructuredLogger", "JsonFormatter", "get_logger", "configure"]

_FIELDS_ATTR = "repro_fields"
_EVENT_ATTR = "repro_event"

#: Standard LogRecord attributes — anything else on a record is treated as
#: a structured field by :class:`JsonFormatter` (covers stdlib callers).
_LEVELS = {
    "critical": logging.CRITICAL,
    "error": logging.ERROR,
    "warning": logging.WARNING,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}


def _json_safe(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        created = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
        )
        payload = {
            "ts": f"{created}.{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, _EVENT_ATTR, None) or record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, _json_safe(value))
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)


class StructuredLogger:
    """Thin event/fields façade over one stdlib logger."""

    __slots__ = ("logger",)

    def __init__(self, logger: logging.Logger):
        self.logger = logger

    def event(self, event: str, *, level: str = "info", **fields) -> None:
        """Log one structured event (no-op unless a handler is attached
        and the level is enabled — the hot-path guard is the stdlib's
        ``isEnabledFor`` check, a dict lookup)."""
        levelno = _LEVELS.get(level)
        if levelno is None:
            raise ValueError(f"unknown level {level!r}; use one of {sorted(_LEVELS)}")
        if not self.logger.isEnabledFor(levelno):
            return
        self.logger.log(
            levelno,
            event,
            extra={_EVENT_ATTR: event, _FIELDS_ATTR: fields},
        )

    def debug(self, event: str, **fields) -> None:
        self.event(event, level="debug", **fields)

    def info(self, event: str, **fields) -> None:
        self.event(event, level="info", **fields)

    def warning(self, event: str, **fields) -> None:
        self.event(event, level="warning", **fields)

    def error(self, event: str, **fields) -> None:
        self.event(event, level="error", **fields)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger in the ``repro`` tree (silenced by default)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure(
    *, level: str = "info", stream=None, logger_name: str = "repro"
) -> logging.Handler:
    """Attach a JSON stream handler to the ``repro`` logger tree.

    Idempotent per stream: reconfiguring replaces the handler this
    function previously attached instead of stacking duplicates.  Returns
    the attached handler (tests capture its stream).
    """
    levelno = _LEVELS.get(level)
    if levelno is None:
        raise ValueError(f"unknown level {level!r}; use one of {sorted(_LEVELS)}")
    root = logging.getLogger(logger_name)
    for existing in list(root.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            root.removeHandler(existing)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler._repro_obs_handler = True
    root.addHandler(handler)
    root.setLevel(levelno)
    return handler


# Silence the tree by default: importing repro must never print.
logging.getLogger("repro").addHandler(logging.NullHandler())
