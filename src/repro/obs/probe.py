"""Online accuracy telemetry: observed ROSNR, collision energy, top-K churn.

The ROADMAP's adaptive re-sketching loop needs the system to *measure its
own signal-to-noise online*, not in offline experiments.
:class:`AccuracyProbe` produces exactly those gauges, two ways at once:

* **ingest-side energy accounting** — the probe plugs into the estimator's
  existing ``observer`` hook (the Figure-5 seam) and delegates to
  :class:`repro.theory.snr.SNRRecorder`: per measurement window it turns
  the accepted updates' signal/noise energy into an observed stream SNR
  gauge, and normalises it by a baseline SNR (pass the vanilla-CS theory
  value from :func:`repro.theory.snr.model_stream_snr`) into the observed
  **ROSNR** gauge — the exact quantity Theorem 3 lower-bounds and the
  future AutoScaler watches;
* **read-side re-querying** — the probe keeps a bounded reservoir of
  tracked keys: the *planted* signal keys plus a uniform reservoir sample
  (Algorithm R) of accepted noise keys, and a seeded set of **collision
  sentinels** — keys never inserted by the signal set, whose squared
  estimates are pure collision/noise mass.  :meth:`sample` re-queries all
  of them against any query function (an estimator, a serving engine, an
  HTTP client) and refreshes the estimate-side SNR, collision-energy and
  top-K **churn** gauges (fraction of the top set replaced since the last
  sample — the drift signal).

All gauges land in a :class:`repro.obs.MetricsRegistry`, so they ride the
``/metrics`` exposition with everything else.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.theory.snr import SNRRecorder

__all__ = ["AccuracyProbe"]


class AccuracyProbe:
    """Reservoir-backed accuracy gauges for one estimator / serving stack.

    Parameters
    ----------
    signal_keys:
        Flat pair keys of the planted / tracked signal variables (what the
        deployment *cares about*: a ground-truth plant in tests, the
        current top index in production).
    registry:
        Target :class:`MetricsRegistry` (a fresh one when omitted;
        inspect it via :attr:`registry`).
    window:
        Ingest-side measurement window in stream samples (the
        :class:`SNRRecorder` cadence).
    baseline_snr:
        Denominator of the ROSNR gauge.  Pass the model's raw-stream SNR
        (:func:`repro.theory.snr.model_stream_snr`) to read ROSNR against
        theory; ``None`` baselines against the first closed window, so
        the gauge reads *relative* SNR drift.
    reservoir:
        Capacity of the noise-key reservoir (uniform over all accepted
        noise keys seen, Algorithm R).
    collision_probes / key_space:
        Number of seeded sentinel keys drawn uniformly from
        ``[0, key_space)`` excluding the signal set.  ``key_space=None``
        disables collision sentinels.
    topk:
        Size of the tracked top set for the churn gauge.
    namespace:
        Metric-name prefix (default ``repro_accuracy``).
    """

    def __init__(
        self,
        signal_keys,
        *,
        registry: MetricsRegistry | None = None,
        window: int = 200,
        baseline_snr: float | None = None,
        reservoir: int = 256,
        collision_probes: int = 64,
        key_space: int | None = None,
        topk: int = 32,
        seed: int = 0,
        namespace: str = "repro_accuracy",
    ):
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = SNRRecorder(signal_keys, window=window)
        self._explicit_baseline = baseline_snr is not None
        self.baseline_snr = None if baseline_snr is None else float(baseline_snr)
        self.topk = int(topk)
        self._signal_keys = np.asarray(signal_keys, dtype=np.int64)
        self._signal_set = frozenset(self._signal_keys.tolist())
        self._rng = np.random.default_rng(seed)
        self._reservoir = np.empty(int(reservoir), dtype=np.int64)
        self._reservoir_fill = 0
        self._noise_seen = 0
        self._points_consumed = 0
        self._last_top: frozenset | None = None
        self._sentinels = self._draw_sentinels(collision_probes, key_space)

        ns = namespace
        g = self.registry.gauge
        self.snr_gauge = g(f"{ns}_snr", "observed stream SNR (last closed window)")
        self.rosnr_gauge = g(
            f"{ns}_rosnr", "observed SNR over the baseline (vanilla-CS) SNR"
        )
        self.signal_energy_gauge = g(
            f"{ns}_signal_energy", "accepted signal energy (last closed window)"
        )
        self.noise_energy_gauge = g(
            f"{ns}_noise_energy", "accepted noise energy (last closed window)"
        )
        self.estimate_snr_gauge = g(
            f"{ns}_estimate_snr", "re-queried signal/noise energy ratio"
        )
        self.collision_energy_gauge = g(
            f"{ns}_collision_energy", "mean squared estimate at sentinel keys"
        )
        self.churn_gauge = g(
            f"{ns}_topk_churn", "fraction of the top-K set replaced since last sample"
        )
        self.windows_counter = self.registry.counter(
            f"{ns}_windows_total", "closed SNR measurement windows"
        )
        self.samples_counter = self.registry.counter(
            f"{ns}_samples_total", "read-side probe passes"
        )
        self.tracked_gauge = self.registry.gauge_fn(
            f"{ns}_tracked_keys",
            lambda: self._signal_keys.size + self._reservoir_fill,
            "signal + reservoir keys the probe re-queries",
        )

    # ------------------------------------------------------------------
    # Ingest side: the estimator observer hook
    # ------------------------------------------------------------------
    def __call__(self, t: int, keys, values, mask) -> None:
        """Observer hook — chain into the SNR recorder, feed the reservoir."""
        self.recorder(t, keys, values, mask)
        keys = np.asarray(keys, dtype=np.int64)
        mask = np.asarray(mask, dtype=bool)
        if keys.size:
            accepted = keys[mask]
            if accepted.size:
                is_signal = np.fromiter(
                    (key in self._signal_set for key in accepted.tolist()),
                    dtype=bool,
                    count=accepted.size,
                )
                self._offer_noise(accepted[~is_signal])
        self._consume_points()

    def flush(self) -> None:
        """Close the current SNR window and refresh the gauges."""
        self.recorder.flush()
        self._consume_points()

    def reset(self, *, rebaseline: bool = False) -> None:
        """Drop all accumulated probe state — the migration seam.

        An engine swap/migration changes the thing the probe measures:
        letting the Algorithm-R reservoir, the open SNR window and the
        last top-K set survive the swap blends pre- and post-migration
        collision noise into single gauge readings.
        :meth:`repro.serving.ServingEstimator.migrate` calls this after
        installing the new engine, so the first post-migration window
        measures only the new configuration.

        Gauge *values* are left at their last readings (a scrape between
        migration and the next sample sees stale-but-real numbers, not
        fabricated zeros); they refresh on the next ``sample``/``flush``.
        ``rebaseline=True`` additionally forgets an auto-derived ROSNR
        baseline so the next closed window re-anchors it; an explicit
        ``baseline_snr`` from the constructor is always kept.
        """
        self.recorder = SNRRecorder(
            self._signal_keys, window=self.recorder.window
        )
        self._reservoir_fill = 0
        self._noise_seen = 0
        self._points_consumed = 0
        self._last_top = None
        if rebaseline and not self._explicit_baseline:
            self.baseline_snr = None

    def _consume_points(self) -> None:
        points = self.recorder.points
        while self._points_consumed < len(points):
            point = points[self._points_consumed]
            self._points_consumed += 1
            self.windows_counter.inc()
            self.signal_energy_gauge.set(point.signal_energy)
            self.noise_energy_gauge.set(point.noise_energy)
            snr = point.snr
            if np.isfinite(snr):
                self.snr_gauge.set(snr)
                if self.baseline_snr is None:
                    # First closed window becomes the relative baseline.
                    self.baseline_snr = snr if snr > 0 else None
                if self.baseline_snr:
                    self.rosnr_gauge.set(snr / self.baseline_snr)

    def _offer_noise(self, keys: np.ndarray) -> None:
        """Algorithm-R reservoir over every accepted noise key seen."""
        cap = self._reservoir.size
        for key in keys.tolist():
            self._noise_seen += 1
            if self._reservoir_fill < cap:
                self._reservoir[self._reservoir_fill] = key
                self._reservoir_fill += 1
            else:
                j = int(self._rng.integers(0, self._noise_seen))
                if j < cap:
                    self._reservoir[j] = key

    def _draw_sentinels(self, count: int, key_space: int | None) -> np.ndarray:
        if key_space is None or count <= 0:
            return np.empty(0, dtype=np.int64)
        if key_space <= len(self._signal_set):
            raise ValueError(
                "key_space must exceed the signal set to draw sentinels"
            )
        out: list[int] = []
        while len(out) < count:
            draw = self._rng.integers(0, key_space, size=4 * count)
            for key in draw.tolist():
                if key not in self._signal_set:
                    out.append(key)
                    if len(out) == count:
                        break
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # Read side: periodic re-query
    # ------------------------------------------------------------------
    @property
    def noise_keys(self) -> np.ndarray:
        """Current reservoir contents (uniform over accepted noise keys)."""
        return self._reservoir[: self._reservoir_fill].copy()

    @property
    def sentinel_keys(self) -> np.ndarray:
        return self._sentinels.copy()

    def sample(self, query_fn, top_keys=None) -> dict:
        """Re-query the tracked keys and refresh the read-side gauges.

        Parameters
        ----------
        query_fn:
            ``keys -> estimates`` over flat pair keys — an estimator's
            ``estimate``, a ``QueryEngine.query_keys``, or an HTTP
            client's ``query_keys``.
        top_keys:
            Current top-K keys for the churn gauge (e.g. from
            ``top_pairs``); churn is skipped when omitted.

        Returns the refreshed readings as a dict (also visible in the
        registry / the ``/metrics`` exposition).
        """
        self.samples_counter.inc()
        out: dict = {}
        signal_est = np.asarray(query_fn(self._signal_keys), dtype=np.float64)
        noise_keys = self._reservoir[: self._reservoir_fill]
        noise_est = (
            np.asarray(query_fn(noise_keys), dtype=np.float64)
            if noise_keys.size
            else np.empty(0)
        )
        signal_energy = float(np.mean(signal_est**2)) if signal_est.size else 0.0
        noise_energy = float(np.mean(noise_est**2)) if noise_est.size else 0.0
        if noise_energy > 0:
            out["estimate_snr"] = signal_energy / noise_energy
            self.estimate_snr_gauge.set(out["estimate_snr"])
        if self._sentinels.size:
            sentinel_est = np.asarray(
                query_fn(self._sentinels), dtype=np.float64
            )
            out["collision_energy"] = float(np.mean(sentinel_est**2))
            self.collision_energy_gauge.set(out["collision_energy"])
        if top_keys is not None:
            current = frozenset(
                np.asarray(top_keys, dtype=np.int64)[: self.topk].tolist()
            )
            if self._last_top is not None and (self._last_top or current):
                union = self._last_top | current
                kept = len(self._last_top & current)
                out["topk_churn"] = 1.0 - kept / max(len(union), 1)
                self.churn_gauge.set(out["topk_churn"])
            self._last_top = current
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccuracyProbe(signals={self._signal_keys.size}, "
            f"reservoir={self._reservoir_fill}/{self._reservoir.size}, "
            f"windows={self._points_consumed})"
        )
