"""Per-request span trees with a bounded ring of recent slow traces.

:class:`Tracer` produces :class:`Span` trees via a context manager (or
decorator) API::

    tracer = Tracer(slow_threshold=0.050)      # 50 ms slow-query log
    with tracer.span("http.request", route="/pair") as root:
        with tracer.span("engine.query"):
            ...
        root.note(status=200)

Spans time with ``time.perf_counter`` (monotonic); parentage is tracked
through a ``contextvars.ContextVar``, so nesting works across threads (the
HTTP server handles each request on its own thread — each gets its own
context and therefore its own tree) and survives ``with`` blocks that
spawn no further spans.

When a **root** span closes, its whole tree is offered to the slow-trace
ring: trees whose duration meets ``slow_threshold`` are retained in a
bounded ``deque`` (newest evicts oldest), giving a zero-configuration
slow-query log readable via :meth:`Tracer.slow_traces` — each entry is a
JSON-ready nested dict with per-span monotonic timings and user fields.
Sub-threshold trees cost two clock reads and a few attribute writes.
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
from collections import deque

__all__ = ["Span", "Tracer"]

_current_span: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "fields", "children", "start", "end", "_token")

    def __init__(self, name: str, fields: dict | None = None):
        self.name = name
        self.fields = dict(fields) if fields else {}
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self._token = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def note(self, **fields) -> "Span":
        """Attach fields to the span (chains)."""
        self.fields.update(fields)
        return self

    def to_dict(self) -> dict:
        """JSON-ready nested dict: the slow-trace log entry format."""
        out = {
            "name": self.name,
            "start": self.start,
            "duration_seconds": self.duration,
        }
        if self.fields:
            out["fields"] = dict(self.fields)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name}, {self.duration * 1e3:.2f}ms, children={len(self.children)})"


class _SpanContext:
    """The object ``tracer.span(...)`` returns: enter/exit manages the tree."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        parent = _current_span.get()
        if parent is not None:
            parent.children.append(span)
        span._token = _current_span.set(span)
        span.start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        span.end = time.perf_counter()
        if exc is not None:
            span.fields.setdefault("error", f"{type(exc).__name__}: {exc}")
        _current_span.reset(span._token)
        span._token = None
        if _current_span.get() is None:
            self._tracer._finish_root(span)
        return False


class Tracer:
    """Span factory + slow-trace ring.

    Parameters
    ----------
    slow_threshold:
        Root trees at least this many seconds long enter the slow ring
        (``0`` retains every trace — handy in tests; ``None`` disables
        retention entirely).
    ring:
        Maximum retained slow traces (newest evicts oldest).
    """

    def __init__(self, *, slow_threshold: float | None = 0.1, ring: int = 64):
        if ring < 1:
            raise ValueError(f"ring must be >= 1, got {ring}")
        self.slow_threshold = slow_threshold
        self._ring: deque[dict] = deque(maxlen=int(ring))
        self._lock = threading.Lock()
        self.traces_started = 0
        self.traces_slow = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **fields) -> _SpanContext:
        """Open a span (context manager yielding the :class:`Span`)."""
        return _SpanContext(self, Span(name, fields))

    def trace(self, name: str | None = None, **fields):
        """Decorator form: the wrapped call runs inside a span."""

        def decorate(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **fields):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    def _finish_root(self, span: Span) -> None:
        with self._lock:
            self.traces_started += 1
            if (
                self.slow_threshold is not None
                and span.duration >= self.slow_threshold
            ):
                self.traces_slow += 1
                self._ring.append(span.to_dict())

    def slow_traces(self) -> list[dict]:
        """Retained slow traces, oldest first (JSON-ready dicts)."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "traces_started": self.traces_started,
                "traces_slow": self.traces_slow,
                "slow_threshold": self.slow_threshold,
                "ring_size": len(self._ring),
            }
