"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per serving stack (the HTTP server, the
serving estimator, the durable write side and its journal all share the
stack's registry), holding named instruments with optional labels::

    reg = MetricsRegistry()
    hits = reg.counter("repro_cache_hits_total", "LRU cache hits")
    lat = reg.histogram("repro_query_seconds", "query latency", labels={"op": "keys"})
    with lat.time():
        ...
    reg.render()        # Prometheus text exposition (the /metrics body)

Design constraints (these instruments sit on ingest/query hot paths):

* **writes are array increments under a per-instrument mutex** — one
  uncontended ``Lock`` acquire (~100 ns) plus an integer add; exact under
  concurrency (the 8-thread hammer test asserts counts to the unit);
* **reads take no instrument lock** — ``value`` reads a single attribute
  (atomic under the GIL); histogram snapshots copy the bucket array under
  the lock only to keep the cumulative series internally consistent;
* **no dependencies** — stdlib + the float formatting of ``repr``.

Histograms use fixed upper-bound buckets (defaults span 50 us .. 10 s,
latency-shaped); quantiles (:meth:`Histogram.percentile`, and the ``p50 /
p90 / p99`` properties) are linearly interpolated inside the bucket that
crosses the requested rank — the standard Prometheus-side estimate,
computed here so ``stats()`` surfaces can report it without a scrape.

A :class:`NullRegistry` hands out no-op instruments with the same API; the
observability benchmark uses it as the "bare" arm when measuring
instrumentation overhead, and callers can pass one to disable telemetry
without branching at every call site.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_exposition",
]

#: Default histogram upper bounds (seconds) — latency-shaped, 50 us .. 10 s.
DEFAULT_LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def _format_value(value: float) -> str:
    """Prometheus-friendly number formatting (ints stay ints)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in labels
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _canonical_labels(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared bookkeeping: identity, help text, a mutex for writers."""

    __slots__ = ("name", "help", "labels", "_lock")

    def __init__(self, name: str, help: str, labels: tuple):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing count (exact under concurrent writers)."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def samples(self):
        yield self.name, self.labels, self._value


class Gauge(_Instrument):
    """Point-in-time value; ``set``/``inc``/``dec``, or a collect-time
    callback (``fn``) evaluated lazily so the gauge can mirror live state
    — e.g. cache hit ratio — with zero hot-path cost."""

    __slots__ = ("_value", "_fn")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: tuple = (), fn=None):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"{self.name} is a callback gauge; cannot set()")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_fn(self, fn) -> None:
        """Bind (or rebind) the collect-time callback."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # noqa: BLE001 - a probe must not break a scrape
                return float("nan")
        return self._value

    def samples(self):
        yield self.name, self.labels, self.value


class Histogram(_Instrument):
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are the finite upper bounds (ascending); a ``+Inf``
    overflow bucket is implicit.  ``observe`` is one bisect plus one array
    increment under the instrument mutex.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: tuple = (),
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def time(self):
        """Context manager observing the elapsed ``perf_counter`` seconds."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """Consistent ``(bucket_counts, sum, count)`` copy."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def percentile(self, q: float) -> float:
        """Interpolated quantile ``q`` in [0, 1] (0.0 when empty).

        Linear interpolation inside the bucket whose cumulative count
        crosses ``rank = q * count``; the overflow bucket clamps to the
        largest finite bound (the histogram cannot see past it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        counts, _, total = self.snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = 0.0
        for idx, count in enumerate(counts):
            upper = (
                self.bounds[idx] if idx < len(self.bounds) else self.bounds[-1]
            )
            if cumulative + count >= rank:
                if count == 0 or idx >= len(self.bounds):
                    return upper
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
            lower = upper
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def stats(self) -> dict:
        """JSON-ready summary (the per-op block ``stats()`` views embed)."""
        _, total_sum, count = self.snapshot()
        return {
            "count": count,
            "sum": total_sum,
            "mean": total_sum / count if count else 0.0,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    def samples(self):
        counts, total_sum, count = self.snapshot()
        cumulative = 0
        for idx, bound in enumerate(self.bounds):
            cumulative += counts[idx]
            yield (
                self.name + "_bucket",
                self.labels + (("le", _format_value(bound)),),
                cumulative,
            )
        yield self.name + "_bucket", self.labels + (("le", "+Inf"),), count
        yield self.name + "_sum", self.labels, total_sum
        yield self.name + "_count", self.labels, count


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Named instrument store; get-or-create keyed by ``(name, labels)``.

    Re-requesting an existing instrument returns the same object (so
    callers never double count), but with a conflicting kind or bucket
    layout raises — one name means one thing.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, _canonical_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def gauge_fn(
        self, name: str, fn, help: str = "", labels: dict | None = None
    ) -> Gauge:
        """A collect-time callback gauge (rebinds ``fn`` if it exists)."""
        gauge = self._get_or_create(Gauge, name, help, labels, fn=fn)
        gauge.set_fn(fn)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        instrument = self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )
        if instrument.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"{name} is already registered with different buckets"
            )
        return instrument

    # ------------------------------------------------------------------
    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def get(self, name: str, labels: dict | None = None):
        """The instrument registered under ``(name, labels)``, or ``None``."""
        return self._instruments.get((name, _canonical_labels(labels)))

    def as_dict(self) -> dict:
        """JSON-ready dump: name -> {labels -> value/summary}."""
        out: dict = {}
        for instrument in self.instruments():
            entry = out.setdefault(instrument.name, [])
            value = (
                instrument.stats()
                if isinstance(instrument, Histogram)
                else instrument.value
            )
            entry.append({"labels": dict(instrument.labels), "value": value})
        return out

    def render(self) -> str:
        """This registry's Prometheus text exposition."""
        return render_exposition([self])


def render_exposition(registries) -> str:
    """Prometheus text exposition (format 0.0.4) over several registries.

    Families (same metric name) are grouped so ``# HELP`` / ``# TYPE``
    appear once even when instruments with different labels — or from
    different registries of the same serving stack — share a name.
    """
    families: dict[str, tuple[str, str, list]] = {}
    order: list[str] = []
    for registry in registries:
        for instrument in registry.instruments():
            family = families.get(instrument.name)
            if family is None:
                families[instrument.name] = (
                    instrument.kind,
                    instrument.help,
                    [instrument],
                )
                order.append(instrument.name)
            else:
                family[2].append(instrument)
    lines: list[str] = []
    for name in order:
        kind, help_text, instruments = families[name]
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for instrument in instruments:
            for sample_name, labels, value in instrument.samples():
                lines.append(
                    f"{sample_name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """No-op instrument quacking like all three kinds at once."""

    __slots__ = ()
    bounds = DEFAULT_LATENCY_BUCKETS
    value = 0
    count = 0
    sum = 0.0
    p50 = p90 = p99 = 0.0

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def set_fn(self, fn):
        pass

    def observe(self, value):
        pass

    def time(self):
        return _NULL_TIMER

    def percentile(self, q):
        return 0.0

    def stats(self):
        return {"count": 0, "sum": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def samples(self):
        return iter(())


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL_TIMER = _NullTimer()
_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Registry whose instruments are shared no-ops — telemetry off.

    The observability benchmark's "bare" arm, and an opt-out for callers
    who want zero instrumentation cost without branching at call sites.
    """

    def __init__(self):
        super().__init__()

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        return _NULL_INSTRUMENT

    def instruments(self) -> list:
        return []
