"""Reduce step: merge per-shard states into one estimator.

The merge laws, per component:

* **Sketch counters** — exact summation in shard order (count sketches are
  linear; ``merged.table = sum_k table_k`` reproduces the unsharded
  counters up to float-addition regrouping, and bit-for-bit when the
  stream's partial sums are exactly representable).
* **Moment accumulators** — exact summation
  (:meth:`repro.covariance.SparseMoments.merge`).
* **Top-k tracker** — union of the per-shard candidate pools, re-estimated
  with *one* gather query against the merged sketch, then re-pruned to
  capacity (:meth:`repro.sketch.TopKTracker.merge`).  Per-shard estimates
  must not survive: they only reflect per-shard mass, roughly ``1/W`` of
  the merged estimate.
* **ASCS sampler state** — per-shard accept/examine counts are summed, and
  the threshold-schedule position is re-derived from the *total* ingested
  sample count: the schedule is a pure function of ``samples_seen``, so
  setting the merged estimator's ``samples_seen`` to the sum positions
  ``current_threshold`` (and any further ingestion) exactly where a stream
  of that combined length would be.

Why the ASCS merge is approximate: each shard's sampling gate consulted
*its own* partial sketch, so shard-local accept decisions differ from the
decisions one sequential pass would have made.  The counters that were
accepted merge exactly; the *selection* of what got accepted is per-shard.
``tests/test_sharded_merge.py`` quantifies the retrieval impact (top-k F1
versus the unsharded run).
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Sequence

from repro.covariance.pipeline import CovarianceSketcher
from repro.distributed.shard import ShardResult, ShardSpec

__all__ = ["merge_shard_results"]


def _check_uniform_specs(shards: Sequence[ShardResult]) -> ShardSpec:
    """All shards must share one spec; report the first differing field.

    The kernel ``backend`` is exempt: it is runtime configuration, not
    sketch state — backends are bit-identical, so shards produced on hosts
    with different backends (or restored from pre-backend files, which pin
    ``"numpy"``) merge exactly.
    """
    spec = shards[0].spec
    for shard in shards[1:]:
        if replace(shard.spec, backend=spec.backend) == spec:
            continue
        for f in fields(ShardSpec):
            if f.name == "backend":
                continue
            a, b = getattr(spec, f.name), getattr(shard.spec, f.name)
            if a != b:
                raise ValueError(
                    "shard results are mergeable only with identical specs; "
                    f"shard {shard.shard_index} differs on {f.name}: "
                    f"{a!r} != {b!r}"
                )
        raise ValueError("shard results are mergeable only with identical specs")
    return spec


def merge_shard_results(shards: Sequence[ShardResult]) -> CovarianceSketcher:
    """Merge shard results into one queryable :class:`CovarianceSketcher`.

    Shards are merged in ``start`` order (stream order), so the result is
    deterministic regardless of worker completion order.  Raises
    ``ValueError`` for an empty list, mismatched specs, duplicate shard
    indices, or sample ranges that do not tile the stream contiguously
    (a dropped or doubled shard file must fail loudly, not merge quietly
    wrong).
    """
    shards = list(shards)
    if not shards:
        raise ValueError("cannot merge zero shard results")
    spec = _check_uniform_specs(shards)
    indices = [s.shard_index for s in shards]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices in merge: {sorted(indices)}")
    shards.sort(key=lambda s: (s.start, s.shard_index))
    for prev, cur in zip(shards, shards[1:]):
        if cur.start != prev.stop:
            raise ValueError(
                "shard sample ranges must tile the stream contiguously; "
                f"shard {cur.shard_index} starts at {cur.start} but the "
                f"preceding shard ends at {prev.stop} (missing or "
                "overlapping shard?)"
            )

    estimator = spec.build_estimator()
    sketch = estimator.sketch
    if any(s.table.shape != sketch.table.shape for s in shards):
        raise ValueError("shard table shape does not match the spec's sketch")
    for shard in shards:
        # Storage-aware summation: float tables add in place exactly as
        # before; quantized tables widen (exactly) instead of letting a
        # narrow integer add wrap silently.
        sketch.add_table(shard.table)

    estimator.samples_seen = int(sum(s.samples_seen for s in shards))
    estimator.updates_examined = int(sum(s.updates_examined for s in shards))
    estimator.updates_accepted = int(sum(s.updates_accepted for s in shards))

    if estimator.tracker is not None:
        # Union of the per-shard pools (stream order), one gather query
        # against the merged sketch, re-prune — the TopKTracker merge law.
        estimator.tracker.rebuild_from_pools(
            [s.tracker_keys for s in shards], sketch
        )

    sketcher = CovarianceSketcher(
        spec.dim,
        estimator,
        mode=spec.mode,
        centering="none",
        batch_size=spec.batch_size,
        std_floor=spec.std_floor,
    )
    moments = sketcher.sparse_moments
    for shard in shards:
        moments._sum += shard.moments_sum
        moments._sumsq += shard.moments_sumsq
        moments.count += int(shard.moments_count)
    sketcher.samples_seen = estimator.samples_seen
    return sketcher
