"""Shard workers for parallel one-pass ingestion.

Count sketches are linear, so a stream partitioned into shards can be
sketched independently and the per-shard states summed (section 3 of the
paper implies exactly this deployment mode at trillion scale).  This module
defines the unit of that map step:

* :class:`ShardSpec` — the picklable recipe every worker builds its
  estimator from.  All shards share one seed, so their sketches are
  mergeable; the spec is also the merge-compatibility fingerprint the
  reducer validates.
* :class:`ShardResult` — the complete serializable output of one shard:
  sketch counters, top-k tracker state, ASCS sampler statistics and the
  per-feature moment accumulators.  Round-trips through ``.npz`` without
  pickling, like :mod:`repro.sketch.serialization`.
* :func:`sketch_shard` — the worker: stream a slice of samples through a
  fresh :class:`repro.covariance.CovarianceSketcher` and extract the
  result.

ASCS merge law (worker half)
----------------------------
Each shard runs the *global* threshold schedule at its *local* stream
position.  That is the consistent choice: updates are scaled by the global
``1/T``, so after a shard has ingested ``t`` samples a key with mean ``mu``
estimates to roughly ``mu * t / T`` — the same magnitude the unsharded run
sees at global position ``t``, which is what ``tau(t)`` was calibrated
against.  Consequently every shard performs its own exploration period
(its sketch starts empty and must build coarse estimates before it can
gate), and shards shorter than ``T0`` degrade gracefully to vanilla CS.
The reducer half of the law lives in :mod:`repro.distributed.reduce`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.core.ascs import ActiveSamplingCountSketch
from repro.core.estimator import SketchEstimator
from repro.core.schedule import ThresholdSchedule
from repro.covariance.pipeline import CovarianceSketcher
from repro.durability.integrity import verify_arrays, write_npz
from repro.hashing.pairs import num_pairs
from repro.sketch.count_sketch import CountSketch
from repro.sketch.hierarchical import HierarchicalCountSketch
from repro.sketch.kernels import VALID_BACKENDS

__all__ = [
    "ShardSpec",
    "ShardResult",
    "sketch_shard",
    "save_shard_result",
    "load_shard_result",
    "spec_to_arrays",
    "spec_from_arrays",
    "restore_sketcher",
]

#: Estimator methods whose state merges losslessly enough to shard.
#: ASketch filters and Cold Filter gates hold order-dependent state, so the
#: sharded driver rejects them (see ``ColdFilterSketch.merge``).  ``hcs``
#: (the hierarchical count sketch) merges exactly per level — its stacked
#: table rides the same summation law as a flat table.
MERGEABLE_METHODS = ("cs", "ascs", "hcs")


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to build its estimator — and nothing else.

    All shards of one run share a spec: same sketch shape, same seed (the
    mergeability requirement), same global ``total_samples`` so updates are
    scaled by the same ``1/T``.  The spec doubles as the reducer's
    merge-compatibility fingerprint.

    Attributes
    ----------
    dim:
        Number of features ``d`` of the underlying stream.
    total_samples:
        Global stream length ``T`` (not the shard length) — the ``1/T``
        update scaling and the ASCS ramp normaliser.
    method:
        ``"cs"``, ``"ascs"`` or ``"hcs"`` (the mergeable estimators;
        ``"hcs"`` backs the estimator with a
        :class:`repro.sketch.HierarchicalCountSketch` over the pair-key
        space for open-world ``find_heavy`` discovery).
    schedule:
        ``(exploration_length, tau0, theta, total_samples)`` tuple for
        ``method="ascs"``; ``None`` for ``"cs"``.
    num_tables, num_buckets, seed, family:
        Backing :class:`repro.sketch.CountSketch` parameters.
    storage, quantum:
        Counter storage of the backing sketch (see
        :mod:`repro.sketch.storage`): ``"float64"`` (default),
        ``"float32"``, or quantized ``"int16"``/``"int32"`` with a
        fixed-point ``quantum``.  Part of the merge fingerprint — every
        shard must store counters in the same unit.
    backend:
        Kernel backend of the backing sketch
        (:mod:`repro.sketch.kernels`): ``"auto"`` (default), ``"numpy"``
        or ``"numba"``.  Runtime configuration, *not* part of the merge
        fingerprint — backends are bit-identical, so shards built on
        different backends merge exactly.  ``"auto"`` lets each worker
        pick its fastest available path independently.
    mode, batch_size, std_floor:
        :class:`repro.covariance.CovarianceSketcher` parameters.
    track_top, two_sided:
        Estimator candidate-tracking parameters.
    levels, branching:
        Hierarchy shape for ``method="hcs"``: ``levels == 0`` (the
        default) auto-sizes the depth from the pair-key space; both are
        part of the merge fingerprint and ignored by flat methods.
    """

    dim: int
    total_samples: int
    method: str = "cs"
    num_tables: int = 5
    num_buckets: int = 4096
    seed: int = 0
    family: str = "multiply-shift"
    storage: str = "float64"
    quantum: float | None = None
    backend: str = "auto"
    mode: str = "covariance"
    batch_size: int = 32
    std_floor: float = 1e-6
    track_top: int = 0
    two_sided: bool = False
    levels: int = 0
    branching: int = 16
    schedule: tuple[int, float, float, int] | None = None

    def __post_init__(self):
        if self.quantum is not None:
            object.__setattr__(self, "quantum", float(self.quantum))
        if self.backend not in VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {VALID_BACKENDS}, got {self.backend!r}"
            )
        if self.method not in MERGEABLE_METHODS:
            raise ValueError(
                f"sharded ingestion supports methods {MERGEABLE_METHODS}; "
                f"got {self.method!r} (ASketch/Cold Filter state is "
                "order-dependent and cannot merge)"
            )
        if self.method == "ascs":
            if self.schedule is None:
                raise ValueError("method='ascs' requires a schedule")
            schedule = tuple(self.schedule)
            if len(schedule) != 4:
                raise ValueError(
                    "schedule must be (exploration_length, tau0, theta, "
                    f"total_samples); got {self.schedule!r}"
                )
            if int(schedule[3]) != int(self.total_samples):
                raise ValueError(
                    "schedule total_samples must equal the spec's global "
                    f"total_samples; {schedule[3]} != {self.total_samples}"
                )
            object.__setattr__(
                self,
                "schedule",
                (
                    int(schedule[0]),
                    float(schedule[1]),
                    float(schedule[2]),
                    int(schedule[3]),
                ),
            )
        elif self.schedule is not None:
            raise ValueError("schedule is only meaningful for method='ascs'")

    # ------------------------------------------------------------------
    def build_estimator(self) -> SketchEstimator:
        """A fresh zero-state estimator following this spec."""
        if self.method == "hcs":
            sketch = HierarchicalCountSketch(
                self.num_tables,
                self.num_buckets,
                key_space=num_pairs(self.dim),
                branching=self.branching,
                levels=self.levels or None,
                seed=self.seed,
                family=self.family,
                dtype=self.storage,
                quantum=self.quantum,
                backend=self.backend,
            )
        else:
            sketch = CountSketch(
                self.num_tables,
                self.num_buckets,
                seed=self.seed,
                family=self.family,
                dtype=self.storage,
                quantum=self.quantum,
                backend=self.backend,
            )
        common = dict(track_top=self.track_top, two_sided=self.two_sided)
        if self.method == "ascs":
            return ActiveSamplingCountSketch(
                sketch,
                self.total_samples,
                ThresholdSchedule(*self.schedule),
                name="ASCS",
                **common,
            )
        name = "HCS" if self.method == "hcs" else "CS"
        return SketchEstimator(sketch, self.total_samples, name=name, **common)

    def build_sketcher(self) -> CovarianceSketcher:
        """A fresh covariance pipeline around :meth:`build_estimator`."""
        return CovarianceSketcher(
            self.dim,
            self.build_estimator(),
            mode=self.mode,
            centering="none",
            batch_size=self.batch_size,
            std_floor=self.std_floor,
        )


@dataclass
class ShardResult:
    """Complete serializable state one shard worker hands the reducer.

    Everything the reducer's merge laws consume:

    * ``table`` — the sketch counters (merged by exact summation);
    * ``tracker_keys`` / ``tracker_estimates`` — the top-k candidate pool
      (merged by union + one re-query against the merged sketch);
    * ``samples_seen`` / ``updates_examined`` / ``updates_accepted`` — the
      ASCS sampler statistics (merged by summation; the merged
      ``samples_seen`` re-derives the threshold-schedule position);
    * ``moments_*`` — the :class:`repro.covariance.SparseMoments`
      accumulators (merged by exact summation).
    """

    spec: ShardSpec
    shard_index: int
    num_shards: int
    start: int
    stop: int
    table: np.ndarray
    samples_seen: int
    updates_examined: int
    updates_accepted: int
    moments_count: int
    moments_sum: np.ndarray
    moments_sumsq: np.ndarray
    tracker_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    tracker_estimates: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )

    @property
    def num_samples(self) -> int:
        return self.stop - self.start

    @property
    def acceptance_rate(self) -> float:
        if self.updates_examined == 0:
            return 1.0
        return self.updates_accepted / self.updates_examined


def extract_shard_result(
    sketcher: CovarianceSketcher,
    spec: ShardSpec,
    *,
    shard_index: int = 0,
    num_shards: int = 1,
    start: int = 0,
) -> ShardResult:
    """Snapshot a fitted sketcher's state into a :class:`ShardResult`."""
    est = sketcher.estimator
    if est.tracker is not None:
        tracker_keys, tracker_ests = est.tracker.snapshot()
    else:
        tracker_keys = np.empty(0, dtype=np.int64)
        tracker_ests = np.empty(0, dtype=np.float64)
    moments = sketcher.sparse_moments
    return ShardResult(
        spec=spec,
        shard_index=int(shard_index),
        num_shards=int(num_shards),
        start=int(start),
        stop=int(start) + int(sketcher.samples_seen),
        table=est.sketch.table.copy(),
        samples_seen=int(est.samples_seen),
        updates_examined=int(est.updates_examined),
        updates_accepted=int(est.updates_accepted),
        moments_count=int(moments.count),
        moments_sum=moments._sum.copy(),
        moments_sumsq=moments._sumsq.copy(),
        tracker_keys=tracker_keys,
        tracker_estimates=tracker_ests,
    )


def sketch_shard(
    spec: ShardSpec,
    samples,
    *,
    shard_index: int = 0,
    num_shards: int = 1,
    start: int = 0,
) -> ShardResult:
    """Map step: stream one shard of sparse samples into a fresh estimator.

    Parameters
    ----------
    spec:
        The shared :class:`ShardSpec`.
    samples:
        Iterable of sparse ``(indices, values)`` samples — this shard's
        contiguous slice of the global stream.
    shard_index, num_shards, start:
        Provenance recorded in the result; ``start`` is the shard's global
        stream offset (used for coverage checks at reduce time).
    """
    sketcher = spec.build_sketcher()
    sketcher.fit_sparse(iter(samples))
    return extract_shard_result(
        sketcher, spec, shard_index=shard_index, num_shards=num_shards, start=start
    )


# ----------------------------------------------------------------------
# Serialisation (.npz, no pickling — mirrors repro.sketch.serialization)
# ----------------------------------------------------------------------
_SPEC_STR_FIELDS = ("method", "family", "storage", "backend", "mode")


def spec_to_arrays(spec: ShardSpec, *, prefix: str = "spec_") -> dict:
    """A :class:`ShardSpec` as a flat ``{name: ndarray}`` dict.

    Scalars are stored as 0-d arrays and strings as fixed unicode, so the
    dict survives ``np.savez`` with ``allow_pickle=False``.  ``None``
    optionals (schedule, quantum) encode as NaN.  The durability tier
    persists a spec alone (the recovery recipe); :func:`save_shard_result`
    embeds the same members inside each shard file.
    """
    payload: dict[str, np.ndarray] = {}
    for f in fields(ShardSpec):
        value = getattr(spec, f.name)
        if f.name == "schedule":
            payload[prefix + "schedule"] = (
                np.full(4, np.nan)
                if value is None
                else np.asarray(value, dtype=np.float64)
            )
        elif f.name == "quantum":
            # None encodes as NaN (like the optional schedule): np.asarray
            # on None would produce an object array savez cannot store.
            payload[prefix + "quantum"] = np.asarray(
                np.nan if value is None else value, dtype=np.float64
            )
        else:
            payload[prefix + f.name] = np.asarray(value)
    return payload


def spec_from_arrays(data, *, prefix: str = "spec_") -> ShardSpec:
    """Rebuild a :class:`ShardSpec` from :func:`spec_to_arrays` output.

    Members missing from ``data`` keep their dataclass defaults, so files
    written before a spec field existed (e.g. pre-memory-tier shards with
    no ``storage``/``quantum``) still load.  One exception: a missing
    ``backend`` restores as ``"numpy"`` rather than the dataclass default
    ``"auto"`` — such files predate the compiled kernels, and pinning the
    path they actually ran keeps restored-state behaviour byte-for-byte
    reproducible regardless of what the restoring host has installed.
    """
    schedule_raw = data[prefix + "schedule"]
    schedule = (
        None
        if np.isnan(schedule_raw).any()
        else (
            int(schedule_raw[0]),
            float(schedule_raw[1]),
            float(schedule_raw[2]),
            int(schedule_raw[3]),
        )
    )
    spec_kwargs = {}
    for f in fields(ShardSpec):
        if f.name == "schedule":
            continue
        member = prefix + f.name
        if member not in data:
            if f.name == "backend":
                spec_kwargs[f.name] = "numpy"
            continue
        raw = data[member]
        if f.name in _SPEC_STR_FIELDS:
            spec_kwargs[f.name] = str(raw)
        elif f.name == "quantum":
            value = float(raw)
            spec_kwargs[f.name] = None if np.isnan(value) else value
        elif f.name in ("std_floor",):
            spec_kwargs[f.name] = float(raw)
        elif f.name == "two_sided":
            spec_kwargs[f.name] = bool(raw)
        else:
            spec_kwargs[f.name] = int(raw)
    return ShardSpec(schedule=schedule, **spec_kwargs)


def save_shard_result(result: ShardResult, path, *, extra: dict | None = None) -> None:
    """Persist a :class:`ShardResult` to ``path`` (``.npz``).

    Workers on separate machines write these; the reducer loads and merges.
    No pickled objects are involved (``allow_pickle=False`` round-trip).
    The write is atomic (temp file + ``os.replace``) and the archive embeds
    per-array CRC32s plus a manifest digest
    (:mod:`repro.durability.integrity`), so a torn or bit-flipped shard
    file is *detected at load* instead of merging silent garbage.

    ``extra`` members (0-d arrays) ride along inside the archive — the
    durability tier stores the WAL position a checkpoint covers this way.
    """
    payload = {
        "shard_index": np.asarray(result.shard_index),
        "num_shards": np.asarray(result.num_shards),
        "start": np.asarray(result.start),
        "stop": np.asarray(result.stop),
        "table": result.table,
        "samples_seen": np.asarray(result.samples_seen),
        "updates_examined": np.asarray(result.updates_examined),
        "updates_accepted": np.asarray(result.updates_accepted),
        "moments_count": np.asarray(result.moments_count),
        "moments_sum": result.moments_sum,
        "moments_sumsq": result.moments_sumsq,
        "tracker_keys": result.tracker_keys,
        "tracker_estimates": result.tracker_estimates,
        **spec_to_arrays(result.spec),
    }
    if extra:
        payload.update({name: np.asarray(value) for name, value in extra.items()})
    write_npz(path, payload, compress=True)


def load_shard_result(path) -> ShardResult:
    """Restore a :class:`ShardResult` written by :func:`save_shard_result`.

    Files carrying integrity members are CRC-verified
    (:class:`repro.durability.IntegrityError` names the file and the bad
    member on mismatch); files from before the durability tier load
    unverified, exactly as they always did.
    """
    with np.load(path, allow_pickle=False) as data:
        verify_arrays(data, source=str(path))
        spec = spec_from_arrays(data)
        return ShardResult(
            spec=spec,
            shard_index=int(data["shard_index"]),
            num_shards=int(data["num_shards"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            table=data["table"].copy(),
            samples_seen=int(data["samples_seen"]),
            updates_examined=int(data["updates_examined"]),
            updates_accepted=int(data["updates_accepted"]),
            moments_count=int(data["moments_count"]),
            moments_sum=data["moments_sum"].copy(),
            moments_sumsq=data["moments_sumsq"].copy(),
            tracker_keys=data["tracker_keys"].copy(),
            tracker_estimates=data["tracker_estimates"].copy(),
        )


def restore_sketcher(result: ShardResult) -> CovarianceSketcher:
    """Rebuild a live (writable) pipeline from a persisted shard/pane state.

    The inverse of :func:`extract_shard_result`: counters, moment
    accumulators, sampler statistics and the tracker pool are all restored,
    so further ingestion behaves exactly as if the state had never been
    persisted (the tracker restore relies on ``TopKTracker.snapshot``'s
    replay guarantee).  This is the recovery primitive shared by
    :class:`repro.streaming.PaneRing` resume and the durability tier's
    checkpoint + WAL replay (:class:`repro.durability.DurableSketcher`).
    """
    sketcher = result.spec.build_sketcher()
    estimator = sketcher.estimator
    # load_table adopts the persisted table's width: a quantized pane that
    # widened past the spec's declared dtype restores without down-casting.
    estimator.sketch.load_table(result.table)
    estimator.samples_seen = int(result.samples_seen)
    estimator.updates_examined = int(result.updates_examined)
    estimator.updates_accepted = int(result.updates_accepted)
    if estimator.tracker is not None and result.tracker_keys.size:
        estimator.tracker.offer(result.tracker_keys, result.tracker_estimates)
    moments = sketcher.sparse_moments
    moments._sum[:] = result.moments_sum
    moments._sumsq[:] = result.moments_sumsq
    moments.count = int(result.moments_count)
    sketcher.samples_seen = int(result.samples_seen)
    return sketcher


def spec_with(spec: ShardSpec, **changes) -> ShardSpec:
    """A copy of ``spec`` with fields replaced (validation re-runs)."""
    return replace(spec, **changes)
