"""Sharded parallel ingestion: mergeable shards, a reducer, and a driver.

Count sketches are linear — shards of a stream can be sketched
independently and summed — and this package turns that property into a
working subsystem:

* :mod:`repro.distributed.shard` — :class:`ShardSpec` (the shared recipe),
  :class:`ShardResult` (one worker's complete serializable state) and
  :func:`sketch_shard` (the map step);
* :mod:`repro.distributed.reduce` — :func:`merge_shard_results`, the merge
  laws for counters (exact sums), moments (exact sums), top-k candidate
  pools (union + one re-query against the merged sketch) and ASCS sampler
  state (summed counts; schedule position re-derived from the total);
* :mod:`repro.distributed.driver` — :func:`fit_sparse_sharded`, the
  partition → map → reduce driver with ``serial`` (bit-identical
  reference) and ``process`` (``multiprocessing``) backends.

See ``PERF.md`` ("Sharded ingestion") for the merge laws, why the ASCS
merge is approximate, and measured scaling.
"""

from repro.distributed.driver import (
    BACKENDS,
    ShardedFit,
    fit_sparse_sharded,
    partition_batches,
)
from repro.distributed.reduce import merge_shard_results
from repro.distributed.shard import (
    MERGEABLE_METHODS,
    ShardResult,
    ShardSpec,
    load_shard_result,
    save_shard_result,
    sketch_shard,
)

__all__ = [
    "BACKENDS",
    "MERGEABLE_METHODS",
    "ShardResult",
    "ShardSpec",
    "ShardedFit",
    "fit_sparse_sharded",
    "load_shard_result",
    "merge_shard_results",
    "partition_batches",
    "save_shard_result",
    "sketch_shard",
]
