"""Sharded parallel ingestion driver: partition → map → reduce.

:func:`fit_sparse_sharded` is the one-call entry point: it materialises a
sparse sample stream, partitions it into contiguous batch-aligned shards,
runs one worker per shard (in-process or via ``multiprocessing``), and
reduces the shard states into a single queryable estimator.

Backends
--------
``"serial"``
    Executes the same partition plan in-process, threading **one**
    estimator through the shards in stream order.  Because shard
    boundaries are aligned to the pipeline's batch grid, the sequence of
    ingested batches is exactly the sequence ``fit_sparse`` produces, so
    the serial backend is **bit-identical** to the single-shard
    ``CovarianceSketcher.fit_sparse`` path — the correctness baseline every
    parallel run is measured against.
``"process"``
    True map/reduce over a ``multiprocessing`` pool: every shard builds an
    independent zero-state estimator (same spec, same seed) and the
    results merge via :func:`repro.distributed.merge_shard_results`.  For
    ``cs`` the merged counters equal the serial run up to float-addition
    regrouping (bit-for-bit when partial sums are exactly representable);
    for ``ascs`` the sampling decisions are shard-local, making the merge
    approximate in *selection* (see :mod:`repro.distributed.reduce`).
    ``mode="correlation"`` additionally normalises each shard by its own
    running std — equal in expectation under the paper's i.i.d. stream
    assumption, not bitwise.

Shard boundaries are aligned to multiples of ``batch_size`` so every
backend and worker count ingests the *same multiset of batches*; only the
grouping of counter additions differs.  That is what makes the determinism
guarantees testable (``tests/test_sharded_driver.py``).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import ThresholdSchedule
from repro.covariance.pipeline import CovarianceSketcher
from repro.distributed.reduce import merge_shard_results
from repro.distributed.shard import (
    ShardResult,
    ShardSpec,
    extract_shard_result,
    sketch_shard,
)
from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = ["ShardedFit", "fit_sparse_sharded", "partition_batches"]

BACKENDS = ("serial", "process")


@dataclass
class ShardedFit:
    """Outcome of :func:`fit_sparse_sharded`.

    ``sketcher`` is the merged (or serially threaded) pipeline — query it
    exactly like a ``fit_sparse`` result.  ``partition`` records the
    ``(start, stop)`` sample slice of every shard; ``shard_results`` holds
    the per-shard states when requested — one per worker for the process
    backend, a single whole-stream snapshot (``num_shards=1``) for the
    serial backend, which threads one estimator and has no per-shard
    states to keep.
    """

    sketcher: CovarianceSketcher
    spec: ShardSpec
    backend: str
    n_workers: int
    partition: list[tuple[int, int]]
    shard_results: list[ShardResult] | None = None

    @property
    def estimator(self):
        return self.sketcher.estimator

    def top_pairs(self, k: int, **kwargs):
        """Delegate to :meth:`repro.covariance.CovarianceSketcher.top_pairs`."""
        return self.sketcher.top_pairs(k, **kwargs)

    def snapshot(self, **kwargs):
        """Freeze the merged state into a serving snapshot.

        Equivalent to ``repro.serving.SketchSnapshot.from_sketcher`` on the
        merged sketcher — the scale-out write path handing off to the read
        path.  (To snapshot persisted per-shard files without a driver run,
        use ``SketchSnapshot.from_shard_results``.)
        """
        # Lazy import: repro.serving builds on repro.distributed.
        from repro.serving import SketchSnapshot

        return SketchSnapshot.from_sketcher(self.sketcher, **kwargs)


def partition_batches(
    num_samples: int, batch_size: int, n_workers: int
) -> list[tuple[int, int]]:
    """Contiguous batch-aligned shard boundaries.

    Splits the ``ceil(num_samples / batch_size)`` ingestion batches as
    evenly as possible across workers; every boundary except the stream end
    is a multiple of ``batch_size``.  This guarantees each shard ingests
    exactly the batches the unsharded run would, which is what makes the
    serial backend bit-identical and the process backend's counter merge a
    pure regrouping of the same additions.  Workers beyond the batch count
    get no shard (the returned list may be shorter than ``n_workers``).
    """
    if num_samples < 0:
        raise ValueError(f"num_samples must be non-negative, got {num_samples}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if num_samples == 0:
        return []
    num_batches = -(-num_samples // batch_size)
    bounds: list[tuple[int, int]] = []
    for chunk in np.array_split(np.arange(num_batches), min(n_workers, num_batches)):
        if chunk.size == 0:
            continue
        start = int(chunk[0]) * batch_size
        stop = min((int(chunk[-1]) + 1) * batch_size, num_samples)
        bounds.append((start, stop))
    return bounds


def _run_shard(args) -> tuple[ShardResult, float]:
    """Top-level pool task (must be picklable for the process backend).

    Returns the shard state plus its worker-side ingest wall time, so the
    driver can record per-shard throughput without a side channel.
    """
    spec, samples, shard_index, num_shards, start = args
    started = time.perf_counter()
    result = sketch_shard(
        spec, samples, shard_index=shard_index, num_shards=num_shards, start=start
    )
    return result, time.perf_counter() - started


def _normalise_samples(samples) -> list[tuple[np.ndarray, np.ndarray]]:
    out = []
    for sample in samples:
        idx, val = sample[0], sample[1]
        out.append(
            (np.asarray(idx, dtype=np.int64), np.asarray(val, dtype=np.float64))
        )
    return out


def _default_context() -> str:
    methods = multiprocessing.get_all_start_methods()
    # fork inherits sys.path and loaded modules — cheapest start and works
    # regardless of how the parent located the package; spawn elsewhere.
    return "fork" if "fork" in methods else "spawn"


def fit_sparse_sharded(
    samples,
    dim: int,
    *,
    total_samples: int | None = None,
    method: str = "cs",
    num_tables: int = 5,
    num_buckets: int = 4096,
    seed: int = 0,
    family: str = "multiply-shift",
    mode: str = "covariance",
    batch_size: int = 32,
    std_floor: float = 1e-6,
    track_top: int = 0,
    two_sided: bool = False,
    storage: str = "float64",
    quantum: float | None = None,
    kernel_backend: str = "auto",
    schedule: ThresholdSchedule | tuple | None = None,
    n_workers: int = 1,
    backend: str = "serial",
    mp_context: str | None = None,
    keep_shard_results: bool = False,
    registry: MetricsRegistry | None = None,
) -> ShardedFit:
    """Fit a sparse stream through sharded (optionally parallel) ingestion.

    Parameters
    ----------
    samples:
        Iterable of sparse ``(indices, values)`` samples; materialised into
        a list so it can be partitioned (stream relays that cannot be
        materialised should persist :class:`ShardResult` files from
        :func:`repro.distributed.sketch_shard` and reduce explicitly).
    dim:
        Feature dimension ``d``.
    total_samples:
        Global ``T`` for the ``1/T`` update scaling; defaults to the
        materialised stream length.
    method:
        ``"cs"`` or ``"ascs"`` — the mergeable estimators.  ``"ascs"``
        requires ``schedule``.
    storage, quantum:
        Counter tier of every shard's sketch (:mod:`repro.sketch.storage`)
        — part of the shared spec, so all shards store counters in the
        same unit and the reducer's summation stays exact (quantized
        shards widen on merge instead of wrapping).
    kernel_backend:
        Kernel backend of every shard's sketch
        (:mod:`repro.sketch.kernels`).  Unlike ``storage`` it is *not*
        merge-fingerprinted — backends are bit-identical — so the default
        ``"auto"`` simply lets each worker take its fastest path.
    schedule:
        A :class:`repro.core.ThresholdSchedule` or its
        ``(exploration_length, tau0, theta, total_samples)`` tuple.
    n_workers, backend:
        ``backend="serial"`` threads one estimator through the partition
        (bit-identical to ``fit_sparse``); ``backend="process"`` runs one
        OS process per shard and merges.
    mp_context:
        ``multiprocessing`` start method (default: ``fork`` when
        available, else ``spawn``).
    keep_shard_results:
        Retain the per-shard :class:`ShardResult` objects on the returned
        :class:`ShardedFit` (process backend only; each holds a full
        counter table).
    registry:
        Optional :class:`repro.obs.MetricsRegistry` receiving the run's
        telemetry: ``repro_shard_ingest_seconds`` (one observation per
        shard), ``repro_shard_merge_seconds`` (the reduce pass), and
        ``repro_shard_ingest_samples_per_second`` (aggregate per-shard
        ingest rate of this run).

    Returns
    -------
    :class:`ShardedFit` whose ``sketcher`` answers ``estimate_keys`` /
    ``top_pairs`` like a ``fit_sparse`` result.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    sample_list = _normalise_samples(samples)
    n = len(sample_list)
    if n == 0:
        raise ValueError("cannot fit an empty sample stream")
    if isinstance(schedule, ThresholdSchedule):
        schedule = (
            schedule.exploration_length,
            schedule.tau0,
            schedule.theta,
            schedule.total_samples,
        )
    spec = ShardSpec(
        dim=dim,
        total_samples=int(total_samples if total_samples is not None else n),
        method=method,
        num_tables=num_tables,
        num_buckets=num_buckets,
        seed=seed,
        family=family,
        mode=mode,
        batch_size=batch_size,
        std_floor=std_floor,
        track_top=track_top,
        two_sided=two_sided,
        storage=storage,
        quantum=quantum,
        backend=kernel_backend,
        schedule=schedule,
    )
    partition = partition_batches(n, batch_size, n_workers)
    reg = registry if registry is not None else NullRegistry()
    ingest_hist = reg.histogram(
        "repro_shard_ingest_seconds", "per-shard sparse ingest wall time"
    )
    merge_hist = reg.histogram(
        "repro_shard_merge_seconds", "shard-state reduce (merge) pass"
    )
    throughput_gauge = reg.gauge(
        "repro_shard_ingest_samples_per_second",
        "aggregate per-shard ingest rate of the last sharded fit",
    )

    if backend == "serial":
        sketcher = spec.build_sketcher()
        ingest_elapsed = 0.0
        for start, stop in partition:
            started = time.perf_counter()
            sketcher.fit_sparse(iter(sample_list[start:stop]))
            elapsed = time.perf_counter() - started
            ingest_hist.observe(elapsed)
            ingest_elapsed += elapsed
        if ingest_elapsed > 0.0:
            throughput_gauge.set(n / ingest_elapsed)
        shard_results = None
        if keep_shard_results:
            # The serial backend threads one estimator, so the only
            # extractable state is a single whole-stream snapshot.
            shard_results = [extract_shard_result(sketcher, spec, num_shards=1)]
        return ShardedFit(
            sketcher=sketcher,
            spec=spec,
            backend=backend,
            n_workers=len(partition),
            partition=partition,
            shard_results=shard_results,
        )

    tasks = [
        (spec, sample_list[start:stop], index, len(partition), start)
        for index, (start, stop) in enumerate(partition)
    ]
    if len(tasks) == 1:
        # A single shard needs no pool (and no serialisation round-trip).
        timed = [_run_shard(tasks[0])]
    else:
        ctx = multiprocessing.get_context(mp_context or _default_context())
        with ctx.Pool(processes=len(tasks)) as pool:
            timed = pool.map(_run_shard, tasks)
    results = [result for result, _ in timed]
    ingest_elapsed = 0.0
    for result, elapsed in timed:
        ingest_hist.observe(elapsed)
        ingest_elapsed += elapsed
    if ingest_elapsed > 0.0:
        throughput_gauge.set(n / ingest_elapsed)
    with merge_hist.time():
        sketcher = merge_shard_results(results)
    return ShardedFit(
        sketcher=sketcher,
        spec=spec,
        backend=backend,
        n_workers=len(tasks),
        partition=partition,
        shard_results=results if keep_shard_results else None,
    )
