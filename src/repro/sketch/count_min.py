"""Count-Min sketch for non-negative mass accumulation.

Used as the gating layer of the Cold Filter baseline (Zhou et al. 2018):
cheap small counters decide whether a key has accumulated enough absolute
mass to graduate to the main count sketch.  Supports the conservative-update
optimisation, which Cold Filter relies on to keep layer-1 counters tight.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import make_family
from repro.sketch.base import ValueSketch, validate_batch

__all__ = ["CountMinSketch"]


class CountMinSketch(ValueSketch):
    """A ``K x R`` count-min sketch over non-negative values.

    Parameters
    ----------
    num_tables, num_buckets, seed, family:
        As for :class:`repro.sketch.CountSketch`.
    conservative:
        If true, an update raises each of the key's ``K`` counters only up
        to ``min_counter + value`` — never overshooting the true mass.
        Conservative update is not mergeable; ``merge`` raises when enabled.
    cap:
        Optional saturation value for the counters (Cold Filter uses small
        saturating counters in layer 1).  ``None`` means unbounded.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        conservative: bool = False,
        cap: float | None = None,
        dtype=np.float64,
    ):
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        self.conservative = bool(conservative)
        self.cap = None if cap is None else float(cap)
        self.table = np.zeros((self.num_tables, self.num_buckets), dtype=dtype)

        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(self.num_tables)
        self._bucket_hashes = [
            make_family(family, self.num_buckets, int(children[e].generate_state(1)[0]))
            for e in range(self.num_tables)
        ]

    def _buckets(self, keys: np.ndarray) -> np.ndarray:
        out = np.empty((self.num_tables, keys.size), dtype=np.int64)
        for e in range(self.num_tables):
            out[e] = self._bucket_hashes[e](keys)
        return out

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        if (values < 0).any():
            raise ValueError("CountMinSketch accepts non-negative values only")
        buckets = self._buckets(keys)
        if self.conservative:
            # Conservative update must be applied per distinct key; aggregate
            # duplicate keys in the batch first so intra-batch order does not
            # change the result.
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=values, minlength=uniq.size)
            ub = self._buckets(uniq)
            current = np.min(
                self.table[np.arange(self.num_tables)[:, None], ub], axis=0
            )
            target = current + sums
            for e in range(self.num_tables):
                np.maximum.at(self.table[e], ub[e], target)
        else:
            for e in range(self.num_tables):
                self.table[e] += np.bincount(
                    buckets[e], weights=values, minlength=self.num_buckets
                ).astype(self.table.dtype, copy=False)
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        buckets = self._buckets(keys)
        gathered = self.table[np.arange(self.num_tables)[:, None], buckets]
        return np.min(gathered, axis=0).astype(np.float64)

    def reset(self) -> None:
        self.table[:] = 0.0

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        if self.conservative or other.conservative:
            raise ValueError("conservative-update count-min sketches cannot merge")
        same = (
            isinstance(other, CountMinSketch)
            and other.num_tables == self.num_tables
            and other.num_buckets == self.num_buckets
            and other.seed == self.seed
            and other.family == self.family
        )
        if not same:
            raise ValueError(
                "sketches are mergeable only with identical shape, seed and family"
            )
        self.table += other.table
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)
        return self

    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(K={self.num_tables}, R={self.num_buckets}, "
            f"conservative={self.conservative}, cap={self.cap})"
        )
