"""Count-Min sketch for non-negative mass accumulation.

Used as the gating layer of the Cold Filter baseline (Zhou et al. 2018):
cheap small counters decide whether a key has accumulated enough absolute
mass to graduate to the main count sketch.  Supports the conservative-update
optimisation, which Cold Filter relies on to keep layer-1 counters tight.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import MultiTableHasher, _keys_as_u64
from repro.sketch.base import (
    ValueSketch,
    ensure_mergeable,
    reject_readonly_counters,
    validate_batch,
)
from repro.sketch.kernels import numba_kernels, resolve_backend
from repro.sketch.storage import CounterStore

__all__ = ["CountMinSketch"]


class CountMinSketch(ValueSketch):
    """A ``K x R`` count-min sketch over non-negative values.

    Parameters
    ----------
    num_tables, num_buckets, seed, family:
        As for :class:`repro.sketch.CountSketch`.
    conservative:
        If true, an update raises each of the key's ``K`` counters only up
        to ``min_counter + value`` — never overshooting the true mass.
        Conservative update is not mergeable; ``merge`` raises when enabled.
    cap:
        Optional saturation value for the counters (Cold Filter uses small
        saturating counters in layer 1).  ``None`` means unbounded.
    dtype, quantum:
        Counter storage, as for :class:`repro.sketch.CountSketch`.
        Conservative update and ``cap`` both clamp counters through
        non-linear in-place passes expressed in raw units, so they require
        plain float storage; combining them with a quantized dtype raises.
    backend:
        Kernel backend, as for :class:`repro.sketch.CountSketch`.  The
        compiled path covers the linear (non-conservative) insert and the
        min-of-tables query; conservative update stays on numpy.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        conservative: bool = False,
        cap: float | None = None,
        dtype=np.float64,
        quantum: float | None = None,
        backend: str | None = None,
    ):
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        self.conservative = bool(conservative)
        self.cap = None if cap is None else float(cap)
        # The storage backend owns the (K, R) table and its flat view; the
        # fused kernels address counter (e, b) as raw[e * R + b].
        self._store = CounterStore(
            self.num_tables, self.num_buckets, dtype=dtype, quantum=quantum
        )
        if self._store.quantized and (self.conservative or self.cap is not None):
            raise ValueError(
                "conservative update and cap require float counter storage; "
                "quantized (int16/int32) tables are insert-linear only"
            )
        self._offsets_u64 = (
            np.arange(self.num_tables, dtype=np.uint64) * np.uint64(self.num_buckets)
        )[:, None]

        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(self.num_tables)
        self._hasher = MultiTableHasher(
            family,
            self.num_buckets,
            [int(children[e].generate_state(1)[0]) for e in range(self.num_tables)],
        )

        # Compiled-kernel plumbing (see CountSketch): only the fused
        # multiply-shift family with float storage is eligible, and
        # conservative update always stays on the numpy path.
        self.backend = resolve_backend(backend)
        self._jit_args = None
        bucket = getattr(self._hasher, "_bucket", None)
        if (
            self.backend == "numba"
            and not self.conservative
            and self._store.quantum is None
            and hasattr(bucket, "_a")
        ):
            mask = self._hasher._bucket_mask
            self._jit_args = (
                bucket._a.ravel(),
                bucket._b.ravel(),
                self._offsets_u64.ravel(),
                np.uint64(self.num_buckets),
                np.uint64(0) if mask is None else mask,
                mask is not None,
            )

    def _jit_kernels(self, flat_needed_writable: bool):
        """``(module, flat)`` for the compiled path, or ``None``."""
        if self._jit_args is None:
            return None
        store = self._store
        if store.quantum is not None or store.dtype != np.float64:
            return None
        raw = store.raw
        if isinstance(raw, np.memmap):
            return None
        module = numba_kernels()
        if module is None:  # pragma: no cover - unpickled without numba
            return None
        if flat_needed_writable:
            reject_readonly_counters(raw)
        return module, raw

    @property
    def table(self) -> np.ndarray:
        """The ``(K, R)`` counter table (raw storage units)."""
        return self._store.matrix

    @property
    def _flat(self) -> np.ndarray:
        return self._store.raw

    @property
    def quantum(self) -> float | None:
        """Fixed-point step of quantized storage (``None`` for float)."""
        return self._store.quantum

    @property
    def storage_dtype(self) -> np.dtype:
        """Current counter dtype (may have widened past the declared one)."""
        return self._store.dtype

    def _flat_indices(self, keys: np.ndarray) -> np.ndarray:
        """Fused ``(K, n)`` flat counter indices ``e*R + h_e(key)``."""
        w = self._hasher.bucket_u64(keys)
        np.add(w, self._offsets_u64, out=w)
        return w.view(np.int64)

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        if (values < 0).any():
            raise ValueError("CountMinSketch accepts non-negative values only")
        if self.conservative:
            # np.maximum.at ignores the writeable flag on some numpy
            # versions — enforce frozen-snapshot immutability ourselves.
            reject_readonly_counters(self._flat)
            # Conservative update must be applied per distinct key; aggregate
            # duplicate keys in the batch first so intra-batch order does not
            # change the result.
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=values, minlength=uniq.size)
            fi = self._flat_indices(uniq)
            current = np.min(self._flat[fi], axis=0)
            target = current + sums
            np.maximum.at(
                self._flat,
                fi.ravel(),
                np.broadcast_to(target, fi.shape).ravel(),
            )
        else:
            jit = self._jit_kernels(flat_needed_writable=True)
            if jit is not None:
                module, flat = jit
                a, b, offsets, r_u64, mask, use_mask = self._jit_args
                module.cm_insert(
                    flat,
                    _keys_as_u64(keys),
                    np.ascontiguousarray(values),
                    a,
                    b,
                    offsets,
                    r_u64,
                    mask,
                    use_mask,
                )
            else:
                fi = self._flat_indices(keys)
                # Always bincount, matching the legacy per-table path exactly.
                self._store.scatter_add(
                    fi.ravel(),
                    np.broadcast_to(values, fi.shape).ravel(),
                    use_bincount=True,
                )
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        jit = self._jit_kernels(flat_needed_writable=False)
        if jit is not None:
            module, flat = jit
            a, b, offsets, r_u64, mask, use_mask = self._jit_args
            out = np.empty(keys.size, dtype=np.float64)
            module.cm_query(
                flat, _keys_as_u64(keys), a, b, offsets, r_u64, mask, use_mask, out
            )
            return out
        gathered = self._store.gather(self._flat_indices(keys))
        return np.min(gathered, axis=0)

    def reset(self) -> None:
        self._store.zero()

    def freeze(self) -> "CountMinSketch":
        """Make the counter storage read-only (in place) and return ``self``.

        Queries keep working (gathers never write); inserts, merges and
        resets raise — the serving-snapshot immutability guarantee.
        """
        self._store.freeze()
        return self

    def _check_compatible(self, other: "CountMinSketch") -> None:
        ensure_mergeable(
            self, other, ("num_tables", "num_buckets", "seed", "family", "cap")
        )
        self._store.check_mergeable(other._store, "CountMinSketch")

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        # Compatibility first, so a shape/seed mismatch is reported as such
        # even when one side is also conservative.
        self._check_compatible(other)
        if self.conservative or other.conservative:
            # Conservative update makes each counter depend on the minimum
            # across the key's row at insert time — an order-dependent,
            # non-linear state that counter summation cannot reproduce.
            raise ValueError("conservative-update count-min sketches cannot merge")
        self._store.merge_from(other._store)
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)
        return self

    def scale(self, factor: float) -> "CountMinSketch":
        """Multiply every counter value by ``factor`` in place (decay flush)."""
        self._store.scale(factor)
        return self

    def copy(self) -> "CountMinSketch":
        clone = CountMinSketch(
            self.num_tables,
            self.num_buckets,
            seed=self.seed,
            family=self.family,
            conservative=self.conservative,
            cap=self.cap,
            backend=self.backend,
        )
        clone._store = self._store.copy()
        return clone

    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(K={self.num_tables}, R={self.num_buckets}, "
            f"conservative={self.conservative}, cap={self.cap})"
        )
