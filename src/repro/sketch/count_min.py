"""Count-Min sketch for non-negative mass accumulation.

Used as the gating layer of the Cold Filter baseline (Zhou et al. 2018):
cheap small counters decide whether a key has accumulated enough absolute
mass to graduate to the main count sketch.  Supports the conservative-update
optimisation, which Cold Filter relies on to keep layer-1 counters tight.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import MultiTableHasher
from repro.sketch.base import (
    ValueSketch,
    ensure_mergeable,
    scatter_add_flat,
    validate_batch,
)

__all__ = ["CountMinSketch"]


class CountMinSketch(ValueSketch):
    """A ``K x R`` count-min sketch over non-negative values.

    Parameters
    ----------
    num_tables, num_buckets, seed, family:
        As for :class:`repro.sketch.CountSketch`.
    conservative:
        If true, an update raises each of the key's ``K`` counters only up
        to ``min_counter + value`` — never overshooting the true mass.
        Conservative update is not mergeable; ``merge`` raises when enabled.
    cap:
        Optional saturation value for the counters (Cold Filter uses small
        saturating counters in layer 1).  ``None`` means unbounded.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        conservative: bool = False,
        cap: float | None = None,
        dtype=np.float64,
    ):
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        self.conservative = bool(conservative)
        self.cap = None if cap is None else float(cap)
        self.table = np.zeros((self.num_tables, self.num_buckets), dtype=dtype)
        # Flat view sharing the table's memory — the fused kernels address
        # counter (e, b) as flat[e * R + b].
        self._flat = self.table.reshape(-1)
        self._offsets_u64 = (
            np.arange(self.num_tables, dtype=np.uint64) * np.uint64(self.num_buckets)
        )[:, None]

        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(self.num_tables)
        self._hasher = MultiTableHasher(
            family,
            self.num_buckets,
            [int(children[e].generate_state(1)[0]) for e in range(self.num_tables)],
        )

    def _flat_indices(self, keys: np.ndarray) -> np.ndarray:
        """Fused ``(K, n)`` flat counter indices ``e*R + h_e(key)``."""
        w = self._hasher.bucket_u64(keys)
        np.add(w, self._offsets_u64, out=w)
        return w.view(np.int64)

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        if (values < 0).any():
            raise ValueError("CountMinSketch accepts non-negative values only")
        if self.conservative:
            if not self._flat.flags.writeable:
                # np.maximum.at ignores the writeable flag on some numpy
                # versions — enforce frozen-snapshot immutability ourselves.
                raise ValueError(
                    "sketch counters are read-only (frozen serving snapshot)"
                )
            # Conservative update must be applied per distinct key; aggregate
            # duplicate keys in the batch first so intra-batch order does not
            # change the result.
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=values, minlength=uniq.size)
            fi = self._flat_indices(uniq)
            current = np.min(self._flat[fi], axis=0)
            target = current + sums
            np.maximum.at(
                self._flat,
                fi.ravel(),
                np.broadcast_to(target, fi.shape).ravel(),
            )
        else:
            fi = self._flat_indices(keys)
            # Always bincount, matching the legacy per-table path exactly.
            scatter_add_flat(
                self._flat,
                fi.ravel(),
                np.broadcast_to(values, fi.shape).ravel(),
                use_bincount=True,
            )
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        gathered = self._flat[self._flat_indices(keys)]
        return np.min(gathered, axis=0).astype(np.float64)

    def reset(self) -> None:
        self.table[:] = 0.0

    def freeze(self) -> "CountMinSketch":
        """Make the counter storage read-only (in place) and return ``self``.

        Queries keep working (gathers never write); inserts, merges and
        resets raise — the serving-snapshot immutability guarantee.
        """
        self.table.flags.writeable = False
        self._flat.flags.writeable = False
        return self

    def __getstate__(self):
        # _flat is a view of table; pickling would serialise it as an
        # independent array and silently decouple the two.
        state = self.__dict__.copy()
        del state["_flat"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._flat = self.table.reshape(-1)

    def _check_compatible(self, other: "CountMinSketch") -> None:
        ensure_mergeable(
            self, other, ("num_tables", "num_buckets", "seed", "family", "cap")
        )
        if self.table.dtype != other.table.dtype:
            raise ValueError(
                "CountMinSketch sketches are mergeable only with identical "
                f"counter dtype; {self.table.dtype} != {other.table.dtype}"
            )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        # Compatibility first, so a shape/seed mismatch is reported as such
        # even when one side is also conservative.
        self._check_compatible(other)
        if self.conservative or other.conservative:
            # Conservative update makes each counter depend on the minimum
            # across the key's row at insert time — an order-dependent,
            # non-linear state that counter summation cannot reproduce.
            raise ValueError("conservative-update count-min sketches cannot merge")
        self.table += other.table
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)
        return self

    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(K={self.num_tables}, R={self.num_buckets}, "
            f"conservative={self.conservative}, cap={self.cap})"
        )
