"""Exponential time decay for value sketches via a lazy global scale.

Streaming covariance over an unbounded stream must forget: without decay a
sketch converges to the all-time average and a drifted workload keeps being
answered from stale mass.  :class:`DecayedSketch` wraps any linear value
sketch (:class:`repro.sketch.CountSketch`, :class:`~repro.sketch.CountMinSketch`,
:class:`~repro.sketch.AugmentedSketch`) with exponential decay at **O(1) per
tick**:

* the wrapper keeps one scalar ``_scale`` with the invariant that the
  *current* (decayed) content of the sketch is ``stored_content * _scale``;
* ``tick(n)`` multiplies ``_scale`` by ``gamma**n`` — no counter is touched,
  so the fused scatter/gather hot paths are exactly the ones PR 1 measured;
* ``insert`` stores ``values / _scale`` so that a later query (which
  multiplies by the then-current ``_scale``) returns the value decayed by
  exactly the ticks that elapsed since insertion;
* when ``_scale`` falls below ``flush_below`` the pending decay is folded
  into the counters once (``table *= _scale``) and the scale resets to 1 —
  an O(K*R) pass amortised over tens of thousands of ticks.

With ``gamma`` a power of two (e.g. 0.5) every scale product and flush is an
exact float operation, so decayed results are bit-reproducible — the
property the merge-law tests pin down.

Merging is clock-aligned: two decayed sketches with the same ``gamma`` that
have ticked the same number of times hold counters in the same unit, so the
merge is the backing sketches' exact counter summation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecayedSketch", "decay_from_half_life"]


def decay_from_half_life(half_life: float) -> float:
    """The per-tick factor ``gamma`` that halves mass every ``half_life`` ticks."""
    if half_life <= 0:
        raise ValueError(f"half_life must be > 0, got {half_life}")
    return float(0.5 ** (1.0 / half_life))


def _rescale_backing(sketch, factor: float) -> None:
    """Fold ``factor`` into a backing sketch's stored state in place.

    Counter tables scale linearly; an :class:`AugmentedSketch` additionally
    holds exact filter values in the same unit as its counters, so both must
    scale together or filtered keys would stop decaying.  Scaling goes
    through the sketch's storage-aware ``scale`` when available (quantized
    backings never reach here — the constructor rejects them under decay —
    but the storage-aware path keeps this helper correct for any future
    float-tier variant).
    """
    inner = getattr(sketch, "sketch", None)
    if inner is not None:  # AugmentedSketch: backing CS + exact filter
        inner.scale(factor)
        filt = sketch._filter
        for key in filt:
            filt[key] *= factor
        return
    if hasattr(sketch, "scale"):
        sketch.scale(factor)
    else:
        sketch.table *= factor


class DecayedSketch:
    """Exponentially decayed view over a linear value sketch.

    Parameters
    ----------
    sketch:
        The backing :class:`~repro.sketch.base.ValueSketch`.  Must be
        linear in its stored values (CS, CMS, ASketch); a capped
        :class:`~repro.sketch.CountMinSketch` is rejected because the cap
        is expressed in stored (pre-decay) units and would drift.
    gamma:
        Per-tick decay factor in ``(0, 1]``.  ``1.0`` disables decay (the
        wrapper becomes a transparent pass-through).
    flush_below:
        When the lazy scale drops under this bound the pending decay is
        folded into the counters.  The default (``2**-40``) keeps stored
        magnitudes within ~``1e12`` of live magnitudes, far from overflow.
    """

    def __init__(self, sketch, gamma: float, *, flush_below: float = 2.0**-40):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if not 0.0 < flush_below < 1.0:
            raise ValueError(f"flush_below must be in (0, 1), got {flush_below}")
        if getattr(sketch, "cap", None) is not None:
            raise ValueError(
                "cannot decay a capped CountMinSketch: the cap is applied in "
                "stored units and would no longer bound the decayed value"
            )
        backing = getattr(sketch, "sketch", sketch)  # unwrap ASketch
        if gamma < 1.0 and getattr(backing, "quantum", None) is not None:
            # Stored magnitudes grow like 1/scale between flushes (inserts
            # store v/scale), so fresh mass needs ever more integer range:
            # an int16 table widens to float64 within a handful of ticks,
            # silently voiding the compact tier.  Fixed-point cannot span
            # decay's unbounded dynamic range without lossy
            # renormalisation, so refuse rather than degrade.
            raise ValueError(
                "cannot decay a quantized (int16/int32) sketch: decayed "
                "inserts store values scaled by 1/gamma^ticks, which "
                "outgrows any fixed-point range and forces immediate "
                "promotion to float64; use float32 storage to halve "
                "decayed-table memory instead"
            )
        self.sketch = sketch
        self.gamma = float(gamma)
        self.flush_below = float(flush_below)
        self.ticks = 0
        self._scale = 1.0

    # ------------------------------------------------------------------
    # Decay clock
    # ------------------------------------------------------------------
    def tick(self, num_ticks: int = 1) -> None:
        """Advance the decay clock by ``num_ticks`` — O(1), no counter writes.

        Content inserted before this call is worth ``gamma**num_ticks`` of
        its previous value at the next query.
        """
        if num_ticks < 0:
            raise ValueError(f"num_ticks must be >= 0, got {num_ticks}")
        if num_ticks == 0 or self.gamma == 1.0:
            self.ticks += int(num_ticks)
            return
        self.ticks += int(num_ticks)
        self._scale *= self.gamma ** int(num_ticks)
        if self._scale < self.flush_below:
            self.flush()

    def flush(self) -> None:
        """Fold the pending lazy scale into the counters (rare, amortised)."""
        if self._scale == 1.0:
            return
        _rescale_backing(self.sketch, self._scale)
        self._scale = 1.0

    @property
    def pending_scale(self) -> float:
        """The lazy factor queries currently apply (diagnostics)."""
        return self._scale

    # ------------------------------------------------------------------
    # ValueSketch interface (hot paths delegate to the backing kernels)
    # ------------------------------------------------------------------
    def insert(self, keys, values) -> None:
        values = np.asarray(values, dtype=np.float64)
        if self._scale != 1.0:
            values = values / self._scale
        self.sketch.insert(keys, values)

    def insert_and_query(self, keys, values) -> np.ndarray:
        """Fused insert + post-insert decayed estimates (one hashing pass)."""
        values = np.asarray(values, dtype=np.float64)
        if self._scale != 1.0:
            values = values / self._scale
        if hasattr(self.sketch, "insert_and_query"):
            estimates = self.sketch.insert_and_query(keys, values)
        else:
            self.sketch.insert(keys, values)
            estimates = self.sketch.query(keys)
        if self._scale != 1.0:
            estimates = estimates * self._scale
        return estimates

    def query(self, keys) -> np.ndarray:
        return self.query_scaled(keys)

    def query_scaled(self, keys, extra: float = 1.0) -> np.ndarray:
        """Decayed estimates times ``extra``, in **one** multiply.

        The decayed-mean estimator folds its ``T / W`` normalisation into
        the same product the snapshot export bakes into ``_scale``, so
        serving snapshots answer bit-identically to the live estimator.
        """
        estimates = self.sketch.query(keys)
        factor = self._scale * float(extra)
        if factor != 1.0:
            estimates = estimates * factor
        return estimates

    def query_single(self, key: int) -> float:
        return float(self.query(np.asarray([key], dtype=np.int64))[0])

    def cache_keys(self, keys) -> None:
        """Forward hash caching to the backing sketch (dense streaming)."""
        if hasattr(self.sketch, "cache_keys"):
            self.sketch.cache_keys(keys)

    def reset(self) -> None:
        self.sketch.reset()
        self.ticks = 0
        self._scale = 1.0

    # ------------------------------------------------------------------
    # Merge / copy / freeze
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "DecayedSketch") -> None:
        if not isinstance(other, DecayedSketch):
            raise ValueError(
                f"cannot merge {type(other).__name__} into DecayedSketch"
            )
        if self.gamma != other.gamma:
            raise ValueError(
                "decayed sketches are mergeable only with identical gamma; "
                f"{self.gamma!r} != {other.gamma!r}"
            )
        if self.ticks != other.ticks:
            raise ValueError(
                "decayed sketches are mergeable only when clock-aligned "
                f"(same tick count); {self.ticks} != {other.ticks}"
            )

    def merge(self, other: "DecayedSketch") -> "DecayedSketch":
        """Sum another clock-aligned decayed sketch's content in place.

        Both sides flush first, so the backing merge is an exact counter
        summation in a shared unit — associative and commutative exactly as
        the undecayed merge law of PR 2 (bit-for-bit for exactly
        representable partial sums).
        """
        self._check_compatible(other)
        self.flush()
        other.flush()
        self.sketch.merge(other.sketch)
        return self

    def copy(self) -> "DecayedSketch":
        if hasattr(self.sketch, "copy"):
            backing = self.sketch.copy()
        else:
            import copy as _copy

            backing = _copy.deepcopy(self.sketch)
        clone = DecayedSketch(backing, self.gamma, flush_below=self.flush_below)
        clone.ticks = self.ticks
        clone._scale = self._scale
        return clone

    def freeze(self) -> "DecayedSketch":
        """Freeze the backing counters (queries keep working, writes raise)."""
        if hasattr(self.sketch, "freeze"):
            self.sketch.freeze()
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_floats(self) -> int:
        return self.sketch.memory_floats

    @property
    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecayedSketch(gamma={self.gamma:g}, ticks={self.ticks}, "
            f"scale={self._scale:g}, backing={self.sketch!r})"
        )
