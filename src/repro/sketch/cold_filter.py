"""Cold Filter (Zhou et al. — SIGMOD 2018), value-adapted.

Cold Filter is a meta-framework: a cheap low-resolution layer absorbs the
long tail of cold items, and only items whose accumulated mass crosses a
threshold are forwarded to the accurate (expensive) structure behind it.
Here the gate is a conservative-update count-min over *absolute* update
mass with saturating counters, and the accurate structure is a count sketch
holding the signed values of hot keys.

Query semantics: a key that never crossed the gate is estimated by the
(signed) mass it left in the gate — which for covariance streams is clipped
at the threshold, exactly the "cold items don't matter" trade Cold Filter
makes; hot keys are estimated by gate threshold + count sketch remainder.
For top-correlation retrieval only hot keys matter, so the harness treats
the gate as a pure SNR booster, the same role it plays in the paper's
comparison (section 8.3 skips Cold Filter "due to its similarity to
Augmented Sketch" — we implement it anyway).
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import ValueSketch, ensure_mergeable, validate_batch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch

__all__ = ["ColdFilterSketch"]


class ColdFilterSketch(ValueSketch):
    """Two-layer cold filter over a count sketch.

    Parameters
    ----------
    num_tables, num_buckets, seed, family:
        Parameters of the main :class:`CountSketch`.
    filter_buckets:
        Buckets of the gating count-min layer (typically ``>= num_buckets``
        since its counters are conceptually narrow).
    filter_tables:
        Hash tables of the gate (Cold Filter uses 2-3 cheap ones).
    threshold:
        Absolute-mass level at which a key graduates to the main sketch.
    dtype, quantum:
        Counter storage of the main :class:`CountSketch` (see
        :mod:`repro.sketch.storage`).  The gate stays float64: its
        conservative-update clamp is a non-linear in-place pass that
        quantized storage cannot express (and it is already charged at a
        quarter-float per counter in the budget accounting).
    backend:
        Kernel backend of the main :class:`CountSketch`; the gate's
        conservative update always runs on the numpy path.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        filter_buckets: int | None = None,
        filter_tables: int = 3,
        threshold: float = 1.0,
        seed: int = 0,
        family: str = "multiply-shift",
        dtype=np.float64,
        quantum: float | None = None,
        backend: str | None = None,
    ):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.sketch = CountSketch(
            num_tables, num_buckets, seed=seed, family=family,
            dtype=dtype, quantum=quantum, backend=backend,
        )
        self.threshold = float(threshold)
        gate_r = int(filter_buckets) if filter_buckets else num_buckets
        self.gate = CountMinSketch(
            filter_tables,
            gate_r,
            seed=seed + 1,
            family=family,
            conservative=True,
            cap=self.threshold,
        )

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        mass = np.abs(values)
        before = self.gate.query(keys)
        self.gate.insert(keys, mass)
        after = self.gate.query(keys)

        hot = after >= self.threshold
        if not hot.any():
            return
        # A key crossing the threshold this batch forwards only its overflow
        # beyond the gate cap; keys already saturated forward everything.
        overflow = np.where(
            before >= self.threshold,
            values,
            np.sign(values) * np.maximum(mass - (self.threshold - before), 0.0),
        )
        self.sketch.insert(keys[hot], overflow[hot])

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        gate_mass = self.gate.query(keys)
        main = self.sketch.query(keys)
        hot = gate_mass >= self.threshold
        # Hot keys: gate holds `threshold` of their absolute mass; attribute
        # it with the sign of the main-sketch remainder (signals are signed
        # consistently, so this recovers the full magnitude for real heavy
        # keys and stays bounded for noise).
        out = np.where(hot, main + np.sign(main) * self.threshold, gate_mass)
        return out.astype(np.float64)

    def reset(self) -> None:
        self.sketch.reset()
        self.gate.reset()

    def freeze(self) -> "ColdFilterSketch":
        """Freeze both layers (queries keep working, writes raise)."""
        self.sketch.freeze()
        self.gate.freeze()
        return self

    def merge(self, other: "ColdFilterSketch") -> "ColdFilterSketch":
        """Cold Filter states cannot merge; raise a clear ``ValueError``.

        Compatibility (shape/seed/family/threshold) is validated first so a
        reducer that mixed up shards gets the precise mismatch, but even
        compatible states are rejected: the gate is a conservative-update
        count-min whose counters depend on the order updates arrived, and
        the main sketch only holds each key's overflow *beyond* the gate
        threshold — two shards can each stay below threshold (all mass in
        the gates) while the combined stream would have graduated the key.
        No counter summation reproduces that.  Use plain ``cs``/``ascs``
        estimators for sharded ingestion.
        """
        ensure_mergeable(self, other, ("threshold",))
        self.sketch._check_compatible(other.sketch)
        self.gate._check_compatible(other.gate)
        raise ValueError(
            "ColdFilterSketch cannot merge: the conservative-update gate is "
            "order-dependent and per-shard gates under-count keys whose mass "
            "is split across shards"
        )

    @property
    def memory_floats(self) -> int:
        # Gate counters are narrow in the original (2-4 bits); charge them
        # at a quarter of a float, rounded up, to keep budgets comparable.
        gate_floats = (self.gate.memory_floats + 3) // 4
        return self.sketch.memory_floats + gate_floats

    @property
    def memory_bytes(self) -> int:
        """Actual resident bytes (the gate is physically float64 here)."""
        return self.sketch.memory_bytes + self.gate.memory_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColdFilterSketch(K={self.sketch.num_tables}, "
            f"R={self.sketch.num_buckets}, threshold={self.threshold})"
        )
